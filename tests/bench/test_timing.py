"""Benchmark driver tests."""

import numpy as np
import pytest

from repro.bench import (RawBytesCase, SweepPoint, charge_alloc, charge_copy,
                         pow2_sizes, run_once, sweep_pingpong)
from repro.mpi import run
from repro.ucp.netsim import DEFAULT_PARAMS, CostModel


class TestSweepPoint:
    def test_metrics(self):
        p = SweepPoint(size=1_000_000, one_way_s=1e-3)
        assert p.latency_us == pytest.approx(1000.0)
        assert p.bandwidth_MBps == pytest.approx(1000.0)

    def test_zero_time(self):
        assert SweepPoint(10, 0.0).bandwidth_MBps == 0.0


class TestPow2Sizes:
    def test_range(self):
        assert pow2_sizes(3, 6) == [8, 16, 32, 64]


class TestChargeHelpers:
    def test_charges_match_model(self):
        model = CostModel()

        def fn(comm):
            t0 = comm.clock.now
            charge_copy(comm, 1000)
            charge_alloc(comm, 1000)
            return comm.clock.now - t0

        res = run(fn, nprocs=2)
        expect = model.copy_time(1000) + model.alloc_time(1000)
        assert res.results[0] == pytest.approx(expect)


class TestSweepPingpong:
    def test_one_way_matches_model(self):
        """Pingpong latency of raw bytes == the modelled one-way time."""
        model = CostModel()
        for size in (64, 4096, 32 * 1024):
            pt = run_once(RawBytesCase, size)
            assert pt.one_way_s == pytest.approx(model.contig_time(size),
                                                 rel=1e-6), size

    def test_rndv_sizes_match_model(self):
        model = CostModel()
        size = 1 << 18
        pt = run_once(RawBytesCase, size)
        assert pt.one_way_s == pytest.approx(model.rndv_time(size), rel=1e-6)

    def test_sweep_returns_point_per_size(self):
        sizes = [64, 128, 256]
        pts = sweep_pingpong(RawBytesCase, sizes, iters=2)
        assert [p.size for p in pts] == sizes

    def test_iterations_are_deterministic(self):
        a = run_once(RawBytesCase, 1024)
        b = run_once(RawBytesCase, 1024)
        assert a.one_way_s == b.one_way_s

    def test_latency_monotone_in_size(self):
        pts = sweep_pingpong(RawBytesCase, pow2_sizes(6, 14), iters=2)
        times = [p.one_way_s for p in pts]
        assert times == sorted(times)

    def test_params_override(self):
        slow = DEFAULT_PARAMS.with_overrides(latency=1e-3)
        fast = run_once(RawBytesCase, 64)
        slowpt = run_once(RawBytesCase, 64, params=slow)
        assert slowpt.one_way_s > fast.one_way_s + 5e-4
