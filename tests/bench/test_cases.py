"""Bench case plumbing and calibration-variant tests."""

import pytest

from repro.bench import (DDT_METHODS, WorkloadCase, default_params,
                         expensive_regions_params, no_rendezvous_params,
                         run_once, slow_network_params, struct_count_for,
                         DoubleVecCustomCase, RawBytesCase)
from repro.ddtbench import make_workload
from repro.ucp.netsim import CostModel


class TestStructCountFor:
    def test_struct_simple(self):
        assert struct_count_for("struct-simple", 2000) == 100
        assert struct_count_for("struct-simple", 10) == 1  # never zero

    def test_struct_vec(self):
        assert struct_count_for("struct-vec", 8212 * 3) == 3

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            struct_count_for("struct-unknown", 100)


class TestWorkloadCase:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            WorkloadCase(make_workload("MILC"), "quantum")

    def test_region_method_needs_region_workload(self):
        with pytest.raises(ValueError):
            WorkloadCase(make_workload("LAMMPS"), "custom-region")

    def test_method_list_complete(self):
        assert set(DDT_METHODS) == {"reference", "ompi-datatype", "ompi-pack",
                                    "manual-pack", "custom-pack",
                                    "custom-region", "custom-coro"}


class TestCalibrationVariants:
    def test_default_is_the_module_default(self):
        from repro.ucp.netsim import DEFAULT_PARAMS
        assert default_params() is DEFAULT_PARAMS

    def test_slow_network_scales_times(self):
        fast = run_once(RawBytesCase, 1 << 16)
        slow = run_once(RawBytesCase, 1 << 16, params=slow_network_params(10))
        # Wire components scale 10x; the fixed handshake does not, so the
        # end-to-end ratio is somewhat below 10.
        assert slow.one_way_s > 3 * fast.one_way_s

    def test_no_rendezvous_removes_the_switch(self):
        m = CostModel(no_rendezvous_params())
        lim = default_params().eager_limit
        # No discontinuity at the (former) limit.
        assert m.contig_time(lim + 1) - m.contig_time(lim) < 1e-9

    def test_expensive_regions_flip_a_region_win(self):
        """MILC regions win by default and lose under the pathological
        per-region cost — the mechanism isolated."""
        w = make_workload("MILC")
        normal_reg = run_once(lambda s: WorkloadCase(make_workload("MILC"),
                                                     "custom-region"),
                              w.packed_bytes)
        normal_pack = run_once(lambda s: WorkloadCase(make_workload("MILC"),
                                                      "custom-pack"),
                               w.packed_bytes)
        worse_reg = run_once(lambda s: WorkloadCase(make_workload("MILC"),
                                                    "custom-region"),
                             w.packed_bytes,
                             params=expensive_regions_params(5000))
        assert normal_reg.one_way_s < normal_pack.one_way_s
        assert worse_reg.one_way_s > normal_pack.one_way_s


class TestDoubleVecCaseShape:
    def test_packed_length_includes_header(self):
        case = DoubleVecCustomCase(4096, 1024)

        class FakeComm:
            rank = 0

        case.setup(FakeComm())
        assert case.dv.total_bytes == 4096
        assert len(case.dv.vectors) == 4
