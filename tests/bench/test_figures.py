"""Figure regeneration tests: the paper's qualitative claims, asserted.

Each test pins one sentence of the paper's evaluation narrative to the
regenerated series (quick size ranges).  EXPERIMENTS.md cross-references
these assertions.
"""

import math

import pytest

from repro.bench import (fig1_double_vec_latency, fig2_double_vec_bandwidth,
                         fig3_struct_vec_latency, fig4_struct_vec_bandwidth,
                         fig5_struct_simple_latency,
                         fig6_struct_simple_no_gap_latency,
                         fig7_struct_simple_bandwidth,
                         fig8_pickle_single_array, fig9_pickle_complex_object,
                         fig10_ddtbench, format_figure)


@pytest.fixture(scope="module")
def fig1():
    return fig1_double_vec_latency(quick=True)


@pytest.fixture(scope="module")
def fig5():
    return fig5_struct_simple_latency(quick=True)


@pytest.fixture(scope="module")
def fig7():
    return fig7_struct_simple_bandwidth(quick=True)


@pytest.fixture(scope="module")
def fig8():
    return fig8_pickle_single_array(quick=True)


@pytest.fixture(scope="module")
def fig10():
    return fig10_ddtbench()


def at(fs, size):
    return fs.x.index(size)


class TestFig1DoubleVecLatency:
    def test_bytes_baseline_lowest(self, fig1):
        """Paper: 'the rsmpi-bytes-baseline has the lowest latency'.

        Asserted across the eager range; past the eager limit the baseline
        pays the rendezvous handshake that our iov path does not, letting
        large-sub-vector custom edge past it (EXPERIMENTS.md divergence D3).
        """
        base = fig1.curve("rsmpi-bytes-baseline")
        eager_idx = [i for i, x in enumerate(fig1.x) if x <= 32 * 1024]
        for name, curve in fig1.curves.items():
            if name == "rsmpi-bytes-baseline":
                continue
            for i in eager_idx:
                assert base[i] <= curve[i] + 1e-9, (name, fig1.x[i])

    def test_larger_subvectors_better_past_512(self, fig1):
        """Paper: from ~2^9, custom improves with the sub-vector size."""
        i = at(fig1, 4096)
        lat = [fig1.curve(f"custom (subvec {sv}B)")[i]
               for sv in (64, 256, 1024, 4096)]
        assert lat == sorted(lat, reverse=True)

    def test_manual_pack_worst_at_large_sizes(self, fig1):
        """Paper: 'manual-pack tests after 2^9 have the highest latency'.

        Our per-region costs push the 64-byte-sub-vector crossover later
        than the paper's (see EXPERIMENTS.md); assert from 2^15 up, where
        every custom variant beats manual packing.
        """
        for size in (32768, 65536):
            i = at(fig1, size)
            manual = fig1.curve("manual-pack (subvec 1024B)")[i]
            for sv in (64, 256, 1024, 4096):
                assert manual > fig1.curve(f"custom (subvec {sv}B)")[i], size

    def test_manual_pack_worst_for_kib_subvectors_from_8k(self, fig1):
        for size in (8192, 16384):
            i = at(fig1, size)
            manual = fig1.curve("manual-pack (subvec 1024B)")[i]
            for sv in (1024, 4096):
                assert manual > fig1.curve(f"custom (subvec {sv}B)")[i], size


class TestFig2DoubleVecBandwidth:
    def test_custom_beats_manual_at_large_sizes(self):
        fs = fig2_double_vec_bandwidth(quick=True)
        i = at(fs, fs.x[-1])
        assert fs.curve("custom")[i] > 2 * fs.curve("manual-pack")[i]

    def test_custom_approaches_baseline(self):
        fs = fig2_double_vec_bandwidth(quick=True)
        i = at(fs, fs.x[-1])
        assert fs.curve("custom")[i] > 0.8 * fs.curve("rsmpi-bytes-baseline")[i]


class TestFig3Fig4StructVec:
    def test_custom_higher_latency_at_small_sizes(self):
        """Paper: 'Latency is higher for custom until a size of 2^18'.

        Our simulated iov lacks UCX's per-entry pathologies, so the
        crossover lands earlier — custom must still start above the derived
        baseline at the smallest sizes.
        """
        fs = fig3_struct_vec_latency(quick=True)
        assert fs.curve("custom")[0] > fs.curve("rsmpi-derived-datatype")[0]

    def test_custom_competitive_at_large_sizes(self):
        fs = fig3_struct_vec_latency(quick=True)
        assert fs.curve("custom")[-1] <= fs.curve("rsmpi-derived-datatype")[-1]

    def test_bandwidth_custom_wins_large(self):
        fs = fig4_struct_vec_bandwidth(quick=True)
        assert fs.curve("custom")[-1] >= fs.curve("rsmpi-derived-datatype")[-1]
        assert fs.curve("custom")[-1] >= fs.curve("manual-pack")[-1]


class TestFig5Fig6GapEffect:
    def test_gap_makes_derived_worst(self, fig5):
        """Paper: 'custom and manual-pack both have very low latency in
        comparison with RSMPI ... caused by the gap inside the structure'."""
        for size in (8192, 32768, 65536):
            i = at(fig5, size)
            rsmpi = fig5.curve("rsmpi-derived-datatype")[i]
            assert rsmpi > 1.5 * fig5.curve("manual-pack")[i], size
            assert rsmpi > 1.5 * fig5.curve("custom")[i], size

    def test_no_gap_derived_performs_as_expected(self):
        """Paper: without the gap 'RSMPI ... performs as expected'."""
        fs = fig6_struct_simple_no_gap_latency(quick=True)
        for i in range(len(fs.x)):
            rsmpi = fs.curve("rsmpi-derived-datatype")[i]
            manual = fs.curve("manual-pack")[i]
            assert rsmpi <= manual * 1.05

    def test_gap_penalty_is_the_difference(self, fig5):
        fs6 = fig6_struct_simple_no_gap_latency(quick=True)
        i5, i6 = at(fig5, 65536), at(fs6, 65536)
        ratio_gap = (fig5.curve("rsmpi-derived-datatype")[i5]
                     / fig5.curve("manual-pack")[i5])
        ratio_nogap = (fs6.curve("rsmpi-derived-datatype")[i6]
                       / fs6.curve("manual-pack")[i6])
        assert ratio_gap > 2 * ratio_nogap


class TestFig7RendezvousDip:
    def test_manual_pack_dips_after_eager_limit(self, fig7):
        """Paper: 'the dip shown with manual-pack at 2^15 can be attributed
        to the switchover from eager to rendezvous'."""
        curve = fig7.curve("manual-pack")
        i = at(fig7, 65536)  # first sampled point past the 32 KiB limit
        assert curve[i] < curve[i - 1]

    def test_custom_is_smooth(self, fig7):
        """Paper: the switch 'doesn't affect custom since it uses the UCX
        iovec API'."""
        curve = fig7.curve("custom")
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_custom_best_at_large_sizes(self, fig7):
        assert fig7.curve("custom")[-1] > fig7.curve("manual-pack")[-1]
        assert fig7.curve("custom")[-1] > fig7.curve("rsmpi-derived-datatype")[-1]


class TestFig8Fig9Pickle:
    def test_oob_methods_win_beyond_256k(self, fig8):
        """Paper: oob 'significantly better than the simple pickle method
        for message sizes 2^18 bytes and greater'."""
        for size in (1 << 18, 1 << 19, 1 << 20):
            i = at(fig8, size)
            basic = fig8.curve("pickle-basic")[i]
            assert fig8.curve("pickle-oob")[i] > 1.5 * basic, size
            assert fig8.curve("pickle-oob-cdt")[i] > 1.5 * basic, size

    def test_similar_at_small_sizes(self, fig8):
        """Paper: 'for smaller aggregate message sizes, the basic pickle
        pack method yields similar performance'."""
        i = at(fig8, 1024)
        vals = [fig8.curve(n)[i]
                for n in ("pickle-basic", "pickle-oob", "pickle-oob-cdt")]
        assert max(vals) < 2 * min(vals)

    def test_nothing_reaches_roofline(self, fig8):
        """Paper: 'the out-of-band approaches cannot match the raw roofline
        performance ... memory allocations on the receive side'."""
        for name in ("pickle-basic", "pickle-oob", "pickle-oob-cdt"):
            assert fig8.curve(name)[-1] < 0.9 * fig8.curve("roofline")[-1]

    def test_complex_object_oob_wins_at_largest(self):
        fs = fig9_pickle_complex_object(quick=True)
        basic = fs.curve("pickle-basic")[-1]
        assert fs.curve("pickle-oob")[-1] > 1.5 * basic
        assert fs.curve("pickle-oob-cdt")[-1] > 1.5 * basic

    def test_cdt_single_message_beats_multi_message_oob(self):
        """The engine-internal pieces beat one-MPI-message-per-buffer."""
        fs = fig9_pickle_complex_object(quick=True)
        assert fs.curve("pickle-oob-cdt")[-1] > fs.curve("pickle-oob")[-1]


class TestFig10DDTBench:
    def test_regions_win_where_runs_are_large(self, fig10):
        """Paper: regions yield higher bandwidth for MILC, NAS_LU_x,
        NAS_MG_y."""
        for name in ("MILC", "NAS_LU_x", "NAS_MG_y"):
            i = fig10.x.index(name)
            assert fig10.curve("custom-region")[i] > \
                fig10.curve("custom-pack")[i], name

    def test_regions_lose_where_runs_are_tiny(self, fig10):
        """Paper: regions yield lower bandwidth for NAS_LU_y and NAS_MG_x."""
        for name in ("NAS_LU_y", "NAS_MG_x"):
            i = fig10.x.index(name)
            assert fig10.curve("custom-region")[i] < \
                fig10.curve("custom-pack")[i], name

    def test_custom_competitive_for_lammps(self, fig10):
        """Paper: 'custom packing provides competitive performance in some
        cases (LAMMPS, NAS_MG_x)'."""
        i = fig10.x.index("LAMMPS")
        best_other = max(fig10.curve(m)[i]
                         for m in ("ompi-datatype", "ompi-pack", "manual-pack"))
        assert fig10.curve("custom-pack")[i] > best_other

    def test_reference_bounds_all_packing_methods(self, fig10):
        """The contiguous reference bounds every method that moves a packed
        stream.  custom-region is exempt: with a handful of large regions it
        skips both packing and the rendezvous handshake, so at these message
        sizes it can legitimately exceed the same-size contiguous reference
        (EXPERIMENTS.md divergence D3); it must still stay within the
        handshake margin."""
        for m, col in fig10.curves.items():
            if m == "reference":
                continue
            bound = 1.6 if m == "custom-region" else 1.01
            for i, name in enumerate(fig10.x):
                v = col[i]
                if not math.isnan(v):
                    assert v <= fig10.curve("reference")[i] * bound, (m, name)

    def test_regions_absent_where_impracticable(self, fig10):
        for name in ("LAMMPS", "WRF_x_vec", "WRF_y_vec"):
            i = fig10.x.index(name)
            assert math.isnan(fig10.curve("custom-region")[i])

    def test_coroutine_matches_full_pack(self, fig10):
        """Our working coroutines cost the same as full packing (the paper
        had to fall back; we don't)."""
        for i in range(len(fig10.x)):
            a = fig10.curve("custom-coro")[i]
            b = fig10.curve("custom-pack")[i]
            assert a == pytest.approx(b, rel=0.05)


class TestFormatting:
    def test_format_renders_all_curves(self, fig1):
        text = format_figure(fig1)
        assert "fig1" in text
        assert str(fig1.x[0]) in text
