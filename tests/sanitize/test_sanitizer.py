"""Dynamic sanitizer unit tests: every RPD4xx fires on its seeded bug.

Each test drives :func:`repro.mpi.run` with ``sanitize=True`` on a small
program carrying exactly one class of bug, then asserts the corresponding
diagnostic (and only meaningful companions) is reported.
"""

import time

import numpy as np
import pytest

from repro.core import Region, type_create_custom
from repro.errors import RuntimeAbort
from repro.mpi import run


def report_of(fn, nprocs=2, timeout=30.0):
    """Run sanitized; the report, whether the job survived or aborted."""
    try:
        return run(fn, nprocs=nprocs, sanitize=True,
                   timeout=timeout).sanitizer_report
    except RuntimeAbort as exc:
        assert exc.sanitizer_report is not None
        return exc.sanitizer_report


def test_rpd4_code_table_complete():
    # Every dynamic check family is registered in the shared vocabulary;
    # the corpus below (plus tests/sanitize/fixtures/ and the fault-aware
    # RPD45x triggers in tests/faults/) fires each one.
    from repro.analyze.diagnostics import CODE_TABLE
    assert {c for c in CODE_TABLE if c.startswith("RPD4")} == {
        "RPD400", "RPD401", "RPD402", "RPD410", "RPD411",
        "RPD420", "RPD421", "RPD430", "RPD431", "RPD432", "RPD440",
        "RPD450", "RPD451", "RPD452"}


class TestCleanRuns:
    def test_pingpong_is_clean(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(64, dtype=np.float64), dest=1, tag=1)
                inbox = np.empty(64)
                comm.recv(inbox, source=1, tag=2)
            else:
                inbox = np.empty(64)
                comm.recv(inbox, source=0, tag=1)
                comm.send(inbox, dest=0, tag=2)

        rep = report_of(fn)
        assert rep.clean, rep.format_text()
        assert rep.nprocs == 2

    def test_nonblocking_exchange_is_clean(self):
        def fn(comm):
            peer = 1 - comm.rank
            out = np.full(512, float(comm.rank))
            inbox = np.empty(512)
            reqs = [comm.irecv(inbox, source=peer, tag=3),
                    comm.isend(out, dest=peer, tag=3)]
            for r in reqs:
                r.wait()
            assert inbox[0] == float(peer)

        rep = report_of(fn)
        assert rep.clean, rep.format_text()

    def test_report_json_envelope(self):
        rep = report_of(lambda comm: None)
        doc = rep.to_dict()
        assert doc["tool"] == "repro.sanitize"
        assert doc["version"] == 1
        assert doc["summary"]["findings"] == 0


class TestBufferChecks:
    def test_rpd400_overlapping_writer(self):
        def fn(comm):
            buf = np.zeros(128)
            if comm.rank == 0:
                r1 = comm.irecv(buf, source=1, tag=1)
                r2 = comm.isend(buf, dest=1, tag=2)  # overlaps the irecv
                r2.wait()
                r1.wait()
            else:
                inbox = np.empty(128)
                comm.recv(inbox, source=0, tag=2)
                comm.send(np.ones(128), dest=0, tag=1)

        assert "RPD400" in report_of(fn).codes()

    def test_rpd400_respects_disjoint_typemap_blocks(self):
        # Concurrent derived ops on the two halves of one array share no
        # bytes: block-accurate tracking must stay silent.
        from repro.core import FLOAT64, contiguous

        half = contiguous(64, FLOAT64)

        def fn(comm):
            buf = np.zeros(128)
            peer = 1 - comm.rank
            r1 = comm.irecv(buf[:64], source=peer, tag=1, datatype=half,
                            count=1)
            r2 = comm.isend(np.ones(64), dest=peer, tag=1)
            r3 = comm.isend(buf[64:], dest=peer, tag=2)
            r4_buf = np.empty(64)
            r4 = comm.irecv(r4_buf, source=peer, tag=2)
            for r in (r2, r1, r3, r4):
                r.wait()

        rep = report_of(fn)
        assert rep.clean, rep.format_text()

    def test_rpd401_send_buffer_modified_in_flight(self):
        def fn(comm):
            if comm.rank == 0:
                buf = np.arange(1024, dtype=np.float64)
                req = comm.isend(buf, dest=1, tag=1)
                buf[0] = -1.0
                req.wait()
            else:
                inbox = np.empty(1024)
                comm.recv(inbox, source=0, tag=1)

        rep = report_of(fn)
        assert "RPD401" in rep.codes()
        (diag,) = rep.by_code("RPD401")
        assert diag.subject == "rank 0"

    def test_rpd402_recv_buffer_scribbled_before_delivery(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.ones(256), dest=1, tag=5)
            else:
                buf = np.zeros(256)
                req = comm.irecv(buf, source=0, tag=5)
                buf[17] = 99.0  # scribble before completing the receive
                req.wait()

        rep = report_of(fn)
        assert "RPD402" in rep.codes()
        (diag,) = rep.by_code("RPD402")
        assert diag.subject == "rank 1"


class TestSignatureChecks:
    def test_rpd410_mismatched_scalars_same_bytes(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(4, dtype=np.float64), dest=1, tag=3)
            else:
                buf = np.zeros(8, dtype=np.int32)
                comm.recv(buf, source=0, tag=3)

        rep = report_of(fn)
        assert "RPD410" in rep.codes()
        assert "RPD411" not in rep.codes()  # byte counts agree

    def test_rpd411_truncation(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(16, dtype=np.float64), dest=1, tag=2)
            else:
                small = np.zeros(8)
                comm.recv(small, source=0, tag=2)

        rep = report_of(fn)
        assert "RPD411" in rep.codes()
        assert rep.aborted  # the oversized delivery kills the receiver

    def test_byte_recv_of_typed_send_is_clean(self):
        # MPI_BYTE-style receives legitimately absorb any typed stream.
        from repro.core import BYTE

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(8, dtype=np.float64), dest=1, tag=7)
            else:
                raw = np.zeros(64, dtype=np.uint8)
                comm.recv(raw, source=0, tag=7, datatype=BYTE, count=64)

        rep = report_of(fn)
        assert "RPD410" not in rep.codes(), rep.format_text()


class TestRequestAndMessageLeaks:
    def test_rpd420_leaked_request(self):
        def fn(comm):
            if comm.rank == 0:
                comm.isend(np.arange(256, dtype=np.float64), dest=1, tag=5)
            else:
                inbox = np.empty(256)
                comm.recv(inbox, source=0, tag=5)

        rep = report_of(fn)
        assert "RPD420" in rep.codes()
        (diag,) = rep.by_code("RPD420")
        assert diag.severity == "warning"
        assert "send of 256 x double" in diag.message

    def test_rpd421_message_never_received(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(8, dtype=np.float64), dest=1, tag=9)

        rep = report_of(fn)
        assert "RPD421" in rep.codes()
        (diag,) = rep.by_code("RPD421")
        assert diag.subject == "rank 1"  # reported at the would-be receiver


class TestCustomCallbackContracts:
    @staticmethod
    def _pack_type(name, state_fn=None, state_free_fn=None):
        def query_fn(state, buf, count):
            return 8 * len(buf)

        def pack_fn(state, buf, count, offset, dst):
            raw = buf.view(np.uint8).reshape(-1)
            step = min(dst.shape[0], raw.shape[0] - offset)
            dst[:step] = raw[offset:offset + step]
            return int(step)

        def unpack_fn(state, buf, count, offset, src):
            raw = buf.view(np.uint8).reshape(-1)
            raw[offset:offset + src.shape[0]] = src

        return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                                  unpack_fn=unpack_fn, state_fn=state_fn,
                                  state_free_fn=state_free_fn, name=name)

    def test_rpd430_lying_packed_size(self):
        dt = self._pack_type("custom:lying-size")

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([1.0, 2.0]), dest=1, tag=4,
                          datatype=dt, count=1)
            else:
                buf = np.zeros(3)  # query promises 24, sender packed 16
                comm.recv(buf, source=0, tag=4, datatype=dt, count=1)

        rep = report_of(fn)
        assert "RPD430" in rep.codes()
        (diag,) = rep.by_code("RPD430")
        assert "16" in diag.message and "24" in diag.message

    def test_rpd431_region_disagreement(self):
        def region_type(nregions):
            def query_fn(state, buf, count):
                return 0

            def region_count_fn(state, buf, count):
                return nregions

            def region_fn(state, buf, count, n):
                flat = buf.view(np.uint8).reshape(-1)
                step = flat.shape[0] // n
                return [Region(flat[i * step:(i + 1) * step])
                        for i in range(n)]

            return type_create_custom(query_fn=query_fn,
                                      region_count_fn=region_count_fn,
                                      region_fn=region_fn,
                                      name=f"custom:{nregions}-regions")

        def fn(comm):
            buf = np.zeros(16)
            if comm.rank == 0:
                comm.send(buf, dest=1, tag=8, datatype=region_type(1),
                          count=1)
            else:
                comm.recv(buf, source=0, tag=8, datatype=region_type(2),
                          count=1)

        rep = report_of(fn)
        assert "RPD431" in rep.codes()

    def test_rpd432_state_without_free(self):
        dt = self._pack_type("custom:stateful-no-free",
                             state_fn=lambda context, buf, count: {})

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(4, dtype=np.float64), dest=1, tag=6,
                          datatype=dt, count=1)
            else:
                buf = np.zeros(4)
                comm.recv(buf, source=0, tag=6, datatype=dt, count=1)

        rep = report_of(fn)
        assert "RPD432" in rep.codes()
        (diag,) = rep.by_code("RPD432")  # deduplicated across ranks/ops
        assert diag.severity == "warning"

    def test_rpd432_silent_with_free(self):
        dt = self._pack_type("custom:stateful-freed",
                             state_fn=lambda context, buf, count: {},
                             state_free_fn=lambda state: None)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(4, dtype=np.float64), dest=1, tag=6,
                          datatype=dt, count=1)
            else:
                buf = np.zeros(4)
                comm.recv(buf, source=0, tag=6, datatype=dt, count=1)

        rep = report_of(fn)
        assert "RPD432" not in rep.codes()


class TestDeadlockDetection:
    def test_rpd440_two_rank_head_to_head(self):
        def fn(comm):
            peer = 1 - comm.rank
            out = np.zeros(8192)  # 64 KiB: rendezvous, send blocks
            inbox = np.empty(8192)
            comm.send(out, dest=peer, tag=1)
            comm.recv(inbox, source=peer, tag=1)

        start = time.monotonic()
        rep = report_of(fn, timeout=60.0)
        elapsed = time.monotonic() - start
        assert "RPD440" in rep.codes()
        assert rep.aborted
        assert elapsed < 10.0, f"detection took {elapsed:.1f}s"
        (diag,) = rep.by_code("RPD440")
        assert "rank 0 -> rank 1 -> rank 0" in diag.message

    def test_eager_ring_does_not_deadlock(self):
        # The same pattern under the eager limit completes: the sends
        # buffer and return, so no cycle ever forms.
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            out = np.full(16, float(comm.rank))
            inbox = np.empty(16)
            comm.send(out, dest=right, tag=1)
            comm.recv(inbox, source=left, tag=1)
            return inbox[0]

        rep = report_of(fn, nprocs=3)
        assert rep.clean, rep.format_text()

    def test_wait_on_finished_rank(self):
        def fn(comm):
            if comm.rank == 1:
                inbox = np.empty(16)
                comm.recv(inbox, source=0, tag=2)  # rank 0 never sends

        start = time.monotonic()
        rep = report_of(fn, timeout=60.0)
        elapsed = time.monotonic() - start
        assert "RPD440" in rep.codes()
        assert elapsed < 10.0
        (diag,) = rep.by_code("RPD440")
        assert "already finished" in diag.message
