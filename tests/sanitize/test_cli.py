"""``repro-analyze sanitize`` CLI: dispatch, corpus coverage, exit codes."""

import json
import os

from repro.analyze.cli import main

HERE = os.path.dirname(__file__)
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))
FIXTURES = os.path.join(HERE, "fixtures")

#: Every seeded-bug fixture and the code it must produce.
CORPUS = {
    "buffer_race_isend.py": "RPD401",
    "recv_truncation.py": "RPD411",
    "signature_mismatch.py": "RPD410",
    "lying_packed_size.py": "RPD430",
    "leaked_request.py": "RPD420",
    "ring_deadlock.py": "RPD440",
}


def run_json(args, capsys):
    rc = main(["sanitize"] + args + ["--format", "json"])
    return rc, json.loads(capsys.readouterr().out)


class TestDispatch:
    def test_subcommand_reaches_sanitizer(self, capsys):
        rc = main(["sanitize"])
        assert rc == 2  # usage error from the sanitize parser, not analyze
        assert "no programs given" in capsys.readouterr().err

    def test_static_cli_untouched(self, capsys):
        rc = main(["--list-codes"])
        assert rc == 0
        assert "RPD440" in capsys.readouterr().out

    def test_missing_path(self, capsys):
        rc = main(["sanitize", os.path.join(FIXTURES, "no_such_file.py")])
        assert rc == 2


class TestSeededCorpus:
    def test_every_fixture_fires_its_code(self, capsys):
        rc, doc = run_json([FIXTURES, "--strict"], capsys)
        assert rc == 1
        fired = {}
        for f in doc["findings"]:
            fired.setdefault(os.path.basename(f["file"]), set()).add(
                f["code"])
        for fixture, code in CORPUS.items():
            assert code in fired.get(fixture, set()), (
                f"{fixture}: expected {code}, got {sorted(fired.get(fixture, []))}")

    def test_corpus_fails_without_strict_too(self, capsys):
        # Error-severity findings (races, mismatches, deadlock) gate the
        # default mode as well.
        rc = main(["sanitize", FIXTURES])
        capsys.readouterr()
        assert rc == 1


class TestCleanPrograms:
    def test_clean_example_exits_zero(self, capsys):
        rc, doc = run_json(
            [os.path.join(REPO, "examples", "quickstart.py"), "--strict"],
            capsys)
        assert rc == 0
        assert doc["summary"]["findings"] == 0
        assert doc["summary"]["aborted"] == []

    def test_entry_less_file_is_skipped(self, capsys):
        rc, doc = run_json(
            [os.path.join(REPO, "examples", "python_objects.py")], capsys)
        assert rc == 0
        assert doc["summary"]["programs"] == 0
        assert len(doc["summary"]["skipped"]) == 1

    def test_nprocs_override(self, capsys):
        rc, doc = run_json(
            [os.path.join(REPO, "examples", "quickstart.py"),
             "--nprocs", "2"], capsys)
        assert rc == 0
