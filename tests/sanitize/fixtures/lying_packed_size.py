"""Seeded bug: a custom datatype whose packed size depends on the local
buffer, so sender and receiver disagree on the wire footprint.

The sender packs 2 doubles (its query promises 16 bytes); the receiver's
buffer holds 3 doubles, so its query callback promises 24 bytes for the
same transfer.

Expected sanitizer finding: RPD430.
"""

import numpy as np

from repro.core import type_create_custom


def _dtype():
    def query_fn(state, buf, count):
        return 8 * len(buf)  # BUG: promises the *local* buffer's size

    def pack_fn(state, buf, count, offset, dst):
        raw = buf.view(np.uint8).reshape(-1)
        step = min(dst.shape[0], raw.shape[0] - offset)
        dst[:step] = raw[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        raw = buf.view(np.uint8).reshape(-1)
        raw[offset:offset + src.shape[0]] = src

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn, name="custom:lying-size")


def main(comm):
    dt = _dtype()
    if comm.rank == 0:
        comm.send(np.array([1.0, 2.0]), dest=1, tag=4, datatype=dt, count=1)
    else:
        buf = np.zeros(3)
        comm.recv(buf, source=0, tag=4, datatype=dt, count=1)
