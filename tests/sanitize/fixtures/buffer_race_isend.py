"""Seeded bug: the send buffer is overwritten while an isend is in flight.

Expected sanitizer finding: RPD401.
"""

import numpy as np


def main(comm):
    if comm.rank == 0:
        buf = np.arange(1024, dtype=np.float64)
        req = comm.isend(buf, dest=1, tag=1)
        buf[:] = -1.0  # BUG: reuses the buffer before the send completes
        req.wait()
    else:
        inbox = np.empty(1024)
        comm.recv(inbox, source=0, tag=1)
