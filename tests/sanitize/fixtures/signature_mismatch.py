"""Seeded bug: send and receive disagree on the scalar type sequence.

Both sides cover 32 bytes, so nothing is truncated — the bug is purely a
type-matching violation (doubles reinterpreted as ints).

Expected sanitizer finding: RPD410.
"""

import numpy as np


def main(comm):
    if comm.rank == 0:
        comm.send(np.arange(4, dtype=np.float64), dest=1, tag=3)
    else:
        buf = np.zeros(8, dtype=np.int32)  # BUG: typed as i4, sender sent f8
        comm.recv(buf, source=0, tag=3)
