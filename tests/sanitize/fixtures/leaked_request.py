"""Seeded bug: a nonblocking send whose request is never completed.

Expected sanitizer finding: RPD420.
"""

import numpy as np


def main(comm):
    if comm.rank == 0:
        buf = np.arange(256, dtype=np.float64)
        comm.isend(buf, dest=1, tag=5)  # BUG: request never waited on
    else:
        inbox = np.empty(256)
        comm.recv(inbox, source=0, tag=5)
