"""Seeded bug: the receive buffer is smaller than the incoming message.

Expected sanitizer finding: RPD411 (the oversized delivery also aborts
the receiving rank with a TruncationError).
"""

import numpy as np


def main(comm):
    if comm.rank == 0:
        comm.send(np.arange(16, dtype=np.float64), dest=1, tag=2)
    else:
        small = np.zeros(8)  # BUG: sender ships 16 doubles
        comm.recv(small, source=0, tag=2)
