"""Seeded bug: head-to-head blocking ring exchange over the eager limit.

Every rank blocks in a rendezvous send to its right neighbour before any
rank reaches its receive — the classic send/send cycle.

Expected sanitizer finding: RPD440 (job aborted in bounded time).
"""

import numpy as np

NPROCS = 3


def main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    outbox = np.full(8192, float(comm.rank))  # 64 KiB: forces rendezvous
    inbox = np.empty(8192)
    comm.send(outbox, dest=right, tag=6)  # BUG: all ranks send first
    comm.recv(inbox, source=left, tag=6)
