"""Acceptance: the analyze-corpus ring deadlock is caught in bounded time.

``tests/analyze/fixtures/programs/ring_deadlock.py`` is the static
linter's RPD304 fixture; run for real over the rendezvous threshold it
actually deadlocks, and the sanitizer must report RPD440 with the
wait-for cycle and a per-rank stack — long before the job timeout.
"""

import importlib.util
import os
import time

import numpy as np

from repro.errors import RuntimeAbort
from repro.mpi import run

FIXTURE = os.path.abspath(os.path.join(
    os.path.dirname(__file__), os.pardir, "analyze", "fixtures",
    "programs", "ring_deadlock.py"))


def _load_ring_step():
    spec = importlib.util.spec_from_file_location("_ring_deadlock", FIXTURE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.ring_step


class TestRingDeadlockAcceptance:
    def test_rpd440_with_cycle_and_stacks_in_bounded_time(self):
        ring_step = _load_ring_step()

        def fn(comm):
            outbox = np.full(8192, float(comm.rank))  # 64 KiB: rendezvous
            inbox = np.empty(8192)
            ring_step(comm, outbox, inbox)

        start = time.monotonic()
        try:
            run(fn, nprocs=3, sanitize=True, timeout=120.0)
            raise AssertionError("ring did not deadlock")
        except RuntimeAbort as exc:
            elapsed = time.monotonic() - start
            rep = exc.sanitizer_report
        # Bounded time: detection latency, not the 120 s job timeout.
        assert elapsed < 10.0, f"took {elapsed:.1f}s"
        assert rep is not None and rep.aborted
        (diag,) = rep.by_code("RPD440")
        msg = diag.message
        assert "rank 0 -> rank 1 -> rank 2 -> rank 0" in msg
        # Per-rank detail: every rank's blocking op, virtual-clock stamp,
        # and a stack that reaches the user's frame in the fixture.
        for r in range(3):
            assert f"rank {r}: send of 8192 x double" in msg
        assert "virtual t=" in msg
        assert "ring_deadlock.py" in msg and "in ring_step" in msg
        # Every blocked rank raised a DeadlockError, not a timeout.
        assert rep.failures
        assert all("Deadlock" in f for f in rep.failures.values())

    def test_sized_under_eager_limit_completes(self):
        ring_step = _load_ring_step()

        def fn(comm):
            outbox = np.full(8, float(comm.rank))  # eager: no deadlock
            inbox = np.empty(8)
            ring_step(comm, outbox, inbox)
            return float(inbox[0])

        result = run(fn, nprocs=3, sanitize=True, timeout=60.0)
        assert result.sanitizer_report.clean
        assert result.results == [2.0, 0.0, 1.0]
