"""The shipped workloads are sanitize-clean.

Every example program with a ``main(comm)`` entry and every DDTBench
registry workload (over each practicable transfer method) must run under
the sanitizer without a single finding — the same gate CI enforces with
``repro-analyze sanitize --strict``.
"""

import os

import pytest

from repro.ddtbench import WORKLOADS
from repro.sanitize.cli import run_ddtbench, run_program

EXAMPLES = os.path.abspath(os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples"))

EXAMPLE_FILES = sorted(f for f in os.listdir(EXAMPLES) if f.endswith(".py"))


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_sanitizes_clean(name):
    report = run_program(os.path.join(EXAMPLES, name), timeout=60.0)
    if report is None:
        pytest.skip(f"{name} has no main(comm) entry")
    assert report.clean, report.format_text()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_ddtbench_workload_sanitizes_clean(name):
    for report in run_ddtbench([name], timeout=60.0):
        assert report.clean, f"{report.program}:\n{report.format_text()}"
