"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Thread-spawning property tests are slow per example; keep budgets sane.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def assert_bytes_equal(a, b, msg: str = ""):
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    assert a.shape == b.shape, f"{msg}: shapes {a.shape} vs {b.shape}"
    if a.size and not (a == b).all():
        first = int(np.nonzero(a != b)[0][0])
        raise AssertionError(f"{msg}: first difference at byte {first}: "
                             f"{a[first]} vs {b[first]}")
