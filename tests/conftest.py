"""Shared fixtures and hypothesis strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Thread-spawning property tests are slow per example; keep budgets sane.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def require_transport_capability(*capabilities: str) -> None:
    """Skip when the active transport (REPRO_TRANSPORT) lacks a capability.

    The conformance matrix re-runs the tier-1 suites per backend; tests
    that exercise inproc-only semantics — a send-cancel that must succeed
    (remote backends conservatively refuse once bytes may be in flight),
    or the data-race sanitizer (unavailable across process boundaries) —
    skip with a reason instead of failing."""
    from repro.ucp.transport import create_transport, resolve_transport_name

    name = resolve_transport_name(None)
    transport = create_transport(name)
    for cap in capabilities:
        if not getattr(transport, f"supports_{cap}", False):
            pytest.skip(f"transport '{name}' does not support {cap}")


def assert_bytes_equal(a, b, msg: str = ""):
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    assert a.shape == b.shape, f"{msg}: shapes {a.shape} vs {b.shape}"
    if a.size and not (a == b).all():
        first = int(np.nonzero(a != b)[0][0])
        raise AssertionError(f"{msg}: first difference at byte {first}: "
                             f"{a[first]} vs {b[first]}")
