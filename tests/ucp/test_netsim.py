"""Cost model and virtual clock tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ucp.netsim import DEFAULT_PARAMS, CostModel, LinkParams, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        c = VirtualClock()
        assert c.advance(1.5) == 1.5
        assert c.advance(0.5) == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_merge_forward_only(self):
        c = VirtualClock(10.0)
        c.merge(5.0)
        assert c.now == 10.0
        c.merge(12.0)
        assert c.now == 12.0


class TestLinkParams:
    def test_overrides(self):
        p = DEFAULT_PARAMS.with_overrides(latency=9e-6)
        assert p.latency == 9e-6
        assert p.bandwidth == DEFAULT_PARAMS.bandwidth
        assert DEFAULT_PARAMS.latency != 9e-6  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.latency = 0


class TestCostModel:
    def setup_method(self):
        self.m = CostModel()

    def test_wire_time_linear(self):
        assert self.m.wire_time(0) == 0
        assert self.m.wire_time(12_500_000_000) == pytest.approx(1.0)

    def test_eager_below_rndv_at_tiny_sizes(self):
        assert self.m.eager_time(64) < self.m.rndv_time(64)

    def test_rndv_wins_at_huge_sizes(self):
        n = 64 * 1024 * 1024
        assert self.m.rndv_time(n) < self.m.eager_time(n)

    def test_contig_switches_at_eager_limit(self):
        lim = self.m.params.eager_limit
        assert self.m.contig_time(lim) == self.m.eager_time(lim)
        assert self.m.contig_time(lim + 1) == self.m.rndv_time(lim + 1)

    def test_dip_exists_at_switch(self):
        """Just past the eager limit the protocol switch hurts (Fig. 7)."""
        lim = self.m.params.eager_limit
        assert self.m.contig_time(lim + 1) > self.m.contig_time(lim)

    def test_iov_charges_per_entry(self):
        one = self.m.iov_time([4096])
        many = self.m.iov_time([1] * 4096)
        assert many > one

    def test_iov_smooth_no_threshold(self):
        """iov time is continuous in total bytes (no protocol switch)."""
        lim = self.m.params.eager_limit
        below = self.m.iov_time([lim])
        above = self.m.iov_time([lim + 1])
        assert above - below < 1e-9

    def test_typemap_slower_than_copy_for_gapped(self):
        # 1000 elements of a 2-block 20-byte struct.
        walk = self.m.typemap_pack_time(2000, 20_000)
        assert walk > 20_000 / self.m.params.eager_copy_bandwidth

    def test_alloc_has_base_cost(self):
        assert self.m.alloc_time(0) == pytest.approx(self.m.params.alloc_base)

    def test_pickle_time(self):
        assert self.m.pickle_time(0) == pytest.approx(self.m.params.pickle_base)

    def test_callback_and_frag_linear(self):
        assert self.m.callback_time(10) == pytest.approx(
            10 * self.m.params.callback_overhead)
        assert self.m.frag_overhead(4) == pytest.approx(
            4 * self.m.params.per_frag_overhead)


class TestMonotonicity:
    """Cost functions must be monotone in bytes (sanity of every figure)."""

    @given(st.integers(0, 1 << 28), st.integers(0, 1 << 20))
    def test_eager_monotone(self, n, d):
        m = CostModel()
        assert m.eager_time(n + d) >= m.eager_time(n)

    @given(st.integers(0, 1 << 28), st.integers(0, 1 << 20))
    def test_rndv_monotone(self, n, d):
        m = CostModel()
        assert m.rndv_time(n + d) >= m.rndv_time(n)

    @given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=50))
    def test_iov_bounded_by_parts(self, sizes):
        m = CostModel()
        whole = m.iov_time(sizes)
        assert whole >= m.wire_time(sum(sizes))

    @given(st.integers(1, 1 << 24))
    def test_protocol_choice_never_catastrophic(self, n):
        """contig_time is within 3x of the better protocol."""
        m = CostModel()
        best = min(m.eager_time(n), m.rndv_time(n))
        assert m.contig_time(n) <= 3 * best
