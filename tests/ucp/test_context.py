"""Transport end-to-end tests: workers, endpoints, delivery, timing."""

import threading

import numpy as np
import pytest

from repro.errors import TransportError, TruncationError
from repro.ucp import (ContigData, GenericData, HandlerData, IovData,
                       UcpConfig, UcpContext, pack_tag)
from repro.ucp.netsim import LinkParams


def make_pair(params=None):
    config = UcpConfig(params=params) if params else UcpConfig()
    fab = UcpContext(config).create_fabric(2)
    return fab.workers


def xfer(send_fn, recv_fn, timeout=10):
    """Run sender and receiver concurrently; re-raise failures."""
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as e:  # pragma: no cover - surfaced below
                errors.append(e)
        return run

    ts = [threading.Thread(target=wrap(send_fn), daemon=True),
          threading.Thread(target=wrap(recv_fn), daemon=True)]
    for t in ts:
        t.start()
    for t in ts:
        t.join(timeout=timeout)
        assert not t.is_alive(), "transfer deadlocked"
    if errors:
        raise errors[0]


TAG = pack_tag(0, 0, 1)


class TestContigTransfer:
    @pytest.mark.parametrize("n", [0, 1, 100, 32 * 1024, 100_000])
    def test_roundtrip(self, n):
        w0, w1 = make_pair()
        src = np.arange(n, dtype=np.uint8) if n else np.zeros(0, np.uint8)
        dst = np.zeros(n, np.uint8)

        xfer(lambda: w0.endpoint(1).tag_send(TAG, ContigData(src)).wait(),
             lambda: w1.tag_recv(TAG, ContigData(dst, writable=True)).wait())
        assert np.array_equal(src, dst)

    def test_eager_sender_can_reuse_buffer(self):
        w0, w1 = make_pair()
        src = np.full(64, 7, np.uint8)
        req = w0.endpoint(1).tag_send(TAG, ContigData(src))
        assert req.test()  # eager completes locally
        src[:] = 99  # reuse before the receiver shows up
        dst = np.zeros(64, np.uint8)
        w1.tag_recv(TAG, ContigData(dst, writable=True)).wait()
        assert (dst == 7).all()  # the wire copy was taken at injection

    def test_rndv_send_blocks_until_receiver(self):
        w0, w1 = make_pair()
        n = 100_000  # > eager limit
        src = np.full(n, 3, np.uint8)
        req = w0.endpoint(1).tag_send(TAG, ContigData(src))
        assert not req.test()
        dst = np.zeros(n, np.uint8)
        w1.tag_recv(TAG, ContigData(dst, writable=True)).wait()
        req.wait()
        assert req.test()
        assert (dst == 3).all()

    def test_rndv_wait_timeout(self):
        w0, _ = make_pair()
        req = w0.endpoint(1).tag_send(TAG, ContigData(np.zeros(100_000, np.uint8)))
        with pytest.raises(TransportError):
            req.wait(timeout=0.05)

    def test_truncation_detected(self):
        w0, w1 = make_pair()
        src = np.zeros(100, np.uint8)
        dst = np.zeros(50, np.uint8)
        with pytest.raises(TruncationError):
            xfer(lambda: w0.endpoint(1).tag_send(TAG, ContigData(src)).wait(),
                 lambda: w1.tag_recv(TAG, ContigData(dst, writable=True)).wait())

    def test_shorter_message_into_larger_buffer_ok(self):
        w0, w1 = make_pair()
        src = np.full(10, 5, np.uint8)
        dst = np.zeros(100, np.uint8)
        xfer(lambda: w0.endpoint(1).tag_send(TAG, ContigData(src)).wait(),
             lambda: w1.tag_recv(TAG, ContigData(dst, writable=True)).wait())
        assert (dst[:10] == 5).all() and (dst[10:] == 0).all()

    def test_readonly_recv_rejected(self):
        _, w1 = make_pair()
        buf = np.zeros(8, np.uint8)
        buf.flags.writeable = False
        with pytest.raises(TransportError):
            ContigData(buf, writable=True)


class TestIovTransfer:
    def test_scatter_gather(self):
        w0, w1 = make_pair()
        parts = [np.arange(n, dtype=np.uint8) for n in (5, 0, 17, 256)]
        dsts = [np.zeros(n, np.uint8) for n in (5, 0, 17, 256)]
        xfer(lambda: w0.endpoint(1).tag_send(
                TAG, IovData(parts, packed_entries=1)).wait(),
             lambda: w1.tag_recv(TAG, IovData(dsts, writable=True)).wait())
        for p, d in zip(parts, dsts):
            assert np.array_equal(p, d)

    def test_entry_count_mismatch(self):
        w0, w1 = make_pair()
        with pytest.raises(TruncationError):
            xfer(lambda: w0.endpoint(1).tag_send(
                    TAG, IovData([np.zeros(4, np.uint8)] * 2)).wait(),
                 lambda: w1.tag_recv(
                    TAG, IovData([np.zeros(4, np.uint8)], writable=True)).wait())

    def test_entry_too_long(self):
        w0, w1 = make_pair()
        with pytest.raises(TruncationError):
            xfer(lambda: w0.endpoint(1).tag_send(
                    TAG, IovData([np.zeros(8, np.uint8)])).wait(),
                 lambda: w1.tag_recv(
                    TAG, IovData([np.zeros(4, np.uint8)], writable=True)).wait())

    def test_header_reports_framing(self):
        w0, w1 = make_pair()
        parts = [np.zeros(3, np.uint8), np.zeros(9, np.uint8)]
        info_holder = []

        def recv():
            dsts = [np.zeros(3, np.uint8), np.zeros(9, np.uint8)]
            info_holder.append(
                w1.tag_recv(TAG, IovData(dsts, writable=True)).wait())

        xfer(lambda: w0.endpoint(1).tag_send(
                TAG, IovData(parts, packed_entries=1)).wait(), recv)
        info = info_holder[0]
        assert info.entry_lengths == (3, 9)
        assert info.packed_entries == 1
        assert info.nbytes == 12

    def test_bad_packed_entries(self):
        with pytest.raises(TransportError):
            IovData([np.zeros(1, np.uint8)], packed_entries=2)


class TestGenericTransfer:
    def test_pack_pipeline(self):
        w0, w1 = make_pair()
        payload = np.arange(50_000, dtype=np.uint8)
        out = np.zeros_like(payload)
        offsets = []

        def packfn(off, dst):
            n = min(dst.shape[0], payload.shape[0] - off)
            dst[:n] = payload[off:off + n]
            return int(n)

        def unpackfn(off, src):
            offsets.append(off)
            out[off:off + src.shape[0]] = src

        xfer(lambda: w0.endpoint(1).tag_send(
                TAG, GenericData(payload.shape[0], pack=packfn)).wait(),
             lambda: w1.tag_recv(
                TAG, GenericData(payload.shape[0], unpack=unpackfn)).wait())
        assert np.array_equal(out, payload)
        assert offsets == sorted(offsets)
        assert len(offsets) > 1  # actually fragmented

    def test_send_only_generic_cannot_recv(self):
        _, w1 = make_pair()
        g = GenericData(10, pack=lambda o, d: len(d))
        req = w1.tag_recv(TAG, g)
        w1.endpoint(1)  # no-op, just exercise
        # deliver directly
        from repro.ucp.wire import WireHeader, WireMessage
        msg = WireMessage(WireHeader(tag=TAG, source=0, total_bytes=0),
                          [], 0.0, 0.0, False, 0.0)
        with pytest.raises(TransportError):
            w1.deliver(msg, g)

    def test_needs_some_callback(self):
        with pytest.raises(TransportError):
            GenericData(10)


class TestHandlerTransfer:
    def test_handler_runs_on_receiver(self):
        w0, w1 = make_pair()
        seen = {}

        def handler(msg):
            seen["chunks"] = [c.copy() for c in msg.chunks]
            seen["thread"] = threading.current_thread().name
            return msg.header.total_bytes

        def recv():
            threading.current_thread().name = "receiver-thread"
            w1.tag_recv(TAG, HandlerData(handler)).wait()

        xfer(lambda: w0.endpoint(1).tag_send(
                TAG, IovData([np.full(4, 9, np.uint8)])).wait(), recv)
        assert (seen["chunks"][0] == 9).all()
        assert seen["thread"] == "receiver-thread"

    def test_handler_max_bytes(self):
        w0, w1 = make_pair()
        with pytest.raises(TruncationError):
            xfer(lambda: w0.endpoint(1).tag_send(
                    TAG, ContigData(np.zeros(100, np.uint8))).wait(),
                 lambda: w1.tag_recv(
                    TAG, HandlerData(lambda m: 0, max_bytes=50)).wait())


class TestVirtualTime:
    def test_clocks_advance(self):
        w0, w1 = make_pair()
        src, dst = np.zeros(1000, np.uint8), np.zeros(1000, np.uint8)
        xfer(lambda: w0.endpoint(1).tag_send(TAG, ContigData(src)).wait(),
             lambda: w1.tag_recv(TAG, ContigData(dst, writable=True)).wait())
        assert w0.clock.now > 0
        assert w1.clock.now > w0.clock.now * 0.5  # receiver saw delivery

    def test_receiver_not_before_arrival(self):
        params = LinkParams(latency=1e-3)  # huge latency
        w0, w1 = make_pair(params)
        src, dst = np.zeros(8, np.uint8), np.zeros(8, np.uint8)
        xfer(lambda: w0.endpoint(1).tag_send(TAG, ContigData(src)).wait(),
             lambda: w1.tag_recv(TAG, ContigData(dst, writable=True)).wait())
        assert w1.clock.now >= 1e-3

    def test_probe_charges_time(self):
        _, w1 = make_pair()
        before = w1.clock.now
        w1.tag_probe(TAG)
        assert w1.clock.now > before


class TestMemoryTracker:
    def test_allocation_accounting(self):
        w0, _ = make_pair()
        buf = w0.memory.allocate(1000, w0.clock, w0.model)
        snap = w0.memory.snapshot()
        assert snap["live_bytes"] == 1000
        assert snap["peak_bytes"] == 1000
        assert snap["allocation_count"] == 1
        w0.memory.release(buf)
        assert w0.memory.snapshot()["live_bytes"] == 0

    def test_peak_tracks_maximum(self):
        w0, _ = make_pair()
        a = w0.memory.allocate(100)
        b = w0.memory.allocate(200)
        w0.memory.release(a)
        c = w0.memory.allocate(50)
        assert w0.memory.snapshot()["peak_bytes"] == 300

    def test_negative_alloc_rejected(self):
        w0, _ = make_pair()
        with pytest.raises(ValueError):
            w0.memory.allocate(-1)
