"""Protocol planning tests: selection and cost-split consistency."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TransportError
from repro.ucp.dtypes import ContigData, GenericData, IovData
from repro.ucp.netsim import CostModel
from repro.ucp.protocols import plan_send

M = CostModel()


def contig(n):
    return ContigData(np.zeros(n, np.uint8))


class TestSelection:
    def test_small_contig_is_eager(self):
        plan = plan_send(contig(64), M)
        assert plan.protocol == "eager"
        assert not plan.rndv
        assert plan.eager_copy

    def test_large_contig_is_rndv(self):
        plan = plan_send(contig(M.params.eager_limit + 1), M)
        assert plan.protocol == "rndv"
        assert plan.rndv
        assert not plan.eager_copy

    def test_boundary_is_eager(self):
        assert plan_send(contig(M.params.eager_limit), M).protocol == "eager"

    def test_iov(self):
        data = IovData([np.zeros(8, np.uint8), np.zeros(16, np.uint8)])
        plan = plan_send(data, M)
        assert plan.protocol == "iov"
        assert plan.rndv and not plan.eager_copy

    def test_generic(self):
        g = GenericData(100, pack=lambda off, dst: len(dst))
        plan = plan_send(g, M, frag_count=3)
        assert plan.protocol == "generic"
        assert plan.eager_copy

    def test_unknown_descriptor_rejected(self):
        with pytest.raises(TransportError):
            plan_send(object(), M)


class TestBoundaryAgreement:
    """Eager/rendezvous cutoff audit: the live planner, the shared
    transition table and the cost model must agree at the exact boundary
    (and everywhere else) — the protocol model checker verifies the same
    table, so disagreement here would let model and implementation drift."""

    def test_exact_cutoff(self):
        from repro.ucp.transitions import message_is_eager, select_protocol
        limit = M.params.eager_limit
        for n, proto in ((limit - 1, "eager"), (limit, "eager"),
                         (limit + 1, "rndv")):
            assert plan_send(contig(n), M).protocol == proto
            assert select_protocol("contig", n, limit) == proto
            assert message_is_eager(n, limit) == (proto == "eager")

    @given(st.integers(0, 1 << 22))
    def test_planner_follows_shared_table(self, n):
        from repro.ucp.transitions import select_protocol
        assert plan_send(contig(n), M).protocol == select_protocol(
            "contig", n, M.params.eager_limit)

    @given(st.integers(0, 1 << 22))
    def test_cost_model_follows_shared_table(self, n):
        from repro.ucp.transitions import message_is_eager
        want = M.eager_time(n) if message_is_eager(n, M.params.eager_limit) \
            else M.rndv_time(n)
        assert M.contig_time(n) == want


class TestCostSplitConsistency:
    """sender + wire + recv must equal the aggregate model times, so the
    engine and the bench analytics can never disagree."""

    @given(st.integers(0, 1 << 22))
    def test_contig(self, n):
        plan = plan_send(contig(n), M)
        assert plan.total_one_way == pytest.approx(M.contig_time(n), rel=1e-12)

    @given(st.lists(st.integers(1, 1 << 12), min_size=1, max_size=64))
    def test_iov(self, sizes):
        data = IovData([np.zeros(s, np.uint8) for s in sizes])
        plan = plan_send(data, M)
        assert plan.total_one_way == pytest.approx(M.iov_time(sizes), rel=1e-12)

    @given(st.integers(0, 1 << 16))
    def test_all_components_nonnegative(self, n):
        plan = plan_send(contig(n), M)
        assert plan.sender_cost >= 0
        assert plan.wire_time >= 0
        assert plan.recv_cost >= 0
