"""Wire format tests."""

import numpy as np
import pytest

from repro.ucp.wire import WireHeader, WireMessage, copy_chunks


def make_msg(rndv=False, send_ready=1.0, wire_time=0.5):
    hdr = WireHeader(tag=1, source=0, total_bytes=4, entry_lengths=(4,))
    return WireMessage(hdr, [np.zeros(4, np.uint8)], send_ready=send_ready,
                       wire_time=wire_time, rndv=rndv, recv_cost=0.0)


class TestWireHeader:
    def test_msg_ids_unique_and_increasing(self):
        a, b = WireHeader(1, 0, 0), WireHeader(1, 0, 0)
        assert b.msg_id > a.msg_id

    def test_defaults(self):
        h = WireHeader(tag=5, source=2, total_bytes=10)
        assert h.entry_lengths == ()
        assert h.packed_entries == 0
        assert h.protocol == "eager"


class TestDeliveryTime:
    def test_eager_ignores_receiver(self):
        m = make_msg(rndv=False)
        assert m.delivery_time(recv_ready=0.0) == pytest.approx(1.5)
        assert m.delivery_time(recv_ready=100.0) == pytest.approx(1.5)

    def test_rndv_waits_for_both_sides(self):
        m = make_msg(rndv=True)
        assert m.delivery_time(recv_ready=0.0) == pytest.approx(1.5)
        assert m.delivery_time(recv_ready=3.0) == pytest.approx(3.5)


class TestCompletion:
    def test_mark_complete(self):
        m = make_msg()
        assert not m.completed.is_set()
        m.mark_complete(2.0)
        assert m.completed.is_set()
        assert m.completion_time == 2.0
        assert m.error is None

    def test_mark_failed_releases_with_error(self):
        m = make_msg(rndv=True)
        exc = RuntimeError("boom")
        m.mark_failed(2.0, exc)
        assert m.completed.is_set()
        assert m.error is exc


class TestCopyChunks:
    def test_copies_are_private(self):
        src = np.full(8, 1, np.uint8)
        (copy,) = copy_chunks([src])
        src[:] = 2
        assert (copy == 1).all()

    def test_empty(self):
        assert copy_chunks([]) == []
