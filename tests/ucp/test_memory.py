"""MemoryTracker unit tests."""

import threading

import numpy as np
import pytest

from repro.ucp.memory import MemoryTracker
from repro.ucp.netsim import CostModel, VirtualClock


class TestMemoryTracker:
    def test_allocate_returns_zeroed_buffer(self):
        t = MemoryTracker()
        buf = t.allocate(64)
        assert buf.shape == (64,)
        assert (buf == 0).all()

    def test_charges_clock_when_given(self):
        t = MemoryTracker()
        clock = VirtualClock()
        model = CostModel()
        t.allocate(1 << 20, clock, model)
        assert clock.now == pytest.approx(model.alloc_time(1 << 20))

    def test_no_charge_without_clock(self):
        t = MemoryTracker()
        t.allocate(1024)  # must not raise

    def test_release_by_buffer_or_size(self):
        t = MemoryTracker()
        buf = t.allocate(100)
        t.allocate(50)
        t.release(buf)
        assert t.snapshot()["live_bytes"] == 50
        t.release(50)
        assert t.snapshot()["live_bytes"] == 0

    def test_release_never_negative(self):
        t = MemoryTracker()
        t.release(1000)
        assert t.snapshot()["live_bytes"] == 0

    def test_reset(self):
        t = MemoryTracker()
        t.allocate(10)
        t.reset()
        snap = t.snapshot()
        assert snap == {"live_bytes": 0, "peak_bytes": 0,
                        "total_allocated": 0, "allocation_count": 0}

    def test_thread_safety_of_counters(self):
        t = MemoryTracker()

        def worker():
            for _ in range(200):
                t.allocate(10)
                t.release(10)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        snap = t.snapshot()
        assert snap["live_bytes"] == 0
        assert snap["allocation_count"] == 1600
        assert snap["total_allocated"] == 16000
