"""MemoryTracker and BufferPool unit tests."""

import threading

import numpy as np
import pytest

from repro.ucp.memory import BufferPool, MemoryTracker
from repro.ucp.netsim import CostModel, VirtualClock


class TestMemoryTracker:
    def test_allocate_returns_zeroed_buffer(self):
        t = MemoryTracker()
        buf = t.allocate(64)
        assert buf.shape == (64,)
        assert (buf == 0).all()

    def test_charges_clock_when_given(self):
        t = MemoryTracker()
        clock = VirtualClock()
        model = CostModel()
        t.allocate(1 << 20, clock, model)
        assert clock.now == pytest.approx(model.alloc_time(1 << 20))

    def test_no_charge_without_clock(self):
        t = MemoryTracker()
        t.allocate(1024)  # must not raise

    def test_release_by_buffer_or_size(self):
        t = MemoryTracker()
        buf = t.allocate(100)
        t.allocate(50)
        t.release(buf)
        assert t.snapshot()["live_bytes"] == 50
        t.release(50)
        assert t.snapshot()["live_bytes"] == 0

    def test_release_never_negative(self):
        t = MemoryTracker()
        t.release(1000)
        assert t.snapshot()["live_bytes"] == 0

    def test_reset(self):
        t = MemoryTracker()
        t.allocate(10)
        t.recycle(t.acquire(10))
        t.reset()
        snap = t.snapshot()
        pool = snap.pop("pool")
        assert snap == {"live_bytes": 0, "peak_bytes": 0,
                        "total_allocated": 0, "allocation_count": 0}
        assert pool["hits"] == pool["misses"] == 0
        assert pool["pooled_buffers"] == pool["outstanding"] == 0

    def test_thread_safety_of_counters(self):
        t = MemoryTracker()

        def worker():
            for _ in range(200):
                t.allocate(10)
                t.release(10)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        snap = t.snapshot()
        assert snap["live_bytes"] == 0
        assert snap["allocation_count"] == 1600
        assert snap["total_allocated"] == 16000


class TestBufferPool:
    def test_class_size_rounding(self):
        assert BufferPool.class_size(1) == 64
        assert BufferPool.class_size(64) == 64
        assert BufferPool.class_size(65) == 128
        assert BufferPool.class_size(8192) == 8192
        assert BufferPool.class_size(8193) == 16384

    def test_acquire_release_reuses_backing(self):
        p = BufferPool()
        a = p.acquire(100)
        assert a.shape == (100,)
        root = a.base
        assert p.release(a)
        b = p.acquire(90)  # same 128-byte class
        assert b.base is root
        assert p.hits == 1 and p.misses == 1

    def test_zero_byte_acquire(self):
        p = BufferPool()
        assert p.acquire(0).shape == (0,)
        assert p.misses == 0  # not a pool transaction

    def test_release_resolves_view_chains(self):
        p = BufferPool()
        a = p.acquire(100)
        assert p.release(a[10:50][5:])  # view of a view
        assert p.snapshot()["pooled_buffers"] == 1

    def test_double_release_is_noop(self):
        p = BufferPool()
        a = p.acquire(32)
        assert p.release(a)
        assert not p.release(a)
        assert p.snapshot()["pooled_buffers"] == 1

    def test_foreign_release_is_noop(self):
        p = BufferPool()
        assert not p.release(np.zeros(64, dtype=np.uint8))
        assert not p.release("not a buffer")
        assert p.snapshot()["pooled_buffers"] == 0

    def test_per_class_cap_drops_excess(self):
        p = BufferPool(max_per_class=2)
        bufs = [p.acquire(64) for _ in range(4)]
        for b in bufs:
            assert p.release(b)
        snap = p.snapshot()
        assert snap["pooled_buffers"] == 2
        assert snap["dropped"] == 2

    def test_oversize_class_never_pooled(self):
        p = BufferPool(max_pooled_class=1024)
        a = p.acquire(4096)
        assert p.release(a)
        snap = p.snapshot()
        assert snap["pooled_buffers"] == 0
        assert snap["dropped"] == 1

    def test_outstanding_tracking(self):
        p = BufferPool()
        a = p.acquire(10)
        b = p.acquire(10)
        assert p.snapshot()["outstanding"] == 2
        p.release(a)
        assert p.snapshot()["outstanding"] == 1
        p.clear()
        assert p.snapshot()["outstanding"] == 0
        del b

    def test_acquire_charges_like_allocate(self):
        """Pool hits and misses must be invisible to the cost model."""
        t = MemoryTracker()
        clock, model = VirtualClock(), CostModel()
        t.recycle(t.acquire(1 << 20))  # prime the pool
        before = clock.now
        t.acquire(1 << 20, clock, model)  # pool hit
        assert clock.now - before == pytest.approx(model.alloc_time(1 << 20))
        snap = t.snapshot()
        assert snap["allocation_count"] == 2
        assert snap["total_allocated"] == 2 << 20
        assert snap["pool"]["hits"] == 1
