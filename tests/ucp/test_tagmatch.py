"""Tag-matching engine tests."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ucp.constants import TAG_FULL_MASK, match_mask, pack_tag
from repro.ucp.faults import FaultPlan
from repro.ucp.tagmatch import TagMatcher
from repro.ucp.wire import WireHeader, WireMessage


def msg(tag, src=0, nbytes=0):
    hdr = WireHeader(tag=tag, source=src, total_bytes=nbytes,
                     entry_lengths=(nbytes,) if nbytes else ())
    return WireMessage(hdr, [np.zeros(nbytes, np.uint8)] if nbytes else [],
                       send_ready=0.0, wire_time=0.0, rndv=False, recv_cost=0.0)


T = lambda t: pack_tag(0, 0, t)


class TestDepositThenPost:
    def test_unexpected_claimed(self):
        m = TagMatcher()
        m.deposit(msg(T(5)))
        posted = m.post(T(5), TAG_FULL_MASK)
        assert posted.matched.is_set()
        assert posted.msg.header.tag == T(5)

    def test_fifo_per_tag(self):
        m = TagMatcher()
        a, b = msg(T(5), nbytes=1), msg(T(5), nbytes=2)
        m.deposit(a)
        m.deposit(b)
        assert m.post(T(5), TAG_FULL_MASK).msg is a
        assert m.post(T(5), TAG_FULL_MASK).msg is b

    def test_non_matching_skipped(self):
        m = TagMatcher()
        m.deposit(msg(T(1)))
        m.deposit(msg(T(2)))
        assert m.post(T(2), TAG_FULL_MASK).msg.header.tag == T(2)

    def test_wildcard_source(self):
        m = TagMatcher()
        m.deposit(msg(pack_tag(0, 7, 5), src=7))
        posted = m.post(pack_tag(0, 0, 5), match_mask(True, False))
        assert posted.matched.is_set()
        assert posted.msg.header.source == 7


class TestPostThenDeposit:
    def test_posted_matched_by_deposit(self):
        m = TagMatcher()
        posted = m.post(T(9), TAG_FULL_MASK)
        assert not posted.matched.is_set()
        m.deposit(msg(T(9)))
        assert posted.matched.is_set()

    def test_posted_fifo(self):
        m = TagMatcher()
        p1 = m.post(T(9), TAG_FULL_MASK)
        p2 = m.post(T(9), TAG_FULL_MASK)
        m.deposit(msg(T(9), nbytes=1))
        assert p1.matched.is_set() and not p2.matched.is_set()

    def test_unmatched_deposit_queued(self):
        m = TagMatcher()
        m.post(T(1), TAG_FULL_MASK)
        m.deposit(msg(T(2)))
        assert m.pending_counts() == (1, 1)

    def test_cancel(self):
        m = TagMatcher()
        p = m.post(T(1), TAG_FULL_MASK)
        assert m.cancel(p)
        m.deposit(msg(T(1)))
        assert not p.matched.is_set()
        assert not m.cancel(p)  # already removed


class TestProbe:
    def test_probe_peeks(self):
        m = TagMatcher()
        m.deposit(msg(T(3), nbytes=10))
        assert m.probe(T(3), TAG_FULL_MASK).header.total_bytes == 10
        # Still matchable.
        assert m.post(T(3), TAG_FULL_MASK).matched.is_set()

    def test_mprobe_removes(self):
        m = TagMatcher()
        m.deposit(msg(T(3)))
        assert m.probe(T(3), TAG_FULL_MASK, remove=True) is not None
        assert m.probe(T(3), TAG_FULL_MASK) is None

    def test_probe_miss(self):
        assert TagMatcher().probe(T(3), TAG_FULL_MASK) is None

    def test_wait_probe_blocks_until_deposit(self):
        m = TagMatcher()
        got = []

        def prober():
            got.append(m.wait_probe(T(4), TAG_FULL_MASK))

        t = threading.Thread(target=prober)
        t.start()
        m.deposit(msg(T(4), nbytes=6))
        t.join(timeout=5)
        assert not t.is_alive()
        assert got[0].header.total_bytes == 6

    def test_wait_probe_timeout(self):
        m = TagMatcher()
        assert m.wait_probe(T(4), TAG_FULL_MASK, timeout=0.05) is None


def reordered_deposit_order(plan, src, dst, count):
    """Deposit order of ``count`` same-channel messages under the fault
    injector's hold-one reorder semantics, derived purely from the plan's
    seeded draws (mirrors FaultInjector._transmit_raw + flush_rank)."""
    order, held = [], None
    for seq in range(count):
        if plan.message_fates(src, dst, seq)["reorder"] and held is None:
            held = seq
            continue
        order.append(seq)
        if held is not None:
            order.append(held)
            held = None
    if held is not None:
        order.append(held)  # rank-finish flush
    return order


class TestWildcardFifoProperty:
    """MPI non-overtaking for wildcard receives: among the messages of one
    (source, tag, comm) channel, an ANY_SOURCE match must claim them in
    arrival order — under any arrival interleaving the seeded fault plan's
    reorder machinery can produce."""

    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(0, 2 ** 16), nmsgs=st.integers(2, 6),
           nsrcs=st.integers(2, 3))
    def test_per_source_fifo_under_seeded_reorder(self, seed, nmsgs, nsrcs):
        plan = FaultPlan(seed=seed, reorder=0.5)
        m = TagMatcher()
        # Interleave the channels' (independently reordered) deposits.
        arrival = {src: reordered_deposit_order(plan, src, 0, nmsgs)
                   for src in range(nsrcs)}
        deposited = {src: [] for src in range(nsrcs)}
        for i in range(nmsgs):
            for src in range(nsrcs):
                seq = arrival[src][i]
                m.deposit(msg(pack_tag(0, src, 1), src=src, nbytes=seq + 1))
                deposited[src].append(seq)
        claimed = {src: [] for src in range(nsrcs)}
        for _ in range(nmsgs * nsrcs):
            p = m.post(pack_tag(0, 0, 1), match_mask(True, False))
            assert p.matched.is_set()
            hdr = p.msg.header
            claimed[hdr.source].append(hdr.total_bytes - 1)
        for src in range(nsrcs):
            assert claimed[src] == deposited[src]

    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(0, 2 ** 16))
    def test_held_message_never_lost(self, seed):
        plan = FaultPlan(seed=seed, reorder=0.9)
        order = reordered_deposit_order(plan, 0, 1, 5)
        assert sorted(order) == list(range(5))


class TestConcurrency:
    def test_many_senders_one_receiver(self):
        m = TagMatcher()
        n = 50
        received = []

        def receiver():
            for _ in range(n):
                p = m.post(pack_tag(0, 0, 1), match_mask(True, False))
                p.matched.wait(5)
                received.append(p.msg.header.source)

        def sender(src):
            m.deposit(msg(pack_tag(0, src, 1), src=src))

        rt = threading.Thread(target=receiver)
        rt.start()
        senders = [threading.Thread(target=sender, args=(i,)) for i in range(n)]
        for s in senders:
            s.start()
        for s in senders:
            s.join()
        rt.join(timeout=10)
        assert not rt.is_alive()
        assert sorted(received) == list(range(n))
