"""Thread stress: the fabric's shared state under 8+ real threads.

Satellite of the RPD8xx race audit: every class the static analyzer
classifies as lock-guarded shared state is hammered here from many
threads at once, asserting the invariants a lost update or a torn
check-then-act would break — pool accounting, matcher queue balance,
plan-cache statistics, msg-id uniqueness.  A seeded fault plan drives
the full fabric so the faults channel tables see the same contention.
"""

import threading

import numpy as np
import pytest

from repro.core import FLOAT64, typecache, vector
from repro.mpi import run
from repro.ucp.memory import BufferPool, MemoryTracker
from repro.ucp.tagmatch import TagMatcher
from repro.ucp.wire import WireHeader, WireMessage, _MsgIdAllocator

NTHREADS = 8
ITERS = 250


def hammer(fn, nthreads=NTHREADS):
    """Run ``fn(thread_index)`` on ``nthreads`` threads, gate-released
    together; re-raise the first failure on the calling thread."""
    barrier = threading.Barrier(nthreads)
    errors = []

    def runner(i):
        try:
            barrier.wait()
            fn(i)
        except BaseException as exc:   # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,),
                                name=f"stress-{i}") for i in range(nthreads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestBufferPool:
    def test_acquire_release_accounting(self):
        pool = BufferPool()

        def worker(i):
            rng = np.random.default_rng(i)
            for _ in range(ITERS):
                n = int(rng.integers(1, 8192))
                buf = pool.acquire(n)
                assert buf.shape[0] == n
                buf[:1] = i  # touch: pooled buffers come back dirty
                assert pool.release(buf)

        hammer(worker)
        snap = pool.snapshot()
        total = NTHREADS * ITERS
        # Lost updates on hits/misses/returned would break these exactly.
        assert snap["hits"] + snap["misses"] == total
        assert snap["returned"] == total
        assert snap["outstanding"] == 0

    def test_double_release_is_counted_once(self):
        pool = BufferPool()
        bufs = [pool.acquire(256) for _ in range(NTHREADS)]

        def worker(i):
            # Everyone releases every buffer; only one release per buffer
            # may win (the outstanding set is the arbiter).
            for buf in bufs:
                pool.release(buf)

        hammer(worker)
        snap = pool.snapshot()
        assert snap["returned"] == NTHREADS
        assert snap["outstanding"] == 0


class TestMemoryTracker:
    def test_acquire_recycle_balances(self):
        tracker = MemoryTracker()

        def worker(i):
            rng = np.random.default_rng(100 + i)
            for _ in range(ITERS):
                n = int(rng.integers(1, 4096))
                buf = tracker.acquire(n)
                tracker.recycle(buf)

        hammer(worker)
        snap = tracker.snapshot()
        assert snap["live_bytes"] == 0
        assert snap["allocation_count"] == NTHREADS * ITERS
        assert snap["pool"]["outstanding"] == 0


class TestTagMatcher:
    def test_wildcard_matching_under_contention(self):
        matcher = TagMatcher()
        per_thread = 50
        nsenders = NTHREADS // 2
        received = []
        rlock = threading.Lock()

        def make_msg(sender, seq):
            hdr = WireHeader(tag=(sender << 8) | seq, source=sender,
                             total_bytes=8, entry_lengths=(8,))
            return WireMessage(hdr, [np.zeros(8, np.uint8)],
                               send_ready=0.0, wire_time=0.0, rndv=False,
                               recv_cost=0.0)

        def worker(i):
            if i < nsenders:
                for seq in range(per_thread):
                    matcher.deposit(make_msg(i, seq))
            else:
                got = []
                for _ in range(per_thread):
                    posted = matcher.post(0, 0)   # full wildcard
                    assert posted.matched.wait(timeout=30), \
                        "posted receive never matched"
                    got.append(posted.msg.header.msg_id)
                with rlock:
                    received.extend(got)

        hammer(worker)
        assert matcher.pending_counts() == (0, 0)
        # Every deposited message was claimed by exactly one receiver.
        assert len(received) == nsenders * per_thread
        assert len(set(received)) == len(received)


class TestTypeCaches:
    def test_plan_cache_stats_consistent(self):
        dtype = vector(16, 1, 2, FLOAT64)   # non-contiguous: compiled plan
        typecache.clear_plan_cache()
        calls_per_thread = 200

        def worker(i):
            for k in range(calls_per_thread):
                plan = typecache.pack_plan(dtype, 1 if k % 2 else 64)
                assert plan is not None

        hammer(worker)
        info = typecache.plan_cache_info()
        total = NTHREADS * calls_per_thread
        # hits += 1 under the plan lock: off the lock this drifts.
        assert info["hits"] + info["misses"] == total
        assert info["contig_hits"] + info["compiled_hits"] == info["hits"]
        # Two count-classes of one typemap; duplicate compiles may race
        # benignly but never inflate the cache.
        assert info["size"] <= 2
        assert info["misses"] < total / 10

    def test_datatype_of_first_use_race(self):
        key = object()
        built = []

        def factory():
            built.append(1)
            return type("StressDt", (), {})()

        typecache.register_datatype(key, factory)
        results = []
        rlock = threading.Lock()

        def worker(i):
            dt = typecache.datatype_of(key)
            with rlock:
                results.append(dt)

        hammer(worker)
        # Duplicate builds are allowed (factories run outside the lock);
        # every caller must still observe the single inserted winner.
        assert len(built) >= 1
        assert len({id(dt) for dt in results}) == 1
        typecache.clear_datatype_cache()

    def test_msg_id_allocator_unique_under_contention(self):
        alloc = _MsgIdAllocator()
        issued = []
        rlock = threading.Lock()

        def worker(i):
            got = [alloc.allocate() for _ in range(500)]
            with rlock:
                issued.extend(got)

        hammer(worker)
        assert len(issued) == NTHREADS * 500
        assert len(set(issued)) == len(issued), "duplicate msg ids issued"


class TestFabricUnderFaults:
    def test_ring_exchange_with_seeded_faults(self):
        iters = 3
        n = 512

        def main(comm):
            data = np.full(n, float(comm.rank), dtype=np.float64)
            out = np.empty(n, dtype=np.float64)
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            for it in range(iters):
                req = comm.isend(data, dest=right, tag=it)
                comm.recv(out, tag=it)      # wildcard source
                req.wait()
                assert np.all(out == float(left))
            comm.barrier()

        res = run(main, nprocs=NTHREADS, timeout=120,
                  faults={"seed": 7, "drop": 0.1, "duplicate": 0.1,
                          "reorder": 0.25},
                  reliability=True)
        assert res.crashed == []
        assert all(c > 0 for c in res.clocks)
