"""Tag packing/masking tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ucp.constants import (TAG_FULL_MASK, match_mask, pack_tag,
                                 unpack_tag)


class TestPackTag:
    def test_roundtrip(self):
        t = pack_tag(3, 17, 12345)
        assert unpack_tag(t) == (3, 17, 12345)

    def test_zero(self):
        assert unpack_tag(pack_tag(0, 0, 0)) == (0, 0, 0)

    def test_ranges_enforced(self):
        with pytest.raises(ValueError):
            pack_tag(0, 0, 1 << 32)
        with pytest.raises(ValueError):
            pack_tag(0, 1 << 16, 0)
        with pytest.raises(ValueError):
            pack_tag(1 << 16, 0, 0)
        with pytest.raises(ValueError):
            pack_tag(0, 0, -1)

    @given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1),
           st.integers(0, (1 << 32) - 1))
    def test_roundtrip_property(self, comm, src, tag):
        assert unpack_tag(pack_tag(comm, src, tag)) == (comm, src, tag)

    @given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 16) - 1),
           st.integers(0, (1 << 32) - 1))
    def test_fits_in_64_bits(self, comm, src, tag):
        assert 0 <= pack_tag(comm, src, tag) <= TAG_FULL_MASK


class TestMatchMask:
    def test_full(self):
        assert match_mask(False, False) == TAG_FULL_MASK

    @given(st.integers(0, 15), st.integers(0, 99), st.integers(0, 99),
           st.integers(0, 999), st.integers(0, 999))
    def test_any_source_ignores_source(self, comm, s1, s2, t1, t2):
        mask = match_mask(True, False)
        a = pack_tag(comm, s1, t1)
        b = pack_tag(comm, s2, t1)
        c = pack_tag(comm, s1, t2)
        assert (a & mask) == (b & mask)
        assert ((a & mask) == (c & mask)) == (t1 == t2)

    @given(st.integers(0, 15), st.integers(0, 99), st.integers(0, 999),
           st.integers(0, 999))
    def test_any_tag_ignores_tag(self, comm, src, t1, t2):
        mask = match_mask(False, True)
        assert (pack_tag(comm, src, t1) & mask) == (pack_tag(comm, src, t2) & mask)

    def test_comm_never_wildcarded(self):
        mask = match_mask(True, True)
        assert (pack_tag(1, 0, 0) & mask) != (pack_tag(2, 0, 0) & mask)
