"""Node-locality link model and message tracing tests."""

import numpy as np
import pytest

from repro.mpi import run
from repro.ucp.netsim import DEFAULT_PARAMS, LinkParams


def one_way(src, dst, nprocs, params):
    def fn(comm):
        if comm.rank == src:
            comm.send(np.zeros(4096, np.uint8), dest=dst)
        elif comm.rank == dst:
            comm.recv(np.zeros(4096, np.uint8), source=src)
            return comm.clock.now
        return None

    return run(fn, nprocs=nprocs, params=params).results[dst]


class TestNodeLocality:
    def test_same_node_detection(self):
        p = DEFAULT_PARAMS.with_overrides(ranks_per_node=2)
        assert p.same_node(0, 1)
        assert not p.same_node(1, 2)
        assert p.same_node(2, 3)

    def test_default_is_all_internode(self):
        assert not DEFAULT_PARAMS.same_node(0, 1)

    def test_intra_node_faster(self):
        p = DEFAULT_PARAMS.with_overrides(ranks_per_node=2)
        intra = one_way(0, 1, 4, p)
        inter = one_way(0, 2, 4, p)
        assert intra < inter

    def test_uniform_without_nodes(self):
        intra = one_way(0, 1, 4, DEFAULT_PARAMS)
        inter = one_way(0, 2, 4, DEFAULT_PARAMS)
        assert intra == pytest.approx(inter, rel=1e-9)

    def test_intra_variant_params(self):
        p = LinkParams(ranks_per_node=4)
        v = p.intra_node_variant()
        assert v.latency == p.intra_latency
        assert v.bandwidth == p.intra_bandwidth
        assert v.eager_limit == p.eager_limit


class TestTracing:
    def test_trace_disabled_by_default(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1)
            else:
                comm.recv(bytearray(1), source=0)

        res = run(fn, nprocs=2)
        assert res.traces == [[], []]

    def test_send_recv_events_pair_up(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, np.uint8), dest=1, tag=5)
            else:
                comm.recv(np.zeros(100, np.uint8), source=0, tag=5)

        res = run(fn, nprocs=2, trace_messages=True)
        (send,) = res.traces[0]
        (recv,) = res.traces[1]
        assert send["event"] == "send" and recv["event"] == "recv"
        assert send["msg_id"] == recv["msg_id"]
        assert send["bytes"] == recv["bytes"] == 100
        assert recv["t"] >= send["t"]

    def test_protocols_visible_in_trace(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, np.uint8), dest=1, tag=1)
                comm.send(np.zeros(1 << 17, np.uint8), dest=1, tag=2)
            else:
                comm.recv(np.zeros(100, np.uint8), source=0, tag=1)
                comm.recv(np.zeros(1 << 17, np.uint8), source=0, tag=2)

        res = run(fn, nprocs=2, trace_messages=True)
        protos = [e["protocol"] for e in res.traces[0]]
        assert protos == ["eager", "rndv"]

    def test_custom_type_iov_trace(self):
        from repro.types import DoubleVec, double_vec_custom_datatype

        def fn(comm):
            dt = double_vec_custom_datatype()
            if comm.rank == 0:
                comm.send(DoubleVec.uniform(8192, 2048), dest=1, datatype=dt)
            else:
                dv = DoubleVec()
                comm.recv(dv, source=0, datatype=dt)

        res = run(fn, nprocs=2, trace_messages=True)
        (send,) = res.traces[0]
        assert send["protocol"] == "iov"
        assert send["entries"] == 1 + 4  # header fragment + four regions
