"""Every example script must run to completion (they self-verify)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

SCRIPTS = ["quickstart.py", "particle_exchange.py", "halo_exchange.py",
           "python_objects.py", "capi_pingpong.py", "stencil_cart.py"]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must report what they did"


def test_paper_figures_cli_list():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "paper_figures.py"), "--list"],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0
    for fid in ("fig1", "fig10", "table1"):
        assert fid in proc.stdout


def test_paper_figures_cli_single():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "paper_figures.py"), "table1"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0
    assert "MILC" in proc.stdout


def test_paper_figures_cli_unknown():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "paper_figures.py"), "fig99"],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 2
