"""Unit tests for the fault-plan schedule itself (no fabric involved).

Everything here must be a pure function of the plan's seed: the whole
chaos suite rests on fault decisions being reproducible regardless of
thread interleaving.
"""

import numpy as np
import pytest

from repro.ucp.faults import (FaultPlan, ReliabilityConfig, ReliabilityStats,
                              _decide, fragment_bounds, fragment_crcs)


class TestDecide:
    def test_pure_function_of_arguments(self):
        args = (42, "drop", 0, 1, 7, 3, 0, 0.5)
        assert all(_decide(*args) == _decide(*args) for _ in range(10))

    def test_extremes(self):
        assert not _decide(1, "drop", 0, 1, 0, 0, 0, 0.0)
        assert _decide(1, "drop", 0, 1, 0, 0, 0, 1.0)

    def test_seed_changes_draws(self):
        draws = [tuple(_decide(s, "drop", 0, 1, q, f, 0, 0.5)
                       for q in range(8) for f in range(8))
                 for s in range(4)]
        assert len(set(draws)) > 1

    def test_empirical_rate_near_probability(self):
        n = 4000
        hits = sum(_decide(9, "corrupt", 0, 1, i, 0, 0, 0.25)
                   for i in range(n))
        assert 0.2 < hits / n < 0.3


class TestFaultPlan:
    def test_dict_round_trip(self):
        plan = FaultPlan(seed=3, drop=0.1, corrupt=0.2, duplicate=0.05,
                         reorder=0.05, delay=0.1, delay_time=20e-6,
                         window=(0, 4), channels=frozenset({(0, 1)}),
                         crash={1: 5e-3}, stall={0: (1e-3, 2e-3)})
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_json_forms(self):
        plan = FaultPlan.from_dict({
            "seed": 7, "drop": 0.5, "window": [0, 2],
            "channels": [[0, 1], [1, 0]],
            "crash": {"2": 1e-3}, "stall": {"0": [1e-3, 5e-4]},
        })
        assert plan.window == (0, 2)
        assert plan.channels == frozenset({(0, 1), (1, 0)})
        assert plan.crash == {2: 1e-3}
        assert plan.stall == {0: (1e-3, 5e-4)}

    def test_affects_window_and_channels(self):
        plan = FaultPlan(seed=1, drop=1.0, window=(1, 3),
                         channels=frozenset({(0, 1)}))
        assert plan.affects(0, 1, 1) and plan.affects(0, 1, 2)
        assert not plan.affects(0, 1, 0)   # before the window
        assert not plan.affects(0, 1, 3)   # past the window
        assert not plan.affects(1, 0, 1)   # wrong channel

    def test_frag_fates_deterministic_and_disjoint(self):
        plan = FaultPlan(seed=11, drop=0.4, corrupt=0.4)
        a = plan.frag_fates(0, 1, 0, range(64))
        b = plan.frag_fates(0, 1, 0, range(64))
        assert a == b
        dropped, corrupted = a
        assert not dropped & corrupted  # dropped wins ties

    def test_frag_fates_vary_by_round(self):
        plan = FaultPlan(seed=11, drop=0.5)
        fates = {frozenset(plan.frag_fates(0, 1, 0, range(32), rnd=r)[0])
                 for r in range(6)}
        assert len(fates) > 1  # retries re-roll, so loss is not permanent

    def test_message_fates_outside_window_all_false(self):
        plan = FaultPlan(seed=5, duplicate=1.0, reorder=1.0, delay=1.0,
                         window=(10, 20))
        assert plan.message_fates(0, 1, 0) == {
            "duplicate": False, "reorder": False, "delay": False}
        assert plan.message_fates(0, 1, 15) == {
            "duplicate": True, "reorder": True, "delay": True}

    def test_with_overrides(self):
        plan = FaultPlan(seed=1, drop=0.3)
        assert plan.with_overrides(drop=0.0) == FaultPlan(seed=1)


class TestFragmentHelpers:
    def test_bounds_empty_message(self):
        assert fragment_bounds([], 4096) == [(0, 0, 0)]

    def test_bounds_cover_every_byte_once(self):
        chunks = [np.zeros(1000, np.uint8), np.zeros(5000, np.uint8),
                  np.zeros(17, np.uint8)]
        bounds = fragment_bounds(chunks, 4096)
        seen = [set() for _ in chunks]
        for ci, start, stop in bounds:
            assert 0 < stop - start <= 4096
            span = set(range(start, stop))
            assert not span & seen[ci]
            seen[ci] |= span
        for chunk, got in zip(chunks, seen):
            assert got == set(range(len(chunk)))

    def test_crcs_match_bounds_and_detect_flips(self):
        chunks = [np.arange(300, dtype=np.uint8) % 251]
        bounds = fragment_bounds(chunks, 128)
        crcs = fragment_crcs(chunks, bounds)
        assert len(crcs) == len(bounds)
        chunks[0][5] ^= 0xFF
        assert fragment_crcs(chunks, bounds)[0] != crcs[0]
        assert fragment_crcs(chunks, bounds)[1:] == crcs[1:]


class TestReliabilityConfig:
    def test_from_dict_forms(self):
        assert ReliabilityConfig.from_dict(True) == ReliabilityConfig()
        cfg = ReliabilityConfig(retry_limit=9)
        assert ReliabilityConfig.from_dict(cfg) is cfg
        assert ReliabilityConfig.from_dict(
            {"retry_limit": 2, "backoff": 3.0}) == \
            ReliabilityConfig(retry_limit=2, backoff=3.0)

    def test_stats_accumulate(self):
        st = ReliabilityStats()
        st.add(retransmits=2, backoff_time=1e-3)
        st.add(retransmits=1, crc_failures=4)
        snap = st.snapshot()
        assert snap["retransmits"] == 3
        assert snap["crc_failures"] == 4
        assert snap["backoff_time"] == pytest.approx(1e-3)
        assert set(snap) == set(ReliabilityStats.FIELDS)
