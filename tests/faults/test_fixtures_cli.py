"""The sanitize CLI over the seeded chaos fixtures (what the CI job runs).

The fixtures declare their fault plans as module attributes
(``FAULTS``/``RELIABILITY``), so ``repro-analyze sanitize`` replays the
exact seeded scenario and its RPD45x findings are deterministic.
"""

import json
import os

import pytest

from repro.sanitize.cli import main as sanitize_main, run_program

from ..conftest import require_transport_capability


@pytest.fixture(autouse=True)
def _sanitizer_backend():
    """Every test here replays fixtures under the sanitizer."""
    require_transport_capability("sanitizer")


FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
LOSSY = os.path.join(FIXTURES, "lossy_no_reliability.py")
EXHAUSTED = os.path.join(FIXTURES, "retry_exhausted.py")


class TestRunProgram:
    def test_lossy_fixture_reports_rpd450(self):
        report = run_program(LOSSY, timeout=30)
        assert not report.aborted  # MPI_ERRORS_RETURN: ranks survive
        assert "RPD450" in report.codes()
        totals = report.reliability_totals()
        assert totals["lost_messages"] == 1

    def test_exhausted_fixture_reports_rpd452(self):
        report = run_program(EXHAUSTED, timeout=30)
        assert not report.aborted
        assert "RPD452" in report.codes()
        assert report.reliability_totals()["exhausted"] >= 1

    def test_reliability_shows_in_text_and_json(self):
        report = run_program(EXHAUSTED, timeout=30)
        assert "reliability:" in report.format_text()
        doc = report.to_dict()
        assert doc["summary"]["reliability"]["retransmits"] > 0
        assert len(doc["reliability"]) == 2


class TestCliExit:
    def test_strict_exit_and_codes(self, capsys):
        rc = sanitize_main(["--strict", "--format", "json", LOSSY, EXHAUSTED])
        assert rc == 1  # findings present
        doc = json.loads(capsys.readouterr().out)
        by_code = doc["summary"]["by_code"]
        assert by_code.get("RPD450", 0) >= 1
        assert by_code.get("RPD452", 0) >= 1
        assert doc["summary"]["aborted"] == []
        assert doc["summary"]["reliability"]  # per-program totals present

    def test_text_mode_prints_reliability(self, capsys):
        rc = sanitize_main([EXHAUSTED])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPD452" in out
        assert "reliability:" in out

    def test_deterministic_across_invocations(self):
        reports = [run_program(EXHAUSTED, timeout=30) for _ in range(2)]
        assert [d.code for d in reports[0].diagnostics] == \
            [d.code for d in reports[1].diagnostics]
        assert reports[0].reliability == reports[1].reliability
