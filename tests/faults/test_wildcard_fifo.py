"""End-to-end wildcard FIFO under seeded reordered delivery.

MPI's non-overtaking rule, per (source, tag, comm) channel, must survive
the fault injector's reorder machinery: with the reliability protocol the
sequencing layer heals the swap (arrival order == program order); without
it the swap is real, but the tag matcher must still hand messages to
wildcard receives in their actual arrival order — predicted here straight
from the FaultPlan's seeded draws.
"""

import numpy as np
import pytest

from repro.mpi.requests import ANY_SOURCE
from repro.mpi.runtime import run
from repro.ucp.faults import FaultPlan

from ..ucp.test_tagmatch import reordered_deposit_order

NMSGS = 4


def two_senders_one_receiver(nmsgs=NMSGS):
    """Ranks 0 and 1 each send ``nmsgs`` tagged-1 messages to rank 2; the
    receiver drains them with wildcard-source recvs and reports, per
    source, the payload sequence it observed."""

    def fn(comm):
        if comm.rank < 2:
            for i in range(nmsgs):
                comm.send(np.full(8, i, np.uint8), dest=2, tag=1)
            return None
        seen = {0: [], 1: []}
        buf = np.zeros(8, np.uint8)
        for _ in range(2 * nmsgs):
            status = comm.recv(buf, source=ANY_SOURCE, tag=1)
            seen[status.source].append(int(buf[0]))
        return seen

    return fn


class TestWildcardFifoLive:
    @pytest.mark.parametrize("seed", [7, 99, 4242])
    def test_reliability_heals_reorder_to_program_order(self, seed):
        plan = FaultPlan(seed=seed, reorder=0.7)
        res = run(two_senders_one_receiver(), nprocs=3, faults=plan,
                  reliability=True, timeout=60)
        seen = res.results[2]
        for src in (0, 1):
            assert seen[src] == list(range(NMSGS))
        healed = sum(s["reorders_healed"] for s in res.reliability)
        assert healed > 0  # the plan actually drew reorders

    @pytest.mark.parametrize("seed", [7, 99, 4242])
    def test_lossy_reorder_matches_seeded_arrival_order(self, seed):
        plan = FaultPlan(seed=seed, reorder=0.7)
        res = run(two_senders_one_receiver(), nprocs=3, faults=plan,
                  timeout=60)
        seen = res.results[2]
        reordered = False
        for src in (0, 1):
            want = reordered_deposit_order(plan, src, 2, NMSGS)
            assert seen[src] == want  # FIFO in *arrival* order, exactly
            reordered |= want != list(range(NMSGS))
        assert reordered  # at least one channel really swapped

    def test_reorder_without_successor_still_delivers(self):
        # A held message whose successor never comes must flush when the
        # sender finishes (the model checker's RPD700 flush obligation).
        plan = FaultPlan(seed=3, reorder=1.0)
        res = run(two_senders_one_receiver(nmsgs=1), nprocs=3, faults=plan,
                  timeout=60)
        seen = res.results[2]
        assert seen[0] == [0] and seen[1] == [0]
