"""MPI failure semantics on top of the faulted fabric.

Covers the error-handler split (``MPI_ERRORS_ARE_FATAL`` vs
``MPI_ERRORS_RETURN``), ``MPI_ERR_IN_STATUS`` aggregation in waitall,
``MPI_ERR_PROC_FAILED_PENDING`` on wildcard receives, request
cancellation, and graceful degradation of surviving ranks.
"""

import numpy as np
import pytest

from repro import errors
from repro.errors import (MPIError, ProcFailedError, ProcFailedPendingError,
                          RuntimeAbort)
from repro.mpi import (ANY_SOURCE, ERRORS_ARE_FATAL, ERRORS_RETURN, Request,
                       run)

from ..conftest import require_transport_capability

#: Kill the first message on the 0->1 channel; everything else flows.
FIRST_MSG_LOST = {"seed": 1, "drop": 1.0, "window": [0, 1],
                  "channels": [[0, 1]]}


class TestErrhandlerModes:
    def test_default_is_fatal(self):
        def fn(comm):
            return comm.get_errhandler()

        assert run(fn, nprocs=2).results == [ERRORS_ARE_FATAL] * 2

    def test_set_errhandler_validates(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            got = comm.get_errhandler()
            with pytest.raises(MPIError) as ei:
                comm.set_errhandler("MPI_ERRORS_ABORT_MAYBE")
            assert ei.value.code == errors.MPI_ERR_COMM
            return got

        assert run(fn, nprocs=2).results == [ERRORS_RETURN] * 2

    def test_fatal_lost_message_aborts_job(self):
        def fn(comm):
            data = np.arange(64, dtype=np.int32)
            if comm.rank == 0:
                comm.send(data, dest=1, tag=1)
            else:
                comm.recv(np.zeros_like(data), source=0, tag=1)

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=2, faults=FIRST_MSG_LOST, timeout=30)
        exc = ei.value.failures[1]
        assert isinstance(exc, ProcFailedError)
        assert exc.code == errors.MPI_ERR_PROC_FAILED

    def test_fatal_poisons_unrelated_waits(self):
        """ERRORS_ARE_FATAL is job-wide: an error on rank 1 must unblock
        rank 2's otherwise-never-matching receive in bounded time."""
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(16, np.uint8), dest=1, tag=1)
            elif comm.rank == 1:
                comm.recv(np.zeros(16, np.uint8), source=0, tag=1)
            else:
                # Nobody ever sends tag 99; only the job abort ends this.
                comm.recv(np.zeros(16, np.uint8), source=0, tag=99)

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=3, faults=FIRST_MSG_LOST, timeout=30)
        assert set(ei.value.failures) == {1, 2}
        assert "aborted" in str(ei.value.failures[2])

    def test_errors_return_contains_failure_to_one_rank(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 0:
                comm.send(np.arange(32, dtype=np.int32), dest=1, tag=1)
                return "sent"
            try:
                comm.recv(np.zeros(32, np.int32), source=0, tag=1)
            except ProcFailedError as exc:
                return ("recovered", exc.code)
            return "no error"

        res = run(fn, nprocs=2, faults=FIRST_MSG_LOST, timeout=30)
        assert res.results[0] == "sent"
        assert res.results[1] == ("recovered", errors.MPI_ERR_PROC_FAILED)

    def test_retry_exhaustion_surfaces_proc_failed(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            # Rendezvous-sized so the *sender* also blocks on completion
            # (an eager send may correctly complete locally before the
            # retry budget dies).
            data = np.arange(96 * 1024, dtype=np.int32)
            try:
                if comm.rank == 0:
                    comm.send(data, dest=1, tag=1)
                else:
                    comm.recv(np.zeros_like(data), source=0, tag=1)
            except ProcFailedError as exc:
                return exc.code
            return "delivered?"

        res = run(fn, nprocs=2, faults={"seed": 3, "drop": 1.0},
                  reliability={"retry_limit": 2}, timeout=30)
        assert res.results == [errors.MPI_ERR_PROC_FAILED] * 2
        total = {k: sum(s[k] for s in res.reliability)
                 for k in res.reliability[0]}
        assert total["exhausted"] >= 1


class TestWaitallAggregation:
    def test_err_in_status_per_request_codes(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            good = np.full(16, 5, np.int32)
            if comm.rank == 0:
                comm.send(np.zeros(16, np.int32), dest=1, tag=1)  # lost
                comm.send(good, dest=1, tag=2)                    # arrives
                return None
            r1 = comm.irecv(np.zeros(16, np.int32), source=0, tag=1)
            buf = np.zeros(16, np.int32)
            r2 = comm.irecv(buf, source=0, tag=2)
            with pytest.raises(MPIError) as ei:
                Request.waitall([r1, r2])
            exc = ei.value
            assert exc.code == errors.MPI_ERR_IN_STATUS
            assert exc.statuses[0].error == errors.MPI_ERR_PROC_FAILED
            assert exc.statuses[1].error == errors.MPI_SUCCESS
            assert set(exc.errors) == {0}
            return int(buf.sum())

        res = run(fn, nprocs=2, faults=FIRST_MSG_LOST, timeout=30)
        assert res.results[1] == 80  # the clean request still delivered


class TestWildcardPending:
    def test_any_source_converts_to_pending(self):
        def fn(comm):
            if comm.rank == 0:
                # First fabric interaction hits the scheduled crash.
                comm.send(np.zeros(4, np.uint8), dest=1, tag=55)
                return "unreachable"
            comm.set_errhandler(ERRORS_RETURN)
            try:
                comm.recv(np.zeros(8, np.uint8), source=ANY_SOURCE, tag=1)
            except ProcFailedPendingError as exc:
                return exc.code
            return "matched?"

        res = run(fn, nprocs=2, faults={"crash": {0: 0.0}}, timeout=30)
        assert res.crashed == [0]
        assert res.results[1] == errors.MPI_ERR_PROC_FAILED_PENDING

    def test_named_source_raises_plain_proc_failed(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(4, np.uint8), dest=1, tag=55)
                return "unreachable"
            comm.set_errhandler(ERRORS_RETURN)
            try:
                comm.recv(np.zeros(8, np.uint8), source=0, tag=1)
            except ProcFailedPendingError:
                return "pending"
            except ProcFailedError as exc:
                return ("failed", tuple(exc.failed_ranks))

        res = run(fn, nprocs=2, faults={"crash": {0: 0.0}}, timeout=30)
        assert res.results[1] == ("failed", (0,))


class TestGracefulDegradation:
    def test_survivors_finish_around_a_crash(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            data = np.arange(256, dtype=np.int32)
            if comm.rank == 2:
                # Crashes at virtual time 0, before it can send anything.
                comm.send(data, dest=1, tag=7)
                return "unreachable"
            if comm.rank == 0:
                comm.send(data, dest=1, tag=5)
                return "sent"
            out = np.zeros_like(data)
            comm.recv(out, source=0, tag=5)
            try:
                comm.recv(np.zeros_like(data), source=2, tag=7)
            except ProcFailedError as exc:
                return (int(out.sum()), tuple(exc.failed_ranks))
            return "peer survived?"

        res = run(fn, nprocs=3, faults={"crash": {2: 0.0}}, timeout=30)
        assert res.crashed == [2]
        assert res.results[0] == "sent"
        assert res.results[1] == (int(np.arange(256).sum()), (2,))
        assert res.results[2] is None  # the crashed rank produced nothing

    def test_crash_is_not_an_application_failure(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 1:
                comm.send(np.zeros(8, np.uint8), dest=0, tag=1)
                return "unreachable"
            try:
                comm.recv(np.zeros(8, np.uint8), source=1, tag=1)
            except ProcFailedError:
                return "survived"

        res = run(fn, nprocs=2, faults={"crash": {1: 0.0}}, timeout=30)
        # No RuntimeAbort raised; the crash is recorded, not propagated.
        assert res.crashed == [1]
        assert res.results[0] == "survived"
        assert res.results[1] is None


class TestCancel:
    def test_cancel_unmatched_recv(self):
        require_transport_capability("sanitizer")

        def fn(comm):
            if comm.rank == 0:
                return None
            req = comm.irecv(np.zeros(64, np.uint8), source=0, tag=9)
            assert req.cancel()
            st = req.wait()
            assert st.cancelled
            assert not req.cancel()  # already done: no effect
            return "cancelled"

        res = run(fn, nprocs=2, sanitize=True, timeout=30)
        assert res.results[1] == "cancelled"
        assert res.sanitizer_report.clean

    def test_cancel_unclaimed_send_returns_buffers(self):
        require_transport_capability("cancel", "sanitizer")

        def fn(comm):
            if comm.rank == 1:
                return None
            req = comm.isend(np.arange(512, dtype=np.int32), dest=1, tag=9)
            req.cancel()
            st = req.wait()
            return bool(st.cancelled)

        res = run(fn, nprocs=2, sanitize=True, timeout=30)
        assert res.results[0] is True
        assert res.sanitizer_report.clean
        for mem in res.memory:
            assert mem["pool"]["outstanding"] == 0

    def test_cancel_derived_recv_recycles_bounce_buffer(self):
        require_transport_capability("sanitizer")
        from repro.core import vector
        from repro.core.datatype import INT32

        def fn(comm):
            if comm.rank == 0:
                return None
            dt = vector(count=16, blocklength=4, stride=8, base=INT32)
            buf = np.zeros((16, 8), dtype=np.int32)
            req = comm.irecv(buf, source=0, tag=9, datatype=dt, count=1)
            assert req.cancel()
            assert req.wait().cancelled
            return "ok"

        res = run(fn, nprocs=2, sanitize=True, timeout=30)
        assert res.results[1] == "ok"
        assert res.sanitizer_report.clean
        for mem in res.memory:
            assert mem["pool"]["outstanding"] == 0

    def test_cancel_loses_race_once_matched(self):
        def fn(comm):
            data = np.full(32, 3, np.uint8)
            if comm.rank == 0:
                comm.send(data, dest=1, tag=1)
                return None
            buf = np.zeros_like(data)
            req = comm.irecv(buf, source=0, tag=1)
            st = req.wait()
            assert not req.cancel()  # completed: cancel has no effect
            assert not st.cancelled
            return int(buf.sum())

        assert run(fn, nprocs=2, timeout=30).results[1] == 96

    def test_waitall_with_cancelled_request_is_clean(self):
        require_transport_capability("sanitizer")

        def fn(comm):
            data = np.full(16, 2, np.uint8)
            if comm.rank == 0:
                comm.send(data, dest=1, tag=1)
                return None
            buf = np.zeros_like(data)
            r1 = comm.irecv(buf, source=0, tag=1)
            r2 = comm.irecv(np.zeros_like(data), source=0, tag=44)
            assert r2.cancel()
            sts = Request.waitall([r1, r2])
            assert not sts[0].cancelled and sts[1].cancelled
            assert sts[0].error == sts[1].error == errors.MPI_SUCCESS
            return int(buf.sum())

        res = run(fn, nprocs=2, sanitize=True, timeout=30)
        assert res.results[1] == 32
        assert res.sanitizer_report.clean
