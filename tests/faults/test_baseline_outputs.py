"""Fault machinery must be invisible when disabled.

The default fabric (no ``faults=``, no ``reliability=``) allocates no
injector, stamps no sequence numbers or CRCs, and must therefore leave
every figure/table output byte-identical to the pre-fault-injection
baselines pinned here (captured from the commit before ``repro.ucp.
faults`` existed).
"""

import hashlib
import json

from repro.mpi import run

#: md5 of the canonical JSON rendering of fig1 (quick sizes).
FIG1_QUICK_MD5 = "10620e46975ea56cbfaaaf9c2bd30eba"
#: md5 of the formatted Table 1 text.
TABLE1_MD5 = "4c3867a1a5e7f0843ff5ddb41561efcb"


def test_fig1_quick_byte_identical():
    from repro.bench import figures
    fs = figures.fig1_double_vec_latency(quick=True)
    doc = {"figure": fs.figure, "x": list(fs.x),
           "curves": {k: list(v) for k, v in fs.curves.items()}}
    blob = json.dumps(doc, sort_keys=True).encode()
    assert hashlib.md5(blob).hexdigest() == FIG1_QUICK_MD5


def test_table1_byte_identical():
    from repro.ddtbench.table import format_table1
    assert hashlib.md5(format_table1().encode()).hexdigest() == TABLE1_MD5


def test_default_run_has_no_fault_machinery():
    def fn(comm):
        import numpy as np
        if comm.rank == 0:
            comm.send(np.arange(16, dtype=np.int32), dest=1)
        else:
            comm.recv(np.zeros(16, np.int32), source=0)

    res = run(fn, nprocs=2)
    assert res.fabric.injector is None
    # No seq/CRC stamping on the wire without faults configured.
    assert res.reliability == [] and res.fault_trace == {}
