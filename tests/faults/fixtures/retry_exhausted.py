"""Seeded chaos fixture: total loss exhausts the retry budget.

Every fragment on every round is dropped; after ``retry_limit`` rounds
the reliability layer abandons the transfer, so the sanitizer must
report RPD452 (retry budget exhausted) and both ends see
MPI_ERR_PROC_FAILED.  Ranks run under MPI_ERRORS_RETURN and survive.
"""

import numpy as np

from repro.errors import ProcFailedError

NPROCS = 2
FAULTS = {"seed": 452, "drop": 1.0}
RELIABILITY = {"retry_limit": 2}


def main(comm):
    comm.set_errhandler("MPI_ERRORS_RETURN")
    data = np.arange(96 * 1024, dtype=np.int32)
    try:
        if comm.rank == 0:
            comm.send(data, dest=1, tag=1)
        else:
            comm.recv(np.zeros_like(data), source=0, tag=1)
    except ProcFailedError:
        return "exhausted"
    return "done"
