"""Seeded chaos fixture: lossy wire, no recovery protocol.

The first message on the 0->1 channel is dropped and nothing retransmits
it, so the sanitizer must report RPD450 (unrecovered message loss).  Both
ranks run under MPI_ERRORS_RETURN and survive the loss.
"""

import numpy as np

from repro.errors import ProcFailedError

NPROCS = 2
FAULTS = {"seed": 450, "drop": 1.0, "window": [0, 1], "channels": [[0, 1]]}


def main(comm):
    comm.set_errhandler("MPI_ERRORS_RETURN")
    data = np.arange(512, dtype=np.int32)
    try:
        if comm.rank == 0:
            comm.send(data, dest=1, tag=1)
        else:
            comm.recv(np.zeros_like(data), source=0, tag=1)
    except ProcFailedError:
        return "lost"
    return "done"
