"""Chaos matrix: seeded fault schedules x transfer protocols.

The reliability protocol's contract is blunt: with any seeded
drop/corrupt/duplicate/reorder schedule, every payload still arrives
byte-identical, and the same seed reproduces the identical recovery
trace.  These tests sweep that contract across the protocol paths
(eager, rendezvous, iov, generic/custom) the planner distinguishes.
"""

import numpy as np
import pytest

from repro.core import type_create_custom, vector
from repro.core.datatype import FLOAT64
from repro.mpi import run

from ..conftest import require_transport_capability

#: Named fault schedules (dict form, as a CLI fixture would write them).
SCHEDULES = {
    "drop": {"seed": 101, "drop": 0.25},
    "corrupt": {"seed": 202, "corrupt": 0.25},
    "shuffle": {"seed": 303, "duplicate": 0.3, "reorder": 0.3,
                "delay": 0.3, "delay_time": 30e-6},
    "mixed": {"seed": 404, "drop": 0.15, "corrupt": 0.15,
              "duplicate": 0.2, "reorder": 0.2, "delay": 0.2},
}

#: Generous retry budget: heavy-loss schedules may need several rounds.
RELIABILITY = {"retry_limit": 8}


def eager_job(comm):
    """Contiguous payload under the eager limit (one copy, few frags)."""
    data = (np.arange(2048, dtype=np.int32) * 7 + comm.rank).astype(np.int32)
    if comm.rank == 0:
        comm.send(data, dest=1, tag=1)
        return data
    out = np.zeros_like(data)
    comm.recv(out, source=0, tag=1)
    return out


def rndv_job(comm):
    """Contiguous payload far past the eager limit (rendezvous, many frags)."""
    data = (np.arange(96 * 1024, dtype=np.int32) % 1013).astype(np.int32)
    if comm.rank == 0:
        comm.send(data, dest=1, tag=2)
        return data
    out = np.zeros_like(data)
    comm.recv(out, source=0, tag=2)
    return out


def iov_job(comm):
    """Strided column of a large matrix: the iov/region protocol path."""
    dt = vector(count=512, blocklength=8, stride=64, base=FLOAT64)
    full = np.arange(512 * 64, dtype=np.float64).reshape(512, 64)
    if comm.rank == 0:
        comm.send(full, dest=1, tag=3, datatype=dt, count=1)
        return full[:, :8].copy()
    out = np.zeros_like(full)
    comm.recv(out, source=0, tag=3, datatype=dt, count=1)
    return out[:, :8].copy()


def _custom_bytes_type(payload_len: int):
    def query(state, buf, count):
        return payload_len

    def pack(state, buf, count, offset, dst):
        n = min(dst.shape[0], payload_len - offset)
        dst[:n] = np.frombuffer(buf, dtype=np.uint8,
                                count=n, offset=offset)
        return int(n)

    def unpack(state, buf, count, offset, src):
        np.frombuffer(buf, dtype=np.uint8)[offset:offset + src.shape[0]] = src

    return type_create_custom(query_fn=query, pack_fn=pack,
                              unpack_fn=unpack, name="chaos-bytes")


def generic_job(comm):
    """Custom pack/unpack callbacks: the generic datatype path."""
    n = 48 * 1024
    dt = _custom_bytes_type(n)
    data = bytearray((np.arange(n) % 241).astype(np.uint8).tobytes())
    if comm.rank == 0:
        comm.send(data, dest=1, tag=4, datatype=dt, count=1)
        return np.frombuffer(bytes(data), dtype=np.uint8)
    out = bytearray(n)
    comm.recv(out, source=0, tag=4, datatype=dt, count=1)
    return np.frombuffer(bytes(out), dtype=np.uint8)


JOBS = {"eager": eager_job, "rndv": rndv_job,
        "iov": iov_job, "generic": generic_job}


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
@pytest.mark.parametrize("proto", sorted(JOBS))
class TestByteIdenticalUnderFaults:
    def test_payload_survives(self, proto, schedule):
        res = run(JOBS[proto], nprocs=2, faults=SCHEDULES[schedule],
                  reliability=RELIABILITY, timeout=60)
        sent, got = res.results
        np.testing.assert_array_equal(np.asarray(sent), np.asarray(got))


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_same_seed_reproduces_identical_trace(schedule):
    runs = [run(rndv_job, nprocs=2, faults=SCHEDULES[schedule],
                reliability=RELIABILITY, timeout=60) for _ in range(2)]
    assert runs[0].fault_trace == runs[1].fault_trace
    assert runs[0].reliability == runs[1].reliability
    assert runs[0].clocks == runs[1].clocks


def test_different_seeds_diverge():
    traces = []
    for seed in (1, 2, 3, 4):
        res = run(rndv_job, nprocs=2,
                  faults={"seed": seed, "drop": 0.3},
                  reliability=RELIABILITY, timeout=60)
        traces.append(repr(res.fault_trace))
    assert len(set(traces)) > 1


def test_corruption_without_reliability_reaches_app_as_rpd451():
    require_transport_capability("sanitizer")

    def fn(comm):
        data = np.arange(4096, dtype=np.int32)
        if comm.rank == 0:
            comm.send(data, dest=1, tag=1)
            return 0
        out = np.zeros_like(data)
        comm.recv(out, source=0, tag=1)
        return int((out != data).sum())

    res = run(fn, nprocs=2, faults={"seed": 5, "corrupt": 1.0},
              sanitize=True, timeout=30)
    assert res.results[1] > 0  # flipped bytes were delivered
    assert "RPD451" in res.sanitizer_report.codes()
    assert sum(s["corrupted_delivered"] for s in res.reliability) > 0


class TestReliabilityStats:
    def test_stats_surface_in_result_and_snapshot(self):
        res = run(rndv_job, nprocs=2, faults=SCHEDULES["mixed"],
                  reliability=RELIABILITY, timeout=60)
        assert len(res.reliability) == 2
        total = {}
        for snap in res.reliability:
            for k, v in snap.items():
                total[k] = total.get(k, 0) + v
        # The mixed schedule at these rates must have forced recovery work.
        assert total["retransmits"] > 0
        assert total["crc_failures"] > 0
        assert total["ack_rounds"] > 0
        assert total["backoff_time"] > 0
        for i, mem in enumerate(res.memory):
            assert mem["reliability"] == res.reliability[i]

    def test_pristine_fabric_has_no_reliability_key(self):
        res = run(eager_job, nprocs=2)
        assert res.reliability == []
        assert res.fault_trace == {}
        assert all("reliability" not in mem for mem in res.memory)

    def test_retries_cost_virtual_time(self):
        clean = run(rndv_job, nprocs=2, timeout=60)
        faulty = run(rndv_job, nprocs=2, faults={"seed": 7, "drop": 0.3},
                     reliability=RELIABILITY, timeout=60)
        assert faulty.max_clock > clean.max_clock

    def test_no_pool_residue_after_faulted_job(self):
        res = run(rndv_job, nprocs=2, faults=SCHEDULES["mixed"],
                  reliability=RELIABILITY, timeout=60)
        for mem in res.memory:
            assert mem["pool"]["outstanding"] == 0
