"""DDTBench layouts under seeded faults: real workloads, lossy wire.

Every registry layout crosses the faulted fabric via both its derived
datatype and its custom pack/unpack callbacks; with reliability enabled
the received buffer must match the fault-free one byte for byte.
"""

import numpy as np
import pytest

from repro.ddtbench import WORKLOADS, make_workload
from repro.mpi import run

FAULTS = {"seed": 512, "drop": 0.2, "corrupt": 0.2,
          "duplicate": 0.1, "reorder": 0.1}
RELIABILITY = {"retry_limit": 8}

#: A representative spread of layouts (nested vectors, indexed blocks,
#: structs); the full registry runs in the sanitize CLI sweeps.
LAYOUTS = ("FFT2", "LAMMPS", "MILC", "NAS_MG_z", "SPECFEM3D_oc", "WRF_x_vec")


def _pingpong(name, method, faults=None, reliability=None):
    def fn(comm):
        w = make_workload(name)
        dt = (w.derived_datatype() if method == "derived"
              else w.custom_pack_datatype())
        if comm.rank == 0:
            comm.send(w.make_send_buffer(), dest=1, datatype=dt, count=1)
            return None
        rb = w.make_recv_buffer()
        comm.recv(rb, source=0, datatype=dt, count=1)
        return rb

    res = run(fn, nprocs=2, faults=faults, reliability=reliability,
              timeout=90)
    return res


@pytest.mark.parametrize("method", ("derived", "custom-pack"))
@pytest.mark.parametrize("name", LAYOUTS)
def test_layout_survives_chaos(name, method):
    assert name in WORKLOADS
    clean = _pingpong(name, method)
    chaos = _pingpong(name, method, faults=FAULTS, reliability=RELIABILITY)
    for a, b in zip(np.atleast_1d(clean.results[1]),
                    np.atleast_1d(chaos.results[1])):
        np.testing.assert_array_equal(a, b)
    total = {k: sum(s[k] for s in chaos.reliability)
             for k in chaos.reliability[0]}
    assert total["lost_messages"] == 0
    assert total["exhausted"] == 0


def test_chaos_trace_reproducible_on_a_layout():
    traces = [_pingpong("MILC", "derived", faults=FAULTS,
                        reliability=RELIABILITY).fault_trace
              for _ in range(2)]
    assert traces[0] == traces[1]
