"""pickle-5 helper tests (real CPython pickle machinery)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serial import (buffer_bytes, dumps_inband, dumps_oob, loads_inband,
                          loads_oob)


class TestInband:
    def test_roundtrip(self):
        obj = {"a": 1, "b": [1, 2, 3], "c": np.arange(10)}
        got = loads_inband(dumps_inband(obj))
        assert got["a"] == 1 and got["b"] == [1, 2, 3]
        assert np.array_equal(got["c"], obj["c"])

    def test_array_payload_is_inband(self):
        arr = np.zeros(100_000, dtype=np.float64)
        assert len(dumps_inband(arr)) >= arr.nbytes


class TestOob:
    def test_large_array_goes_out_of_band(self):
        arr = np.arange(100_000, dtype=np.float64)
        header, buffers = dumps_oob(arr)
        assert len(buffers) == 1
        assert buffers[0].nbytes == arr.nbytes
        # The header is tiny metadata, as the paper measures (~120 bytes).
        assert len(header) < 400

    def test_header_metadata_weight(self):
        """Paper: 'this metadata header weighs around 120 bytes'."""
        arr = np.zeros(1 << 20, dtype=np.float64)
        header, _ = dumps_oob(arr)
        assert 50 < len(header) < 300

    def test_small_buffers_stay_inband(self):
        arr = np.arange(10, dtype=np.int32)  # 40 B < threshold
        header, buffers = dumps_oob(arr, threshold=1024)
        assert buffers == []
        assert np.array_equal(loads_oob(header, []), arr)

    def test_threshold_zero_forces_oob(self):
        arr = np.arange(4, dtype=np.int32)
        _, buffers = dumps_oob(arr, threshold=0)
        assert len(buffers) == 1

    def test_zero_copy_no_byte_duplication(self):
        """Out-of-band buffers are views of the original array."""
        arr = np.arange(1 << 16, dtype=np.float64)
        _, buffers = dumps_oob(arr)
        view = np.frombuffer(buffers[0], dtype=np.float64)
        assert np.shares_memory(view, arr)

    def test_multiple_arrays(self):
        obj = [np.arange(5000), np.ones(3000), {"small": 1}]
        header, buffers = dumps_oob(obj)
        assert len(buffers) == 2
        got = loads_oob(header, buffers)
        assert np.array_equal(got[0], obj[0])
        assert np.array_equal(got[1], obj[1])
        assert got[2] == {"small": 1}

    def test_roundtrip_with_copied_buffers(self):
        """Receivers reconstruct from freshly allocated buffers."""
        obj = {"x": np.arange(4000, dtype=np.int64)}
        header, buffers = dumps_oob(obj)
        copies = [np.frombuffer(bytes(b), dtype=np.uint8) for b in buffers]
        got = loads_oob(header, copies)
        assert np.array_equal(got["x"], obj["x"])

    def test_buffer_bytes(self):
        _, buffers = dumps_oob([np.zeros(1000), np.zeros(500)])
        assert buffer_bytes(buffers) == 12000

    def test_noncontiguous_array_handled(self):
        arr = np.arange(20000, dtype=np.float64)[::2]
        header, buffers = dumps_oob(arr)
        got = loads_oob(header, buffers)
        assert np.array_equal(got, arr)

    @given(st.lists(st.integers(0, 5000), min_size=0, max_size=5))
    def test_roundtrip_random_shapes(self, sizes):
        obj = [np.arange(n, dtype=np.float32) for n in sizes]
        header, buffers = dumps_oob(obj)
        got = loads_oob(header, [bytes(b) for b in buffers])
        assert all(np.array_equal(a, b) for a, b in zip(got, obj))
