"""Bench object-shape tests."""

import numpy as np
import pytest

from repro.serial import (COMPLEX_CHUNK_BYTES, ComplexObject,
                          make_complex_object, make_single_array)


class TestSingleArray:
    def test_size(self):
        arr = make_single_array(1 << 16)
        assert arr.nbytes == 1 << 16
        assert arr.dtype == np.float64

    def test_minimum_one_element(self):
        assert make_single_array(1).shape == (1,)

    def test_deterministic_per_seed(self):
        assert np.array_equal(make_single_array(4096, seed=3),
                              make_single_array(4096, seed=3))
        assert not np.array_equal(make_single_array(4096, seed=3),
                                  make_single_array(4096, seed=4))


class TestComplexObject:
    def test_chunking(self):
        obj = make_complex_object(4 * COMPLEX_CHUNK_BYTES)
        assert len(obj.chunks) == 4
        assert all(c.nbytes == COMPLEX_CHUNK_BYTES for c in obj.chunks)
        assert obj.total_bytes == 4 * COMPLEX_CHUNK_BYTES

    def test_small_total_gets_one_chunk(self):
        assert len(make_complex_object(10).chunks) == 1

    def test_validate_detects_corruption(self):
        obj = make_complex_object(2 * COMPLEX_CHUNK_BYTES)
        assert obj.validate()
        obj.chunks[1][0] += 1000.0
        assert not obj.validate()

    def test_validate_detects_missing_checksum(self):
        obj = make_complex_object(COMPLEX_CHUNK_BYTES)
        obj.checksums.pop()
        assert not obj.validate()

    def test_equality(self):
        a = make_complex_object(COMPLEX_CHUNK_BYTES, seed=1)
        b = make_complex_object(COMPLEX_CHUNK_BYTES, seed=1)
        c = make_complex_object(COMPLEX_CHUNK_BYTES, seed=2)
        assert a == b
        assert a != c

    def test_carries_real_inband_state(self):
        obj = make_complex_object(COMPLEX_CHUNK_BYTES)
        assert obj.name
        assert obj.iteration == 7
        assert len(obj.checksums) == len(obj.chunks)
