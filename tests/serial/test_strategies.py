"""Pickle strategy tests over the MPI layer, including the paper's memory
claims."""

import numpy as np
import pytest

from repro.mpi import run
from repro.serial import (STRATEGIES, BasicPickle, ComplexObject, OobCdtPickle,
                          OobPickle, bcast_object, get_strategy,
                          make_complex_object, make_single_array, recvobj,
                          sendobj)

OBJECTS = {
    "scalar": lambda: 42,
    "dict": lambda: {"a": [1, 2], "b": "text", "c": (None, True)},
    "small-array": lambda: np.arange(10, dtype=np.int16),
    "big-array": lambda: np.arange(100_000, dtype=np.float64),
    "nested": lambda: {"arrays": [np.ones(5000), np.zeros(3000)],
                       "meta": {"k": 1}},
    "complex-object": lambda: make_complex_object(1 << 19),
}


def transfer(strategy_name, make_obj):
    def fn(comm):
        s = get_strategy(strategy_name)
        if comm.rank == 0:
            s.send(comm, make_obj(), dest=1, tag=3)
            return None
        return s.recv(comm, source=0, tag=3)

    return run(fn, nprocs=2).results[1]


def objects_equal(a, b):
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    if isinstance(a, dict):
        return set(a) == set(b) and all(objects_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(objects_equal(x, y)
                                        for x, y in zip(a, b))
    return a == b


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
@pytest.mark.parametrize("obj_name", sorted(OBJECTS))
class TestRoundtrips:
    def test_roundtrip(self, strategy, obj_name):
        want = OBJECTS[obj_name]()
        got = transfer(strategy, OBJECTS[obj_name])
        assert objects_equal(got, want)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
class TestPingPong:
    def test_echo(self, strategy):
        def fn(comm):
            s = get_strategy(strategy)
            if comm.rank == 0:
                obj = make_complex_object(1 << 18)
                s.send(comm, obj, dest=1)
                back = s.recv(comm, source=1)
                return back == obj and back.validate()
            obj = s.recv(comm, source=0)
            s.send(comm, obj, dest=0)
            return True

        assert all(run(fn, nprocs=2).results)

    def test_many_messages_fifo(self, strategy):
        def fn(comm):
            s = get_strategy(strategy)
            if comm.rank == 0:
                for i in range(5):
                    s.send(comm, {"seq": i, "pad": np.full(3000, i)}, dest=1)
                return None
            return [s.recv(comm, source=0)["seq"] for _ in range(5)]

        assert run(fn, nprocs=2).results[1] == list(range(5))


class TestMemoryClaims:
    """The paper's memory-amplification arguments, measured."""

    def _peaks(self, strategy):
        nbytes = 1 << 20

        def fn(comm):
            s = get_strategy(strategy)
            if comm.rank == 0:
                s.send(comm, make_single_array(nbytes), dest=1)
                return comm.memory.snapshot()
            s.recv(comm, source=0)
            return comm.memory.snapshot()

        res = run(fn, nprocs=2)
        return res.results[0], res.results[1], nbytes

    def test_basic_pickle_doubles_sender_memory(self):
        send, _, n = self._peaks("pickle-basic")
        # The in-band stream is a transient allocation >= the payload.
        assert send["total_allocated"] >= n

    def test_oob_cdt_sender_allocates_no_payload_copy(self):
        send, _, n = self._peaks("pickle-oob-cdt")
        assert send["total_allocated"] < n // 8

    def test_oob_sender_allocates_no_payload_copy(self):
        send, _, n = self._peaks("pickle-oob")
        assert send["total_allocated"] < n // 8

    def test_all_receivers_allocate_payload(self):
        """Receive-side allocation is unavoidable (the roofline gap)."""
        for name in STRATEGIES:
            _, recv, n = self._peaks(name)
            assert recv["total_allocated"] >= n, name


class TestCdtSingleMessage:
    def test_single_message_pair(self):
        """pickle-oob-cdt must move everything in ONE message; pickle-oob
        needs header + lengths + one per buffer."""

        def count_messages(strategy):
            def fn(comm):
                s = get_strategy(strategy)
                obj = {"a": np.ones(50_000), "b": np.zeros(30_000)}
                if comm.rank == 0:
                    s.send(comm, obj, dest=1)
                    return None
                got = s.recv(comm, source=0)
                return got

            # Count via the wire message ids seen by the receiver's matcher:
            # simplest reliable proxy is the unexpected+posted traffic, so
            # instead instrument by wrapping deposit.
            from repro.ucp.tagmatch import TagMatcher
            counts = []
            orig = TagMatcher.deposit

            def counting(self, msg):
                counts.append(1)
                return orig(self, msg)

            TagMatcher.deposit = counting
            try:
                run(fn, nprocs=2)
            finally:
                TagMatcher.deposit = orig
            return len(counts)

        n_cdt = count_messages("pickle-oob-cdt")
        n_oob = count_messages("pickle-oob")
        assert n_cdt == 1
        assert n_oob == 2 + 2  # header + lengths + two buffers


class TestHighLevel:
    def test_sendobj_recvobj(self):
        def fn(comm):
            if comm.rank == 0:
                sendobj(comm, {"hello": np.arange(7)}, dest=1)
                return None
            return recvobj(comm, source=0)

        got = run(fn, nprocs=2).results[1]
        assert np.array_equal(got["hello"], np.arange(7))

    @pytest.mark.parametrize("strategy", sorted(STRATEGIES))
    def test_bcast_object(self, strategy):
        def fn(comm):
            obj = {"root": True, "arr": np.arange(2048)} if comm.rank == 0 else None
            got = bcast_object(comm, obj, root=0, strategy=strategy)
            return got["root"] and np.array_equal(got["arr"], np.arange(2048))

        assert all(run(fn, nprocs=6).results)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            get_strategy("pickle-nope")

    def test_strategy_instance_accepted(self):
        def fn(comm):
            s = OobCdtPickle(threshold=64)
            if comm.rank == 0:
                s.send(comm, np.arange(1000), dest=1)
                return None
            return recvobj(comm, source=0, strategy=s)

        # recvobj with an instance must pair with the instance's wire format.
        got = run(fn, nprocs=2).results[1]
        assert np.array_equal(got, np.arange(1000))
