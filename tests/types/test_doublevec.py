"""double-vector type tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import pack_all, unpack_all
from repro.mpi import run
from repro.types import DoubleVec, double_vec_custom_datatype


class TestUniform:
    def test_splits_evenly(self):
        dv = DoubleVec.uniform(8192, 1024)
        assert len(dv.vectors) == 8
        assert all(v.nbytes == 1024 for v in dv.vectors)
        assert dv.total_bytes == 8192

    def test_remainder_vector(self):
        dv = DoubleVec.uniform(2500, 1024)
        assert [v.nbytes for v in dv.vectors] == [1024, 1024, 452]

    def test_small_message_single_subvec(self):
        """Paper: below the sub-vector size, one sub-vector of message size."""
        dv = DoubleVec.uniform(256, 1024)
        assert len(dv.vectors) == 1
        assert dv.vectors[0].nbytes == 256

    def test_header_bytes(self):
        dv = DoubleVec.uniform(4096, 1024)
        assert dv.header_bytes == 8 * (1 + 4)

    def test_equality(self):
        assert DoubleVec.uniform(1000, 100) == DoubleVec.uniform(1000, 100)
        assert DoubleVec.uniform(1000, 100) != DoubleVec.uniform(1000, 200)
        assert DoubleVec() == DoubleVec()


class TestManualPack:
    @pytest.mark.parametrize("total,sub", [(64, 64), (4096, 512), (10000, 999)])
    def test_roundtrip(self, total, sub):
        dv = DoubleVec.uniform(total, sub)
        packed = dv.manual_pack()
        got = DoubleVec.manual_unpack(packed)
        assert got == dv

    def test_empty(self):
        dv = DoubleVec()
        assert DoubleVec.manual_unpack(dv.manual_pack()) == dv

    def test_packed_layout(self):
        dv = DoubleVec([np.array([1, 2], dtype=np.int32)])
        packed = dv.manual_pack()
        assert int(packed[:8].view("<i8")[0]) == 1      # nvec
        assert int(packed[8:16].view("<i8")[0]) == 2    # len
        assert packed[16:].view(np.int32).tolist() == [1, 2]


class TestCustomDatatype:
    def test_header_inband_vectors_as_regions(self):
        dv = DoubleVec.uniform(4096, 1024)
        dt = double_vec_custom_datatype()
        packed, regions = pack_all(dt, dv, 1)
        assert len(packed) == dv.header_bytes
        assert [r.nbytes for r in regions] == [1024] * 4

    def test_receive_allocates_from_lengths(self):
        src = DoubleVec.uniform(5000, 700)
        dt = double_vec_custom_datatype()
        packed, regions = pack_all(dt, src, 1)
        dst = DoubleVec()
        unpack_all(dt, dst, 1, packed,
                   [bytes(r.read_bytes()) for r in regions])
        assert dst == src

    def test_empty_container(self):
        dt = double_vec_custom_datatype()
        packed, regions = pack_all(dt, DoubleVec(), 1)
        assert len(packed) == 8 and regions == []

    def test_zero_length_subvectors(self):
        src = DoubleVec([np.zeros(0, np.int32), np.arange(3, dtype=np.int32)])
        dt = double_vec_custom_datatype()
        packed, regions = pack_all(dt, src, 1)
        dst = DoubleVec()
        unpack_all(dt, dst, 1, packed,
                   [bytes(r.read_bytes()) for r in regions])
        assert dst == src

    def test_wrong_buffer_type_rejected(self):
        from repro.errors import CallbackError
        dt = double_vec_custom_datatype()
        with pytest.raises(CallbackError):
            pack_all(dt, "not a doublevec", 1)

    def test_inorder_flag_set(self):
        assert double_vec_custom_datatype().inorder

    @given(st.lists(st.integers(0, 200), min_size=0, max_size=20),
           st.integers(1, 64))
    def test_roundtrip_random_lengths(self, lengths, frag):
        src = DoubleVec([np.arange(n, dtype=np.int32) * 3 for n in lengths])
        dt = double_vec_custom_datatype()
        packed, regions = pack_all(dt, src, 1, frag_size=frag)
        dst = DoubleVec()
        unpack_all(dt, dst, 1, packed,
                   [bytes(r.read_bytes()) for r in regions],
                   frag_size=frag)
        assert dst == src


class TestOverMPI:
    @pytest.mark.parametrize("total,sub", [(64, 1024), (100_000, 1024),
                                           (100_000, 64)])
    def test_pingpong(self, total, sub):
        dt = double_vec_custom_datatype()

        def fn(comm):
            if comm.rank == 0:
                dv = DoubleVec.uniform(total, sub)
                comm.send(dv, dest=1, datatype=dt)
                back = DoubleVec()
                comm.recv(back, source=1, datatype=dt)
                return dv == back
            dv = DoubleVec()
            comm.recv(dv, source=0, datatype=dt)
            comm.send(dv, dest=0, datatype=dt)
            return dv.total_bytes

        res = run(fn, nprocs=2)
        assert res.results[0] is True
        assert res.results[1] == total
