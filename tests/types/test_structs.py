"""Paper struct types: layouts, packing methods, cross-method agreement."""

import numpy as np
import pytest

from repro.core import pack, pack_all, unpack, unpack_all
from repro.types import (STRUCT_SIMPLE, STRUCT_SIMPLE_NO_GAP,
                         STRUCT_SIMPLE_NO_GAP_PACKED, STRUCT_SIMPLE_PACKED,
                         STRUCT_VEC, STRUCT_VEC_DATA_LEN, STRUCT_VEC_PACKED,
                         make_struct_simple, make_struct_simple_no_gap,
                         make_struct_vec, manual_pack_struct_simple,
                         manual_pack_struct_simple_no_gap,
                         manual_pack_struct_vec, manual_unpack_struct_simple,
                         manual_unpack_struct_simple_no_gap,
                         manual_unpack_struct_vec,
                         struct_simple_custom_datatype, struct_simple_datatype,
                         struct_simple_no_gap_custom_datatype,
                         struct_simple_no_gap_datatype,
                         struct_vec_custom_datatype, struct_vec_datatype)


class TestLayouts:
    """Byte layouts must match #[repr(C)] exactly (Listings 6-8)."""

    def test_struct_simple(self):
        assert STRUCT_SIMPLE.itemsize == 24  # 4B gap before d
        assert [STRUCT_SIMPLE.fields[n][1] for n in "abcd"] == [0, 4, 8, 16]
        assert STRUCT_SIMPLE_PACKED == 20

    def test_struct_simple_no_gap(self):
        assert STRUCT_SIMPLE_NO_GAP.itemsize == 16
        assert [STRUCT_SIMPLE_NO_GAP.fields[n][1] for n in "abc"] == [0, 4, 8]
        assert STRUCT_SIMPLE_NO_GAP_PACKED == 16

    def test_struct_vec(self):
        assert STRUCT_VEC.itemsize == 24 + 4 * STRUCT_VEC_DATA_LEN
        assert STRUCT_VEC.fields["data"][1] == 24
        assert STRUCT_VEC_PACKED == 20 + 4 * STRUCT_VEC_DATA_LEN

    def test_derived_types_match_layouts(self):
        assert struct_simple_datatype().extent == 24
        assert struct_simple_datatype().size == 20
        assert struct_simple_no_gap_datatype().extent == 16
        assert struct_simple_no_gap_datatype().size == 16
        assert struct_simple_no_gap_datatype().is_contiguous
        assert not struct_simple_datatype().is_contiguous
        assert struct_vec_datatype().size == STRUCT_VEC_PACKED

    def test_gap_is_the_only_difference(self):
        """no-gap is contiguous, gapped is not: the Fig. 5 vs 6 contrast."""
        assert struct_simple_datatype().has_gaps
        assert not struct_simple_no_gap_datatype().has_gaps


@pytest.mark.parametrize("count", [1, 2, 17, 256])
class TestStructSimpleMethods:
    def test_manual_roundtrip(self, count):
        arr = make_struct_simple(count)
        packed = manual_pack_struct_simple(arr)
        assert packed.shape[0] == count * 20
        out = np.zeros(count, STRUCT_SIMPLE)
        manual_unpack_struct_simple(packed, out)
        assert (out == arr).all()

    def test_manual_matches_derived_pack(self, count):
        """manual pack and the datatype engine produce identical streams."""
        arr = make_struct_simple(count)
        assert bytes(manual_pack_struct_simple(arr)) == \
            bytes(pack(struct_simple_datatype(), arr, count))

    def test_custom_roundtrip(self, count):
        arr = make_struct_simple(count)
        dt = struct_simple_custom_datatype()
        packed, regions = pack_all(dt, arr, count)
        assert len(packed) == count * 20 and not regions
        out = np.zeros(count, STRUCT_SIMPLE)
        unpack_all(dt, out, count, packed)
        assert (out == arr).all()

    def test_custom_matches_manual(self, count):
        arr = make_struct_simple(count)
        packed, _ = pack_all(struct_simple_custom_datatype(), arr, count)
        assert packed == bytes(manual_pack_struct_simple(arr))


@pytest.mark.parametrize("count", [1, 3, 64])
class TestStructNoGapMethods:
    def test_manual_roundtrip(self, count):
        arr = make_struct_simple_no_gap(count)
        packed = manual_pack_struct_simple_no_gap(arr)
        out = np.zeros(count, STRUCT_SIMPLE_NO_GAP)
        manual_unpack_struct_simple_no_gap(packed, out)
        assert (out == arr).all()

    def test_custom_roundtrip(self, count):
        arr = make_struct_simple_no_gap(count)
        dt = struct_simple_no_gap_custom_datatype()
        packed, regions = pack_all(dt, arr, count)
        assert len(packed) == count * 16 and not regions
        out = np.zeros(count, STRUCT_SIMPLE_NO_GAP)
        unpack_all(dt, out, count, packed)
        assert (out == arr).all()

    def test_pack_is_identity(self, count):
        """Without a gap the packed stream is the raw memory."""
        arr = make_struct_simple_no_gap(count)
        assert bytes(manual_pack_struct_simple_no_gap(arr)) == arr.tobytes()


@pytest.mark.parametrize("count", [1, 2, 5])
class TestStructVecMethods:
    def test_manual_roundtrip(self, count):
        arr = make_struct_vec(count)
        packed = manual_pack_struct_vec(arr)
        assert packed.shape[0] == count * STRUCT_VEC_PACKED
        out = np.zeros(count, STRUCT_VEC)
        manual_unpack_struct_vec(packed, out)
        assert (out == arr).all()

    def test_manual_matches_derived(self, count):
        arr = make_struct_vec(count)
        assert bytes(manual_pack_struct_vec(arr)) == \
            bytes(pack(struct_vec_datatype(), arr, count))

    def test_custom_regions_per_element(self, count):
        arr = make_struct_vec(count)
        dt = struct_vec_custom_datatype()
        packed, regions = pack_all(dt, arr, count)
        assert len(packed) == count * 20  # only scalars in-band
        assert len(regions) == count
        assert all(r.nbytes == 4 * STRUCT_VEC_DATA_LEN for r in regions)

    def test_custom_roundtrip(self, count):
        arr = make_struct_vec(count)
        dt = struct_vec_custom_datatype()
        packed, regions = pack_all(dt, arr, count)
        out = np.zeros(count, STRUCT_VEC)
        unpack_all(dt, out, count, packed,
                   [bytes(r.read_bytes()) for r in regions])
        assert (out == arr).all()

    def test_derived_roundtrip(self, count):
        arr = make_struct_vec(count)
        t = struct_vec_datatype()
        p = pack(t, arr, count)
        out = np.zeros(count, STRUCT_VEC)
        unpack(t, out, count, p)
        assert (out == arr).all()


class TestOverMPI:
    def test_all_methods_agree_over_the_wire(self):
        from repro.mpi import run
        count = 8

        def fn(comm):
            arr = make_struct_simple(count)
            results = {}
            if comm.rank == 0:
                comm.send(arr, dest=1, tag=1,
                          datatype=struct_simple_datatype(), count=count)
                comm.send(arr, dest=1, tag=2,
                          datatype=struct_simple_custom_datatype(), count=count)
                comm.send(manual_pack_struct_simple(arr), dest=1, tag=3)
            else:
                a = np.zeros(count, STRUCT_SIMPLE)
                comm.recv(a, source=0, tag=1,
                          datatype=struct_simple_datatype(), count=count)
                b = np.zeros(count, STRUCT_SIMPLE)
                comm.recv(b, source=0, tag=2,
                          datatype=struct_simple_custom_datatype(), count=count)
                packed = np.zeros(count * 20, np.uint8)
                comm.recv(packed, source=0, tag=3)
                c = np.zeros(count, STRUCT_SIMPLE)
                manual_unpack_struct_simple(packed, c)
                results = dict(a=a, b=b, c=c)
            return results

        res = run(fn, nprocs=2)
        got = res.results[1]
        want = make_struct_simple(count)
        for k in "abc":
            assert (got[k] == want).all(), k
