"""C-flavoured API layer tests (the mpicd-capi analogue)."""

import numpy as np
import pytest

from repro import capi
from repro.errors import MPI_ERR_ARG, MPI_SUCCESS
from repro.mpi import run


def listing2_type(payload_holder):
    """A custom type built with the literal Listing 2-5 conventions."""

    def statefn(context, src, src_count):
        return MPI_SUCCESS, {"ctx": context}

    def freefn(state):
        state.clear()
        return MPI_SUCCESS

    def queryfn(state, buf, count):
        return MPI_SUCCESS, len(buf.header)

    def packfn(state, buf, count, offset, dst):
        data = buf.header
        used = min(len(dst), len(data) - offset)
        dst[:used] = np.frombuffer(data[offset:offset + used], np.uint8)
        return MPI_SUCCESS, used

    def unpackfn(state, buf, count, offset, src):
        buf.header[offset:offset + len(src)] = bytes(src)
        return MPI_SUCCESS

    def region_countfn(state, buf, count):
        return MPI_SUCCESS, 1

    def regionfn(state, buf, count, region_count):
        return MPI_SUCCESS, [buf.payload], [buf.payload.nbytes], None

    err, dtype = capi.MPI_Type_create_custom(
        statefn=statefn, freefn=freefn, queryfn=queryfn, packfn=packfn,
        unpackfn=unpackfn, region_countfn=region_countfn, regionfn=regionfn,
        context="CTX", inorder=1)
    assert err == MPI_SUCCESS
    return dtype


class Obj:
    def __init__(self, header=b"", n=0):
        self.header = bytearray(header)
        self.payload = np.zeros(n, dtype=np.uint8)


class TestTypeCreate:
    def test_query_required(self):
        err, dtype = capi.MPI_Type_create_custom()
        assert err == MPI_ERR_ARG and dtype is None

    def test_inorder_flag(self):
        err, t = capi.MPI_Type_create_custom(
            queryfn=lambda s, b, c: (MPI_SUCCESS, 0), inorder=1)
        assert err == MPI_SUCCESS and t.inorder

    def test_callback_error_code_propagates(self):
        def queryfn(state, buf, count):
            return 42, 0  # nonzero error code

        err, t = capi.MPI_Type_create_custom(queryfn=queryfn)
        assert err == MPI_SUCCESS  # creation itself succeeds

        def fn(comm):
            if comm.rank == 0:
                return capi.MPI_Send(comm, object(), 1, t, 1, 0)
            return None

        from repro.errors import RuntimeAbort
        # The send aborts with the callback's code (via CallbackError).
        res = run([lambda c: capi.MPI_Send(c, object(), 1, t, 1, 0),
                   lambda c: None], nprocs=2)
        assert res.results[0] == 42


class TestPointToPoint:
    def test_send_recv_custom(self):
        def fn(comm):
            t = listing2_type(None)
            if comm.rank == 0:
                obj = Obj(b"capi-head", 64)
                obj.payload[:] = np.arange(64, dtype=np.uint8)
                err = capi.MPI_Send(comm, obj, 1, t, 1, 7)
                return err
            obj = Obj(bytearray(9), 64)
            err, status = capi.MPI_Recv(comm, obj, 1, t, 0, 7)
            return err, bytes(obj.header), int(obj.payload.sum()), status.tag

        res = run(fn, nprocs=2)
        assert res.results[0] == MPI_SUCCESS
        err, header, total, tag = res.results[1]
        assert err == MPI_SUCCESS
        assert header == b"capi-head"
        assert total == sum(range(64))
        assert tag == 7

    def test_isend_wait(self):
        def fn(comm):
            buf = np.arange(16, dtype=np.uint8)
            if comm.rank == 0:
                err, req = capi.MPI_Isend(comm, buf, 16, capi.MPI_BYTE, 1, 0)
                assert err == MPI_SUCCESS
                return capi.MPI_Wait(req)[0]
            out = np.zeros(16, np.uint8)
            err, req = capi.MPI_Irecv(comm, out, 16, capi.MPI_BYTE, 0, 0)
            assert err == MPI_SUCCESS
            err, status = capi.MPI_Wait(req)
            return err, status.nbytes, out.tolist()

        res = run(fn, nprocs=2)
        assert res.results[0] == MPI_SUCCESS
        err, n, data = res.results[1]
        assert (err, n) == (MPI_SUCCESS, 16)
        assert data == list(range(16))

    def test_probe_and_wildcards(self):
        def fn(comm):
            if comm.rank == 0:
                capi.MPI_Send(comm, b"xyz", 3, capi.MPI_BYTE, 1, 3)
                return None
            err, st = capi.MPI_Probe(comm, capi.MPI_ANY_SOURCE,
                                     capi.MPI_ANY_TAG)
            assert err == MPI_SUCCESS
            buf = bytearray(st.nbytes)
            capi.MPI_Recv(comm, buf, st.nbytes, capi.MPI_BYTE, st.source,
                          st.tag)
            return bytes(buf)

        assert run(fn, nprocs=2).results[1] == b"xyz"

    def test_error_codes_not_exceptions(self):
        def fn(comm):
            return capi.MPI_Send(comm, b"x", 1, capi.MPI_BYTE, 99, 0)

        res = run(fn, nprocs=2)
        from repro import errors
        assert res.results[0] == errors.MPI_ERR_RANK

    def test_rank_size_barrier(self):
        def fn(comm):
            err, rank = capi.MPI_Comm_rank(comm)
            err2, size = capi.MPI_Comm_size(comm)
            err3 = capi.MPI_Barrier(comm)
            return (err, err2, err3, rank, size)

        res = run(fn, nprocs=3)
        for r, (e1, e2, e3, rank, size) in enumerate(res.results):
            assert e1 == e2 == e3 == MPI_SUCCESS
            assert rank == r and size == 3
