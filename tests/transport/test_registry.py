"""Backend registry: selection precedence, availability, job gating."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.runtime import run
from repro.ucp.context import UcpConfig
from repro.ucp.transport import (DEFAULT_TRANSPORT, ENV_VAR, TRANSPORT_NAMES,
                                 TransportUnavailableError,
                                 available_transports, create_transport,
                                 resolve_transport_name)
from repro.ucp.transport.inproc import InprocTransport

from .conftest import require_backend


class TestResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_transport_name(None) == DEFAULT_TRANSPORT

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "asyncio")
        assert resolve_transport_name(None) == "asyncio"

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "asyncio")
        assert resolve_transport_name("inproc") == "inproc"

    def test_normalizes_case_and_space(self):
        assert resolve_transport_name(" InProc ") == "inproc"

    def test_unknown_name_names_the_choices(self):
        with pytest.raises(TransportUnavailableError) as ei:
            resolve_transport_name("tcp")
        msg = str(ei.value)
        for name in TRANSPORT_NAMES:
            assert name in msg
        assert ENV_VAR in msg

    def test_unknown_env_var_value(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(TransportUnavailableError):
            resolve_transport_name(None)


class TestRegistry:
    def test_every_backend_listed(self):
        avail = available_transports()
        assert set(avail) == set(TRANSPORT_NAMES)
        assert avail["inproc"] == ""  # threads always work

    def test_create_default_is_inproc(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert isinstance(create_transport(None), InprocTransport)

    def test_create_each_available_backend(self):
        for name, reason in available_transports().items():
            if reason:
                continue
            assert create_transport(name).name == name


class TestJobGating:
    def test_shm_rejects_sanitize(self):
        require_backend("shm")
        t = create_transport("shm")
        with pytest.raises(TransportUnavailableError) as ei:
            t.check_job_supported(UcpConfig(), sanitize=True)
        assert "sanitize" in str(ei.value)
        assert "shm" in str(ei.value)

    def test_run_rejects_unknown_transport(self):
        def fn(comm):
            return comm.rank

        with pytest.raises(TransportUnavailableError):
            run(fn, nprocs=2, transport="bogus")

    def test_jobresult_names_backend(self, backend):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.arange(4.0), dest=1)
            else:
                buf = np.empty(4)
                comm.recv(buf, source=0)
            return comm.rank

        res = run(fn, nprocs=2, transport=backend)
        assert res.transport == backend


class TestMsgIdNamespacing:
    def test_ids_deterministic_and_rank_namespaced(self):
        """Per-rank counters make msg_ids a pure function of the program,
        so remote acks resolve and cross-backend traces can be diffed."""
        from repro.ucp.context import UcpContext

        fabric = UcpContext(UcpConfig()).create_fabric(3)
        w0, w1 = fabric.worker(0), fabric.worker(1)
        a, b = w0.next_msg_id(), w0.next_msg_id()
        c = w1.next_msg_id()
        assert b == a + 1
        assert (a >> 40) == 1 and (c >> 40) == 2  # rank+1 namespace
        assert a != c
