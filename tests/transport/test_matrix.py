"""The transport conformance matrix.

One contract, every backend: byte-identical results, identical virtual
clocks, event-identical message traces.  The shapes cover each protocol
family (eager, rendezvous, derived/custom datatypes, collectives,
wildcards) plus the fault layer; ``run_matrix`` does the cross-backend
comparison against inproc.
"""

from __future__ import annotations

import numpy as np

from repro.mpi.runtime import run
from repro.types import (DoubleVec, double_vec_custom_datatype,
                         make_struct_simple, struct_simple_custom_datatype,
                         struct_simple_datatype)

from .conftest import run_matrix


class TestProtocolShapes:
    def test_eager_pingpong(self):
        def fn(comm):
            n = 1 << 10
            if comm.rank == 0:
                comm.send(np.arange(n, dtype=np.float64), dest=1, tag=1)
                buf = np.empty(n, dtype=np.float64)
                comm.recv(buf, source=1, tag=2)
                return float(buf.sum())
            buf = np.empty(n, dtype=np.float64)
            comm.recv(buf, source=0, tag=1)
            comm.send(buf * 2, dest=0, tag=2)
            return float(buf.sum())

        run_matrix(fn, nprocs=2)

    def test_rendezvous_large_exchange(self):
        def fn(comm):
            n = 1 << 18  # well past the eager limit
            peer = 1 - comm.rank
            mine = np.full(n, comm.rank + 1, dtype=np.uint8)
            theirs = np.empty(n, dtype=np.uint8)
            rreq = comm.irecv(theirs, source=peer, tag=0)
            sreq = comm.isend(mine, dest=peer, tag=0)
            rreq.wait()
            sreq.wait()
            return int(theirs[0]), int(theirs.sum())

        run_matrix(fn, nprocs=2)

    def test_derived_and_custom_datatype_ring(self):
        def fn(comm):
            derived = struct_simple_datatype()
            custom = struct_simple_custom_datatype()
            dv_t = double_vec_custom_datatype()
            dst = (comm.rank + 1) % comm.size
            src = (comm.rank - 1) % comm.size
            s = make_struct_simple(64)
            dv = DoubleVec.uniform(10_000, 512)
            reqs = [comm.isend(s, dest=dst, tag=1, datatype=derived,
                               count=64),
                    comm.isend(s, dest=dst, tag=2, datatype=custom,
                               count=64),
                    comm.isend(dv, dest=dst, tag=3, datatype=dv_t)]
            o1 = np.zeros_like(s)
            comm.recv(o1, source=src, tag=1, datatype=derived, count=64)
            o2 = np.zeros_like(s)
            comm.recv(o2, source=src, tag=2, datatype=custom, count=64)
            o3 = DoubleVec()
            comm.recv(o3, source=src, tag=3, datatype=dv_t)
            for r in reqs:
                r.wait()
            return (float(o1["a"].sum()), float(o2["d"].sum()),
                    o3.total_bytes)

        run_matrix(fn, nprocs=3)

    def test_collectives(self):
        def fn(comm):
            x = np.full(512, comm.rank + 1.0)
            summed = np.empty_like(x)
            comm.allreduce(x, summed)
            ranks = np.empty(comm.size, dtype=np.int64)
            comm.allgather(np.array([comm.rank], dtype=np.int64), ranks)
            comm.barrier()
            root_view = comm.bcast(
                np.arange(64, dtype=np.float64) if comm.rank == 0
                else np.empty(64, dtype=np.float64), root=0)
            return (float(summed.sum()), [int(r) for r in ranks],
                    float(np.asarray(root_view).sum()))

        run_matrix(fn, nprocs=4)

    def test_wildcard_source_fifo(self):
        def fn(comm):
            if comm.rank == 0:
                got = []
                buf = np.empty(1, dtype=np.int64)
                for _ in range(comm.size - 1):
                    info = comm.recv(buf, source=-1, tag=7)
                    got.append((info.source, int(buf[0])))
                return sorted(got)
            comm.send(np.array([comm.rank * 10], dtype=np.int64),
                      dest=0, tag=7)
            return None

        run_matrix(fn, nprocs=3)

    def test_self_send(self):
        def fn(comm):
            buf = np.empty(16, dtype=np.float64)
            req = comm.isend(np.arange(16, dtype=np.float64),
                             dest=comm.rank, tag=5)
            comm.recv(buf, source=comm.rank, tag=5)
            req.wait()
            return float(buf.sum())

        run_matrix(fn, nprocs=2)


class TestFaultMatrix:
    def test_seeded_chaos_with_reliability(self):
        plan = {"seed": 42, "drop": 0.3, "corrupt": 0.1, "duplicate": 0.1,
                "window": (0, 8)}

        def fn(comm):
            n = 1 << 12
            if comm.rank == 0:
                for k in range(6):
                    comm.send(np.arange(n, dtype=np.float64) + k,
                              dest=1, tag=3 + k)
                return None
            tot = 0.0
            for k in range(6):
                buf = np.empty(n, dtype=np.float64)
                comm.recv(buf, source=0, tag=3 + k)
                tot += float(buf[-1])
            return tot

        results = run_matrix(fn, nprocs=2, faults=plan, reliability=True)
        ref = results["inproc"]
        assert ref.reliability[0]["retransmits"] > 0  # the plan did bite
        for name, got in results.items():
            assert got.reliability == ref.reliability, \
                f"{name}: reliability counters diverge"
            assert got.fault_trace == ref.fault_trace, \
                f"{name}: fault traces diverge"

    def test_crash_fault_survivor_semantics(self):
        plan = {"crash": {0: 2e-5}}

        def fn(comm):
            n = 1 << 14
            if comm.rank == 0:
                for k in range(40):
                    comm.send(np.zeros(n), dest=1, tag=k)
                return "all-sent"
            got = 0
            try:
                for k in range(40):
                    buf = np.empty(n)
                    comm.recv(buf, source=0, tag=k)
                    got += 1
            except Exception as exc:
                return (type(exc).__name__, got)
            return ("all", got)

        results = run_matrix(fn, nprocs=2, faults=plan, reliability=True)
        ref = results["inproc"]
        assert ref.crashed == [0]
        assert ref.results[1][0] == "ProcFailedError"

    def test_exhausted_retry_budget_poisons_identically(self):
        plan = {"seed": 7, "drop": 1.0, "window": (0, 1)}

        def fn(comm):
            from repro.mpi.comm import ERRORS_RETURN
            comm.set_errhandler(ERRORS_RETURN)
            n = 1 << 12
            if comm.rank == 0:
                comm.send(np.arange(n, dtype=np.float64), dest=1, tag=3)
                return None
            buf = np.empty(n, dtype=np.float64)
            try:
                comm.recv(buf, source=0, tag=3)
                return "delivered"
            except Exception as exc:
                return type(exc).__name__

        results = run_matrix(
            fn, nprocs=2, faults=plan,
            reliability={"enabled": True, "retry_limit": 2})
        ref = results["inproc"]
        assert ref.reliability[0]["exhausted"] == 1


class TestMemoryAccounting:
    def test_no_pool_leaks_on_any_backend(self, backend):
        """Every backend's teardown must return all staging: outstanding
        ends at zero, the invariant the inproc pool tests rely on."""
        def fn(comm):
            peer = 1 - comm.rank
            for n in (1 << 10, 1 << 17):
                mine = np.zeros(n, dtype=np.uint8)
                theirs = np.empty(n, dtype=np.uint8)
                rreq = comm.irecv(theirs, source=peer, tag=0)
                sreq = comm.isend(mine, dest=peer, tag=0)
                rreq.wait()
                sreq.wait()

        res = run(fn, nprocs=2, transport=backend)
        for rank, snap in enumerate(res.memory):
            assert snap["pool"]["outstanding"] == 0, \
                f"rank {rank}: staging leaked on {backend}"

    def test_shm_zero_copy_uses_arena(self):
        """Non-contiguous derived sends on shm pack into the shared arena
        (no spill), the tentpole's zero-bounce-copy claim."""
        from .conftest import require_backend
        require_backend("shm")

        def fn(comm):
            dtype = struct_simple_datatype()
            s = make_struct_simple(256)
            if comm.rank == 0:
                comm.send(s, dest=1, tag=1, datatype=dtype, count=256)
            else:
                out = np.zeros_like(s)
                comm.recv(out, source=0, tag=1, datatype=dtype, count=256)
                return float(out["a"].sum())

        res = run(fn, nprocs=2, transport="shm")
        snap = res.memory[0]["pool"]
        assert snap["arena_spills"] == 0
        assert snap["arena_used"] > 0
