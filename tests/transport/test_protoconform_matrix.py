"""PR 7's protocol conformance cases, replayed per backend.

The model's predictions are backend-independent; a divergence that shows
up on one backend only is a transport bug by construction.  This is the
seeded-case half of the conformance matrix (tests/transport/test_matrix
is the program-shape half).
"""

from __future__ import annotations

import pytest

from repro.analyze.protoconform import builtin_cases, run_conformance


def _case_names():
    return [c.name for c in builtin_cases()]


@pytest.mark.parametrize("case_name", _case_names())
def test_conformance_case_per_backend(backend, case_name):
    case = next(c for c in builtin_cases() if c.name == case_name)
    report = run_conformance([case], transport=backend)
    assert not report.diagnostics, (
        f"case '{case_name}' diverges from the protocol model on "
        f"'{backend}': "
        + "; ".join(d.message for d in report.diagnostics))
