"""Wire-envelope codec: the executable RPD810/811 rules.

These are the "actually crosses a process boundary" checks the in-process
seed never had: every envelope must be plain data (`assert_portable`), and
a decode must rebuild a message whose delivery observables are identical
to the original's.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.errors import TransportError
from repro.ucp.transport.envelope import (assert_portable, bytes_chunks,
                                          chunk_bytes, decode_envelope,
                                          decode_error, encode_envelope,
                                          encode_error)
from repro.ucp.wire import WireHeader, WireMessage


def _msg(protocol="eager", poisoned=None, rndv=False) -> WireMessage:
    hdr = WireHeader(tag=0x42, source=1, total_bytes=12,
                     entry_lengths=(8, 4), packed_entries=2,
                     protocol=protocol, signature=(("d", 1), ("i", 2)),
                     msg_id=(2 << 40) | 7)
    hdr.seq = 5
    hdr.frag_crcs = (123, 456)
    msg = WireMessage(hdr, [np.arange(8, dtype=np.uint8),
                            np.arange(4, dtype=np.uint8) + 100],
                      send_ready=1e-6, wire_time=2e-6, rndv=rndv,
                      recv_cost=3e-6)
    msg.duplicate_of = 9 if protocol == "eager" else None
    msg.poisoned = poisoned
    return msg


class TestAssertPortable:
    def test_plain_data_passes(self):
        assert_portable({"a": 1, "b": (1.5, "x", b"y", None, True),
                         "c": [{"k": 2}]})

    @pytest.mark.parametrize("bad", [
        np.arange(3),                      # live buffer view
        threading.Event(),                 # live handle (RPD811)
        ValueError("boom"),                # live exception object
        {1, 2},                            # unordered, not wire-stable
    ])
    def test_live_objects_rejected(self, bad):
        with pytest.raises(TransportError) as ei:
            assert_portable({"field": bad})
        assert "field" in str(ei.value)  # the offending path is named

    def test_nested_path_named(self):
        with pytest.raises(TransportError) as ei:
            assert_portable({"outer": [{"inner": object()}]})
        assert "inner" in str(ei.value)


class TestEnvelopeRoundtrip:
    def test_header_and_costs_survive(self):
        msg = _msg()
        doc = encode_envelope(msg)
        assert_portable(doc)
        # The document must truly cross a boundary.
        doc = pickle.loads(pickle.dumps(doc))
        out = decode_envelope(doc, [c.copy() for c in msg.chunks])
        assert out.header.tag == msg.header.tag
        assert out.header.source == msg.header.source
        assert out.header.entry_lengths == msg.header.entry_lengths
        assert out.header.protocol == msg.header.protocol
        assert out.header.signature == msg.header.signature
        assert out.header.seq == msg.header.seq
        assert out.header.frag_crcs == msg.header.frag_crcs
        assert out.header.msg_id == msg.header.msg_id
        # Virtual-time contract: every cost number rides the envelope.
        assert out.send_ready == msg.send_ready
        assert out.wire_time == msg.wire_time
        assert out.rndv == msg.rndv
        assert out.recv_cost == msg.recv_cost
        assert out.duplicate_of == msg.duplicate_of
        assert out.remote_origin == msg.header.source

    def test_fresh_local_handles(self):
        """RPD811: the completion event never crosses; the decoded side
        gets its own."""
        msg = _msg()
        msg.completed.set()
        out = decode_envelope(encode_envelope(msg), [])
        assert out.completed is not msg.completed
        assert not out.completed.is_set()

    def test_poisoned_crosses_as_blob(self):
        poison = TransportError("retry budget exhausted")
        doc = encode_envelope(_msg(poisoned=poison))
        assert isinstance(doc["poisoned"], bytes)
        out = decode_envelope(pickle.loads(pickle.dumps(doc)), [])
        assert isinstance(out.poisoned, TransportError)
        assert "exhausted" in str(out.poisoned)

    def test_signature_normalized_from_lists(self):
        doc = encode_envelope(_msg())
        doc["signature"] = [["d", 1], ["i", 2]]  # JSON-ish decoder shape
        out = decode_envelope(doc, [])
        assert out.header.signature == (("d", 1), ("i", 2))


class TestErrorCodec:
    def test_roundtrip(self):
        err = decode_error(encode_error(ValueError("nope")))
        assert isinstance(err, ValueError) and str(err) == "nope"

    def test_none_passthrough(self):
        assert encode_error(None) is None
        assert decode_error(None) is None

    def test_unpicklable_degrades_to_transport_error(self):
        class Evil(Exception):
            def __reduce__(self):
                raise RuntimeError("cannot pickle me")

        err = decode_error(encode_error(Evil("secret")))
        assert isinstance(err, TransportError)
        assert "Evil" in str(err)


class TestPayloadCodec:
    def test_chunk_bytes_roundtrip(self):
        chunks = [np.arange(16, dtype=np.uint8),
                  np.zeros(0, dtype=np.uint8)]
        out = bytes_chunks(chunk_bytes(chunks))
        assert len(out) == 2
        assert (out[0] == chunks[0]).all()
        assert out[1].size == 0

    def test_generic_protocol_chunks_are_private_copies(self):
        """Unpack callbacks may retain chunks past delivery; the generic
        protocol therefore gets copies, not frame views."""
        payloads = chunk_bytes([np.arange(8, dtype=np.uint8)])
        view = bytes_chunks(payloads, protocol="eager")[0]
        copy = bytes_chunks(payloads, protocol="generic")[0]
        assert not view.flags.writeable  # frombuffer view of the frame
        assert copy.flags.writeable      # private, retainable
