"""ArenaBufferPool: shared-segment slabs with address-keyed release."""

from __future__ import annotations

import numpy as np
import pytest

from .conftest import require_backend


@pytest.fixture
def arena_pool():
    require_backend("shm")
    from multiprocessing import shared_memory

    from repro.ucp.transport.shm import ArenaBufferPool

    shm = shared_memory.SharedMemory(create=True, size=1 << 16)
    pool = ArenaBufferPool(shm)
    try:
        yield pool
    finally:
        # The pool's segment view (and any test-held slabs) export
        # pointers into the mapping; drop them before closing.
        import gc
        pool.detach()
        del pool
        gc.collect()
        try:
            shm.close()
        except BufferError:
            pass  # a test kept a slab alive; unlink still reclaims it
        shm.unlink()


class TestArenaAllocation:
    def test_slabs_live_in_the_segment(self, arena_pool):
        buf = arena_pool.acquire(1000)
        assert buf.shape == (1000,)
        assert arena_pool.arena_offset(buf) is not None

    def test_release_by_address_not_base_chain(self, arena_pool):
        """numpy collapses ``.base`` chains to the whole segment; release
        must still find the slab (not swallow the arena)."""
        buf = arena_pool.acquire(512)
        view = buf[10:200]  # .base chain now ends at the segment owner
        assert arena_pool.release(view) is True
        snap = arena_pool.snapshot()
        assert snap["outstanding"] == 0
        assert snap["pooled_buffers"] == 1

    def test_free_list_recycles_arena_slabs(self, arena_pool):
        a = arena_pool.acquire(512)
        off_a = arena_pool.arena_offset(a)
        arena_pool.release(a)
        b = arena_pool.acquire(512)
        assert arena_pool.arena_offset(b) == off_a  # same slab reused
        assert arena_pool.snapshot()["arena_used"] == 512  # no new carve

    def test_exhaustion_spills_to_private_memory(self, arena_pool):
        big = arena_pool.acquire(1 << 15)       # half the segment
        bigger = arena_pool.acquire(1 << 15)    # the other half (rounded)
        spill = arena_pool.acquire(1 << 14)     # no room left
        assert arena_pool.arena_offset(spill) is None
        assert arena_pool.spills == 1
        # Spilled buffers still release cleanly (foreign-release path).
        for buf in (big, bigger, spill):
            assert arena_pool.release(buf) is True
        assert arena_pool.snapshot()["outstanding"] == 0

    def test_foreign_memory_has_no_offset(self, arena_pool):
        assert arena_pool.arena_offset(np.zeros(8, dtype=np.uint8)) is None
        assert arena_pool.arena_offset(np.zeros(8, dtype=np.float64)) is None

    def test_snapshot_reports_arena_counters(self, arena_pool):
        arena_pool.acquire(100)
        snap = arena_pool.snapshot()
        assert snap["arena_size"] == 1 << 16
        assert snap["arena_used"] >= 100
        assert snap["arena_spills"] == 0
