"""Transport conformance fixtures.

The matrix contract: a job is a pure function of (program, config, seed) —
the backend may change how bytes move, never what arrives or when in
virtual time.  ``run_matrix`` runs one job on every practicable backend
and asserts results, clocks and message traces are identical to inproc.
"""

from __future__ import annotations

import pytest

from repro.mpi.runtime import run
from repro.ucp.transport import TRANSPORT_NAMES, available_transports

_AVAILABLE = available_transports()


def require_backend(name: str) -> None:
    """Skip (with the platform's reason) when a backend can't run here."""
    reason = _AVAILABLE.get(name)
    if reason:
        pytest.skip(f"transport '{name}' unavailable: {reason}")


@pytest.fixture(params=TRANSPORT_NAMES)
def backend(request) -> str:
    """Every registered backend, skipping unavailable ones with a reason."""
    require_backend(request.param)
    return request.param


@pytest.fixture(params=[n for n in TRANSPORT_NAMES if n != "inproc"])
def remote_backend(request) -> str:
    """The process/socket-boundary backends only."""
    require_backend(request.param)
    return request.param


def run_matrix(fn, nprocs: int, backends=TRANSPORT_NAMES, **kwargs) -> dict:
    """Run one job per backend; assert observables match inproc exactly.

    Returns ``{backend: JobResult}`` (unavailable backends omitted).
    Traces are compared event-for-event — virtual-time identity is the
    strong form of the conformance contract, byte-identical results the
    weak one.
    """
    results = {}
    for name in backends:
        if _AVAILABLE.get(name):
            continue
        results[name] = run(fn, nprocs=nprocs, transport=name,
                            trace_messages=True, **kwargs)
    ref = results["inproc"]
    for name, got in results.items():
        if name == "inproc":
            continue
        assert got.results == ref.results, \
            f"{name}: results diverge from inproc"
        assert got.clocks == ref.clocks, \
            f"{name}: virtual clocks diverge from inproc"
        assert got.crashed == ref.crashed, \
            f"{name}: crash accounting diverges from inproc"
        assert got.traces == ref.traces, \
            f"{name}: message traces diverge from inproc"
    return results
