"""CLI behavior: exit codes, JSON schema stability, filters."""

import json
import os

import pytest

from repro.analyze.cli import main

HERE = os.path.dirname(__file__)
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))
FIXTURES = os.path.join(HERE, "fixtures")

#: Frozen key sets of the v1 JSON schema; changing these is a breaking
#: change and requires a SCHEMA_VERSION bump.
TOP_KEYS = {"version", "tool", "findings", "summary"}
FINDING_KEYS = {"code", "severity", "mpi_error", "message", "hint",
                "file", "line", "col", "subject"}
SUMMARY_KEYS = {"files", "findings", "by_code", "by_severity"}


def run_json(args, capsys):
    rc = main(args + ["--format", "json"])
    return rc, json.loads(capsys.readouterr().out)


class TestCleanTree:
    def test_shipped_paths_clean_under_strict(self, capsys):
        rc = main([os.path.join(REPO, "examples"),
                   os.path.join(REPO, "benchmarks"),
                   os.path.join(REPO, "src", "repro", "types"),
                   "--strict"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no findings" in out


class TestBadCorpus:
    def test_at_least_ten_distinct_codes(self, capsys):
        rc, doc = run_json([FIXTURES, "--import", "--strict"], capsys)
        assert rc == 1
        fired = {f["code"] for f in doc["findings"]}
        assert len(fired) >= 10, f"only {sorted(fired)}"
        # every family is represented
        assert any(c.startswith("RPD1") for c in fired)
        assert any(c.startswith("RPD2") for c in fired)
        assert any(c.startswith("RPD3") for c in fired)

    def test_perf_codes_hidden_without_strict(self, capsys):
        rc, doc = run_json([FIXTURES, "--import"], capsys)
        assert rc == 1
        assert all(f["severity"] != "perf" for f in doc["findings"])


class TestJsonSchema:
    def test_schema_v1_keys_are_stable(self, capsys):
        rc, doc = run_json([FIXTURES, "--import", "--strict"], capsys)
        assert doc["version"] == 1
        assert doc["tool"] == "repro.analyze"
        assert set(doc) == TOP_KEYS
        assert set(doc["summary"]) == SUMMARY_KEYS
        for f in doc["findings"]:
            assert set(f) == FINDING_KEYS
        assert doc["summary"]["findings"] == len(doc["findings"])
        assert sum(doc["summary"]["by_code"].values()) == len(doc["findings"])

    def test_findings_sorted_by_location(self, capsys):
        _, doc = run_json([FIXTURES, "--import", "--strict"], capsys)
        keys = [(f["file"], f["line"], f["col"], f["code"])
                for f in doc["findings"]]
        assert keys == sorted(keys)


class TestExitCodesAndFilters:
    def test_no_paths_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["/no/such/dir-zzz"]) == 2

    def test_list_codes(self, capsys):
        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        assert "RPD101" in out and "RPD304" in out

    def test_select_filters_to_one_family(self, capsys):
        rc, doc = run_json([FIXTURES, "--import", "--strict",
                            "--select", "RPD3"], capsys)
        assert rc == 1
        assert all(f["code"].startswith("RPD3") for f in doc["findings"])

    def test_ignore_can_silence_everything(self, capsys):
        rc, doc = run_json([FIXTURES, "--import", "--strict",
                            "--ignore", "RPD"], capsys)
        assert rc == 0
        assert doc["findings"] == []

    def test_single_clean_file_exits_zero(self, capsys):
        rc = main([os.path.join(FIXTURES, "programs", "good_ring.py"),
                   "--strict"])
        assert rc == 0
