"""Lint fixture: head-to-head blocking ring exchange (RPD304)."""


def ring_step(comm, outbox, inbox):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(outbox, dest=right, tag=0)
    comm.recv(inbox, source=left, tag=0)
