"""Lint fixture: send and recv tags can never match (RPD301)."""


def exchange(comm):
    if comm.rank == 0:
        comm.send(b"payload", dest=1, tag=7)
    else:
        buf = bytearray(7)
        comm.recv(buf, source=0, tag=8)
