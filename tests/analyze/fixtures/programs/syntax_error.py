"""Lint fixture: unparseable source (RPD300)."""

def broken(:
    pass
