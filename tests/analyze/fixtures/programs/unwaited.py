"""Lint fixture: nonblocking requests that are never waited on (RPD302)."""


def fire_and_forget(comm, buf):
    req = comm.isend(buf, dest=1, tag=0)
    return buf  # req is never read again


def discarded(comm, buf):
    comm.irecv(buf, source=0, tag=0)
