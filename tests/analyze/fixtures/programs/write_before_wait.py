"""Lint fixture: buffer modified while a request is in flight (RPD303)."""


def clobber(comm, buf):
    req = comm.isend(buf, dest=1, tag=0)
    buf[0] = 99  # the send may not have read the buffer yet
    req.wait()
