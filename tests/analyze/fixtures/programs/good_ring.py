"""Lint fixture: the deadlock-free version of the ring exchange (clean)."""


def ring_step(comm, outbox, inbox):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    rreq = comm.irecv(inbox, source=left, tag=0)
    sreq = comm.isend(outbox, dest=right, tag=0)
    rreq.wait()
    sreq.wait()
