"""Flow fixture: collective order divergence (RPD520).

Rank 0 runs ``barrier`` then ``bcast``; every other rank runs them in the
opposite order, so the ranks' first collectives on the communicator
disagree.
"""

import numpy as np

NPROCS = 3


def main(comm):
    buf = np.zeros(16)
    if comm.rank == 0:
        comm.barrier()
        comm.bcast(buf, root=0)
    else:
        comm.bcast(buf, root=0)
        comm.barrier()
