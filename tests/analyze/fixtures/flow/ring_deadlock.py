"""Flow fixture: classic ring deadlock (RPD500).

Every rank blocks in a rendezvous-size ``send`` to its right neighbor
before any rank reaches the ``recv`` — the wait-for graph is one big
cycle.  The dynamic sanitizer reports the same program as RPD440.
"""

import numpy as np

NPROCS = 3


def main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    outbox = np.full(8192, float(comm.rank))   # 64 KiB: over the eager limit
    inbox = np.empty(8192)
    comm.send(outbox, dest=right, tag=6)
    comm.recv(inbox, source=left, tag=6)
    return float(inbox[0])
