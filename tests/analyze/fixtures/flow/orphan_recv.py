"""Flow fixture: receive that no send can ever match (RPD502).

Rank 1 sends with tag 7, but rank 0 blocks in a receive for tag 9; the
sender terminates (the small send completes eagerly) and rank 0 waits
forever.
"""

import numpy as np

NPROCS = 2


def main(comm):
    if comm.rank == 1:
        comm.send(np.zeros(8), dest=0, tag=7)
    else:
        inbox = np.empty(8)
        comm.recv(inbox, source=1, tag=9)
