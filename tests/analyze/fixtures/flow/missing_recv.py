"""Flow fixture: rank-conditional missing receive (RPD501).

Every nonzero rank sends a small (eager) message to rank 0, but rank 0
only ever posts a single receive — at any job size beyond 2, the other
senders' messages are never received.
"""

import numpy as np

NPROCS = 4


def main(comm):
    if comm.rank != 0:
        payload = np.arange(4, dtype="<f8")
        comm.send(payload, dest=0, tag=3)
    else:
        inbox = np.empty(4)
        comm.recv(inbox, source=1, tag=3)
