"""Flow fixture: a tag escapes the abstract domain (RPD530).

The tag comes from the environment, so the static verifier cannot know
it; instead of guessing it reports the analysis incomplete and matching
falls back to the per-file lint heuristics.
"""

import os

import numpy as np

NPROCS = 2


def main(comm):
    tag = int(os.environ.get("EXCHANGE_TAG", "0"))
    if comm.rank == 0:
        comm.send(np.zeros(4), dest=1, tag=tag)
    else:
        inbox = np.empty(4)
        comm.recv(inbox, source=0, tag=tag)
