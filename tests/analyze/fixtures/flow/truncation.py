"""Flow fixture: message statically larger than the receive (RPD511).

Same element type on both sides, but the sender ships 100 doubles into a
50-double receive — MPI truncation, an error at delivery time.
"""

import numpy as np

NPROCS = 2


def main(comm):
    if comm.rank == 0:
        comm.send(np.zeros(100), dest=1, tag=2)
    else:
        inbox = np.zeros(50)
        comm.recv(inbox, source=0, tag=2)
