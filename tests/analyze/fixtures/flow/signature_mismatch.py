"""Flow fixture: static type-signature mismatch across a branch (RPD510).

The sender describes four float64 values, the receiver eight int32 —
the byte counts agree, but MPI type matching compares scalar sequences,
not sizes.
"""

import numpy as np

NPROCS = 2


def main(comm):
    if comm.rank == 0:
        comm.send(np.zeros(4, dtype="<f8"), dest=1, tag=1)
    else:
        inbox = np.zeros(8, dtype="<i4")
        comm.recv(inbox, source=0, tag=1)
