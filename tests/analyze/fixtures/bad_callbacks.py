"""Fixture corpus: custom datatypes violating one callback contract each.

Module-level datatypes exercise the static checks (RPD201-203); the
``ANALYZE_CONTRACT_CASES`` entries run the symbolic harness (RPD210-214).
"""

import numpy as np

from repro.core import type_create_custom

_N = 16  # bytes moved by every well-formed fixture type


def _query(state, buf, count):
    return _N


def _pack(state, buf, count, offset, dst):
    step = min(dst.shape[0], _N - offset)
    dst[:step] = buf[offset:offset + step]
    return int(step)


def _unpack(state, buf, count, offset, src):
    buf[offset:offset + src.shape[0]] = src


# RPD201: query_fn cannot accept the documented (state, buf, count).
BAD_ARITY = type_create_custom(query_fn=lambda state: _N,
                               name="bad-arity")

# RPD202: pack without unpack; the type only travels one way.
HALF_DUPLEX = type_create_custom(query_fn=_query, pack_fn=_pack,
                                 name="half-duplex")

# RPD203: inorder constrains a packed stream that does not exist.
INORDER_NO_PACK = type_create_custom(query_fn=_query, inorder=True,
                                     name="inorder-no-pack")


# RPD210: promises 2*_N bytes, delivers _N.
LYING_QUERY = type_create_custom(
    query_fn=lambda state, buf, count: 2 * _N,
    pack_fn=_pack, unpack_fn=_unpack, name="lying-query")


def _lossy_unpack(state, buf, count, offset, src):
    # Drops the second half of every element: breaks the roundtrip.
    if offset < _N // 2:
        keep = min(src.shape[0], _N // 2 - offset)
        buf[offset:offset + keep] = src[:keep]


# RPD211: pack -> unpack -> pack does not reproduce the stream.
BAD_ROUNDTRIP = type_create_custom(query_fn=_query, pack_fn=_pack,
                                   unpack_fn=_lossy_unpack,
                                   name="bad-roundtrip")

# RPD212: region_count_fn promises 2 regions, region_fn returns 1.
from repro.core import Region  # noqa: E402


REGION_LIAR = type_create_custom(
    query_fn=lambda state, buf, count: 0,
    region_count_fn=lambda state, buf, count: 2,
    region_fn=lambda state, buf, count, n: [Region(buf)],
    name="region-liar")


class _Handle:
    """Stands in for a state owning a real resource (file, registration)."""

    def close(self):
        pass


# RPD213: state owns a resource but no state_free_fn is registered.
LEAKY_STATE = type_create_custom(
    query_fn=_query, pack_fn=_pack, unpack_fn=_unpack,
    state_fn=lambda context, buf, count: _Handle(),
    name="leaky-state")


def _raising_pack(state, buf, count, offset, dst):
    raise RuntimeError("serializer exploded")


# RPD214: a callback raises during the harness.
RAISER = type_create_custom(query_fn=_query, pack_fn=_raising_pack,
                            unpack_fn=_unpack, name="raiser")


def _buf():
    return np.arange(_N, dtype=np.uint8)


def _zeros():
    return np.zeros(_N, dtype=np.uint8)


#: Harness cases consumed by ``repro-analyze --import``.
ANALYZE_CONTRACT_CASES = [
    {"dtype": LYING_QUERY, "send_buf": _buf(), "recv_buf": _zeros()},
    {"dtype": BAD_ROUNDTRIP, "send_buf": _buf(), "recv_buf": _zeros()},
    {"dtype": REGION_LIAR, "send_buf": _buf(), "recv_buf": _zeros()},
    {"dtype": LEAKY_STATE, "send_buf": _buf(), "recv_buf": _zeros()},
    {"dtype": RAISER, "send_buf": _buf(), "recv_buf": _zeros()},
]
