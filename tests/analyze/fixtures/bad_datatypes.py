"""Fixture corpus: one deliberately defective datatype per RPD1xx code.

Imported by the analyzer's ``--import`` mode and by the typecheck tests;
each module-level binding names the code it must trigger.
"""

from repro.core import FLOAT64
from repro.core.datatype import DerivedDatatype
from repro.core.derived import (contiguous, create_struct, hindexed, resized,
                                vector)
from repro.core.typemap import Block, Typemap

# RPD101: stride (1 element = 8 B) smaller than the block (2 elements).
OVERLAP = vector(3, 2, 1, FLOAT64)

# RPD102: a block at a negative displacement while the declared window
# starts at 0 (hand-built; the constructors default to natural bounds).
OUT_OF_BOUNDS = DerivedDatatype(
    Typemap([Block(-4, 4), Block(0, 8)], lb=0, extent=8), "struct",
    name="out-of-bounds")

# RPD103: resized to a zero extent while still packing 16 bytes.
ZERO_EXTENT = resized(contiguous(2, FLOAT64), 0, 0)

# RPD104: resized smaller than the true extent; array elements alias.
ALIASING_RESIZE = resized(create_struct([1, 1], [0, 8], [FLOAT64, FLOAT64]),
                          0, 8)

# RPD105: declaration order walks addresses backwards.
OUT_OF_ORDER = create_struct([1, 1], [8, 0], [FLOAT64, FLOAT64])

# RPD106: all blocks have zero length.
EMPTY = hindexed([0], [0], FLOAT64)

# RPD110: 1100 scattered 8-byte regions, above the iovec soft limit.
MANY_REGIONS = hindexed([1] * 1100, [i * 16 for i in range(1100)], FLOAT64)

# RPD111: 64 fragments of 8 bytes, far below the efficient entry size.
TINY_FRAGMENTS = vector(64, 1, 2, FLOAT64)

# RPD112: 16 packed bytes spread over a ~40 KiB extent (rendezvous-sized).
SPARSE = vector(2, 1, 5000, FLOAT64)
