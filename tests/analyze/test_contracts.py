"""Callback contract verifier: static checks and the symbolic harness."""

import importlib.util
import os

import numpy as np
import pytest

from repro.analyze import (check_callback_signatures, run_contract_harness,
                           verify_callbacks)
from repro.types import structs
from repro.types.doublevec import DoubleVec, double_vec_custom_datatype

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.fixture(scope="module")
def bad():
    path = os.path.join(FIXTURES, "bad_callbacks.py")
    spec = importlib.util.spec_from_file_location("fx_bad_callbacks", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _codes(diags):
    return sorted({d.code for d in diags})


class TestStaticChecks:
    def test_bad_arity(self, bad):
        diags = check_callback_signatures(bad.BAD_ARITY.callbacks,
                                          subject="bad-arity")
        assert _codes(diags) == ["RPD201"]

    def test_half_duplex(self, bad):
        assert "RPD202" in _codes(
            check_callback_signatures(bad.HALF_DUPLEX.callbacks))

    def test_inorder_without_stream(self, bad):
        assert "RPD203" in _codes(check_callback_signatures(
            bad.INORDER_NO_PACK.callbacks, inorder=True))

    def test_keyword_only_params_rejected(self):
        def q(state, buf, *, count):
            return 0

        from repro.core import type_create_custom
        dt = type_create_custom(query_fn=q)
        assert "RPD201" in _codes(check_callback_signatures(dt.callbacks))


class TestHarness:
    def _case(self, bad, name):
        for case in bad.ANALYZE_CONTRACT_CASES:
            if case["dtype"].name == name:
                return case
        raise KeyError(name)

    @pytest.mark.parametrize("name,expected", [
        ("lying-query", "RPD210"),
        ("bad-roundtrip", "RPD211"),
        ("region-liar", "RPD212"),
        ("leaky-state", "RPD213"),
        ("raiser", "RPD214"),
    ])
    def test_expected_code_fires(self, bad, name, expected):
        case = self._case(bad, name)
        diags = run_contract_harness(case["dtype"], case["send_buf"],
                                     recv_buf=case["recv_buf"])
        assert expected in _codes(diags)

    def test_harness_skipped_on_arity_error(self, bad):
        diags = verify_callbacks(bad.BAD_ARITY,
                                 send_buf=np.zeros(16, np.uint8))
        assert _codes(diags) == ["RPD201"]  # no RPD214 noise from calling it

    def test_state_freed_exactly_once_per_pass(self, bad):
        frees = []
        from repro.core import type_create_custom
        dt = type_create_custom(
            query_fn=lambda s, b, c: 4,
            pack_fn=lambda s, b, c, o, d: (d.__setitem__(slice(0, 4 - o),
                                                         b[o:4]),
                                           int(min(d.shape[0], 4 - o)))[1],
            unpack_fn=lambda s, b, c, o, src:
                b.__setitem__(slice(o, o + src.shape[0]), src),
            state_fn=lambda ctx, b, c: object(),
            state_free_fn=lambda s: frees.append(s))
        diags = run_contract_harness(dt, np.arange(4, dtype=np.uint8),
                                     recv_buf=np.zeros(4, np.uint8))
        assert diags == []
        # one free per choreography pass: send, recv, re-pack
        assert len(frees) == 3


class TestShippedTypesClean:
    def test_struct_simple_custom(self):
        dt = structs.struct_simple_custom_datatype()
        send = structs.make_struct_simple(4)
        recv = np.zeros(4, dtype=structs.STRUCT_SIMPLE)
        assert verify_callbacks(dt, send, recv, count=4) == []

    def test_struct_simple_no_gap_custom(self):
        dt = structs.struct_simple_no_gap_custom_datatype()
        send = structs.make_struct_simple_no_gap(4)
        recv = np.zeros(4, dtype=structs.STRUCT_SIMPLE_NO_GAP)
        assert verify_callbacks(dt, send, recv, count=4) == []

    def test_struct_vec_custom(self):
        dt = structs.struct_vec_custom_datatype()
        send = structs.make_struct_vec(3)
        recv = np.zeros(3, dtype=structs.STRUCT_VEC)
        assert verify_callbacks(dt, send, recv, count=3) == []

    def test_double_vec_custom(self):
        dt = double_vec_custom_datatype()
        send = DoubleVec([np.arange(40, dtype=np.int32),
                          np.arange(7, dtype=np.int32)])
        assert verify_callbacks(dt, send, DoubleVec(), count=1) == []
