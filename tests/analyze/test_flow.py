"""Communication-flow verifier: corpus codes, clean trees, CLI surface."""

import json
import os

import pytest

from repro.analyze.cli import main
from repro.analyze.flow import analyze_flow_source

HERE = os.path.dirname(__file__)
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))
FLOW_FIXTURES = os.path.join(HERE, "fixtures", "flow")

#: fixture basename -> (code, 1-based line) that must fire there.
CORPUS = {
    "ring_deadlock.py": ("RPD500", 18),
    "missing_recv.py": ("RPD501", 16),
    "orphan_recv.py": ("RPD502", 18),
    "signature_mismatch.py": ("RPD510", 18),
    "truncation.py": ("RPD511", 17),
    "collective_divergence.py": ("RPD520", 16),
    "domain_escape.py": ("RPD530", 18),
}


def run_flow_json(args, capsys):
    rc = main(["flow"] + args + ["--format", "json"])
    return rc, json.loads(capsys.readouterr().out)


class TestSeededCorpus:
    def test_every_code_fires_at_expected_location(self, capsys):
        rc, doc = run_flow_json([FLOW_FIXTURES, "--strict"], capsys)
        assert rc == 1
        fired = {(os.path.basename(f["file"]), f["code"], f["line"])
                 for f in doc["findings"]}
        for name, (code, line) in CORPUS.items():
            assert (name, code, line) in fired, \
                f"{name}: expected {code} at line {line}, got " \
                f"{sorted(t for t in fired if t[0] == name)}"

    def test_incomplete_analysis_is_strict_only(self, capsys):
        rc, doc = run_flow_json([os.path.join(FLOW_FIXTURES,
                                              "domain_escape.py")], capsys)
        # without --strict the RPD530 notice is hidden
        assert rc == 0
        assert doc["findings"] == []

    def test_deadlock_agrees_with_dynamic_sanitizer(self, capsys):
        """Every static deadlock must reproduce under the runtime fabric."""
        rc = main(["sanitize",
                   os.path.join(FLOW_FIXTURES, "ring_deadlock.py"),
                   "--strict", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert "RPD440" in {f["code"] for f in doc["findings"]}


class TestCleanTrees:
    def test_examples_are_flow_clean_under_strict(self, capsys):
        rc = main(["flow", os.path.join(REPO, "examples"), "--strict"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "no findings" in out

    def test_ddtbench_is_flow_clean_under_strict(self, capsys):
        rc = main(["flow", os.path.join(REPO, "src", "repro", "ddtbench"),
                   "--strict"])
        assert rc == 0


RING_SRC = """
import numpy as np

def main(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    outbox = np.zeros(8)
    inbox = np.empty(8)
    rreq = comm.irecv(inbox, source=left, tag=0)
    sreq = comm.isend(outbox, dest=right, tag=0)
    rreq.wait()
    sreq.wait()
"""


class TestInterpreter:
    def test_unpinned_program_gets_symbolic_witnesses(self):
        report = analyze_flow_source(RING_SRC, path="ring.py")
        assert report.has_main and report.complete
        assert report.nprocs_used == (2, 3, 4, 6, 7)
        assert report.findings == []

    def test_run_nprocs_literal_pins_the_size(self):
        report = analyze_flow_source(
            RING_SRC + "\nif __name__ == '__main__':\n"
                       "    from repro.mpi import run\n"
                       "    run(main, nprocs=5)\n",
            path="ring.py")
        assert report.complete
        assert report.nprocs_used == (5,)

    def test_explicit_nprocs_overrides_everything(self):
        report = analyze_flow_source(RING_SRC, path="ring.py",
                                     nprocs=[3])
        assert report.nprocs_used == (3,)

    def test_files_without_main_are_skipped(self):
        report = analyze_flow_source("x = 1\n", path="x.py")
        assert not report.has_main
        assert report.findings == []

    def test_dup_traffic_does_not_match_parent(self):
        src = """
import numpy as np

def main(comm):
    sub = comm.dup()
    if comm.rank == 0:
        comm.send(np.zeros(4), dest=1, tag=1)
    else:
        inbox = np.empty(4)
        sub.recv(inbox, source=0, tag=1)
"""
        report = analyze_flow_source(src, path="dup.py", nprocs=[2])
        assert report.complete
        codes = {d.code for d in report.findings}
        # the recv on the duplicated communicator can never be matched
        assert "RPD502" in codes

    def test_mismatch_found_only_at_witness_size(self):
        # Correct at 2/3/4 (the special case covers them), wrong for
        # general N: the symbolic witnesses catch it.
        src = """
import numpy as np

def main(comm):
    if comm.size > 4:
        if comm.rank == 0:
            comm.send(np.zeros(4), dest=1, tag=9)
    else:
        pass
"""
        report = analyze_flow_source(src, path="n.py")
        assert report.complete
        assert "RPD501" in {d.code for d in report.findings}


class TestSuppressions:
    def test_noqa_silences_a_flow_finding(self, tmp_path, capsys):
        src = open(os.path.join(FLOW_FIXTURES, "orphan_recv.py")).read()
        src = src.replace("comm.recv(inbox, source=1, tag=9)",
                          "comm.recv(inbox, source=1, tag=9)  # noqa: RPD502")
        p = tmp_path / "suppressed.py"
        p.write_text(src)
        rc, doc = run_flow_json([str(p), "--strict"], capsys)
        assert rc == 0, doc
        assert doc["findings"] == []

    def test_unused_noqa_is_reported_under_strict(self, tmp_path, capsys):
        p = tmp_path / "stale.py"
        p.write_text(RING_SRC + "\nX = 1  # noqa: RPD502\n")
        rc, doc = run_flow_json([str(p), "--strict"], capsys)
        assert rc == 1
        assert {f["code"] for f in doc["findings"]} == {"RPD590"}
        # hidden without --strict
        rc2 = main(["flow", str(p)])
        capsys.readouterr()
        assert rc2 == 0

    def test_noqa_works_in_the_linter_too(self, tmp_path, capsys):
        p = tmp_path / "lint_noqa.py"
        p.write_text(
            "def f(comm, buf):\n"
            "    comm.isend(buf, dest=1)  # noqa: RPD302\n")
        rc = main([str(p)])
        capsys.readouterr()
        assert rc == 0

    def test_noqa_in_string_literal_is_not_a_directive(self, tmp_path,
                                                       capsys):
        p = tmp_path / "s.py"
        p.write_text("def f(comm, buf):\n"
                     "    comm.isend(buf, dest=1, tag=ord('#'))\n"
                     "    x = '# noqa'\n")
        rc = main([str(p), "--strict"])
        out = capsys.readouterr().out
        assert "RPD590" not in out
        assert rc == 1  # the RPD302 still fires


class TestGithubFormat:
    def test_annotations_carry_file_line_col_title(self, capsys):
        rc = main(["flow",
                   os.path.join(FLOW_FIXTURES, "signature_mismatch.py"),
                   "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        line = next(l for l in out.splitlines() if l.startswith("::"))
        assert line.startswith("::error ")
        assert "file=" in line and ",line=18,col=9,title=RPD510::" in line

    def test_message_newlines_are_escaped(self, capsys):
        from repro.analyze.cli import _render_github
        from repro.analyze.diagnostics import Diagnostic
        out = _render_github([Diagnostic(
            "RPD500", "a\nb %", file="f.py", line=3, col=4)])
        assert out == "::error file=f.py,line=3,col=5,title=RPD500::a%0Ab %25"


class TestDefaultRunIntegration:
    def test_flow_supersedes_rpd301_when_complete(self, capsys):
        path = os.path.join(FLOW_FIXTURES, "orphan_recv.py")
        rc = main([path, "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in doc["findings"]}
        assert rc == 1
        assert "RPD502" in codes
        assert "RPD301" not in codes   # handed off to the flow verdict

    def test_no_flow_falls_back_to_tag_heuristic(self, capsys):
        path = os.path.join(FLOW_FIXTURES, "orphan_recv.py")
        rc = main([path, "--no-flow", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        codes = {f["code"] for f in doc["findings"]}
        assert rc == 1
        assert "RPD301" in codes
        assert not any(c.startswith("RPD5") for c in codes)

    def test_incomplete_flow_keeps_the_heuristics(self, tmp_path, capsys):
        # mismatched tags AND an abstract tag: flow reports RPD530 and the
        # RPD301 heuristic stays armed for the concrete pair.
        p = tmp_path / "half.py"
        p.write_text("""
import os
import numpy as np

def main(comm):
    t = int(os.environ["T"])
    if comm.rank == 0:
        comm.send(np.zeros(2), dest=1, tag=t)
    elif comm.rank == 1:
        comm.recv(np.empty(2), source=0, tag=t)
""")
        rc = main([str(p), "--strict", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert "RPD530" in {f["code"] for f in doc["findings"]}


class TestFlowCliUsage:
    def test_no_paths_is_usage_error(self, capsys):
        assert main(["flow"]) == 2

    def test_bad_nprocs_is_usage_error(self, capsys):
        assert main(["flow", FLOW_FIXTURES, "--nprocs", "1"]) == 2
        assert main(["flow", FLOW_FIXTURES, "--nprocs", "zap"]) == 2

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["flow", "/no/such/flow-dir-zzz"]) == 2

    def test_nprocs_narrows_the_configs(self, capsys):
        # at nprocs=2 the missing_recv pattern is complete: rank 1's send
        # is received, nothing is pending
        rc = main(["flow", os.path.join(FLOW_FIXTURES, "missing_recv.py"),
                   "--nprocs", "2", "--strict"])
        capsys.readouterr()
        assert rc == 0

    def test_json_schema_matches_v1(self, capsys):
        rc, doc = run_flow_json([FLOW_FIXTURES, "--strict"], capsys)
        assert doc["version"] == 1
        assert set(doc) == {"version", "tool", "findings", "summary"}
        for f in doc["findings"]:
            assert set(f) == {"code", "severity", "mpi_error", "message",
                              "hint", "file", "line", "col", "subject"}
