"""Transport-conformance tests: the live fabric must match the protocol
model's predictions observable for observable (RPD720 on divergence)."""

import copy

import pytest

from repro.analyze.cli import proto_main
from repro.analyze.protoconform import (builtin_cases, compare_case,
                                        observe_case, predict_case,
                                        run_conformance)
from repro.errors import MPI_ERR_PROC_FAILED


def case_by_name(name):
    (case,) = [c for c in builtin_cases() if c.name == name]
    return case


class TestConformanceSweep:
    def test_shipped_transport_conforms(self):
        report = run_conformance()
        assert report.diagnostics == []
        assert report.messages >= 20

    def test_cases_are_not_vacuous(self):
        # The matrix must exercise loss, recovery, exhaustion, duplicate
        # suppression and raw duplication — not just clean delivery.
        totals = {}
        for case in builtin_cases():
            for k, v in predict_case(case)["stats"].items():
                totals[k] = totals.get(k, 0) + v
        assert totals["lost_messages"] > 0
        assert totals["retransmits"] > 0
        assert totals["exhausted"] > 0
        assert totals["duplicates_dropped"] > 0
        assert totals["duplicates_delivered"] > 0

    def test_drop_lossy_mixes_delivered_and_lost(self):
        p = predict_case(case_by_name("drop-lossy"))
        delivered = [r["delivered"] for r in p["msgs"].values()]
        assert any(delivered) and not all(delivered)


class TestBoundaryConformance:
    """Model and implementation agree at the exact eager/rendezvous
    cutoff on live traffic (the boundary-audit satellite)."""

    def test_baseline_covers_the_cutoff(self):
        case = case_by_name("baseline")
        p = predict_case(case)
        sizes = {m.nbytes: m.mid for m in case.messages}
        limit = max(s for s in sizes if p["msgs"][sizes[s]]["proto"]
                    == "eager")
        assert p["msgs"][sizes[limit]]["proto"] == "eager"
        assert limit + 1 in sizes
        assert p["msgs"][sizes[limit + 1]]["proto"] == "rndv"

    def test_live_protocols_match_prediction(self):
        case = case_by_name("baseline")
        predicted = predict_case(case)
        observed = observe_case(case)
        for mid, rec in predicted["msgs"].items():
            assert observed["msgs"][mid]["proto"] == rec["proto"]


class TestPredictions:
    def test_exhaustion_splits_by_protocol(self):
        # Eager sends complete locally before the loss; only the blocked
        # rendezvous sender surfaces MPI_ERR_PROC_FAILED on exhaustion.
        p = predict_case(case_by_name("drop-exhaust"))
        rec = p["msgs"][0]  # the certain-loss eager message
        assert not rec["delivered"]
        assert rec["send_err"] is None
        assert rec["recv_err"] == MPI_ERR_PROC_FAILED

    def test_reliable_retransmit_schedule_is_concrete(self):
        p = predict_case(case_by_name("drop-reliable"))
        rounds = [ev for evs in p["retransmits"].values() for ev in evs]
        assert rounds
        assert all(ev["frags"] for ev in rounds)


class TestDivergenceDetection:
    """compare_case must turn any observable mismatch into RPD720."""

    @pytest.fixture()
    def clean(self):
        case = case_by_name("drop-reliable")
        predicted = predict_case(case)
        observed = observe_case(case)
        assert compare_case(case, predicted, observed) == []
        return case, predicted, observed

    def test_flipped_delivery_detected(self, clean):
        case, predicted, observed = clean
        mutated = copy.deepcopy(observed)
        mid = next(iter(mutated["msgs"]))
        mutated["msgs"][mid]["delivered"] = \
            not mutated["msgs"][mid]["delivered"]
        diags = compare_case(case, predicted, mutated)
        assert {d.code for d in diags} == {"RPD720"}
        assert any("'delivered'" in d.message for d in diags)

    def test_dropped_retransmit_event_detected(self, clean):
        case, predicted, observed = clean
        mutated = copy.deepcopy(observed)
        chan = next(iter(mutated["retransmits"]))
        mutated["retransmits"][chan].pop()
        diags = compare_case(case, predicted, mutated)
        assert any(d.code == "RPD720"
                   and "retransmission schedule" in d.message
                   for d in diags)

    def test_stat_drift_detected(self, clean):
        case, predicted, observed = clean
        mutated = copy.deepcopy(observed)
        mutated["stats"]["retransmits"] += 1
        diags = compare_case(case, predicted, mutated)
        assert any("retransmits" in d.message for d in diags)

    def test_diagnostic_names_the_case(self, clean):
        case, predicted, observed = clean
        mutated = copy.deepcopy(observed)
        mutated["stats"]["exhausted"] += 1
        (d,) = compare_case(case, predicted, mutated)
        assert d.subject == case.name
        assert case.name in d.message


class TestConformanceCli:
    def test_conformance_flag_clean(self, tmp_path, capsys):
        report = tmp_path / "proto.json"
        assert proto_main(["--ranks", "2", "--conformance",
                           "--report", str(report)]) == 0
        capsys.readouterr()
        import json
        doc = json.loads(report.read_text())
        assert doc["conformance"]["divergences"] == 0
        assert doc["conformance"]["messages"] >= 20
