"""Datatype validity checker: bad corpus fires, shipped types are clean."""

import importlib.util
import os

import pytest

from repro.analyze import analyze_datatype, assert_valid_datatype
from repro.core import FLOAT64, INT32
from repro.core.derived import create_struct, hindexed, hvector, resized
from repro.errors import DiagnosticError
from repro.types import structs

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _load_fixture(name):
    path = os.path.join(FIXTURES, name + ".py")
    spec = importlib.util.spec_from_file_location("fx_" + name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.fixture(scope="module")
def bad():
    return _load_fixture("bad_datatypes")


def codes(dtype):
    return sorted({d.code for d in analyze_datatype(dtype)})


class TestBadCorpus:
    @pytest.mark.parametrize("attr,expected", [
        ("OVERLAP", "RPD101"),
        ("OUT_OF_BOUNDS", "RPD102"),
        ("ZERO_EXTENT", "RPD103"),
        ("ALIASING_RESIZE", "RPD104"),
        ("OUT_OF_ORDER", "RPD105"),
        ("EMPTY", "RPD106"),
        ("MANY_REGIONS", "RPD110"),
        ("TINY_FRAGMENTS", "RPD111"),
        ("SPARSE", "RPD112"),
    ])
    def test_expected_code_fires(self, bad, attr, expected):
        assert expected in codes(getattr(bad, attr))

    def test_every_diagnostic_has_hint_and_subject(self, bad):
        for attr in ("OVERLAP", "ZERO_EXTENT", "MANY_REGIONS"):
            for d in analyze_datatype(getattr(bad, attr)):
                assert d.hint
                assert d.subject

    def test_assert_valid_raises_on_errors_only(self, bad):
        with pytest.raises(DiagnosticError) as ei:
            assert_valid_datatype(bad.OVERLAP)
        assert ei.value.diagnostics[0].code == "RPD101"
        # warnings do not raise
        assert_valid_datatype(bad.OUT_OF_ORDER)


class TestEdgeCases:
    def test_zero_length_blocks_are_clean(self):
        dt = hindexed([2, 0, 1], [0, 32, 64], FLOAT64)
        assert analyze_datatype(dt) == []

    def test_negative_stride_hvector_classified(self):
        dt = hvector(3, 2, -16, INT32)
        assert codes(dt) == ["RPD105"]
        # the fixed repeat() keeps the bounds sane
        assert dt.lb == -32 and dt.extent == 40

    def test_resized_below_true_extent_warns(self):
        inner = create_struct([1, 1], [0, 8], [FLOAT64, FLOAT64])
        assert "RPD104" in codes(resized(inner, 0, 8))

    def test_single_block_struct_is_clean(self):
        dt = create_struct([4], [0], [FLOAT64])
        assert analyze_datatype(dt) == []

    def test_predefined_is_clean(self):
        assert analyze_datatype(FLOAT64) == []


class TestShippedTypes:
    @pytest.mark.parametrize("factory", [
        structs.struct_simple_datatype,
        structs.struct_simple_no_gap_datatype,
        structs.struct_vec_datatype,
    ])
    def test_shipped_derived_types_clean(self, factory):
        assert analyze_datatype(factory()) == []
