"""Cross-subcommand CLI consistency (RPD8xx satellite).

Every ``repro-analyze`` subcommand that reports findings must behave
identically at the edges: ``--report FILE`` writes a JSON document with
the same ``version``/``tool`` envelope, and ``--format github`` ends with
the same human-readable trailer line.  This test enumerates the
subcommands so a new one cannot ship without joining the contract."""

import json

import pytest

from repro.analyze.cli import SCHEMA_VERSION, main

#: (subcommand, tool name, needs a path argument)
SUBCOMMANDS = [
    ("", "repro.analyze", True),
    ("flow", "repro.analyze.flow", True),
    ("plans", "repro.analyze.plans", True),
    ("proto", "repro.analyze.proto", False),
    ("races", "repro.analyze.races", True),
]
IDS = [tool for _, tool, _need in SUBCOMMANDS]


def _argv(subcmd, needs_path, target, extra):
    argv = [subcmd] if subcmd else []
    if subcmd == "proto":
        # Keep the model exploration small; the contract under test is
        # the CLI edge, not the state space.
        argv += ["--ranks", "2", "--depth", "40"]
    if needs_path:
        argv.append(str(target))
    return argv + extra


@pytest.fixture()
def target(tmp_path):
    """A clean subject module every subcommand accepts."""
    mod = tmp_path / "subject.py"
    mod.write_text('"""clean subject: no findings in any engine."""\n'
                   "X = 1\n")
    return mod


@pytest.mark.parametrize("subcmd,tool,needs_path", SUBCOMMANDS, ids=IDS)
def test_report_has_common_envelope(subcmd, tool, needs_path, target,
                                    tmp_path, capsys):
    out = tmp_path / "report.json"
    rc = main(_argv(subcmd, needs_path, target,
                    ["--report", str(out)]))
    assert rc in (0, 1)
    doc = json.loads(out.read_text())
    assert doc["version"] == SCHEMA_VERSION
    assert doc["tool"] == tool


@pytest.mark.parametrize("subcmd,tool,needs_path", SUBCOMMANDS, ids=IDS)
def test_github_format_ends_with_trailer(subcmd, tool, needs_path, target,
                                         capsys):
    rc = main(_argv(subcmd, needs_path, target, ["--format", "github"]))
    assert rc in (0, 1)
    lines = capsys.readouterr().out.strip().splitlines()
    trailer = lines[-1]
    assert trailer.startswith("clean:") or " finding(s) in " in trailer
    # Annotations, if any, precede the trailer and use workflow syntax.
    for line in lines[:-1]:
        assert line.startswith(("::error", "::warning", "::notice"))


@pytest.mark.parametrize("subcmd,tool,needs_path", SUBCOMMANDS, ids=IDS)
def test_report_and_stdout_json_share_summary(subcmd, tool, needs_path,
                                              target, tmp_path, capsys):
    """--report must not change what --format json prints (and for the
    findings-based tools the two documents carry the same summary)."""
    out = tmp_path / "report.json"
    rc = main(_argv(subcmd, needs_path, target,
                    ["--format", "json", "--report", str(out)]))
    assert rc in (0, 1)
    stdout_doc = json.loads(capsys.readouterr().out)
    report_doc = json.loads(out.read_text())
    assert stdout_doc["version"] == SCHEMA_VERSION
    if "summary" in report_doc:
        assert report_doc["summary"] == stdout_doc["summary"]
