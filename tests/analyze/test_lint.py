"""MPI-usage linter: fixture programs fire, the shipped tree lints clean."""

import glob
import os

import pytest

from repro.analyze import lint_file, lint_source

HERE = os.path.dirname(__file__)
PROGRAMS = os.path.join(HERE, "fixtures", "programs")
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))


def codes(path):
    return sorted({d.code for d in lint_file(path)})


class TestFixturePrograms:
    @pytest.mark.parametrize("name,expected", [
        ("bad_tags.py", ["RPD301"]),
        ("unwaited.py", ["RPD302"]),
        ("write_before_wait.py", ["RPD303"]),
        ("ring_deadlock.py", ["RPD304"]),
        ("syntax_error.py", ["RPD300"]),
        ("good_ring.py", []),
    ])
    def test_expected_codes(self, name, expected):
        assert codes(os.path.join(PROGRAMS, name)) == expected

    def test_findings_carry_locations(self):
        diags = lint_file(os.path.join(PROGRAMS, "ring_deadlock.py"))
        assert diags[0].file.endswith("ring_deadlock.py")
        assert diags[0].line > 0


class TestConservatism:
    """Patterns that look risky but are fine must not be flagged."""

    def test_dynamic_tag_disarms_tag_rule(self):
        src = ("def f(comm, step, buf):\n"
               "    comm.send(buf, dest=1, tag=step)\n"
               "    comm.recv(buf, source=0, tag=77)\n")
        assert all(d.code != "RPD301" for d in lint_source(src))

    def test_any_tag_recv_matches_everything(self):
        src = ("def f(comm, buf, ANY_TAG):\n"
               "    if comm.rank:\n"
               "        comm.send(buf, dest=1, tag=9)\n"
               "    else:\n"
               "        comm.recv(buf, source=0, tag=ANY_TAG)\n")
        assert lint_source(src) == []

    def test_requests_in_list_not_flagged(self):
        src = ("def f(comm, buf):\n"
               "    reqs = []\n"
               "    reqs.append(comm.isend(buf, dest=1, tag=0))\n"
               "    reqs.append(comm.irecv(buf, source=0, tag=0))\n"
               "    for r in reqs:\n"
               "        r.wait()\n")
        assert lint_source(src) == []

    def test_rank_guarded_send_recv_not_deadlock(self):
        src = ("def f(comm, buf):\n"
               "    if comm.rank == 0:\n"
               "        comm.send(buf, dest=1, tag=0)\n"
               "    else:\n"
               "        comm.recv(buf, source=0, tag=0)\n")
        assert lint_source(src) == []

    def test_conditional_mutation_not_flagged(self):
        src = ("def f(comm, buf, redo):\n"
               "    req = comm.isend(buf, dest=1, tag=0)\n"
               "    if redo:\n"
               "        buf[0] = 1\n"
               "    req.wait()\n"
               "    comm.recv(buf, source=0, tag=0)\n")
        assert all(d.code != "RPD303" for d in lint_source(src))


class TestAggregateCompletion:
    """RPD302 must understand waitall/waitany/waitsome-style completion:
    requests collected into lists are fine as long as the aggregate is
    read again, and leaked when it never is."""

    def test_comprehension_with_waitall_clean(self):
        src = ("def f(comm, bufs, peers):\n"
               "    reqs = [comm.isend(bufs[d], dest=d) for d in peers]\n"
               "    comm.waitall(reqs)\n")
        assert lint_source(src) == []

    def test_append_with_waitall_clean(self):
        src = ("def f(comm, buf, peers):\n"
               "    reqs = []\n"
               "    for d in peers:\n"
               "        reqs.append(comm.isend(buf, dest=d))\n"
               "    waitall(reqs)\n")
        assert lint_source(src) == []

    def test_append_with_waitany_loop_clean(self):
        src = ("def f(comm, buf, peers):\n"
               "    reqs = []\n"
               "    for d in peers:\n"
               "        reqs.append(comm.irecv(buf, source=d))\n"
               "    while reqs:\n"
               "        i, _ = waitany(reqs)\n"
               "        reqs.pop(i)\n")
        assert lint_source(src) == []

    def test_augassign_with_waitsome_clean(self):
        src = ("def f(comm, buf, peers):\n"
               "    reqs = []\n"
               "    reqs += [comm.isend(buf, dest=d) for d in peers]\n"
               "    while reqs:\n"
               "        done, reqs = waitsome(reqs)\n")
        assert lint_source(src) == []

    def test_per_element_wait_loop_clean(self):
        src = ("def f(comm, bufs, peers):\n"
               "    reqs = [comm.irecv(bufs[d], source=d) for d in peers]\n"
               "    for r in reqs:\n"
               "        r.wait()\n")
        assert lint_source(src) == []

    def test_returned_aggregate_clean(self):
        src = ("def f(comm, buf, peers):\n"
               "    reqs = [comm.isend(buf, dest=d) for d in peers]\n"
               "    return reqs\n")
        assert lint_source(src) == []

    def test_comprehension_never_read_flagged(self):
        src = ("def f(comm, bufs, peers):\n"
               "    reqs = [comm.isend(bufs[d], dest=d) for d in peers]\n")
        diags = lint_source(src)
        assert [d.code for d in diags] == ["RPD302"]
        assert "reqs" in diags[0].message

    def test_append_never_read_flagged(self):
        src = ("def f(comm, buf, peers):\n"
               "    reqs = []\n"
               "    for d in peers:\n"
               "        reqs.append(comm.isend(buf, dest=d))\n")
        assert [d.code for d in lint_source(src)] == ["RPD302"]

    def test_augassign_never_read_flagged(self):
        src = ("def f(comm, buf, peers):\n"
               "    reqs = []\n"
               "    reqs += [comm.isend(buf, dest=d) for d in peers]\n")
        assert [d.code for d in lint_source(src)] == ["RPD302"]

    def test_appending_other_lists_untouched(self):
        # The collecting-call carve-out must not hide genuine reads of
        # unrelated aggregates.
        src = ("def f(comm, out, results):\n"
               "    results.append(out)\n")
        assert lint_source(src) == []


class TestShippedTreeClean:
    @pytest.mark.parametrize("path", sorted(
        glob.glob(os.path.join(REPO, "examples", "*.py"))
        + glob.glob(os.path.join(REPO, "benchmarks", "*.py"))
        + glob.glob(os.path.join(REPO, "src", "repro", "**", "*.py"),
                    recursive=True)),
        ids=lambda p: os.path.relpath(p, REPO))
    def test_file_lints_clean(self, path):
        assert lint_file(path) == []


class TestCommunicatorAwareTags:
    """RPD301 matches tags per communicator, not per file."""

    def test_dup_child_tag_space_is_isolated(self):
        # Tags agree within each communicator; the old file-global rule
        # already passed this, the per-comm rule must too.
        src = ("def main(comm):\n"
               "    sub = comm.dup()\n"
               "    if comm.rank == 0:\n"
               "        comm.send(b'x', dest=1, tag=1)\n"
               "        sub.send(b'y', dest=1, tag=2)\n"
               "    else:\n"
               "        comm.recv(bytearray(1), source=0, tag=1)\n"
               "        sub.recv(bytearray(1), source=0, tag=2)\n")
        assert lint_source(src) == []

    def test_tags_do_not_cross_match_between_communicators(self):
        # File-globally the tag sets {5,6} match on both sides; per
        # communicator every pairing is wrong and all four calls fire.
        src = ("def main(comm):\n"
               "    sub = comm.dup()\n"
               "    if comm.rank == 0:\n"
               "        comm.send(b'x', dest=1, tag=5)\n"
               "        sub.send(b'y', dest=1, tag=6)\n"
               "    else:\n"
               "        comm.recv(bytearray(1), source=0, tag=6)\n"
               "        sub.recv(bytearray(1), source=0, tag=5)\n")
        diags = lint_source(src)
        assert [d.code for d in diags] == ["RPD301"] * 4
        assert all("communicator" in d.message for d in diags)

    def test_unknown_tag_only_disarms_its_own_communicator(self):
        src = ("def main(comm, t):\n"
               "    sub = comm.dup()\n"
               "    if comm.rank == 0:\n"
               "        comm.send(b'x', dest=1, tag=t)\n"
               "        sub.send(b'y', dest=1, tag=3)\n"
               "    else:\n"
               "        comm.recv(bytearray(1), source=0, tag=7)\n"
               "        sub.recv(bytearray(1), source=0, tag=4)\n")
        diags = lint_source(src)
        # comm's dynamic tag disarms comm; sub's 3-vs-4 still fires
        assert [d.code for d in diags] == ["RPD301", "RPD301"]
        assert all("'sub'" in d.message for d in diags)


class TestReporterLocation:
    """Diagnostics carry the AST column and render it 1-based."""

    def test_col_populated_and_rendered_one_based(self):
        src = ("def f(comm, buf):\n"
               "    req = comm.isend(buf, dest=1)\n")
        diags = lint_source(src, path="prog.py")
        assert [d.code for d in diags] == ["RPD302"]
        d = diags[0]
        assert (d.line, d.col) == (2, 4)          # 0-based storage
        assert d.format_text().startswith("prog.py:2:5: ")  # 1-based text
        assert d.to_dict()["col"] == 4            # JSON keeps 0-based

    def test_tag_mismatch_points_at_the_call(self):
        src = ("def main(comm):\n"
               "    if comm.rank == 0:\n"
               "        comm.send(b'x', dest=1, tag=1)\n"
               "    else:\n"
               "        comm.recv(bytearray(1), source=0, tag=2)\n")
        diags = lint_source(src, path="prog.py")
        locs = {(d.line, d.col) for d in diags}
        assert locs == {(3, 8), (5, 8)}
        assert {d.format_text().split(" ")[0] for d in diags} == \
            {"prog.py:3:9:", "prog.py:5:9:"}
