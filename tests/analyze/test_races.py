"""RPD8xx race-analyzer tests: the seeded corpus and its designated codes,
the clean shipped tree under ``--strict``, exit semantics (2 on corpus
escape), the JSON report schema, and the dynamic lockset witness — which
must confirm pre-fix mirrors of the shipped races and clear their fixes."""

import json
import os
import threading

import pytest

import repro.analyze.races as races_mod
from repro.analyze.cli import SCHEMA_VERSION, main, races_main
from repro.analyze.races import (analyze_paths, corpus_dir,
                                 corpus_expectations, run_corpus,
                                 shipped_audit_paths)
from repro.sanitize.witness import LocksetWitness

RPD8_CODES = {"RPD800", "RPD801", "RPD802", "RPD803", "RPD810", "RPD811"}


def fixtures():
    cdir = corpus_dir()
    return sorted(os.path.join(cdir, fn) for fn in os.listdir(cdir)
                  if fn.endswith(".py") and fn != "__init__.py")


class TestCorpus:
    @pytest.mark.parametrize("path", fixtures(),
                             ids=[os.path.basename(p) for p in fixtures()])
    def test_designated_code_fires(self, path):
        expected = corpus_expectations(path)
        assert expected, f"{path} declares no '# expects:' line"
        findings, _, _ = analyze_paths([path])
        fired = {d.code for d in findings}
        for code in expected:
            assert code in fired, (os.path.basename(path), fired)

    def test_corpus_is_large_enough_and_has_no_misses(self):
        _, missed, nfiles = run_corpus()
        assert missed == []
        assert nfiles >= 8

    def test_corpus_covers_every_rpd8_code(self):
        findings, _, _ = run_corpus()
        assert RPD8_CODES <= {d.code for d in findings}

    def test_corpus_cli_exits_1_when_all_detected(self, capsys):
        assert races_main(["--corpus"]) == 1
        assert "finding(s)" in capsys.readouterr().out

    def test_escaped_fixture_exits_2(self, tmp_path, monkeypatch, capsys):
        escape = tmp_path / "f99_escape.py"
        escape.write_text("# expects: RPD800\nX = 1\n")
        monkeypatch.setattr(races_mod, "corpus_dir", lambda: str(tmp_path))
        assert races_main(["--corpus"]) == 2
        assert "seeded race NOT detected" in capsys.readouterr().err


class TestShippedTree:
    def test_audit_is_clean_under_strict(self, capsys):
        assert races_main(["--strict"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_dispatch_from_main(self, capsys):
        assert main(["races", "--strict"]) == 0

    def test_unknown_filter_code_exits_2(self, capsys):
        assert races_main(["--select", "RPD9ZZ"]) == 2
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_audit_inventories_the_fabric(self):
        _, nfiles, report = analyze_paths(shipped_audit_paths())
        assert nfiles >= 15
        doc = report.to_dict()
        # The fabric's lock-owning classes are audited, the single-owner
        # classes are classified, and the wire envelope is inventoried.
        assert "BufferPool" in doc["classes_audited"]
        assert "TagMatcher" in doc["classes_audited"]
        assert any("WireMessage" in f for f in doc["wire_fields"])
        assert any("Event" in a or "publish" in a
                   for a in doc["assumptions"])


class TestReportSchema:
    def test_report_round_trips_and_matches_stdout_json(self, tmp_path,
                                                        capsys):
        out = tmp_path / "races.json"
        rc = races_main(["--strict", "--format", "json",
                         "--report", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        stdout_doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == SCHEMA_VERSION
        assert doc["tool"] == "repro.analyze.races"
        assert doc["summary"] == stdout_doc["summary"]
        assert doc["findings"] == stdout_doc["findings"]
        audit = doc["audit"]
        for key in ("files", "classes_audited", "single_owner",
                    "lock_order_edges", "assumptions", "wire_fields"):
            assert key in audit, key
        assert audit["files"] == doc["summary"]["files"]

    def test_corpus_report_carries_by_code_and_missed(self, tmp_path,
                                                      capsys):
        out = tmp_path / "corpus.json"
        assert races_main(["--corpus", "--report", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["corpus_missed"] == []
        assert RPD8_CODES <= set(doc["summary"]["by_code"])


class TestWitness:
    """Dynamic confirmation: the pre-fix shapes of both shipped races are
    racy under the witness; the shipped fixes are clean."""

    def _hammer(self, fn, nthreads=4, iters=200):
        barrier = threading.Barrier(nthreads)

        def runner():
            barrier.wait()
            for _ in range(iters):
                fn()

        threads = [threading.Thread(target=runner) for _ in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_confirms_prefix_gil_counter(self):
        # wire.py as shipped before the fix: bare ``next(count())`` — here
        # in attribute form so the witness can watch the write.
        class PrefixAllocator:
            def __init__(self):
                self._next = 1

            def allocate(self):
                val = self._next
                self._next = val + 1
                return val

        witness = LocksetWitness()
        witness.instrument(PrefixAllocator)
        with witness:
            alloc = PrefixAllocator()
            self._hammer(alloc.allocate)
        rep = witness.report()
        assert any(c.cls == "PrefixAllocator" and c.attr == "_next"
                   and c.threads >= 2 for c in rep.confirmed)

    def test_clears_fixed_allocator(self):
        from repro.ucp.wire import _MsgIdAllocator

        witness = LocksetWitness()
        witness.instrument(_MsgIdAllocator)
        with witness:
            alloc = _MsgIdAllocator()
            self._hammer(alloc.allocate)
        rep = witness.report()
        assert rep.confirmed == []
        seen = rep.observed["_MsgIdAllocator._next"]
        assert seen["threads"] >= 2
        assert seen["always_locked"] is True

    def test_checkpoint_separates_factory_under_lock_from_fixed(self):
        # typecache.datatype_of as shipped (f07 corpus mirror) versus the
        # shipped double-checked fix: the user factory must run with no
        # lock held.
        witness = LocksetWitness()
        with witness:
            lock = threading.Lock()
            cache = {}

            def cached_prefix(key, factory):
                with lock:
                    if key not in cache:
                        cache[key] = factory()
                    return cache[key]

            def cached_fixed(key, factory):
                with lock:
                    if key in cache:
                        return cache[key]
                value = factory()
                with lock:
                    return cache.setdefault(key, value)

            cached_prefix("a", lambda: witness.checkpoint("prefix") or 1)
            cached_fixed("b", lambda: witness.checkpoint("fixed") or 2)
        rep = witness.report()
        assert rep.held_at("prefix") == [1]
        assert rep.held_at("fixed") == [0]

    def test_shipped_datatype_of_runs_factory_unlocked(self):
        from repro.core import typecache

        witness = LocksetWitness()
        held = []
        key = object()

        def factory():
            held.append(len(witness._tls.held))
            return type("Dt", (), {"typemap": None})()

        # The module lock predates the witness (real, invisible), so a
        # wrapped sentinel lock distinguishes "no wrapped lock held".
        typecache.register_datatype(key, factory)
        with witness:
            typecache.datatype_of(key)
        assert held == [0]
        typecache.clear_datatype_cache()

    def test_reentrant_factory_no_deadlock(self):
        # The bug the RPD803 fix removes: a factory resolving a nested
        # registered type re-enters datatype_of and must not self-deadlock.
        from repro.core import typecache

        inner_key, outer_key = object(), object()
        typecache.register_datatype(
            inner_key, lambda: type("Inner", (), {})())
        typecache.register_datatype(
            outer_key,
            lambda: ("outer", typecache.datatype_of(inner_key)))

        done = threading.Event()
        result = []

        def resolve():
            result.append(typecache.datatype_of(outer_key))
            done.set()

        t = threading.Thread(target=resolve, daemon=True)
        t.start()
        assert done.wait(timeout=30), "datatype_of deadlocked on re-entry"
        assert result[0][0] == "outer"
        typecache.clear_datatype_cache()
