"""Protocol model-checker tests: shipped-table verification, the mutant
corpus and its designated RPD7xx channels, partial-order-reduction
soundness, and the ``repro-analyze proto`` CLI."""

import json

import pytest

from repro.analyze.cli import main, proto_main
from repro.analyze.protomodel import (MUTANT_CORPUS, MsgSpec, Scenario,
                                      TransitionTable, builtin_scenarios,
                                      check_scenario, classify_protocol,
                                      run_mutant_corpus, verify_shipped)
from repro.ucp.transitions import select_protocol


def scenario_by_name(name, nranks=3):
    (scn,) = [s for s in builtin_scenarios(nranks) if s.name == name]
    return scn


class TestShippedProtocol:
    def test_clean_at_three_ranks(self):
        report = verify_shipped(nranks=3, depth=60)
        assert report.diagnostics == []
        assert report.states > 1000  # non-vacuous exploration

    def test_clean_at_two_ranks(self):
        assert verify_shipped(nranks=2, depth=60).diagnostics == []

    def test_every_builtin_scenario_terminates_unbounded(self):
        # No scenario hits the depth bound: the fault budgets make the
        # state space finite, so verification is exhaustive, not partial.
        report = verify_shipped(nranks=3, depth=60)
        assert all(r.truncated == 0 for r in report.results)

    def test_report_carries_throughput(self):
        report = verify_shipped(nranks=2, depth=60)
        doc = report.to_dict()
        assert doc["states"] == sum(r["states"] for r in doc["scenarios"])
        assert doc["states_per_s"] > 0

    def test_fault_kind_restriction(self):
        names = {s.name for s in
                 builtin_scenarios(3, fault_kinds=frozenset({"drop"}))}
        assert "drop-reliable" in names
        assert "crash" not in names and "dup-reliable" not in names


class TestBoundaryAudit:
    """The eager/rendezvous cutoff: model, shared table and scenario
    matrix agree at the exact boundary (satellite of the RPD7xx issue)."""

    def test_model_protocol_at_cutoff(self):
        scn = scenario_by_name("eager-boundary")
        protos = {m.nbytes: classify_protocol(m, scn) for m in scn.messages}
        assert protos[scn.eager_limit] == "eager"
        assert protos[scn.eager_limit + 1] == "rndv"

    def test_boundary_scenario_spans_the_cutoff(self):
        scn = scenario_by_name("eager-boundary")
        sizes = sorted(m.nbytes for m in scn.messages)
        assert sizes == [scn.eager_limit, scn.eager_limit + 1]

    def test_table_delegates_to_shared_selector(self):
        table = TransitionTable()
        scn = scenario_by_name("eager-boundary")
        for m in scn.messages:
            assert table.protocol_for(m, scn) == select_protocol(
                "contig", m.nbytes, scn.eager_limit)


class TestMutantCorpus:
    @pytest.mark.parametrize(
        "mutant", MUTANT_CORPUS, ids=[m.table.name for m in MUTANT_CORPUS])
    def test_designated_code_fires(self, mutant):
        fired = set()
        for name in mutant.scenarios:
            res = check_scenario(scenario_by_name(name), mutant.table,
                                 depth=60)
            fired |= {d.code for d in res.diagnostics}
        for code in mutant.expect:
            assert code in fired, (mutant.table.name, fired)

    def test_corpus_has_no_misses(self):
        _, missed, _ = run_mutant_corpus(nranks=3, depth=60)
        assert missed == []

    def test_corpus_covers_every_channel(self):
        expected = {c for m in MUTANT_CORPUS for c in m.expect}
        assert expected == {"RPD700", "RPD701", "RPD702", "RPD703",
                            "RPD704", "RPD710"}

    def test_finding_carries_action_trace(self):
        (mutant,) = [m for m in MUTANT_CORPUS
                     if m.table.name == "drop-held-reorder"]
        res = check_scenario(scenario_by_name(mutant.scenarios[0]),
                             mutant.table, depth=60)
        (d,) = [d for d in res.diagnostics if d.code == "RPD700"]
        assert "reorder(" in d.message  # the exhibiting schedule
        assert res.traces["RPD700"]     # machine-readable trace too

    def test_mutation_named_in_hint(self):
        (mutant,) = [m for m in MUTANT_CORPUS
                     if m.table.name == "ack-before-crc"]
        res = check_scenario(scenario_by_name(mutant.scenarios[0]),
                             mutant.table, depth=60)
        assert any("ack-before-crc" in d.hint for d in res.diagnostics)


class TestPartialOrderReduction:
    @pytest.mark.parametrize("name", ["clean-ring", "dup-reliable",
                                      "crash", "drop-exhaust"])
    def test_same_verdicts_fewer_states(self, name):
        scn = scenario_by_name(name)
        table = TransitionTable()
        por = check_scenario(scn, table, depth=60, por=True)
        full = check_scenario(scn, table, depth=60, por=False)
        assert {d.code for d in por.diagnostics} == \
            {d.code for d in full.diagnostics}
        assert por.states <= full.states

    def test_mutant_verdict_stable_without_por(self):
        (mutant,) = [m for m in MUTANT_CORPUS
                     if m.table.name == "missing-proc-failed"]
        res = check_scenario(scenario_by_name("crash"), mutant.table,
                             depth=60, por=False)
        assert "RPD704" in {d.code for d in res.diagnostics}


class TestCheckerMechanics:
    def test_depth_bound_truncates(self):
        scn = scenario_by_name("drop-reliable")
        res = check_scenario(scn, TransitionTable(), depth=3)
        assert res.truncated > 0

    def test_max_states_valve(self):
        scn = scenario_by_name("drop-reliable")
        res = check_scenario(scn, TransitionTable(), depth=60,
                             max_states=20)
        assert res.states <= 21

    def test_deadlock_on_unreceived_message(self):
        # A receiver that never posts: the sender's rendezvous transfer
        # can never complete, which the checker must flag as RPD700.
        scn = Scenario("stuck", 2,
                       (MsgSpec(mid=0, src=0, dst=1, nbytes=1 << 20,
                                expect_recv=False),))
        res = check_scenario(scn, TransitionTable(), depth=20)
        assert "RPD700" in {d.code for d in res.diagnostics}


class TestProtoCli:
    def test_dispatch_from_main(self, capsys):
        assert main(["proto", "--ranks", "2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert proto_main(["--ranks", "2", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.analyze"
        assert doc["summary"]["findings"] == 0

    def test_mutants_expected_findings(self, capsys):
        assert proto_main(["--mutants", "--ranks", "3"]) == 1
        out = capsys.readouterr().out
        for code in ("RPD700", "RPD701", "RPD702", "RPD703", "RPD704",
                     "RPD710"):
            assert code in out

    def test_report_file(self, tmp_path, capsys):
        report = tmp_path / "proto.json"
        assert proto_main(["--ranks", "2", "--report", str(report)]) == 0
        capsys.readouterr()
        doc = json.loads(report.read_text())
        assert doc["tool"] == "repro.analyze.proto"
        assert doc["model"]["states"] > 0
        assert doc["model"]["states_per_s"] > 0

    def test_faults_filter(self, capsys):
        assert proto_main(["--ranks", "2", "--faults", "drop",
                           "--format", "json", ]) == 0
        capsys.readouterr()

    def test_bad_fault_kind_rejected(self, capsys):
        assert proto_main(["--faults", "gamma-rays"]) == 2
        assert "unknown fault action" in capsys.readouterr().err

    def test_bad_ranks_rejected(self, capsys):
        assert proto_main(["--ranks", "7"]) == 2
        assert "--ranks" in capsys.readouterr().err

    def test_no_por_flag(self, capsys):
        assert proto_main(["--ranks", "2", "--no-por"]) == 0
        capsys.readouterr()

    def test_unknown_code_filter_rejected(self, capsys):
        assert proto_main(["--select", "RPD9"]) == 2
        capsys.readouterr()
