"""Pack-plan IR verifier tests: well-formedness invariants, translation
validation, the seeded miscompile corpus, the cost model, and the
``repro-analyze plans`` CLI."""

import json
import os

import numpy as np
import pytest

from repro.analyze.cli import main, plans_main
from repro.analyze.planverify import (MISCOMPILE_CORPUS, check_wellformed,
                                      cost_findings, ddtbench_corpus,
                                      predict_pack_time, validate_pipeline,
                                      verify_datatype,
                                      verify_miscompile_corpus,
                                      verify_typemap)
from repro.core import INT32, create_struct, hindexed, resized
from repro.core.planir import (CopyBlock, Gather, Pass, Program,
                               default_pipeline)

HERE = os.path.dirname(__file__)
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir))


def prog(ops, size, extent=64):
    return Program(tuple(ops), size=size, extent=extent, row_span=extent,
                   src_lo=0, src_hi=extent)


class TestWellformed:
    def test_clean_program_has_no_findings(self):
        p = prog([CopyBlock(0, 0, 4), CopyBlock(8, 4, 4)], size=8)
        assert check_wellformed(p) == []

    def test_rpd600_overlapping_wire_writes(self):
        p = prog([CopyBlock(0, 0, 4), CopyBlock(8, 2, 4)], size=8)
        codes = {d.code for d in check_wellformed(p)}
        assert "RPD600" in codes

    def test_rpd601_source_out_of_true_bounds(self):
        p = prog([CopyBlock(62, 0, 4)], size=4)  # reads 62..66, hi is 64
        codes = {d.code for d in check_wellformed(p)}
        assert "RPD601" in codes

    def test_rpd602_nonmonotone_wire_order(self):
        p = prog([CopyBlock(8, 4, 4), CopyBlock(0, 0, 4)], size=8)
        codes = {d.code for d in check_wellformed(p)}
        assert "RPD602" in codes
        assert "RPD600" not in codes  # disjoint writes, only order is wrong

    def test_stage_name_lands_in_message(self):
        p = prog([CopyBlock(8, 4, 4), CopyBlock(0, 0, 4)], size=8)
        (d,) = [d for d in check_wellformed(p, stage="my-pass")
                if d.code == "RPD602"]
        assert "my-pass" in d.message


class TestTranslationValidation:
    def test_clean_pipeline_validates(self):
        t = resized(create_struct([1, 1], [0, 8], [INT32, INT32]), 0, 16)
        final, applied, diags = validate_pipeline(t.typemap)
        assert diags == []

    def test_rpd610_names_pass_and_first_diverging_byte(self):
        t = resized(create_struct([1, 1], [0, 8], [INT32, INT32]), 0, 16)
        bad = Pass("evil", lambda p: p.with_ops(
            (CopyBlock(4, 0, 4),) + p.ops[1:]))
        _, _, diags = validate_pipeline(
            t.typemap, default_pipeline() + (bad,))
        ten = [d for d in diags if d.code == "RPD610"]
        assert len(ten) == 1
        assert "'evil'" in ten[0].message
        assert "wire byte 0" in ten[0].message

    def test_unchanged_pass_is_not_validated_as_applied(self):
        t = resized(create_struct([1, 1], [0, 8], [INT32, INT32]), 0, 16)
        noop = Pass("noop", lambda p: p)
        final, applied, diags = validate_pipeline(
            t.typemap, default_pipeline() + (noop,))
        assert "noop" not in applied
        assert diags == []


class TestMiscompileCorpus:
    def test_every_fixture_detected(self):
        findings, missed = verify_miscompile_corpus()
        assert missed == []
        assert findings

    def test_each_expected_code_fires_per_fixture(self):
        for fx in MISCOMPILE_CORPUS:
            got = {d.code for d in fx.verify()}
            assert fx.expected_codes <= got, (fx.name, sorted(got))

    def test_corpus_spans_all_detection_channels(self):
        codes = set()
        for fx in MISCOMPILE_CORPUS:
            codes |= fx.expected_codes
        assert {"RPD600", "RPD602", "RPD610"} <= codes

    def test_byte_map_preserving_bugs_not_flagged_as_miscompile(self):
        # reorder/duplicate keep the byte map identical: RPD610 must stay
        # silent there (the well-formedness walk is the only net).
        for name in ("reorder", "duplicate"):
            (fx,) = [f for f in MISCOMPILE_CORPUS if f.name == name]
            assert "RPD610" not in {d.code for d in fx.verify()}


def irregular_hindexed(nblocks=1100):
    # LCG-driven gaps: no period <= 8, so stride canonicalization cannot
    # collapse the blocks into loops.
    displs, off, x = [], 0, 1
    for _ in range(nblocks):
        displs.append(off)
        x = (x * 1103515245 + 12345) % (1 << 31)
        off += 4 + 3 + x % 7
    return hindexed([1] * nblocks, displs, INT32)


class TestCostModel:
    def test_call_heavy_layout_flagged_without_gather(self):
        # With the slices executor forced, >1000 copies per element
        # survive to the final IR: past the iov soft limit.
        rep = verify_typemap(irregular_hindexed().typemap, executor="slices",
                             subject="irregular")
        codes = [d.code for d in rep.diagnostics]
        assert "RPD620" in codes
        assert rep.verified  # perf smell, not an error

    def test_same_layout_gathers_and_is_clean_under_auto(self):
        rep = verify_typemap(irregular_hindexed().typemap, executor="auto",
                             subject="irregular")
        assert rep.executor == "gather"
        assert rep.calls == 1
        assert [d.code for d in rep.diagnostics] == []

    def test_coalescable_gather_flagged(self):
        idx = np.concatenate([np.arange(0, 512), np.arange(1024, 1536)])
        p = Program((Gather(idx, 0),), size=1024, extent=2048,
                    row_span=2048, src_lo=0, src_hi=2048)
        codes = {d.code for d in cost_findings(p)}
        assert "RPD620" in codes

    def test_irregular_gather_not_flagged(self):
        # mean run length below GATHER_COALESCABLE_RUN: gather is the
        # right form, no smell.
        idx = np.arange(0, 4096, 2)
        p = Program((Gather(idx, 0),), size=idx.shape[0], extent=4096,
                    row_span=4096, src_lo=0, src_hi=4096)
        assert cost_findings(p) == []

    def test_predicted_time_positive_and_scales_with_calls(self):
        one = prog_n_calls(1)
        many = prog_n_calls(64)
        assert 0 < predict_pack_time(one) < predict_pack_time(many)


def prog_n_calls(n):
    ops = tuple(CopyBlock(i * 8, i * 4, 4) for i in range(n))
    return Program(ops, size=4 * n, extent=8 * n, row_span=8 * n,
                   src_lo=0, src_hi=8 * n)


class TestCorpusVerification:
    @pytest.mark.parametrize("name,dtype", ddtbench_corpus(),
                             ids=[n for n, _ in ddtbench_corpus()])
    def test_ddtbench_fully_verified_and_clean(self, name, dtype):
        for rep in verify_datatype(dtype, subject=name):
            assert rep.verified, rep.to_dict()
            assert rep.diagnostics == [], rep.to_dict()
            assert rep.calls == 1


class TestPlansCli:
    def test_ddtbench_strict_clean(self, capsys):
        assert plans_main(["--ddtbench", "--strict"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_examples_strict_clean(self, capsys):
        assert plans_main([os.path.join(REPO, "examples"), "--strict"]) == 0

    def test_miscompile_corpus_fails_with_rpd610(self, capsys):
        rc = plans_main(["--miscompile-corpus", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["summary"]["by_code"].get("RPD610", 0) >= 1
        assert doc["summary"]["by_code"].get("RPD600", 0) >= 1

    def test_report_file_written(self, capsys, tmp_path):
        report = tmp_path / "plans.json"
        rc = plans_main(["--ddtbench", "--report", str(report)])
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(report.read_text())
        assert doc["total"] == doc["verified"] == 24  # 12 workloads x 2
        for entry in doc["reports"]:
            assert entry["verified"] is True
            assert entry["calls"] == 1

    def test_dispatch_through_main(self, capsys):
        assert main(["plans", "--ddtbench"]) == 0

    def test_no_inputs_is_usage_error(self, capsys):
        assert plans_main([]) == 2

    def test_rpd6_prefix_accepted_by_select(self, capsys):
        rc = plans_main(["--miscompile-corpus", "--select", "RPD6",
                         "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert all(f["code"].startswith("RPD6") for f in doc["findings"])


class TestSelectIgnoreValidation:
    """Satellite: unknown RPD codes in --select/--ignore are rejected."""

    def test_typo_rejected_on_main(self, capsys):
        assert main([REPO + "/examples", "--select", "RPD16"]) == 2
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_typo_rejected_on_flow(self, capsys):
        assert main(["flow", REPO + "/examples", "--ignore", "RDP500"]) == 2
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_typo_rejected_on_plans(self, capsys):
        assert plans_main(["--ddtbench", "--ignore", "RPD900"]) == 2
        assert "unknown diagnostic code" in capsys.readouterr().err

    def test_valid_prefixes_still_accepted(self, capsys):
        rc = plans_main(["--ddtbench", "--select", "RPD6,RPD610"])
        capsys.readouterr()
        assert rc == 0
