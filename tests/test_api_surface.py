"""Public API surface: every exported name exists and is documented."""

import importlib

import pytest

PACKAGES = ["repro", "repro.core", "repro.ucp", "repro.mpi", "repro.serial",
            "repro.types", "repro.ddtbench", "repro.bench", "repro.analyze"]


@pytest.mark.parametrize("pkg", PACKAGES)
class TestExports:
    def test_all_names_resolve(self, pkg):
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{pkg}.{name} exported but missing"

    def test_package_docstring(self, pkg):
        mod = importlib.import_module(pkg)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20


class TestPublicCallablesDocumented:
    @pytest.mark.parametrize("pkg", PACKAGES[1:])
    def test_exported_callables_have_docstrings(self, pkg):
        mod = importlib.import_module(pkg)
        undocumented = []
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) and not isinstance(obj, type(None).__class__):
                if not getattr(obj, "__doc__", None):
                    undocumented.append(name)
        assert not undocumented, f"{pkg}: missing docstrings: {undocumented}"


class TestVersion:
    def test_version_string(self):
        import repro
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1


class TestCapiSurface:
    def test_capi_exports(self):
        from repro import capi
        for name in capi.__all__:
            assert hasattr(capi, name)
