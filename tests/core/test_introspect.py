"""Datatype introspection and marshalling tests."""

import numpy as np
import pytest

from repro.core import (BYTE, FLOAT64, INT32, contiguous, create_struct, dup,
                        equivalent, get_contents, get_envelope, hindexed,
                        indexed, marshal, pack, resized, subarray,
                        type_create_custom, unmarshal, vector)
from repro.errors import TypeError_


def sample_types():
    return [
        INT32,
        contiguous(4, FLOAT64),
        vector(3, 2, 4, INT32),
        indexed([2, 1], [0, 4], INT32),
        hindexed([1, 2], [8, 16], FLOAT64),
        resized(create_struct([3, 1], [0, 16], [INT32, FLOAT64]), 0, 24),
        subarray([4, 6], [2, 3], [1, 2], FLOAT64),
        dup(vector(2, 1, 3, INT32)),
        create_struct([1, 2], [0, 8],
                      [INT32, contiguous(2, FLOAT64)]),  # nested
    ]


class TestEnvelope:
    def test_named(self):
        assert get_envelope(INT32) == ("named", 0)

    def test_derived(self):
        assert get_envelope(vector(3, 2, 4, INT32)) == ("vector", 1)
        assert get_envelope(create_struct([1], [0], [INT32])) == ("struct", 1)

    def test_custom_rejected(self):
        t = type_create_custom(query_fn=lambda s, b, c: 0)
        with pytest.raises(TypeError_):
            get_envelope(t)


class TestContents:
    def test_vector_params(self):
        params, children = get_contents(vector(3, 2, 4, INT32))
        assert params == {"count": 3, "blocklength": 2, "stride_bytes": 16}
        assert children == (INT32,)

    def test_struct_params(self):
        t = create_struct([3, 1], [0, 16], [INT32, FLOAT64])
        params, children = get_contents(t)
        assert params["blocklengths"] == [3, 1]
        assert params["displacements"] == [0, 16]
        assert children == (INT32, FLOAT64)

    def test_named_empty(self):
        assert get_contents(FLOAT64) == ({}, ())


class TestMarshal:
    @pytest.mark.parametrize("t", sample_types(),
                             ids=lambda t: t.name[:40])
    def test_roundtrip_is_equivalent(self, t):
        data = marshal(t)
        rebuilt = unmarshal(data)
        assert equivalent(t, rebuilt)

    @pytest.mark.parametrize("t", sample_types()[1:],
                             ids=lambda t: t.name[:40])
    def test_rebuilt_packs_identically(self, t):
        rng = np.random.default_rng(3)
        from repro.core import required_span
        span = max(required_span(t, 2), t.extent * 2, 1)
        buf = rng.integers(0, 256, size=span, dtype=np.uint8)
        rebuilt = unmarshal(marshal(t))
        assert bytes(pack(t, buf, 2)) == bytes(pack(rebuilt, buf, 2))

    def test_marshal_is_deterministic(self):
        t = vector(3, 2, 4, INT32)
        assert marshal(t) == marshal(t)

    def test_custom_cannot_marshal(self):
        t = type_create_custom(query_fn=lambda s, b, c: 0)
        with pytest.raises(TypeError_):
            marshal(t)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(TypeError_):
            unmarshal(b"not json")
        with pytest.raises(TypeError_):
            unmarshal(b'{"format": "other", "type": {}}')

    def test_unknown_predefined_rejected(self):
        import json
        doc = {"format": "repro-datatype-v1",
               "type": {"kind": "named", "name": "MPI_NOPE"}}
        with pytest.raises(TypeError_):
            unmarshal(json.dumps(doc).encode())

    def test_marshal_over_the_wire(self):
        """Send the *description*, rebuild, then use it to receive — the
        Kimpe et al. use case."""
        from repro.mpi import run
        t = resized(create_struct([3, 1], [0, 16], [INT32, FLOAT64]), 0, 24)

        def fn(comm):
            if comm.rank == 0:
                desc = marshal(t)
                comm.send(np.frombuffer(desc, np.uint8), dest=1, tag=1)
                buf = np.zeros(24 * 4, np.uint8)
                buf.view(np.int32)[::6] = [9, 9, 9, 9]
                comm.send(buf, dest=1, tag=2, datatype=t, count=4)
                return None
            handle, st = comm.mprobe(source=0, tag=1)
            desc = bytearray(st.nbytes)
            handle.mrecv(desc)
            remote_t = unmarshal(bytes(desc))
            assert equivalent(remote_t, t)
            buf = np.zeros(24 * 4, np.uint8)
            comm.recv(buf, source=0, tag=2, datatype=remote_t, count=4)
            return buf.view(np.int32)[::6].tolist()

        assert run(fn, nprocs=2).results[1] == [9, 9, 9, 9]


class TestEquivalent:
    def test_same_layout_different_construction(self):
        a = contiguous(4, INT32)
        b = vector(4, 1, 1, INT32)
        assert equivalent(a, b)

    def test_different_layout(self):
        assert not equivalent(vector(2, 1, 2, INT32), contiguous(2, INT32))

    def test_resize_matters(self):
        t = contiguous(1, INT32)
        assert not equivalent(t, resized(t, 0, 8))

    def test_custom_rejected(self):
        t = type_create_custom(query_fn=lambda s, b, c: 0)
        with pytest.raises(TypeError_):
            equivalent(t, BYTE)
