"""Datatype.signature(): the canonical flattened type signature.

MPI's matching rule cares only about the scalar *sequence* a datatype
moves — constructors and displacements are erased.  These tests pin the
equality/commutation laws plus :func:`signature_compatible` semantics.
"""

import pytest

from repro.core import (BYTE, FLOAT32, FLOAT64, INT32, INT64, contiguous,
                        create_struct, format_signature, indexed, resized,
                        signature_bytes, signature_compatible,
                        type_create_custom, vector)


class TestSignatureLaws:
    def test_predefined(self):
        assert FLOAT64.signature() == (("f8", 1),)
        assert FLOAT64.signature(4) == (("f8", 4),)
        assert FLOAT64.signature(0) == ()

    def test_contiguous_equals_flat_count(self):
        # sig(contiguous(n, T)) == sig(T, n): constructors are erased.
        assert contiguous(6, INT32).signature() == INT32.signature(6)
        assert contiguous(3, FLOAT64).signature(2) == FLOAT64.signature(6)

    def test_layout_erasure_vector_indexed(self):
        # A strided vector and a scattered indexed type moving the same
        # scalars have the same signature as the contiguous equivalent.
        v = vector(4, 2, 8, FLOAT64)  # 4 blocks of 2 doubles, stride 8
        ix = indexed([2, 2, 2, 2], [0, 16, 32, 48], FLOAT64)
        assert v.signature() == FLOAT64.signature(8)
        assert ix.signature() == v.signature()

    def test_resized_does_not_change_signature(self):
        t = contiguous(4, INT32)
        assert resized(t, 0, 64).signature() == t.signature()

    def test_struct_commutation_with_concatenation(self):
        # sig(struct(a, b)) == sig(a) + sig(b) with adjacent runs merged.
        s = create_struct([2, 1], [0, 8], [INT32, FLOAT64])
        assert s.signature() == (("i4", 2), ("f8", 1))
        assert s.signature(2) == (("i4", 2), ("f8", 1), ("i4", 2), ("f8", 1))

    def test_adjacent_runs_merge(self):
        s = create_struct([1, 1], [0, 4], [INT32, INT32])
        assert s.signature() == (("i4", 2),)
        assert s.signature(3) == (("i4", 6),)

    def test_custom_datatype_has_no_static_signature(self):
        dt = type_create_custom(
            query_fn=lambda state, buf, count: 0,
            pack_fn=lambda state, buf, count, offset, dst: 0,
            unpack_fn=lambda state, buf, count, offset, src: None,
            name="custom:sig-test")
        assert dt.signature() is None
        assert dt.signature(5) is None

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FLOAT64.signature(-1)


class TestCompatibility:
    def test_equal_signatures_match(self):
        s = create_struct([2, 1], [0, 8], [INT32, FLOAT64]).signature()
        ok, reason = signature_compatible(s, s)
        assert ok and reason == ""

    def test_layout_differs_signature_matches(self):
        v = vector(4, 2, 8, FLOAT64)
        ok, _ = signature_compatible(v.signature(),
                                     contiguous(8, FLOAT64).signature())
        assert ok

    def test_prefix_rule_longer_receive_ok(self):
        ok, _ = signature_compatible(FLOAT64.signature(4),
                                     FLOAT64.signature(8))
        assert ok

    def test_prefix_rule_shorter_receive_rejected(self):
        ok, reason = signature_compatible(FLOAT64.signature(8),
                                          FLOAT64.signature(4))
        assert not ok and "longer" in reason

    def test_scalar_mismatch_rejected(self):
        ok, reason = signature_compatible(FLOAT64.signature(4),
                                          INT64.signature(4))
        assert not ok and "f8" in reason and "i8" in reason

    def test_run_length_boundaries_do_not_matter(self):
        # (i4 x2)(i4 x2) vs (i4 x4): same scalar sequence.
        ok, _ = signature_compatible((("i4", 2), ("i4", 2)), (("i4", 4),))
        assert ok

    def test_byte_side_is_leniency_escape_hatch(self):
        ok, _ = signature_compatible(FLOAT64.signature(4),
                                     BYTE.signature(32))
        assert ok
        ok, reason = signature_compatible(FLOAT64.signature(4),
                                          BYTE.signature(16))
        assert not ok and "32" in reason

    def test_unknown_side_matches_anything(self):
        assert signature_compatible(None, FLOAT64.signature(2)) == (True, "")
        assert signature_compatible(FLOAT32.signature(2), None) == (True, "")

    def test_helpers(self):
        sig = create_struct([2, 1], [0, 8], [INT32, FLOAT64]).signature()
        assert signature_bytes(sig) == 16
        assert format_signature(sig) == "i4 x2 + f8 x1"
        assert format_signature(None) == "<dynamic>"
        assert format_signature(()) == "<empty>"
