"""Pack-engine tests: correctness on gapped types, windows, property tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (FLOAT64, INT32, create_struct, pack, pack_window,
                        packed_size, required_span, resized, unpack,
                        unpack_window, vector)
from repro.errors import MPIError


def struct_simple_t():
    return resized(create_struct([3, 1], [0, 16], [INT32, FLOAT64]), 0, 24)


def fill_struct_simple(count):
    sd = np.dtype({"names": ["a", "b", "c", "d"],
                   "formats": ["<i4", "<i4", "<i4", "<f8"],
                   "offsets": [0, 4, 8, 16], "itemsize": 24})
    arr = np.zeros(count, dtype=sd)
    arr["a"] = np.arange(count)
    arr["b"] = 2 * np.arange(count)
    arr["c"] = 3 * np.arange(count)
    arr["d"] = np.arange(count) + 0.5
    return arr


class TestPackUnpack:
    def test_contiguous_identity(self):
        a = np.arange(16, dtype=np.int32)
        p = pack(INT32, a, 16)
        assert np.array_equal(p.view(np.int32), a)

    def test_gapped_struct_roundtrip(self):
        t = struct_simple_t()
        arr = fill_struct_simple(10)
        p = pack(t, arr, 10)
        assert p.shape[0] == 200
        out = np.zeros_like(arr)
        unpack(t, out, 10, p)
        assert (out == arr).all()

    def test_gap_bytes_not_packed(self):
        t = struct_simple_t()
        arr = fill_struct_simple(2)
        raw = arr.view(np.uint8).reshape(-1)
        raw[12:16] = 0xAB  # poison the gap
        p = pack(t, arr, 2)
        assert 0xAB not in p[:20]

    def test_count_zero(self):
        t = struct_simple_t()
        assert pack(t, np.zeros(0, dtype=np.uint8), 0).shape == (0,)

    def test_pack_into_provided_buffer(self):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        out = np.zeros(80, dtype=np.uint8)
        pack(t, arr, 4, out=out)
        # Filled in place (the return value may be a uint8 view of out).
        assert bytes(out) == bytes(pack(t, arr, 4))

    def test_wrong_output_size_rejected(self):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        with pytest.raises(MPIError):
            pack(t, arr, 4, out=np.zeros(79, dtype=np.uint8))

    def test_send_buffer_too_small(self):
        t = struct_simple_t()
        with pytest.raises(MPIError):
            pack(t, np.zeros(10, dtype=np.uint8), 4)

    def test_recv_buffer_too_small(self):
        t = struct_simple_t()
        with pytest.raises(MPIError):
            unpack(t, np.zeros(10, dtype=np.uint8), 4,
                   np.zeros(80, dtype=np.uint8))

    def test_packed_too_small(self):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        with pytest.raises(MPIError):
            unpack(t, arr, 4, np.zeros(79, dtype=np.uint8))

    def test_readonly_recv_rejected(self):
        a = np.arange(4, dtype=np.int32)
        a.flags.writeable = False
        with pytest.raises(MPIError):
            unpack(INT32, a, 4, np.zeros(16, dtype=np.uint8))

    def test_noncontiguous_buffer_rejected(self):
        a = np.arange(32, dtype=np.int32)[::2]
        with pytest.raises(MPIError):
            pack(INT32, a, 16)

    def test_last_element_partial_extent(self):
        """The buffer may end at the last element's true_ub, short of a
        full extent."""
        t = struct_simple_t()
        arr = fill_struct_simple(3)
        raw = arr.view(np.uint8).reshape(-1)[:48 + 24]  # exactly 3 extents
        # Truncate to true_ub of last element: 2*24 + 24 == 72 anyway here,
        # so instead test required_span accounting directly.
        assert required_span(t, 3) == 2 * 24 + 24

    def test_bytearray_buffers(self):
        t = struct_simple_t()
        arr = fill_struct_simple(2)
        p = pack(t, bytearray(arr.tobytes()), 2)
        out = bytearray(48)
        unpack(t, out, 2, p)
        assert np.frombuffer(out, dtype=arr.dtype).tolist() == arr.tolist()


class TestSizes:
    def test_packed_size(self):
        assert packed_size(struct_simple_t(), 5) == 100
        assert packed_size(INT32, 7) == 28

    def test_required_span(self):
        t = struct_simple_t()
        assert required_span(t, 1) == 24
        assert required_span(t, 0) == 0
        v = vector(3, 2, 4, INT32)
        # last block ends at (2*4+2)*4 = 40
        assert required_span(v, 1) == 40


class TestWindows:
    def test_window_equals_slice_of_full_pack(self):
        t = struct_simple_t()
        arr = fill_struct_simple(16)
        full = pack(t, arr, 16)
        for off, ln in [(0, 10), (7, 33), (20, 20), (199, 121), (315, 5)]:
            w = pack_window(t, arr, 16, off, ln)
            assert bytes(w) == bytes(full[off:off + ln]), (off, ln)

    def test_window_full_range(self):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        w = pack_window(t, arr, 4, 0, 80)
        assert bytes(w) == bytes(pack(t, arr, 4))

    def test_window_zero_length(self):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        assert pack_window(t, arr, 4, 10, 0).shape == (0,)

    def test_window_out_of_range(self):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        with pytest.raises(MPIError):
            pack_window(t, arr, 4, 70, 20)
        with pytest.raises(MPIError):
            pack_window(t, arr, 4, -1, 5)

    @pytest.mark.parametrize("step", [1, 3, 7, 19, 80])
    def test_unpack_windows_reassemble(self, step):
        t = struct_simple_t()
        arr = fill_struct_simple(4)
        full = pack(t, arr, 4)
        out = np.zeros_like(arr)
        for off in range(0, 80, step):
            ln = min(step, 80 - off)
            unpack_window(t, out, 4, off, full[off:off + ln])
        assert (out == arr).all()

    def test_unpack_window_out_of_range(self):
        t = struct_simple_t()
        out = fill_struct_simple(4)
        with pytest.raises(MPIError):
            unpack_window(t, out, 4, 75, np.zeros(10, dtype=np.uint8))


# -- property-based: random gapped struct layouts ------------------------------

@st.composite
def random_struct(draw):
    """A random padded struct over i32/f64 fields."""
    nfields = draw(st.integers(1, 5))
    fields = []
    offset = 0
    for _ in range(nfields):
        offset += draw(st.integers(0, 8))  # leading pad
        ftype = draw(st.sampled_from([INT32, FLOAT64]))
        blen = draw(st.integers(1, 4))
        fields.append((blen, offset, ftype))
        offset += blen * ftype.size
    extent = offset + draw(st.integers(0, 8))  # trailing pad
    t = create_struct([f[0] for f in fields], [f[1] for f in fields],
                      [f[2] for f in fields])
    return resized(t, 0, extent)


class TestPackProperties:
    @given(random_struct(), st.integers(0, 20))
    def test_roundtrip_identity_on_packed_bytes(self, t, count):
        rng = np.random.default_rng(0)
        buf = rng.integers(0, 256, size=max(t.extent * count, 1),
                           dtype=np.uint8)
        p = pack(t, buf, count)
        assert p.shape[0] == packed_size(t, count)
        out = np.zeros_like(buf)
        unpack(t, out, count, p)
        assert bytes(pack(t, out, count)) == bytes(p)

    @given(random_struct(), st.integers(1, 12), st.integers(1, 64))
    def test_windows_tile_full_pack(self, t, count, step):
        rng = np.random.default_rng(1)
        buf = rng.integers(0, 256, size=t.extent * count, dtype=np.uint8)
        full = pack(t, buf, count)
        total = full.shape[0]
        chunks = [pack_window(t, buf, count, off, min(step, total - off))
                  for off in range(0, total, step)]
        joined = b"".join(bytes(c) for c in chunks)
        assert joined == bytes(full)

    @given(random_struct(), st.integers(1, 10))
    def test_unpack_overwrites_only_data_bytes(self, t, count):
        """Bytes in gaps/padding must survive an unpack untouched."""
        rng = np.random.default_rng(2)
        buf = rng.integers(0, 256, size=t.extent * count, dtype=np.uint8)
        p = pack(t, buf, count)
        target = np.full(t.extent * count, 0xEE, dtype=np.uint8)
        unpack(t, target, count, p)
        # Re-packing the target recovers p; all non-data bytes still 0xEE.
        assert bytes(pack(t, target, count)) == bytes(p)
        data_mask = np.zeros(t.extent * count, dtype=bool)
        for i in range(count):
            for b in t.typemap.blocks:
                s = i * t.extent + b.offset
                data_mask[s:s + b.length] = True
        assert (target[~data_mask] == 0xEE).all()
