"""Pack-plan engine tests: equivalence with the reference engine, cursor
pipelines, and plan-cache behaviour."""

import gc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FLOAT64, INT32, PackCursor, UnpackCursor,
                        clear_plan_cache, contiguous, create_struct, pack,
                        pack_plan,
                        pack_reference, pack_window, pack_window_reference,
                        packed_size, plan_cache_info, required_span, resized,
                        unpack, unpack_reference, unpack_window,
                        unpack_window_reference, vector)
from repro.ddtbench.registry import make_workload
from repro.errors import MPIError
from repro.types import make_struct_simple, struct_simple_datatype


def corpus():
    """(name, dtype, src, count) tuples spanning the layouts we ship."""
    entries = []
    t = struct_simple_datatype()
    entries.append(("struct-simple", t, make_struct_simple(64), 64))
    v = vector(16, 1, 2, FLOAT64)
    rng = np.random.default_rng(3)
    entries.append(("vector-f64", v,
                    rng.integers(0, 256, required_span(v, 32),
                                 dtype=np.uint8), 32))
    for name in ("WRF_x_vec", "WRF_y_vec", "MILC", "NAS_MG_x"):
        w = make_workload(name)
        entries.append((f"ddtbench-{name}", w.derived_datatype(),
                        w.make_send_buffer(), 1))
    return entries


def short_final_t():
    """extent 16 but true_ub 4: the buffer may stop 12 bytes short."""
    return resized(create_struct([1], [0], [INT32]), 0, 16)


class TestPlanEquivalence:
    @pytest.mark.parametrize("name,t,src,count",
                             corpus(), ids=[e[0] for e in corpus()])
    def test_pack_matches_reference(self, name, t, src, count):
        assert bytes(pack(t, src, count)) == \
            bytes(pack_reference(t, src, count))

    @pytest.mark.parametrize("name,t,src,count",
                             corpus(), ids=[e[0] for e in corpus()])
    def test_unpack_matches_reference(self, name, t, src, count):
        packed = pack(t, src, count)
        span = required_span(t, count)
        a = np.full(span, 0xA5, dtype=np.uint8)
        b = np.full(span, 0xA5, dtype=np.uint8)
        unpack(t, a, count, packed)
        unpack_reference(t, b, count, packed)
        assert bytes(a) == bytes(b)

    @pytest.mark.parametrize("name,t,src,count",
                             corpus(), ids=[e[0] for e in corpus()])
    def test_unaligned_windows_match_reference(self, name, t, src, count):
        total = packed_size(t, count)
        # Deliberately element-misaligned offsets and lengths.
        for off, ln in [(0, min(7, total)), (3, min(11, total - 3)),
                        (total // 2 - 1, min(13, total - total // 2 + 1)),
                        (max(0, total - 5), min(5, total))]:
            w = pack_window(t, src, count, off, ln)
            r = pack_window_reference(t, src, count, off, ln)
            assert bytes(w) == bytes(r), (off, ln)

    def test_count_zero(self):
        t = struct_simple_datatype()
        empty = np.zeros(0, dtype=np.uint8)
        assert pack(t, empty, 0).shape == (0,)
        assert bytes(pack(t, empty, 0)) == bytes(pack_reference(t, empty, 0))
        unpack(t, empty, 0, np.zeros(0, dtype=np.uint8))  # must not raise

    def test_short_final_element(self):
        """A buffer ending at the last element's true_ub (< extent)."""
        t = short_final_t()
        count = 5
        span = required_span(t, count)
        assert span == 4 * 16 + 4
        rng = np.random.default_rng(9)
        src = rng.integers(0, 256, span, dtype=np.uint8)
        p = pack(t, src, count)
        assert bytes(p) == bytes(pack_reference(t, src, count))
        out = np.zeros(span, dtype=np.uint8)
        unpack(t, out, count, p)
        ref = np.zeros(span, dtype=np.uint8)
        unpack_reference(t, ref, count, p)
        assert bytes(out) == bytes(ref)

    def test_error_messages_match_reference(self):
        t = struct_simple_datatype()
        src = make_struct_simple(4)
        with pytest.raises(MPIError) as plan_err:
            pack(t, src, 4, out=np.zeros(1, dtype=np.uint8))
        with pytest.raises(MPIError) as ref_err:
            pack_reference(t, src, 4, out=np.zeros(1, dtype=np.uint8))
        assert str(plan_err.value) == str(ref_err.value)


class TestCursors:
    @pytest.mark.parametrize("frag", [1, 7, 64, 8192])
    def test_pack_cursor_tiles_full_pack(self, frag):
        t = struct_simple_datatype()
        src = make_struct_simple(100)
        full = pack(t, src, 100)
        total = full.shape[0]
        with PackCursor(t, src, 100) as cur:
            off = 0
            while off < total:
                ln = min(frag, total - off)
                assert bytes(cur.window(off, ln)) == \
                    bytes(full[off:off + ln]), off
                off += ln

    def test_pack_cursor_random_fragments(self):
        t = struct_simple_datatype()
        src = make_struct_simple(200)
        full = pack(t, src, 200)
        total = full.shape[0]
        rng = np.random.default_rng(11)
        with PackCursor(t, src, 200) as cur:
            off = 0
            while off < total:
                ln = min(int(rng.integers(1, 9000)), total - off)
                assert bytes(cur.window(off, ln)) == bytes(full[off:off + ln])
                off += ln

    @pytest.mark.parametrize("frag", [1, 7, 64, 8192])
    def test_unpack_cursor_in_order(self, frag):
        t = struct_simple_datatype()
        src = make_struct_simple(100)
        full = pack(t, src, 100)
        total = full.shape[0]
        dst = np.zeros(required_span(t, 100), dtype=np.uint8)
        with UnpackCursor(t, dst, 100) as cur:
            off = 0
            while off < total:
                ln = min(frag, total - off)
                cur.write(off, full[off:off + ln])
                off += ln
        assert bytes(pack(t, dst, 100)) == bytes(full)

    def test_unpack_cursor_out_of_order(self):
        """Shuffled fragments fall back to the stateless path but must
        still reassemble correctly."""
        t = struct_simple_datatype()
        src = make_struct_simple(100)
        full = pack(t, src, 100)
        total = full.shape[0]
        rng = np.random.default_rng(13)
        frags = []
        off = 0
        while off < total:
            ln = min(int(rng.integers(1, 1500)), total - off)
            frags.append((off, full[off:off + ln]))
            off += ln
        rng.shuffle(frags)
        dst = np.zeros(required_span(t, 100), dtype=np.uint8)
        with UnpackCursor(t, dst, 100) as cur:
            for off, data in frags:
                cur.write(off, data)
        assert bytes(pack(t, dst, 100)) == bytes(full)

    def test_cursors_on_ddtbench_count_one(self):
        """count=1 workloads exercise the intra-element windowed paths."""
        w = make_workload("MILC")
        t = w.derived_datatype()
        src = w.make_send_buffer()
        full = pack(t, src, 1)
        total = full.shape[0]
        with PackCursor(t, src, 1) as cur:
            off = 0
            while off < total:
                ln = min(8192, total - off)
                assert bytes(cur.window(off, ln)) == bytes(full[off:off + ln])
                off += ln
        dst = np.zeros(required_span(t, 1), dtype=np.uint8)
        with UnpackCursor(t, dst, 1) as cur:
            off = 0
            while off < total:
                ln = min(8192, total - off)
                cur.write(off, full[off:off + ln])
                off += ln
        assert bytes(pack(t, dst, 1)) == bytes(full)

    def test_pack_cursor_window_out_of_range(self):
        t = struct_simple_datatype()
        src = make_struct_simple(4)
        with PackCursor(t, src, 4) as cur:
            with pytest.raises(MPIError):
                cur.window(79, 5)


# -- property-based ----------------------------------------------------------

@st.composite
def random_struct(draw):
    nfields = draw(st.integers(1, 5))
    fields = []
    offset = 0
    for _ in range(nfields):
        offset += draw(st.integers(0, 8))
        ftype = draw(st.sampled_from([INT32, FLOAT64]))
        blen = draw(st.integers(1, 4))
        fields.append((blen, offset, ftype))
        offset += blen * ftype.size
    extent = offset + draw(st.integers(0, 8))
    t = create_struct([f[0] for f in fields], [f[1] for f in fields],
                      [f[2] for f in fields])
    return resized(t, 0, extent)


class TestPlanProperties:
    @given(random_struct(), st.integers(0, 24))
    def test_pack_equals_reference(self, t, count):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 256, max(t.extent * count, 1), dtype=np.uint8)
        assert bytes(pack(t, src, count)) == \
            bytes(pack_reference(t, src, count))

    @given(random_struct(), st.integers(1, 16), st.integers(1, 97))
    def test_cursor_windows_tile_reference_pack(self, t, count, step):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 256, t.extent * count, dtype=np.uint8)
        full = pack_reference(t, src, count)
        total = full.shape[0]
        with PackCursor(t, src, count) as cur:
            off = 0
            while off < total:
                ln = min(step, total - off)
                assert bytes(cur.window(off, ln)) == bytes(full[off:off + ln])
                off += ln

    @settings(deadline=None)
    @given(random_struct(), st.integers(1, 16), st.integers(1, 97))
    def test_unpack_cursor_matches_reference_windows(self, t, count, step):
        rng = np.random.default_rng(2)
        src = rng.integers(0, 256, t.extent * count, dtype=np.uint8)
        full = pack_reference(t, src, count)
        total = full.shape[0]
        a = np.full(t.extent * count, 0xEE, dtype=np.uint8)
        b = np.full(t.extent * count, 0xEE, dtype=np.uint8)
        with UnpackCursor(t, a, count) as cur:
            off = 0
            while off < total:
                ln = min(step, total - off)
                cur.write(off, full[off:off + ln])
                off += ln
        off = 0
        while off < total:
            ln = min(step, total - off)
            unpack_window_reference(t, b, count, off, full[off:off + ln])
            off += ln
        assert bytes(a) == bytes(b)


# -- plan cache --------------------------------------------------------------

class TestPlanCache:
    def setup_method(self):
        clear_plan_cache()

    def teardown_method(self):
        clear_plan_cache()

    def test_hit_on_repeated_pack(self):
        t = struct_simple_datatype()
        src = make_struct_simple(8)
        pack(t, src, 8)
        info = plan_cache_info()
        assert info["misses"] >= 1
        hits_before = info["hits"]
        pack(t, src, 8)
        assert plan_cache_info()["hits"] > hits_before

    def test_hits_split_by_plan_kind(self):
        noncontig = struct_simple_datatype()
        contig = contiguous(4, INT32)
        src = make_struct_simple(8)
        flat = np.arange(4, dtype=np.int32).view(np.uint8)
        for _ in range(2):  # second round hits the cache
            pack(noncontig, src, 8)
            pack(contig, flat, 1)
        info = plan_cache_info()
        assert info["contig_hits"] >= 1
        assert info["compiled_hits"] >= 1
        assert info["hits"] == info["contig_hits"] + info["compiled_hits"]

    def test_count_classes_are_distinct_plans(self):
        t = struct_simple_datatype()
        p1 = pack_plan(t, 1)
        pn = pack_plan(t, 8)
        assert p1 is not pn
        assert pack_plan(t, 1) is p1
        assert pack_plan(t, 200) is pn

    def test_eviction_on_datatype_collection(self):
        """Freeing a datatype must drop its plans — no stale aliasing if a
        later typemap reuses the same id()."""
        t = resized(create_struct([3, 1], [0, 16], [INT32, FLOAT64]), 0, 24)
        pack_plan(t, 4)
        assert plan_cache_info()["size"] == 1
        evictions_before = plan_cache_info()["evictions"]
        del t
        gc.collect()
        info = plan_cache_info()
        assert info["size"] == 0
        assert info["evictions"] == evictions_before + 1

    def test_fresh_datatype_gets_fresh_plan(self):
        def make():
            return resized(create_struct([3, 1], [0, 16],
                                         [INT32, FLOAT64]), 0, 24)

        t1 = make()
        plan1 = pack_plan(t1, 4)
        del t1
        gc.collect()
        t2 = make()
        plan2 = pack_plan(t2, 4)
        assert plan2 is not plan1

    def test_lru_bound(self):
        from repro.core import typecache
        keep = []
        for _ in range(typecache.PLAN_CACHE_MAXSIZE + 10):
            t = resized(create_struct([1], [0], [INT32]), 0, 8)
            keep.append(t)  # keep alive: eviction must come from the LRU cap
            pack_plan(t, 1)
        info = plan_cache_info()
        assert info["size"] == typecache.PLAN_CACHE_MAXSIZE
        assert info["evictions"] >= 10
