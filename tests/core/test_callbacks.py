"""Callback-set validation and state lifecycle tests."""

import pytest

from repro.core import CallbackSet, OperationState
from repro.core.callbacks import invoke
from repro.errors import CallbackError


def q(state, buf, count):
    return 0


class TestCallbackSet:
    def test_minimal(self):
        cb = CallbackSet(query_fn=q)
        assert not cb.has_regions
        assert cb.context is None

    def test_query_required(self):
        with pytest.raises(TypeError):
            CallbackSet(query_fn=None)

    def test_query_must_be_callable(self):
        with pytest.raises(TypeError):
            CallbackSet(query_fn=42)

    def test_non_callable_optional_rejected(self):
        with pytest.raises(TypeError):
            CallbackSet(query_fn=q, pack_fn="nope")

    def test_region_pair_required_together(self):
        with pytest.raises(TypeError):
            CallbackSet(query_fn=q, region_count_fn=lambda s, b, c: 0)
        with pytest.raises(TypeError):
            CallbackSet(query_fn=q, region_fn=lambda s, b, c, n: [])

    def test_region_pair_together_ok(self):
        cb = CallbackSet(query_fn=q,
                         region_count_fn=lambda s, b, c: 0,
                         region_fn=lambda s, b, c, n: [])
        assert cb.has_regions

    def test_context_carried(self):
        ctx = object()
        assert CallbackSet(query_fn=q, context=ctx).context is ctx


class TestInvoke:
    def test_passthrough(self):
        assert invoke("f", lambda a, b: a + b, 1, 2) == 3

    def test_wraps_exceptions(self):
        def bad():
            raise ValueError("serializer choked")

        with pytest.raises(CallbackError) as ei:
            invoke("bad", bad)
        assert isinstance(ei.value.__cause__, ValueError)
        assert "bad" in str(ei.value)

    def test_callback_error_not_double_wrapped(self):
        def bad():
            raise CallbackError("already wrapped")

        with pytest.raises(CallbackError) as ei:
            invoke("bad", bad)
        assert "already wrapped" in str(ei.value)


class TestOperationState:
    def test_state_created_and_freed(self):
        events = []
        cb = CallbackSet(
            query_fn=q,
            state_fn=lambda ctx, buf, count: events.append(("new", ctx, buf, count)) or "S",
            state_free_fn=lambda s: events.append(("free", s)),
            context="CTX")
        with OperationState(cb, "BUF", 3) as op:
            assert op.state == "S"
        assert events == [("new", "CTX", "BUF", 3), ("free", "S")]

    def test_no_state_fn_is_none(self):
        cb = CallbackSet(query_fn=q)
        with OperationState(cb, None, 1) as op:
            assert op.state is None

    def test_free_runs_on_exception(self):
        freed = []
        cb = CallbackSet(query_fn=q,
                         state_fn=lambda ctx, b, c: "S",
                         state_free_fn=lambda s: freed.append(s))
        with pytest.raises(RuntimeError):
            with OperationState(cb, None, 1):
                raise RuntimeError("boom")
        assert freed == ["S"]

    def test_double_exit_frees_once(self):
        freed = []
        cb = CallbackSet(query_fn=q,
                         state_fn=lambda ctx, b, c: "S",
                         state_free_fn=lambda s: freed.append(s))
        op = OperationState(cb, None, 1)
        op.__enter__()
        op.__exit__(None, None, None)
        op.__exit__(None, None, None)
        assert freed == ["S"]

    def test_state_fn_failure_wrapped(self):
        cb = CallbackSet(query_fn=q,
                         state_fn=lambda ctx, b, c: 1 / 0)
        with pytest.raises(CallbackError):
            OperationState(cb, None, 1).__enter__()
