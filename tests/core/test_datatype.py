"""Predefined datatype tests."""

import numpy as np
import pytest

from repro.core import datatype as dt


class TestPredefined:
    @pytest.mark.parametrize("t,size", [
        (dt.BYTE, 1), (dt.CHAR, 1), (dt.INT8, 1), (dt.UINT8, 1),
        (dt.INT16, 2), (dt.UINT16, 2), (dt.INT32, 4), (dt.UINT32, 4),
        (dt.INT64, 8), (dt.UINT64, 8), (dt.FLOAT32, 4), (dt.FLOAT64, 8),
        (dt.COMPLEX64, 8), (dt.COMPLEX128, 16),
    ])
    def test_sizes(self, t, size):
        assert t.size == size
        assert t.extent == size
        assert t.ub == size
        assert t.lb == 0

    def test_flags(self):
        assert dt.INT32.is_predefined
        assert dt.INT32.is_contiguous
        assert not dt.INT32.is_custom

    def test_typemap(self):
        tm = dt.FLOAT64.typemap
        assert tm.size == 8 and tm.is_contiguous

    def test_registry_complete(self):
        assert len(dt.PREDEFINED) == 14
        assert dt.PREDEFINED["MPI_DOUBLE"] is dt.FLOAT64

    def test_repr(self):
        assert "MPI_INT32_T" in repr(dt.INT32)


class TestFromNumpyDtype:
    @pytest.mark.parametrize("np_dt,expect", [
        (np.int32, dt.INT32), (np.float64, dt.FLOAT64),
        (np.uint8, dt.UINT8), (np.complex128, dt.COMPLEX128),
        ("<i8", dt.INT64), ("f4", dt.FLOAT32),
    ])
    def test_mapping(self, np_dt, expect):
        assert dt.from_numpy_dtype(np_dt) is expect

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            dt.from_numpy_dtype(np.dtype("U4"))

    def test_structured_rejected(self):
        with pytest.raises(KeyError):
            dt.from_numpy_dtype(np.dtype([("a", "i4")]))


class TestBaseClass:
    def test_abstract_size(self):
        with pytest.raises(NotImplementedError):
            dt.Datatype().size
        with pytest.raises(NotImplementedError):
            dt.Datatype().extent
        with pytest.raises(NotImplementedError):
            dt.Datatype().typemap
