"""RSMPI-style datatype cache tests."""

import threading

import pytest

from repro.core import (INT32, cache_info, cached_datatype,
                        clear_datatype_cache, contiguous, datatype_of,
                        register_datatype)


class Particle:
    pass


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_datatype_cache()
    yield
    clear_datatype_cache()


class TestTypeCache:
    def test_lazy_single_creation(self):
        calls = []

        register_datatype(Particle, lambda: calls.append(1) or contiguous(3, INT32))
        assert calls == []  # not created yet (first-use semantics)
        a = datatype_of(Particle)
        b = datatype_of(Particle)
        assert a is b
        assert calls == [1]

    def test_commit_on_creation(self):
        register_datatype(Particle, lambda: contiguous(3, INT32))
        assert datatype_of(Particle).committed

    def test_decorator_form(self):
        @cached_datatype("key")
        def factory():
            return contiguous(1, INT32)

        assert datatype_of("key").size == 4

    def test_unregistered_key(self):
        with pytest.raises(KeyError):
            datatype_of("nope")

    def test_reregister_invalidates(self):
        register_datatype(Particle, lambda: contiguous(1, INT32))
        a = datatype_of(Particle)
        register_datatype(Particle, lambda: contiguous(2, INT32))
        b = datatype_of(Particle)
        assert a is not b and b.size == 8

    def test_cache_info(self):
        register_datatype("a", lambda: contiguous(1, INT32))
        register_datatype("b", lambda: contiguous(1, INT32))
        info = cache_info()
        assert info["registered"] >= 2
        datatype_of("a")
        assert cache_info()["instantiated"] >= 1

    def test_concurrent_first_use_single_instance(self):
        register_datatype(Particle, lambda: contiguous(4, INT32))
        got = []

        def use():
            got.append(datatype_of(Particle))

        ts = [threading.Thread(target=use) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert all(g is got[0] for g in got)
