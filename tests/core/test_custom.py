"""Custom datatype API and operation-driver tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (CustomRecvOperation, CustomSendOperation, Region,
                        pack_all, type_create_custom, unpack_all)
from repro.errors import CallbackError, MPIError


def simple_bytes_type(payload_attr="data"):
    """A custom type moving ``obj.data`` (bytes) in-band."""

    def query_fn(state, buf, count):
        return len(getattr(buf, payload_attr))

    def pack_fn(state, buf, count, offset, dst):
        data = getattr(buf, payload_attr)
        step = min(len(dst), len(data) - offset)
        dst[:step] = np.frombuffer(data[offset:offset + step], dtype=np.uint8)
        return step

    def unpack_fn(state, buf, count, offset, src):
        data = getattr(buf, payload_attr)
        data[offset:offset + len(src)] = bytes(src)

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn, name="bytes")


class Obj:
    def __init__(self, data=b""):
        self.data = bytearray(data)


class TestCustomDatatype:
    def test_flags(self):
        t = simple_bytes_type()
        assert t.is_custom
        assert not t.is_predefined

    def test_no_static_size(self):
        t = simple_bytes_type()
        with pytest.raises(MPIError):
            t.size
        with pytest.raises(MPIError):
            t.extent
        with pytest.raises(MPIError):
            t.typemap

    def test_inorder_flag(self):
        t = type_create_custom(query_fn=lambda s, b, c: 0, inorder=True)
        assert t.inorder

    def test_name(self):
        assert simple_bytes_type().name == "bytes"


class TestSendOperation:
    def test_fragments_respect_frag_size(self):
        t = simple_bytes_type()
        obj = Obj(bytes(range(256)) * 10)
        with CustomSendOperation(t, obj, 1) as op:
            frags = op.pack_fragments(frag_size=100)
        assert [f.shape[0] for f in frags[:-1]] == [100] * (len(frags) - 1)
        assert b"".join(bytes(f) for f in frags) == bytes(obj.data)

    def test_query_cached(self):
        calls = []
        t = type_create_custom(
            query_fn=lambda s, b, c: calls.append(1) or 8,
            pack_fn=lambda s, b, c, o, d: 8)
        with CustomSendOperation(t, None, 1) as op:
            assert op.packed_size() == 8
            assert op.packed_size() == 8
        assert len(calls) == 1

    def test_negative_count_rejected(self):
        with pytest.raises(MPIError):
            CustomSendOperation(simple_bytes_type(), Obj(), -1)

    def test_bad_query_result(self):
        t = type_create_custom(query_fn=lambda s, b, c: -5)
        with pytest.raises(CallbackError):
            with CustomSendOperation(t, None, 1) as op:
                op.packed_size()

    def test_missing_pack_fn(self):
        t = type_create_custom(query_fn=lambda s, b, c: 10)
        with pytest.raises(CallbackError):
            with CustomSendOperation(t, None, 1) as op:
                op.pack_fragments(8)

    def test_pack_no_progress_detected(self):
        t = type_create_custom(query_fn=lambda s, b, c: 10,
                               pack_fn=lambda s, b, c, o, d: 0)
        with pytest.raises(CallbackError):
            with CustomSendOperation(t, None, 1) as op:
                op.pack_fragments(8)

    def test_pack_overrun_detected(self):
        t = type_create_custom(query_fn=lambda s, b, c: 10,
                               pack_fn=lambda s, b, c, o, d: len(d) + 1)
        with pytest.raises(CallbackError):
            with CustomSendOperation(t, None, 1) as op:
                op.pack_fragments(8)

    def test_partial_fill_resumes(self):
        """Pack may fill less than the fragment; the next call resumes."""
        data = bytes(range(30))

        def pack_fn(state, buf, count, offset, dst):
            step = min(7, len(dst), len(data) - offset)  # deliberately short
            dst[:step] = np.frombuffer(data[offset:offset + step], np.uint8)
            return step

        t = type_create_custom(query_fn=lambda s, b, c: 30, pack_fn=pack_fn)
        with CustomSendOperation(t, None, 1) as op:
            frags = op.pack_fragments(100)
        assert b"".join(bytes(f) for f in frags) == data

    def test_invalid_frag_size(self):
        with pytest.raises(MPIError):
            with CustomSendOperation(simple_bytes_type(), Obj(b"x"), 1) as op:
                op.pack_fragments(0)

    def test_region_count_mismatch(self):
        t = type_create_custom(
            query_fn=lambda s, b, c: 0,
            region_count_fn=lambda s, b, c: 2,
            region_fn=lambda s, b, c, n: [Region(np.zeros(4, np.uint8))])
        with pytest.raises(CallbackError):
            with CustomSendOperation(t, None, 1) as op:
                op.regions()

    def test_region_not_region(self):
        t = type_create_custom(
            query_fn=lambda s, b, c: 0,
            region_count_fn=lambda s, b, c: 1,
            region_fn=lambda s, b, c, n: [np.zeros(4, np.uint8)])
        with pytest.raises(CallbackError):
            with CustomSendOperation(t, None, 1) as op:
                op.regions()

    def test_no_region_callbacks_empty(self):
        with CustomSendOperation(simple_bytes_type(), Obj(b"ab"), 1) as op:
            assert op.regions() == []

    def test_callback_accounting(self):
        t = simple_bytes_type()
        obj = Obj(b"x" * 25)
        with CustomSendOperation(t, obj, 1) as op:
            op.pack_fragments(10)
            n = op.ncallbacks
        assert n == 1 + 3  # query + 3 pack calls


class TestRecvOperation:
    def test_unpack_fragments(self):
        t = simple_bytes_type()
        obj = Obj(bytearray(20))
        with CustomRecvOperation(t, obj, 1) as op:
            op.unpack_fragment(0, np.frombuffer(b"A" * 12, np.uint8))
            op.unpack_fragment(12, np.frombuffer(b"B" * 8, np.uint8))
            assert op.bytes_unpacked == 20
        assert bytes(obj.data) == b"A" * 12 + b"B" * 8

    def test_missing_unpack_fn(self):
        t = type_create_custom(query_fn=lambda s, b, c: 4)
        with pytest.raises(CallbackError):
            with CustomRecvOperation(t, None, 1) as op:
                op.unpack_fragment(0, b"abcd")

    def test_expected_size_none_means_unknown(self):
        t = type_create_custom(query_fn=lambda s, b, c: None)
        with CustomRecvOperation(t, None, 1) as op:
            assert op.expected_packed_size() == -1

    def test_recv_regions_validation(self):
        target = np.zeros(8, dtype=np.uint8)
        t = type_create_custom(
            query_fn=lambda s, b, c: 0,
            region_count_fn=lambda s, b, c: 1,
            region_fn=lambda s, b, c, n: [Region(target)])
        with CustomRecvOperation(t, None, 1) as op:
            regs = op.recv_regions([8])
            assert len(regs) == 1
        with CustomRecvOperation(t, None, 1) as op:
            with pytest.raises(MPIError):
                op.recv_regions([4])  # length mismatch
        with CustomRecvOperation(t, None, 1) as op:
            with pytest.raises(MPIError):
                op.recv_regions([8, 8])  # count mismatch

    def test_regions_without_callbacks_rejected(self):
        t = simple_bytes_type()
        with CustomRecvOperation(t, Obj(), 1) as op:
            with pytest.raises(CallbackError):
                op.recv_regions([4])

    def test_empty_region_list_ok(self):
        t = simple_bytes_type()
        with CustomRecvOperation(t, Obj(), 1) as op:
            assert op.recv_regions([]) == []


class TestPackAllUnpackAll:
    @given(st.binary(min_size=0, max_size=500), st.integers(1, 64))
    def test_roundtrip_any_frag_size(self, payload, frag_size):
        t = simple_bytes_type()
        src = Obj(payload)
        packed, regions = pack_all(t, src, 1, frag_size=frag_size)
        assert packed == payload
        assert regions == []
        dst = Obj(bytearray(len(payload)))
        unpack_all(t, dst, 1, packed, frag_size=frag_size)
        assert bytes(dst.data) == payload

    def test_regions_roundtrip(self):
        payload = np.arange(64, dtype=np.uint8)

        def region_type(target):
            return type_create_custom(
                query_fn=lambda s, b, c: 0,
                region_count_fn=lambda s, b, c: 1,
                region_fn=lambda s, b, c, n: [Region(target)])

        packed, regs = pack_all(region_type(payload), None, 1)
        assert packed == b"" and regs[0].nbytes == 64
        dst = np.zeros(64, dtype=np.uint8)
        unpack_all(region_type(dst), None, 1, b"",
                   [bytes(regs[0].read_bytes())])
        assert np.array_equal(dst, payload)
