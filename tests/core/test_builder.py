"""StructSpec (derive-macro analogue) tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Field, StructSpec, pack_all, unpack_all
from repro.errors import CallbackError


class O:
    """Plain attribute bag."""


def roundtrip(spec, objs, count=None):
    count = count if count is not None else (len(objs) if isinstance(objs, list) else 1)
    dt = spec.custom_datatype()
    packed, regions = pack_all(dt, objs, count)
    recv = [O() for _ in range(count)] if count != 1 or isinstance(objs, list) else O()
    unpack_all(dt, recv, count, packed,
               [bytes(r.read_bytes()) for r in regions])
    return recv, packed, regions


class TestField:
    def test_scalar(self):
        f = Field("x", "<f8")
        assert f.is_scalar and not f.is_dynamic and f.itemsize == 8

    def test_fixed(self):
        f = Field("x", "<i4", shape=16)
        assert not f.is_scalar and not f.is_dynamic

    def test_dynamic(self):
        assert Field("x", "<i4", shape="dynamic").is_dynamic

    def test_bad_shape_string(self):
        with pytest.raises(ValueError):
            Field("x", "<i4", shape="varlen")

    def test_negative_shape(self):
        with pytest.raises(ValueError):
            Field("x", "<i4", shape=-1)

    def test_scalar_region_rejected(self):
        with pytest.raises(ValueError):
            Field("x", "<i4", region=True)


class TestStructSpec:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            StructSpec([Field("a", "<i4"), Field("a", "<f8")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StructSpec([])

    def test_scalars_only(self):
        spec = StructSpec([Field("a", "<i4"), Field("b", "<f8")])
        o = O(); o.a = 5; o.b = 2.5
        recv, packed, regions = roundtrip(spec, o)
        assert len(packed) == 12 and not regions
        assert recv.a == 5 and recv.b == 2.5

    def test_small_array_packed_inband(self):
        spec = StructSpec([Field("v", "<i4", shape=4)], region_threshold=512)
        o = O(); o.v = np.array([1, 2, 3, 4], dtype=np.int32)
        recv, packed, regions = roundtrip(spec, o)
        assert len(packed) == 16 and not regions
        assert np.array_equal(recv.v, o.v)

    def test_large_array_is_region(self):
        spec = StructSpec([Field("v", "<f8", shape=256)], region_threshold=512)
        o = O(); o.v = np.arange(256, dtype=np.float64)
        # Receiver of a fixed-shape region must hold the destination array.
        dt = spec.custom_datatype()
        packed, regions = pack_all(dt, o, 1)
        assert packed == b"" and regions[0].nbytes == 2048
        r = O()
        unpack_all(dt, r, 1, packed, [bytes(regions[0].read_bytes())])
        assert np.array_equal(r.v, o.v)

    def test_region_override_forces_inband(self):
        spec = StructSpec([Field("v", "<f8", shape=256, region=False)])
        o = O(); o.v = np.arange(256, dtype=np.float64)
        recv, packed, regions = roundtrip(spec, o)
        assert len(packed) == 2048 and not regions
        assert np.array_equal(recv.v, o.v)

    def test_dynamic_field_lengths_inband(self):
        spec = StructSpec([Field("tag", "<i4"),
                           Field("data", "<f8", shape="dynamic")])
        o = O(); o.tag = 9; o.data = np.linspace(0, 1, 777)
        recv, packed, regions = roundtrip(spec, o)
        assert recv.tag == 9
        assert np.array_equal(recv.data, o.data)
        assert len(regions) == 1  # 777*8 > default threshold

    def test_dynamic_small_stays_inband(self):
        spec = StructSpec([Field("data", "<i4", shape="dynamic")])
        o = O(); o.data = np.arange(10, dtype=np.int32)
        recv, packed, regions = roundtrip(spec, o)
        assert not regions
        assert np.array_equal(recv.data, o.data)

    def test_multiple_objects(self):
        spec = StructSpec([Field("a", "<i4"),
                           Field("data", "<f8", shape="dynamic")])
        objs = []
        for i in range(3):
            o = O(); o.a = i; o.data = np.arange(200 + i, dtype=np.float64)
            objs.append(o)
        recv, packed, regions = roundtrip(spec, objs, count=3)
        assert len(regions) == 3
        for i, r in enumerate(recv):
            assert r.a == i
            assert np.array_equal(r.data, objs[i].data)

    def test_count_exceeds_buffer(self):
        spec = StructSpec([Field("a", "<i4")])
        dt = spec.custom_datatype()
        with pytest.raises(CallbackError):
            pack_all(dt, [O()], 2)

    def test_fixed_length_mismatch_detected(self):
        spec = StructSpec([Field("v", "<i4", shape=4)])
        o = O(); o.v = np.arange(5, dtype=np.int32)
        with pytest.raises(CallbackError):
            pack_all(spec.custom_datatype(), o, 1)

    def test_wrong_dtype_coerced(self):
        spec = StructSpec([Field("v", "<f8", shape=3, region=False)])
        o = O(); o.v = [1, 2, 3]  # list, not array
        recv, _, _ = roundtrip(spec, o)
        assert np.array_equal(recv.v, np.array([1.0, 2.0, 3.0]))

    def test_datatype_name(self):
        spec = StructSpec([Field("a", "<i4")], name="particle")
        assert "particle" in spec.custom_datatype().name


@st.composite
def spec_and_objects(draw):
    nfields = draw(st.integers(1, 4))
    fields = []
    for i in range(nfields):
        kind = draw(st.sampled_from(["scalar", "fixed", "dynamic"]))
        dtype = draw(st.sampled_from(["<i4", "<f8", "<i8"]))
        if kind == "scalar":
            fields.append(Field(f"f{i}", dtype))
        elif kind == "fixed":
            fields.append(Field(f"f{i}", dtype, shape=draw(st.integers(1, 64)),
                                region=False))
        else:
            fields.append(Field(f"f{i}", dtype, shape="dynamic", region=False))
    spec = StructSpec(fields, name="h")
    count = draw(st.integers(1, 3))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    objs = []
    for _ in range(count):
        o = O()
        for f in fields:
            if f.is_scalar:
                setattr(o, f.name, f.dtype.type(rng.integers(0, 100)))
            else:
                n = f.shape if isinstance(f.shape, int) else int(rng.integers(0, 50))
                setattr(o, f.name, rng.integers(0, 100, size=n).astype(f.dtype))
        objs.append(o)
    return spec, objs


class TestStructSpecProperties:
    @given(spec_and_objects())
    def test_roundtrip(self, spec_objs):
        spec, objs = spec_objs
        recv, _, _ = roundtrip(spec, objs, count=len(objs))
        recv = recv if isinstance(recv, list) else [recv]
        for got, want in zip(recv, objs):
            for f in spec.fields:
                g, w = getattr(got, f.name), getattr(want, f.name)
                if f.is_scalar:
                    assert g == w
                else:
                    assert np.array_equal(g, w)
