"""Object-protocol adapter tests."""

import numpy as np
import pytest

from repro.core import MPISerializable, Region, datatype_for, pack_all, unpack_all
from repro.errors import CallbackError


class Blob:
    """A protocol-conforming object: header bytes + optional array region."""

    def __init__(self, header=b"", array=None):
        self.header = bytearray(header)
        self.array = array

    def mpi_packed_size(self):
        return len(self.header)

    def mpi_pack(self, offset, dst):
        step = min(len(dst), len(self.header) - offset)
        dst[:step] = np.frombuffer(bytes(self.header[offset:offset + step]),
                                   np.uint8)
        return step

    def mpi_unpack(self, offset, src):
        self.header[offset:offset + len(src)] = bytes(src)

    def mpi_regions(self):
        return [Region(self.array)] if self.array is not None else []


class TestProtocol:
    def test_runtime_checkable(self):
        assert isinstance(Blob(), MPISerializable)
        assert not isinstance(object(), MPISerializable)

    def test_single_object_roundtrip(self):
        dt = datatype_for(Blob)
        src = Blob(b"hello-header", np.arange(100, dtype=np.uint8))
        packed, regs = pack_all(dt, src, 1)
        assert packed == b"hello-header" and regs[0].nbytes == 100
        dst = Blob(bytearray(len(packed)), np.zeros(100, dtype=np.uint8))
        unpack_all(dt, dst, 1, packed, [bytes(regs[0].read_bytes())])
        assert bytes(dst.header) == b"hello-header"
        assert np.array_equal(dst.array, src.array)

    def test_multiple_objects_concatenated(self):
        dt = datatype_for(Blob)
        objs = [Blob(b"aa"), Blob(b"bbbb"), Blob(b"c")]
        packed, regs = pack_all(dt, objs, 3)
        assert packed == b"aabbbbc" and regs == []
        dst = [Blob(bytearray(2)), Blob(bytearray(4)), Blob(bytearray(1))]
        unpack_all(dt, dst, 3, packed)
        assert [bytes(o.header) for o in dst] == [b"aa", b"bbbb", b"c"]

    @pytest.mark.parametrize("frag", [1, 2, 3, 5, 100])
    def test_fragments_split_across_objects(self, frag):
        dt = datatype_for(Blob)
        objs = [Blob(bytes([i]) * (i + 1)) for i in range(5)]
        flat = b"".join(bytes(o.header) for o in objs)
        packed, _ = pack_all(dt, objs, 5, frag_size=frag)
        assert packed == flat
        dst = [Blob(bytearray(i + 1)) for i in range(5)]
        unpack_all(dt, dst, 5, packed, frag_size=frag)
        assert b"".join(bytes(o.header) for o in dst) == flat

    def test_zero_size_objects_skipped(self):
        dt = datatype_for(Blob)
        objs = [Blob(b""), Blob(b"xy"), Blob(b"")]
        packed, _ = pack_all(dt, objs, 3)
        assert packed == b"xy"

    def test_regions_from_all_objects(self):
        dt = datatype_for(Blob)
        objs = [Blob(b"a", np.zeros(8, np.uint8)),
                Blob(b"b", np.zeros(16, np.uint8))]
        _, regs = pack_all(dt, objs, 2)
        assert [r.nbytes for r in regs] == [8, 16]

    def test_non_conforming_rejected(self):
        dt = datatype_for()
        with pytest.raises(CallbackError):
            pack_all(dt, object(), 1)

    def test_count_exceeds_objects(self):
        dt = datatype_for(Blob)
        with pytest.raises(CallbackError):
            pack_all(dt, [Blob(b"a")], 2)

    def test_bad_packed_size(self):
        class Bad(Blob):
            def mpi_packed_size(self):
                return -1

        with pytest.raises(CallbackError):
            pack_all(datatype_for(), Bad(), 1)

    def test_bad_pack_return(self):
        class Bad(Blob):
            def mpi_pack(self, offset, dst):
                return 0

        with pytest.raises(CallbackError):
            pack_all(datatype_for(), Bad(b"abc"), 1)

    def test_naming(self):
        assert "Blob" in datatype_for(Blob).name
        assert "protocol" in datatype_for().name
        assert datatype_for(name="mine").name == "mine"
