"""Pack-plan IR tests: lowering, rewrite passes, byte-map preservation,
and executor equivalence (slices vs gather vs the reference engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (FLOAT64, INT32, CopyBlock, Gather, PackPlan, Program,
                        StridedLoop, byte_map, contiguous, create_struct,
                        default_pipeline, get_default_executor, hindexed,
                        lower_typemap, pack, pack_reference, required_span,
                        resized, run_pipeline, set_default_executor, unpack,
                        unpack_reference, vector)
from repro.core import planir
from repro.core.typemap import Typemap
from repro.ddtbench.registry import WORKLOADS, make_workload

DDTBENCH_NAMES = sorted(WORKLOADS)


def descending_hindexed(nblocks=8, blocklen=4):
    """Blocks adjacent in memory but packed in descending address order:
    the canonical negative-source-stride layout (true_lb stays 0)."""
    displs = [(nblocks - 1 - i) * blocklen for i in range(nblocks)]
    return hindexed([1] * nblocks, displs, INT32)


def short_final_t():
    """extent 16 but true_ub 4: the buffer may stop 12 bytes short."""
    return resized(create_struct([1], [0], [INT32]), 0, 16)


class TestLowering:
    def test_one_copy_per_merged_block_dense_wire(self):
        t = create_struct([1, 1], [0, 8], [INT32, INT32])
        prog = lower_typemap(t.typemap)
        assert prog.ops == (CopyBlock(0, 0, 4), CopyBlock(8, 4, 4))
        assert prog.size == 8

    def test_empty_typemap_lowers_to_no_ops(self):
        prog = lower_typemap(Typemap((), lb=0, extent=8))
        assert prog.ops == ()
        assert byte_map(prog).shape == (0,)

    def test_byte_map_of_initial_ir_is_identity_per_block(self):
        t = vector(4, 1, 2, FLOAT64)
        bm = byte_map(lower_typemap(t.typemap))
        expect = np.concatenate(
            [np.arange(i * 16, i * 16 + 8) for i in range(4)])
        assert np.array_equal(bm, expect)


class TestPasses:
    def test_coalesce_merges_adjacent_blocks(self):
        prog = Program((CopyBlock(0, 0, 4), CopyBlock(4, 4, 4),
                        CopyBlock(12, 8, 4)), size=12, extent=16,
                       row_span=16, src_lo=0, src_hi=16)
        out = planir.coalesce_blocks(prog)
        assert out.ops == (CopyBlock(0, 0, 8), CopyBlock(12, 8, 4))

    def test_canonicalize_forms_strided_loop(self):
        t = vector(16, 1, 2, FLOAT64)
        prog, applied = run_pipeline(lower_typemap(t.typemap))
        assert applied == ("canonicalize-strides",)
        assert len(prog.ops) == 1
        lp = prog.ops[0]
        assert isinstance(lp, StridedLoop)
        assert (lp.count, lp.src_stride, lp.dst_stride) == (16, 16, 8)

    def test_canonicalize_handles_negative_src_stride(self):
        t = descending_hindexed()
        prog, _ = run_pipeline(lower_typemap(t.typemap))
        (lp,) = prog.ops
        assert isinstance(lp, StridedLoop)
        assert lp.src_stride == -4 and lp.dst_stride == 4
        assert np.array_equal(byte_map(prog),
                              byte_map(lower_typemap(t.typemap)))

    def test_promote_contiguity_turns_gapfree_loop_into_copy(self):
        lp = StridedLoop(4, 8, 8, (CopyBlock(0, 0, 8),))
        prog = Program((lp,), size=32, extent=32, row_span=32,
                       src_lo=0, src_hi=32)
        out = planir.promote_contiguity(prog)
        assert out.ops == (CopyBlock(0, 0, 32),)

    def test_collapse_flattens_perfectly_tiling_nest(self):
        inner = StridedLoop(4, 8, 8, (CopyBlock(0, 0, 4),))
        outer = StridedLoop(3, 32, 32, (inner,))
        prog = Program((outer,), size=48, extent=96, row_span=96,
                       src_lo=0, src_hi=96)
        out = planir.collapse_loops(prog)
        (lp,) = out.ops
        assert (lp.count, lp.src_stride, lp.dst_stride) == (12, 8, 8)
        assert np.array_equal(byte_map(out), byte_map(prog))

    def test_collapse_inlines_single_iteration_loop(self):
        prog = Program((StridedLoop(1, 99, 99, (CopyBlock(3, 0, 4),)),),
                       size=4, extent=16, row_span=16, src_lo=0, src_hi=16)
        out = planir.collapse_loops(prog)
        assert out.ops == (CopyBlock(3, 0, 4),)

    def test_form_gather_respects_aliasing_guard(self):
        # row_span > extent models overlapping elements: vectorized scatter
        # would break write order, so gather must not form for many_rows.
        ops = tuple(CopyBlock(i * 3, i * 2, 2) for i in range(40))
        prog = Program(ops, size=80, extent=100, row_span=130,
                       src_lo=0, src_hi=130)
        assert planir.form_gather_pass(many_rows=True)(prog).ops == ops
        forced = planir.form_gather_pass(many_rows=False)(prog)
        assert isinstance(forced.ops[0], Gather)

    @pytest.mark.parametrize("name", DDTBENCH_NAMES)
    def test_pipeline_preserves_byte_map_on_ddtbench(self, name):
        tm = make_workload(name).derived_datatype().typemap
        prog = lower_typemap(tm)
        for many_rows in (False, True):
            final, _ = run_pipeline(prog, default_pipeline(many_rows))
            assert np.array_equal(byte_map(final), byte_map(prog)), name

    @pytest.mark.parametrize("name", DDTBENCH_NAMES)
    def test_ddtbench_canonical_form_is_one_call(self, name):
        tm = make_workload(name).derived_datatype().typemap
        final, _ = run_pipeline(lower_typemap(tm),
                                default_pipeline(many_rows=False))
        assert planir.leaf_calls(final.ops) == 1, \
            "every Table I layout must canonicalize to a single numpy call"


class TestExecutorEquivalence:
    """Satellite: gather/slices equivalence under negative strides,
    zero-count blocks, and short-final-element layouts."""

    def cases(self):
        rng = np.random.default_rng(7)
        out = []
        for name in ("WRF_x_vec", "MILC", "LAMMPS"):
            w = make_workload(name)
            out.append((name, w.derived_datatype(), w.make_send_buffer(), 1))
        t = vector(16, 1, 2, FLOAT64)
        out.append(("vector", t,
                    rng.integers(0, 256, required_span(t, 12),
                                 dtype=np.uint8), 12))
        t = descending_hindexed()
        out.append(("neg-stride", t,
                    rng.integers(0, 256, required_span(t, 9),
                                 dtype=np.uint8), 9))
        t = short_final_t()
        out.append(("short-final", t,
                    rng.integers(0, 256, required_span(t, 5),
                                 dtype=np.uint8), 5))
        return out

    @pytest.mark.parametrize("executor", ["slices", "gather"])
    def test_forced_executor_matches_reference(self, executor):
        for name, t, src, count in self.cases():
            plan = PackPlan(t.typemap, count_cls=2, executor=executor)
            out = np.empty(t.size * count, dtype=np.uint8)
            plan.pack_into(src, count, out)
            assert bytes(out) == bytes(pack_reference(t, src, count)), \
                (name, executor)
            dst = np.full(src.shape[0], 0xA5, dtype=np.uint8)
            ref = np.full(src.shape[0], 0xA5, dtype=np.uint8)
            plan.unpack_into(dst, count, out)
            unpack_reference(t, ref, count, out)
            assert bytes(dst) == bytes(ref), (name, executor)

    def test_zero_count_blocks(self):
        t = contiguous(0, INT32)
        empty = np.zeros(0, dtype=np.uint8)
        assert pack(t, empty, 3).shape == (0,)
        unpack(t, empty, 3, np.zeros(0, dtype=np.uint8))  # must not raise
        for executor in ("slices", "gather"):
            plan = PackPlan(t.typemap, executor=executor)
            plan.pack_into(empty, 1, np.zeros(0, dtype=np.uint8))

    def test_gather_executor_on_aliasing_rows_keeps_write_order(self):
        # extent < true_ub: successive elements overlap in memory, so the
        # unpack scatter must fall back to reference (per-element) order.
        t = resized(create_struct([2], [0], [INT32]), 0, 4)
        count = 6
        span = required_span(t, count)
        rng = np.random.default_rng(21)
        src = rng.integers(0, 256, span, dtype=np.uint8)
        plan = PackPlan(t.typemap, count_cls=2, executor="gather")
        packed = np.empty(t.size * count, dtype=np.uint8)
        plan.pack_into(src, count, packed)
        assert bytes(packed) == bytes(pack_reference(t, src, count))
        dst = np.zeros(span, dtype=np.uint8)
        ref = np.zeros(span, dtype=np.uint8)
        plan.unpack_into(dst, count, packed)
        unpack_reference(t, ref, count, packed)
        assert bytes(dst) == bytes(ref)


class TestExecutorConfig:
    def teardown_method(self):
        set_default_executor("auto")

    def test_set_default_executor_round_trip(self):
        assert get_default_executor() == "auto"
        set_default_executor("gather")
        assert get_default_executor() == "gather"
        t = create_struct([1, 1], [0, 8], [INT32, INT32])
        assert PackPlan(t.typemap).executor == "gather"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            set_default_executor("simd")
        with pytest.raises(ValueError, match="unknown executor"):
            default_pipeline(executor="simd")
        assert get_default_executor() == "auto"


# -- property-based ----------------------------------------------------------

@st.composite
def random_struct(draw):
    nfields = draw(st.integers(1, 5))
    fields = []
    offset = 0
    for _ in range(nfields):
        offset += draw(st.integers(0, 8))
        ftype = draw(st.sampled_from([INT32, FLOAT64]))
        blen = draw(st.integers(1, 4))
        fields.append((blen, offset, ftype))
        offset += blen * ftype.size
    extent = offset + draw(st.integers(0, 8))
    t = create_struct([f[0] for f in fields], [f[1] for f in fields],
                      [f[2] for f in fields])
    return resized(t, 0, extent)


@st.composite
def random_descending_hindexed(draw):
    """Blocks at strictly descending displacements (negative strides after
    canonicalization), lowest displacement pinned at 0."""
    nblocks = draw(st.integers(2, 10))
    gap = draw(st.integers(0, 6))
    blocklen = draw(st.integers(1, 3))
    step = blocklen * 4 + gap
    displs = [(nblocks - 1 - i) * step for i in range(nblocks)]
    return hindexed([blocklen] * nblocks, displs, INT32)


class TestPlanIRProperties:
    @settings(deadline=None)
    @given(random_struct(), st.integers(0, 24),
           st.sampled_from(["slices", "gather"]))
    def test_executors_match_reference(self, t, count, executor):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 256, max(required_span(t, count), 1),
                           dtype=np.uint8)
        plan = PackPlan(t.typemap, count_cls=(1 if count == 1 else 2),
                        executor=executor)
        out = np.empty(t.size * count, dtype=np.uint8)
        if count:
            plan.pack_into(src, count, out)
        assert bytes(out) == bytes(pack_reference(t, src, count))

    @settings(deadline=None)
    @given(random_descending_hindexed(), st.integers(1, 8),
           st.sampled_from(["slices", "gather"]))
    def test_negative_stride_executors_match_reference(self, t, count,
                                                       executor):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 256, required_span(t, count), dtype=np.uint8)
        plan = PackPlan(t.typemap, count_cls=(1 if count == 1 else 2),
                        executor=executor)
        out = np.empty(t.size * count, dtype=np.uint8)
        plan.pack_into(src, count, out)
        assert bytes(out) == bytes(pack_reference(t, src, count))
        dst = np.full(src.shape[0], 0x5A, dtype=np.uint8)
        ref = np.full(src.shape[0], 0x5A, dtype=np.uint8)
        plan.unpack_into(dst, count, out)
        unpack_reference(t, ref, count, out)
        assert bytes(dst) == bytes(ref)

    @settings(deadline=None)
    @given(random_struct())
    def test_pipeline_always_preserves_byte_map(self, t):
        prog = lower_typemap(t.typemap)
        for many_rows in (False, True):
            for executor in ("auto", "slices", "gather"):
                final, _ = run_pipeline(
                    prog, default_pipeline(many_rows, executor))
                assert np.array_equal(byte_map(final), byte_map(prog))
