"""Generator (coroutine) partial-packing tests."""

import numpy as np
import pytest

from repro.core import (coroutine_pack_callbacks, full_buffer_generator,
                        pack_all, type_create_custom, unpack_all)
from repro.errors import CallbackError


def nested_loop_gen(data2d):
    """A Listing-9-style generator: suspend mid loop-nest."""

    def gen(context, buf, count):
        dst = yield
        pos = 0
        for row in data2d:           # outer loop
            for byte in row:         # inner loop, suspendable mid-row
                if pos == len(dst):
                    dst = yield pos
                    pos = 0
                dst[pos] = byte
                pos += 1
        yield pos

    return gen


def make_type(data2d, collect):
    def unpack_gen(context, buf, count):
        src = yield
        pos = 0
        total = sum(len(r) for r in data2d)
        seen = 0
        while seen < total:
            if pos == len(src):
                src = yield pos
                pos = 0
            collect.append(int(src[pos]))
            pos += 1
            seen += 1
        yield pos

    state_fn, free_fn, pack_fn, unpack_fn = coroutine_pack_callbacks(
        nested_loop_gen(data2d), unpack_gen)
    total = sum(len(r) for r in data2d)
    return type_create_custom(query_fn=lambda s, b, c: total,
                              pack_fn=pack_fn, unpack_fn=unpack_fn,
                              state_fn=state_fn, state_free_fn=free_fn,
                              inorder=True)


class TestCoroutinePacking:
    @pytest.mark.parametrize("frag", [1, 3, 5, 7, 100])
    def test_suspends_mid_loop_nest(self, frag):
        rows = [bytes(range(10)), bytes(range(10, 17)), b"", bytes(range(17, 32))]
        collect = []
        t = make_type(rows, collect)
        packed, _ = pack_all(t, None, 1, frag_size=frag)
        flat = b"".join(rows)
        assert packed == flat
        unpack_all(t, None, 1, packed, frag_size=frag)
        assert bytes(collect) == flat

    def test_out_of_order_fragment_rejected(self):
        rows = [bytes(range(20))]
        t = make_type(rows, [])
        state_fn = t.callbacks.state_fn
        state = state_fn(None, None, 1)
        with pytest.raises(CallbackError, match="in-order"):
            t.callbacks.pack_fn(state, None, 1, 5, np.zeros(5, np.uint8))

    def test_generator_closed_on_free(self):
        closed = []

        def gen(context, buf, count):
            try:
                dst = yield
                while True:
                    dst = yield 0
            finally:
                closed.append(True)

        state_fn, free_fn, pack_fn, _ = coroutine_pack_callbacks(gen)
        state = state_fn(None, None, 1)
        # Prime the generator with one (zero-progress) pack call, then free:
        # the suspended generator must be closed.
        assert pack_fn(state, None, 1, 0, np.zeros(4, np.uint8)) == 0
        free_fn(state)
        assert closed == [True]

    def test_inner_state_fn_wrapped(self):
        seen = []

        def inner_state(ctx, buf, count):
            seen.append((ctx, count))
            return {"n": count}

        def gen(context, buf, count):
            # context here is the inner state object
            assert context == {"n": count}
            dst = yield
            dst[:1] = 42
            yield 1

        state_fn, free_fn, pack_fn, _ = coroutine_pack_callbacks(
            gen, state_fn=inner_state,
            state_free_fn=lambda s: seen.append("freed"))
        t = type_create_custom(query_fn=lambda s, b, c: 1, pack_fn=pack_fn,
                               state_fn=state_fn, state_free_fn=free_fn,
                               inorder=True)
        packed, _ = pack_all(t, None, 1)
        assert packed == bytes([42])
        assert seen[0] == (None, 1)
        assert seen[-1] == "freed"

    def test_premature_exhaustion_detected(self):
        def gen(context, buf, count):
            dst = yield
            dst[:2] = 7
            yield 2  # claims done after 2 of 10 bytes

        state_fn, free_fn, pack_fn, _ = coroutine_pack_callbacks(gen)
        t = type_create_custom(query_fn=lambda s, b, c: 10, pack_fn=pack_fn,
                               state_fn=state_fn, state_free_fn=free_fn,
                               inorder=True)
        with pytest.raises(CallbackError):
            pack_all(t, None, 1, frag_size=8)

    def test_invalid_yield_value(self):
        def gen(context, buf, count):
            dst = yield
            yield len(dst) + 5

        state_fn, free_fn, pack_fn, _ = coroutine_pack_callbacks(gen)
        t = type_create_custom(query_fn=lambda s, b, c: 4, pack_fn=pack_fn,
                               state_fn=state_fn, state_free_fn=free_fn)
        with pytest.raises(CallbackError):
            pack_all(t, None, 1)


class TestFullBufferGenerator:
    @pytest.mark.parametrize("frag", [1, 4, 9, 64])
    def test_doles_out_whole_buffer(self, frag):
        payload = bytes(range(50))
        factory = full_buffer_generator(lambda ctx, buf, count: payload)
        state_fn, free_fn, pack_fn, _ = coroutine_pack_callbacks(factory)
        t = type_create_custom(query_fn=lambda s, b, c: len(payload),
                               pack_fn=pack_fn, state_fn=state_fn,
                               state_free_fn=free_fn, inorder=True)
        packed, _ = pack_all(t, None, 1, frag_size=frag)
        assert packed == payload
