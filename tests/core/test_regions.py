"""Region (iovec entry) tests."""

import numpy as np
import pytest

from repro.core import (BYTE, FLOAT64, INT32, Region, region_lengths,
                        total_region_bytes, vector)
from repro.errors import MPIError


class TestRegion:
    def test_defaults_to_whole_buffer(self):
        r = Region(np.arange(10, dtype=np.int32), datatype=INT32)
        assert r.nbytes == 40
        assert r.datatype is INT32

    def test_explicit_length(self):
        r = Region(np.zeros(100, dtype=np.uint8), nbytes=60)
        assert r.nbytes == 60
        assert r.read_bytes().shape == (60,)

    def test_length_exceeds_buffer(self):
        with pytest.raises(MPIError):
            Region(np.zeros(8, dtype=np.uint8), nbytes=9)

    def test_negative_length(self):
        with pytest.raises(MPIError):
            Region(np.zeros(8, dtype=np.uint8), nbytes=-1)

    def test_length_must_match_datatype(self):
        with pytest.raises(MPIError):
            Region(np.zeros(10, dtype=np.uint8), datatype=FLOAT64)

    def test_derived_datatype_rejected(self):
        with pytest.raises(MPIError):
            Region(np.zeros(40, dtype=np.uint8), datatype=vector(2, 1, 2, INT32))

    def test_noncontiguous_rejected(self):
        a = np.arange(20, dtype=np.int32)[::2]
        with pytest.raises(MPIError):
            Region(a, datatype=INT32)

    def test_bytes_send_side(self):
        r = Region(b"hello", datatype=BYTE)
        assert r.nbytes == 5
        with pytest.raises(MPIError):
            r.writable_view()

    def test_writable_view(self):
        buf = bytearray(16)
        r = Region(buf)
        r.writable_view()[:4] = np.frombuffer(b"abcd", dtype=np.uint8)
        assert bytes(buf[:4]) == b"abcd"

    def test_readonly_numpy_rejected_for_write(self):
        a = np.zeros(8, dtype=np.uint8)
        a.flags.writeable = False
        with pytest.raises(MPIError):
            Region(a).writable_view()

    def test_multidim_array_flattened(self):
        r = Region(np.zeros((4, 4), dtype=np.float64), datatype=FLOAT64)
        assert r.nbytes == 128
        assert r.view().ndim == 1

    def test_zero_length(self):
        r = Region(np.zeros(0, dtype=np.uint8))
        assert r.nbytes == 0


class TestHelpers:
    def test_totals(self):
        regs = [Region(np.zeros(n, dtype=np.uint8)) for n in (3, 5, 0, 9)]
        assert total_region_bytes(regs) == 17
        assert region_lengths(regs) == [3, 5, 0, 9]
