"""Derived-datatype constructor tests, each checked against a numpy oracle."""

import numpy as np
import pytest

from repro.core import (BYTE, FLOAT64, INT32, contiguous, create_struct, dup,
                        hindexed, hvector, indexed, indexed_block, pack,
                        resized, subarray, vector)
from repro.errors import TypeError_


def packed_of(dtype, arr, count=1):
    return pack(dtype, arr, count)


class TestContiguous:
    def test_basic(self):
        t = contiguous(4, INT32)
        assert t.size == 16
        assert t.extent == 16
        assert t.is_contiguous
        assert t.kind == "contiguous"

    def test_pack_identity(self):
        t = contiguous(8, INT32)
        a = np.arange(8, dtype=np.int32)
        assert np.array_equal(packed_of(t, a).view(np.int32), a)

    def test_zero_count(self):
        t = contiguous(0, INT32)
        assert t.size == 0

    def test_negative_rejected(self):
        with pytest.raises(TypeError_):
            contiguous(-1, INT32)

    def test_nested(self):
        t = contiguous(3, contiguous(2, FLOAT64))
        assert t.size == 48
        assert t.is_contiguous


class TestVector:
    def test_selects_strided_blocks(self):
        t = vector(3, 2, 4, INT32)
        a = np.arange(12, dtype=np.int32)
        assert packed_of(t, a).view(np.int32).tolist() == [0, 1, 4, 5, 8, 9]

    def test_extent(self):
        t = vector(3, 2, 4, INT32)
        # last block starts at 2*4 elements, ends at +2: extent 10 ints.
        assert t.extent == 40
        assert t.size == 24

    def test_unit_stride_is_contiguous(self):
        assert vector(4, 1, 1, FLOAT64).is_contiguous

    def test_hvector_bytes(self):
        t = hvector(2, 1, 24, FLOAT64)
        a = np.arange(6, dtype=np.float64)
        assert packed_of(t, a).view(np.float64).tolist() == [0.0, 3.0]

    def test_negative_rejected(self):
        with pytest.raises(TypeError_):
            vector(-1, 1, 1, INT32)
        with pytest.raises(TypeError_):
            vector(1, -1, 1, INT32)


class TestIndexed:
    def test_blocks(self):
        t = indexed([2, 1], [0, 4], INT32)
        a = np.arange(8, dtype=np.int32)
        assert packed_of(t, a).view(np.int32).tolist() == [0, 1, 4]

    def test_hindexed_bytes(self):
        t = hindexed([1, 2], [8, 16], INT32)
        a = np.arange(8, dtype=np.int32)
        assert packed_of(t, a).view(np.int32).tolist() == [2, 4, 5]

    def test_indexed_block(self):
        t = indexed_block(2, [0, 4, 6], INT32)
        a = np.arange(8, dtype=np.int32)
        assert packed_of(t, a).view(np.int32).tolist() == [0, 1, 4, 5, 6, 7]

    def test_zero_length_blocks_skipped(self):
        t = indexed([0, 3, 0], [0, 1, 5], INT32)
        assert t.size == 12

    def test_empty(self):
        t = indexed([], [], INT32)
        assert t.size == 0

    def test_mismatched_rejected(self):
        with pytest.raises(TypeError_):
            indexed([1], [0, 1], INT32)

    def test_negative_blocklength_rejected(self):
        with pytest.raises(TypeError_):
            hindexed([-1], [0], INT32)


class TestStruct:
    def test_struct_simple_layout(self):
        t = resized(create_struct([3, 1], [0, 16], [INT32, FLOAT64]), 0, 24)
        assert t.size == 20
        assert t.extent == 24
        assert t.has_gaps
        assert t.nscalars == 4

    def test_pack_matches_structured_dtype(self):
        sd = np.dtype({"names": ["a", "d"], "formats": ["<i4", "<f8"],
                       "offsets": [0, 8], "itemsize": 16})
        arr = np.zeros(3, dtype=sd)
        arr["a"] = [1, 2, 3]
        arr["d"] = [0.5, 1.5, 2.5]
        t = resized(create_struct([1, 1], [0, 8], [INT32, FLOAT64]), 0, 16)
        p = pack(t, arr, 3)
        assert p[:4].view(np.int32)[0] == 1
        assert p[4:12].view(np.float64)[0] == 0.5

    def test_mismatched_args_rejected(self):
        with pytest.raises(TypeError_):
            create_struct([1], [0, 8], [INT32, FLOAT64])

    def test_nested_struct(self):
        inner = create_struct([2], [0], [INT32])
        outer = create_struct([1, 1], [0, 8], [inner, FLOAT64])
        assert outer.size == 16

    def test_custom_cannot_nest(self):
        from repro.core import type_create_custom
        cd = type_create_custom(query_fn=lambda s, b, c: 0)
        with pytest.raises(TypeError_):
            contiguous(2, cd)


class TestResized:
    def test_bounds(self):
        t = resized(contiguous(1, INT32), 0, 16)
        assert t.extent == 16
        assert t.size == 4

    def test_array_of_padded_structs(self):
        t = resized(create_struct([1], [0], [INT32]), 0, 8)
        a = np.arange(8, dtype=np.int32)
        assert pack(t, a, 4).view(np.int32).tolist() == [0, 2, 4, 6]


class TestSubarray:
    def test_2d_c_order(self):
        t = subarray([4, 6], [2, 3], [1, 2], FLOAT64)
        m = np.arange(24, dtype=np.float64).reshape(4, 6)
        assert np.array_equal(packed_of(t, m).view(np.float64),
                              m[1:3, 2:5].ravel())

    def test_3d_c_order(self):
        t = subarray([3, 4, 5], [2, 2, 2], [1, 1, 1], INT32)
        m = np.arange(60, dtype=np.int32).reshape(3, 4, 5)
        assert np.array_equal(packed_of(t, m).view(np.int32),
                              m[1:3, 1:3, 1:3].ravel())

    def test_f_order(self):
        t = subarray([4, 6], [2, 3], [1, 2], FLOAT64, order="F")
        m = np.arange(24, dtype=np.float64).reshape(4, 6, order="F")
        # Fortran order: first dim fastest.
        expect = m[1:3, 2:5].ravel(order="F")
        got = packed_of(t, np.asfortranarray(m).ravel(order="F")
                        .view(np.float64)).view(np.float64)
        assert np.array_equal(got, expect)

    def test_extent_is_whole_array(self):
        t = subarray([4, 6], [2, 3], [0, 0], FLOAT64)
        assert t.extent == 4 * 6 * 8

    def test_out_of_bounds_rejected(self):
        with pytest.raises(TypeError_):
            subarray([4], [3], [2], INT32)

    def test_bad_order_rejected(self):
        with pytest.raises(TypeError_):
            subarray([4], [2], [0], INT32, order="X")

    def test_empty_dims_rejected(self):
        with pytest.raises(TypeError_):
            subarray([], [], [], INT32)


class TestDup:
    def test_same_layout(self):
        t = vector(3, 2, 4, INT32)
        d = dup(t)
        assert d.typemap == t.typemap
        assert d.kind == "dup"


class TestCommit:
    def test_commit_idempotent(self):
        t = contiguous(2, INT32)
        assert not t.committed
        assert t.commit() is t
        assert t.committed
        t.commit()
        assert t.committed
