"""Typemap algebra unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.typemap import Block, Typemap, scalar_typemap


# -- Block -------------------------------------------------------------------

class TestBlock:
    def test_basic(self):
        b = Block(4, 8, 2)
        assert b.end == 12
        assert b.shifted(10) == Block(14, 8, 2)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            Block(0, 0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Block(0, -4)

    def test_zero_scalars_rejected(self):
        with pytest.raises(ValueError):
            Block(0, 4, 0)


# -- Typemap basics -----------------------------------------------------------

class TestTypemapBasics:
    def test_scalar(self):
        tm = scalar_typemap(8)
        assert tm.size == 8
        assert tm.extent == 8
        assert tm.lb == 0
        assert tm.ub == 8
        assert tm.is_contiguous
        assert not tm.has_gaps
        assert tm.nscalars == 1

    def test_natural_bounds(self):
        tm = Typemap([Block(4, 4), Block(16, 8)])
        assert tm.lb == 4
        assert tm.extent == 20
        assert tm.true_lb == 4
        assert tm.true_ub == 24
        assert tm.size == 12

    def test_explicit_bounds(self):
        tm = Typemap([Block(0, 4)], lb=0, extent=16)
        assert tm.extent == 16
        assert tm.true_extent == 4
        assert not tm.is_contiguous  # padding makes it non-identity

    def test_empty_requires_bounds(self):
        with pytest.raises(ValueError):
            Typemap([])

    def test_empty_with_bounds(self):
        tm = Typemap([], lb=0, extent=0)
        assert tm.size == 0
        assert tm.nscalars == 0

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Typemap([Block(0, 4)], lb=0, extent=-1)

    def test_struct_simple_gap(self):
        """The paper's struct-simple: 3 i32 + 4B gap + f64, extent 24."""
        tm = Typemap([Block(0, 12, 3), Block(16, 8, 1)], lb=0, extent=24)
        assert tm.size == 20
        assert tm.has_gaps
        assert tm.nscalars == 4

    def test_struct_no_gap_contiguous(self):
        tm = Typemap([Block(0, 8, 2), Block(8, 8, 1)], lb=0, extent=16)
        assert tm.is_contiguous


# -- merged_blocks -------------------------------------------------------------

class TestMergedBlocks:
    def test_adjacent_merge(self):
        tm = Typemap([Block(0, 4), Block(4, 4), Block(8, 4)])
        merged = tm.merged_blocks()
        assert merged == (Block(0, 12, 3),)

    def test_gap_prevents_merge(self):
        tm = Typemap([Block(0, 4), Block(8, 4)])
        assert len(tm.merged_blocks()) == 2

    def test_out_of_order_not_merged(self):
        # Pack order differs from address order: no merge.
        tm = Typemap([Block(8, 4), Block(0, 4)])
        assert len(tm.merged_blocks()) == 2

    def test_merge_preserves_size_and_scalars(self):
        tm = Typemap([Block(0, 4, 1), Block(4, 8, 2), Block(20, 4, 1)])
        merged = tm.merged_blocks()
        assert sum(b.length for b in merged) == tm.size
        assert sum(b.nscalars for b in merged) == tm.nscalars


# -- algebra -------------------------------------------------------------------

class TestAlgebra:
    def test_displace(self):
        tm = scalar_typemap(4).displace(100)
        assert tm.blocks[0].offset == 100
        assert tm.lb == 100
        assert tm.extent == 4

    def test_repeat_contiguous(self):
        tm = scalar_typemap(4).repeat(3)
        assert tm.size == 12
        assert tm.extent == 12
        assert tm.is_contiguous

    def test_repeat_strided(self):
        tm = scalar_typemap(4).repeat(3, stride_bytes=16)
        assert tm.size == 12
        assert tm.extent == 36  # 2*16 + 4
        assert [b.offset for b in tm.blocks] == [0, 16, 32]
        assert tm.has_gaps

    def test_repeat_zero(self):
        tm = scalar_typemap(4).repeat(0)
        assert tm.size == 0
        assert tm.extent == 0

    def test_repeat_negative_rejected(self):
        with pytest.raises(ValueError):
            scalar_typemap(4).repeat(-1)

    def test_concat(self):
        a = scalar_typemap(4)
        b = scalar_typemap(8, offset=8)
        tm = Typemap.concat([a, b])
        assert tm.size == 12
        assert tm.lb == 0
        assert tm.ub == 16

    def test_resized(self):
        tm = scalar_typemap(4).resized(0, 32)
        assert tm.extent == 32
        assert tm.size == 4
        assert not tm.is_contiguous

    def test_equality_and_hash(self):
        a = scalar_typemap(8)
        b = scalar_typemap(8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.resized(0, 16)

    def test_repr(self):
        assert "size=8" in repr(scalar_typemap(8))


# -- properties ----------------------------------------------------------------

block_lists = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 32), st.integers(1, 4)),
    min_size=1, max_size=8,
).map(lambda tl: [Block(o, l, s) for o, l, s in tl])


class TestProperties:
    @given(block_lists, st.integers(1, 5))
    def test_repeat_scales_size(self, blocks, count):
        tm = Typemap(blocks)
        assert tm.repeat(count).size == tm.size * count

    @given(block_lists, st.integers(-100, 100))
    def test_displace_preserves_size_and_extent(self, blocks, delta):
        tm = Typemap(blocks)
        moved = tm.displace(delta)
        assert moved.size == tm.size
        assert moved.extent == tm.extent
        assert moved.nscalars == tm.nscalars

    @given(block_lists)
    def test_merge_is_idempotent_on_size(self, blocks):
        tm = Typemap(blocks)
        merged = tm.merged_blocks()
        assert sum(b.length for b in merged) == tm.size

    @given(block_lists, st.integers(1, 4), st.integers(1, 4))
    def test_repeat_compose(self, blocks, a, b):
        """repeat(a).repeat(b) covers the same bytes as repeat(a*b) when
        strides are natural."""
        tm = Typemap(blocks)
        if tm.lb != 0:
            tm = tm.displace(-tm.lb)
        lhs = tm.repeat(a).repeat(b)
        rhs = tm.repeat(a * b)
        assert lhs.size == rhs.size
        assert [(blk.offset, blk.length) for blk in lhs.blocks] == \
               [(blk.offset, blk.length) for blk in rhs.blocks]
