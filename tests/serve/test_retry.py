"""Retry engine: classification, backoff, budget exhaustion, dead letters."""

import pytest

from repro.errors import (MemoryQuotaError, ProcFailedError, RankCrashError,
                          RuntimeAbort, TimeBudgetExceeded)
from repro.serve import (DETERMINISTIC, QUOTA, RETRYABLE, SAME_FAULTS,
                         JobService, JobSpec, JobStatus, QuotaPolicy,
                         RetryPolicy, classify_failure)
from repro.serve.workloads import failing_job, pingpong_job

CRASH = {"seed": 3, "crash": {1: 5e-6}}


class TestClassification:
    def test_proc_failed_family_is_retryable(self):
        assert classify_failure(ProcFailedError("gone", [1]))[0] == RETRYABLE
        assert classify_failure(RankCrashError(1, 5e-6))[0] == RETRYABLE

    def test_quota_errors_are_quota(self):
        assert classify_failure(TimeBudgetExceeded(1.0, 2.0))[0] == QUOTA
        assert classify_failure(MemoryQuotaError(10, 5, 20))[0] == QUOTA
        assert classify_failure(TimeoutError("wall"))[0] == QUOTA

    def test_user_errors_are_deterministic(self):
        assert classify_failure(ValueError("bug"))[0] == DETERMINISTIC

    def test_abort_precedence_deterministic_beats_retryable(self):
        """A ValueError on rank 0 makes peers' MPI_ERR_PROC_FAILED
        collateral: retrying would replay the ValueError."""
        abort = RuntimeAbort({0: ValueError("bug"),
                              1: ProcFailedError("peer died", [0])})
        cls, root = classify_failure(abort)
        assert cls == DETERMINISTIC
        assert isinstance(root, ValueError)

    def test_abort_precedence_quota_beats_retryable(self):
        abort = RuntimeAbort({0: TimeBudgetExceeded(1.0, 1.5),
                              1: ProcFailedError("peer died", [0])})
        cls, root = classify_failure(abort)
        assert cls == QUOTA
        assert isinstance(root, TimeBudgetExceeded)

    def test_abort_all_retryable_stays_retryable(self):
        abort = RuntimeAbort({0: ProcFailedError("gone", [1])})
        assert classify_failure(abort)[0] == RETRYABLE

    def test_tie_break_is_lowest_rank(self):
        abort = RuntimeAbort({2: ValueError("late"), 0: KeyError("early")})
        _, root = classify_failure(abort)
        assert isinstance(root, KeyError)


class TestBackoffDeterminism:
    def test_delay_is_pure_function(self):
        p = RetryPolicy(seed=11)
        assert p.delay_for(0, "job#1") == p.delay_for(0, "job#1")
        assert p.delay_for(0, "job#1") != p.delay_for(0, "job#2")

    def test_exponential_with_cap(self):
        p = RetryPolicy(base_delay=0.01, max_delay=0.04, jitter=0.0)
        assert p.delay_for(0, "k") == pytest.approx(0.01)
        assert p.delay_for(1, "k") == pytest.approx(0.02)
        assert p.delay_for(2, "k") == pytest.approx(0.04)
        assert p.delay_for(5, "k") == pytest.approx(0.04)  # capped

    def test_jitter_bounds(self):
        p = RetryPolicy(base_delay=0.01, max_delay=0.01, jitter=0.5)
        for a in range(4):
            d = p.delay_for(a, "k")
            assert 0.01 <= d <= 0.015


class TestRetryPaths:
    def test_transient_crash_retries_to_success(self):
        """SAME_FAULTS=None: the crash happened once; the retry runs on a
        pristine fabric and completes."""
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=pingpong_job(iters=16), name="transient",
                faults=CRASH, reliability=True, retry_faults=None,
                retry=RetryPolicy(max_retries=2, base_delay=1e-4)))
            assert h.wait(60)
            assert h.status == JobStatus.COMPLETED
            assert h.attempts == 2
            assert svc.metrics.get("retries") == 1

    def test_budget_exhaustion_dead_letters_with_last_error(self):
        """SAME_FAULTS: every retry replays the crash; the job lands in
        the dead-letter list with the last ULFM error attached."""
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=pingpong_job(iters=16), name="doomed",
                faults=CRASH, reliability=True, retry_faults=SAME_FAULTS,
                retry=RetryPolicy(max_retries=2, base_delay=1e-4)))
            assert h.wait(60)
            assert h.status == JobStatus.DEAD_LETTERED
            assert h.attempts == 3  # initial + 2 retries
            assert h.error_class == RETRYABLE
            assert isinstance(h.error, ProcFailedError)
            assert svc.metrics.get("dead_lettered") == 1
            assert svc.metrics.get("retries") == 2
            assert h in svc.dead_letters
            row = svc.report()["dead_letters"][0]
            assert row["name"] == "doomed"
            assert "ProcFailedError" in row["error"]

    def test_deterministic_failure_never_retries(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=failing_job(), name="bug",
                quota=QuotaPolicy(wall_timeout=2.0),
                retry=RetryPolicy(max_retries=5, base_delay=1e-4)))
            assert h.wait(60)
            assert h.status == JobStatus.FAILED
            assert h.attempts == 1
            assert h.error_class == DETERMINISTIC
            assert isinstance(h.error, ValueError)
            assert svc.metrics.get("retries") == 0

    def test_zero_retry_budget_dead_letters_immediately(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=pingpong_job(iters=16), name="no-budget",
                faults=CRASH, reliability=True,
                retry=RetryPolicy(max_retries=0)))
            assert h.wait(60)
            assert h.status == JobStatus.DEAD_LETTERED
            assert h.attempts == 1


class TestKill:
    def test_kill_takes_down_running_job(self):
        import time
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=pingpong_job(iters=200000), name="victim",
                reliability=True, retry=RetryPolicy(max_retries=0),
                quota=QuotaPolicy(wall_timeout=120.0)))
            deadline = time.monotonic() + 30
            while h.status != JobStatus.RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.002)
            time.sleep(0.02)
            assert h.kill("test kill")
            assert h.wait(60)
            assert h.status == JobStatus.DEAD_LETTERED
            assert h.error_class == RETRYABLE

    def test_kill_on_terminal_job_is_refused(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(fn=pingpong_job(iters=1), name="quick"))
            assert h.wait(30)
            assert h.status == JobStatus.COMPLETED
            assert h.kill("too late") is False

    def test_armed_kill_fires_at_start(self):
        """A kill requested while the job is still queued lands the
        moment the attempt's fault detector exists."""
        with JobService(slots=1, max_queue=8) as svc:
            blocker = svc.submit(JobSpec(fn=pingpong_job(iters=2000),
                                         name="blocker"))
            h = svc.submit(JobSpec(
                fn=pingpong_job(iters=2000), name="doomed",
                retry=RetryPolicy(max_retries=0)))
            assert h.kill("pre-emptive")  # queued: armed, not delivered
            assert h.wait(120)
            assert h.status == JobStatus.DEAD_LETTERED
            blocker.wait(120)
