"""Chaos survival: crashes + mid-flight kills over hundreds of jobs, with
pool-balance assertions after every storm.  The 10k-job acceptance run is
the CI ``serve-chaos`` job (``repro-serve --jobs 10000 --strict``); these
are its fast in-tree cousins."""

from repro.serve import JobService, JobSpec, JobStatus
from repro.serve.cli import build_parser, run_service_load, verify_report
from repro.serve.workloads import pingpong_job


def _assert_clean(report):
    assert report["jobs"]["pool_leaks"] == 0
    assert report["jobs"]["leaked_requests"] == 0
    assert report["pool_bank"]["banked_outstanding"] == 0
    assert report["pool_bank"]["checked_out"] == 0
    jobs = report["jobs"]
    assert jobs["completed"] + jobs["failed"] + jobs["dead_lettered"] \
        + jobs["cancelled"] == jobs["accepted"]


class TestChaosStorm:
    def test_crash_storm_leaks_nothing(self):
        """Every 3rd job crashes a rank; retries run pristine.  After the
        storm every pool buffer is back and the books balance."""
        with JobService(slots=2, max_queue=64) as svc:
            handles = []
            for i in range(60):
                faults = None
                reliability = None
                if i % 3 == 0:
                    faults = {"seed": i, "crash": {1: 4e-6}}
                    reliability = True
                handles.append(svc.submit(JobSpec(
                    fn=pingpong_job(iters=8), name=f"storm-{i}",
                    faults=faults, reliability=reliability,
                    retry_faults=None)))
            assert svc.wait_idle(timeout=300)
            for h in handles:
                assert h.status in (JobStatus.COMPLETED,
                                    JobStatus.DEAD_LETTERED), \
                    f"{h.spec.name}: {h.status} ({h.error!r})"
            report = svc.shutdown()
        _assert_clean(report)

    def test_cli_chaos_run_passes_strict(self):
        """The CLI harness end-to-end: chaos + kills + sanitizer samples,
        strict invariants enforced in-process."""
        args = build_parser().parse_args([
            "--jobs", "120", "--chaos", "0.25", "--kill-every", "17",
            "--sanitize-every", "40", "--slots", "2", "--seed", "5",
        ])
        report = run_service_load(args)
        assert verify_report(report) == []
        assert report["jobs"]["accepted"] == 120
        assert report["jobs"]["retries"] > 0, \
            "chaos fraction 0.25 produced no retries — crashes not firing"

    def test_chaos_run_is_seeded(self):
        """Same seed, same outcome counters (scheduling may interleave
        differently, but crash schedules and retry outcomes replay)."""
        args = build_parser().parse_args([
            "--jobs", "40", "--chaos", "0.3", "--slots", "1",
            "--seed", "11",
        ])
        a = run_service_load(args)
        b = run_service_load(args)
        for key in ("completed", "failed", "dead_lettered", "retries"):
            assert a["jobs"][key] == b["jobs"][key], key


class TestWarmReuseAcrossChaos:
    def test_pools_and_plans_stay_warm(self):
        """Healthy jobs after a chaotic one are served from warm state:
        the bank reports warm hits and the pool reports cache hits."""
        with JobService(slots=1, max_queue=16) as svc:
            svc.submit(JobSpec(fn=pingpong_job(iters=4), name="warmup"))
            svc.wait_idle(timeout=60)
            crash = svc.submit(JobSpec(
                fn=pingpong_job(iters=8), name="crash",
                faults={"seed": 1, "crash": {1: 4e-6}}, reliability=True,
                retry_faults=None))
            crash.wait(60)
            svc.submit(JobSpec(fn=pingpong_job(iters=4), name="after"))
            svc.wait_idle(timeout=60)
            bank = svc.bank.snapshot()
            assert bank["warm_hits"] >= 2
            report = svc.shutdown()
        _assert_clean(report)
        assert report["pool_bank"]["banked_pooled_bytes"] > 0
