"""Service metrics: percentiles, reservoirs, snapshot shape, reporting."""

import json

from repro.serve import JobService, JobSpec, LatencyStats, ServiceMetrics, \
    percentile
from repro.serve.workloads import pingpong_job


class TestPercentile:
    def test_empty_sample(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(sample, 0.0) == 1.0
        assert percentile(sample, 0.5) == 3.0
        assert percentile(sample, 1.0) == 5.0


class TestLatencyStats:
    def test_exact_aggregates_bounded_sample(self):
        stats = LatencyStats(maxlen=4)
        for v in [0.001, 0.002, 0.003, 0.004, 0.100]:
            stats.record(v)
        snap = stats.snapshot()
        assert snap["count"] == 5            # exact over full history
        assert snap["max_ms"] == 100.0       # exact over full history
        assert snap["mean_ms"] == (0.110 / 5) * 1e3
        # The reservoir only holds the 4 most recent observations.
        assert snap["p50_ms"] >= 2.0


class TestServiceMetrics:
    def test_every_counter_always_present(self):
        snap = ServiceMetrics().snapshot()
        for name in ServiceMetrics._COUNTERS:
            assert name in snap["jobs"]
            assert snap["jobs"][name] == 0

    def test_rejection_buckets(self):
        m = ServiceMetrics()
        m.rejected("saturated")
        m.rejected("saturated")
        m.rejected("invalid-quota")
        snap = m.snapshot()
        assert snap["jobs"]["rejected"] == 3
        assert snap["rejected_by_reason"] == {"saturated": 2,
                                              "invalid-quota": 1}

    def test_throughput_aggregates(self):
        m = ServiceMetrics()
        m.inc("completed", 2)
        m.observe_run(0.5, msgs=10, virtual_seconds=1e-3)
        snap = m.snapshot()
        assert snap["throughput"]["msgs_delivered"] == 10
        assert snap["throughput"]["virtual_seconds"] == 1e-3
        assert snap["throughput"]["jobs_per_s"] > 0


class TestServiceReport:
    def test_report_is_json_and_counts_msgs(self):
        with JobService(slots=1, max_queue=8) as svc:
            for i in range(3):
                svc.submit(JobSpec(fn=pingpong_job(iters=4),
                                   name=f"j{i}"))
            svc.wait_idle(timeout=60)
            report = svc.report()
        json.dumps(report)  # must serialize cleanly
        assert report["jobs"]["completed"] == 3
        # 4 iterations = 8 deliveries per pingpong job.
        assert report["throughput"]["msgs_delivered"] == 3 * 8
        assert report["queue_latency"]["count"] == 3
        assert report["run_latency"]["count"] == 3
        assert report["plan_cache"]["size"] >= 0
        assert report["state"] in ("running", "draining", "stopped")

    def test_queue_latency_observed(self):
        with JobService(slots=1, max_queue=8) as svc:
            handles = [svc.submit(JobSpec(fn=pingpong_job(iters=2),
                                          name=f"j{i}"))
                       for i in range(4)]
            svc.wait_idle(timeout=60)
            for h in handles:
                assert h.queue_latency is not None
                assert h.queue_latency >= 0.0
