"""Admission control: validation, load shedding, lifecycle rejection."""

import pytest

from repro.serve import (AdmissionError, JobService, JobSpec, JobStatus,
                         QuotaPolicy, RetryPolicy)
from repro.serve.workloads import pingpong_job


def _spec(name="job", **kw):
    return JobSpec(fn=pingpong_job(iters=1, nbytes=64), name=name, **kw)


class TestQuotaValidation:
    """Invalid quotas die at the front door, never in a scheduler slot."""

    @pytest.mark.parametrize("timeout", [0, -1, -0.5, None])
    def test_bad_wall_timeout_rejected(self, timeout):
        svc = JobService(slots=1, max_queue=4)
        try:
            with pytest.raises(AdmissionError) as ei:
                svc.submit(_spec(quota=QuotaPolicy(wall_timeout=timeout)))
            assert ei.value.reason == "invalid-quota"
            assert svc.metrics.get("rejected") == 1
            assert svc.metrics.get("accepted") == 0
        finally:
            svc.shutdown()

    @pytest.mark.parametrize("field,value", [
        ("time_budget", 0.0), ("time_budget", -2.0),
        ("max_pool_bytes", 0), ("max_pool_bytes", -4096),
    ])
    def test_bad_budget_and_ceiling_rejected(self, field, value):
        svc = JobService(slots=1, max_queue=4)
        try:
            with pytest.raises(AdmissionError) as ei:
                svc.submit(_spec(quota=QuotaPolicy(**{field: value})))
            assert ei.value.reason == "invalid-quota"
        finally:
            svc.shutdown()

    def test_bad_nprocs_and_fn(self):
        svc = JobService(slots=1, max_queue=4)
        try:
            with pytest.raises(AdmissionError) as ei:
                svc.submit(_spec(nprocs=0))
            assert ei.value.reason == "invalid-nprocs"
            with pytest.raises(AdmissionError) as ei:
                svc.submit(JobSpec(fn="not callable"))
            assert ei.value.reason == "invalid-fn"
            with pytest.raises(AdmissionError) as ei:
                svc.submit(JobSpec(fn=[pingpong_job()], nprocs=2))
            assert ei.value.reason == "invalid-fn"
        finally:
            svc.shutdown()

    def test_negative_retry_budget_rejected(self):
        svc = JobService(slots=1, max_queue=4)
        try:
            with pytest.raises(AdmissionError):
                svc.submit(_spec(retry=RetryPolicy(max_retries=-1)))
        finally:
            svc.shutdown()


class TestLoadShedding:
    def test_saturated_queue_rejects_with_reason(self):
        # No free slots: one long-queued service is simulated by filling
        # the queue faster than one slot can drain 1-iter jobs; depth 2
        # plus generous submissions guarantees at least one rejection.
        svc = JobService(slots=1, max_queue=2)
        try:
            rejected = 0
            handles = []
            for i in range(50):
                try:
                    handles.append(svc.submit(_spec(name=f"j{i}")))
                except AdmissionError as exc:
                    assert exc.reason == "saturated"
                    rejected += 1
            assert rejected > 0, "queue depth 2 never saturated"
            assert svc.metrics.get("rejected") == rejected
            assert (svc.metrics.snapshot()["rejected_by_reason"]
                    ["saturated"] == rejected)
            svc.wait_idle(timeout=60)
            for h in handles:
                assert h.status == JobStatus.COMPLETED
        finally:
            svc.shutdown()

    def test_accounting_closes(self):
        svc = JobService(slots=2, max_queue=64)
        try:
            for i in range(10):
                svc.submit(_spec(name=f"j{i}"))
            svc.wait_idle(timeout=60)
            report = svc.shutdown()
        finally:
            svc.shutdown()
        jobs = report["jobs"]
        assert jobs["accepted"] == 10
        assert jobs["completed"] + jobs["failed"] + jobs["dead_lettered"] \
            + jobs["cancelled"] == jobs["accepted"]


class TestLifecycleRejection:
    def test_draining_service_rejects(self):
        svc = JobService(slots=1, max_queue=4)
        svc.shutdown()
        with pytest.raises(AdmissionError) as ei:
            svc.submit(_spec())
        assert ei.value.reason in ("draining", "stopped")

    def test_shutdown_cancels_queued_jobs(self):
        svc = JobService(slots=1, max_queue=16)
        # A slow job pins the only slot; everything behind it is queued.
        slow = svc.submit(_spec(name="slow"))
        queued = [svc.submit(_spec(name=f"q{i}")) for i in range(5)]
        report = svc.shutdown(drain=True)
        slow.wait(30)
        assert slow.status in (JobStatus.COMPLETED, JobStatus.CANCELLED)
        cancelled = [h for h in [slow] + queued
                     if h.status == JobStatus.CANCELLED]
        # At least the tail of the queue must have been cancelled (the
        # slot may have drained a prefix before shutdown flipped state).
        assert cancelled, "shutdown cancelled nothing from a full queue"
        assert report["shutdown"]["cancelled_queued"] == len(cancelled)
        assert all(isinstance(h.error, AdmissionError)
                   for h in cancelled)

    def test_shutdown_is_idempotent(self):
        svc = JobService(slots=1, max_queue=4)
        first = svc.shutdown()
        second = svc.shutdown()
        assert first["shutdown"]["already_shut_down"] is False
        assert second["shutdown"]["already_shut_down"] is True

    def test_context_manager_drains(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(_spec())
            assert h.wait(30)
        assert h.status == JobStatus.COMPLETED
        assert svc.state == "stopped"
