"""Job-boundary hygiene: reset_for_job, leak attribution, the warm bank."""

import numpy as np
import pytest

from repro.errors import MemoryQuotaError, PoolLeakError
from repro.serve import WarmSetBank
from repro.ucp.memory import BufferPool, MemoryTracker


class TestPoolReset:
    def test_balanced_pool_keeps_free_lists(self):
        pool = BufferPool()
        bufs = [pool.acquire(1024) for _ in range(3)]
        for b in bufs:
            pool.release(b)
        warm = pool.reset_for_job("job-1")
        assert warm["pooled_buffers"] == 3
        snap = pool.snapshot()
        assert snap["hits"] == snap["misses"] == 0  # counters re-armed
        assert snap["outstanding"] == 0
        # The next job is served from cache.
        pool.acquire(1024)
        assert pool.snapshot()["hits"] == 1

    def test_leak_is_attributed_to_the_job(self):
        pool = BufferPool()
        kept = pool.acquire(4096)
        with pytest.raises(PoolLeakError) as ei:
            pool.reset_for_job("leaky-job#7")
        assert ei.value.job == "leaky-job#7"
        assert ei.value.outstanding == 1
        assert ei.value.leaked_bytes == 4096
        assert "leaky-job#7" in str(ei.value)
        del kept

    def test_zero_byte_acquire_is_not_outstanding(self):
        pool = BufferPool()
        pool.acquire(0)
        pool.reset_for_job("empty")  # must not raise


class TestTrackerReset:
    def test_reset_rearms_accounting_and_ceiling(self):
        tracker = MemoryTracker()
        tracker.byte_ceiling = 1 << 20
        buf = tracker.acquire(2048)
        tracker.recycle(buf)
        tracker.reset_for_job("job-1")
        assert tracker.live_bytes == 0
        assert tracker.peak_bytes == 0
        assert tracker.allocation_count == 0
        assert tracker.byte_ceiling is None

    def test_ceiling_refuses_before_booking(self):
        tracker = MemoryTracker()
        tracker.byte_ceiling = 1024
        tracker.acquire(512)
        with pytest.raises(MemoryQuotaError) as ei:
            tracker.acquire(1024)
        assert ei.value.ceiling == 1024
        assert ei.value.live_bytes == 512
        assert ei.value.requested == 1024
        # The refused allocation booked nothing and took nothing.
        assert tracker.live_bytes == 512
        assert tracker.pool.snapshot()["outstanding"] == 1

    def test_tracker_reset_propagates_pool_leak(self):
        tracker = MemoryTracker()
        tracker.acquire(64)
        with pytest.raises(PoolLeakError):
            tracker.reset_for_job("leaker")


class TestWarmSetBank:
    def test_checkout_warm_hit_after_checkin(self):
        bank = WarmSetBank()
        trackers = bank.checkout(2)
        assert bank.created == 1
        assert bank.checkin(trackers, job="a") is None
        again = bank.checkout(2)
        assert again is trackers
        assert bank.warm_hits == 1
        bank.checkin(again, job="b")

    def test_sizes_do_not_mix(self):
        bank = WarmSetBank()
        two = bank.checkout(2)
        bank.checkin(two, job="a")
        four = bank.checkout(4)
        assert len(four) == 4
        assert four is not two

    def test_dirty_checkin_retires(self):
        bank = WarmSetBank()
        trackers = bank.checkout(2)
        assert bank.checkin(trackers, job="t", dirty=True) is None
        assert bank.retired == 1
        assert bank.checkout(2) is not trackers

    def test_leaky_checkin_retires_and_reports(self):
        bank = WarmSetBank()
        trackers = bank.checkout(2)
        trackers[0].acquire(128)
        leak = bank.checkin(trackers, job="leaky")
        assert isinstance(leak, PoolLeakError)
        assert leak.job == "leaky"
        assert bank.retired == 1
        assert bank.snapshot()["banked_sets"] == {}

    def test_bank_bounds_sets_per_size(self):
        bank = WarmSetBank(max_sets_per_size=1)
        a, b = bank.checkout(2), bank.checkout(2)
        bank.checkin(a, job="a")
        bank.checkin(b, job="b")
        assert bank.snapshot()["banked_sets"] == {2: 1}
        assert bank.retired == 1


class TestPlanCacheConcurrency:
    def test_concurrent_compiles_converge_to_one_plan(self):
        """Racing pack_plan calls on the same typemap must all return the
        same object (first insert wins), with the losers counted."""
        import threading

        from repro.core.typecache import (clear_plan_cache, pack_plan,
                                          plan_cache_info)
        from repro.types import struct_simple_datatype

        clear_plan_cache()
        dtype = struct_simple_datatype()
        plans = [None] * 8
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            plans[i] = pack_plan(dtype, 4)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(p is plans[0] for p in plans)
        info = plan_cache_info()
        assert info["size"] == 1
        # Every thread either hit or missed; every miss either won the
        # single insert or was counted as a duplicate compile.
        assert info["hits"] + info["misses"] == 8
        assert info["misses"] == 1 + info["compile_races"]
        clear_plan_cache()
