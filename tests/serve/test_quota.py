"""Per-job quotas: virtual-time budget, memory ceiling, wall timeout."""

import pytest

from repro.errors import MemoryQuotaError, TimeBudgetExceeded
from repro.serve import (QUOTA, JobService, JobSpec, JobStatus, QuotaPolicy,
                         RetryPolicy)
from repro.serve.workloads import (deadlock_job, pingpong_job, spin_job,
                                   struct_pingpong_job)
from repro.ucp.netsim import BudgetedClock

from tests.transport.conftest import require_backend


class TestBudgetedClock:
    def test_charge_is_applied_before_raise(self):
        clock = BudgetedClock(budget=1.0)
        clock.advance(0.9)
        with pytest.raises(TimeBudgetExceeded):
            clock.advance(0.5)
        assert clock.now == pytest.approx(1.4)

    def test_merge_also_enforces(self):
        clock = BudgetedClock(budget=1.0)
        with pytest.raises(TimeBudgetExceeded):
            clock.merge(2.0)

    def test_exactly_at_budget_is_fine(self):
        clock = BudgetedClock(budget=1.0)
        assert clock.advance(1.0) == 1.0

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetedClock(budget=0.0)


class TestTimeBudget:
    def test_budget_trip_fails_job_as_quota(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=spin_job(iters=100000), name="budgeted",
                quota=QuotaPolicy(wall_timeout=60.0, time_budget=1e-4)))
            assert h.wait(60)
            assert h.status == JobStatus.FAILED
            assert h.error_class == QUOTA
            assert isinstance(h.error, TimeBudgetExceeded)
            assert svc.metrics.get("failed_quota") == 1

    def test_budget_trip_leaves_pools_balanced(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=spin_job(iters=100000), name="budgeted",
                quota=QuotaPolicy(wall_timeout=60.0, time_budget=1e-4)))
            h.wait(60)
            after = svc.submit(JobSpec(fn=pingpong_job(iters=2),
                                       name="after"))
            assert after.wait(30)
            assert after.status == JobStatus.COMPLETED
        report = svc.report()
        assert report["jobs"]["pool_leaks"] == 0
        assert report["pool_bank"]["banked_outstanding"] == 0

    def test_generous_budget_does_not_fire(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=pingpong_job(iters=2), name="roomy",
                quota=QuotaPolicy(wall_timeout=30.0, time_budget=10.0)))
            assert h.wait(30)
            assert h.status == JobStatus.COMPLETED


class TestMemoryCeiling:
    def test_ceiling_breach_fails_job_as_quota(self):
        # The struct workload packs through MemoryTracker.acquire, which
        # is where the ceiling is enforced; 512 elements need far more
        # than 256 transient bytes.
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=struct_pingpong_job(iters=2, count=512), name="hungry",
                quota=QuotaPolicy(wall_timeout=30.0, max_pool_bytes=256)))
            assert h.wait(60)
            assert h.status == JobStatus.FAILED
            assert h.error_class == QUOTA
            assert isinstance(h.error, MemoryQuotaError)

    def test_ceiling_cleared_between_jobs(self):
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=struct_pingpong_job(iters=2, count=512), name="hungry",
                quota=QuotaPolicy(wall_timeout=30.0, max_pool_bytes=256)))
            h.wait(60)
            # Same workload, no ceiling: must succeed on the same (warm,
            # re-armed) trackers — the previous job's quota must not stick.
            h2 = svc.submit(JobSpec(fn=struct_pingpong_job(iters=2,
                                                           count=512),
                                    name="free"))
            assert h2.wait(60)
            assert h2.status == JobStatus.COMPLETED


class TestWallTimeout:
    @pytest.mark.parametrize("transport", ["inproc", "asyncio", "shm"])
    def test_deadlocked_job_cancels_cleanly(self, transport):
        """A job killed at the wall-clock boundary reaches a terminal
        state with QUOTA classification on every backend (capability
        skips where the platform can't run the backend)."""
        require_backend(transport)
        with JobService(slots=1, max_queue=4, transport=transport) as svc:
            h = svc.submit(JobSpec(
                fn=deadlock_job(), name="deadlock", transport=transport,
                quota=QuotaPolicy(wall_timeout=1.0),
                retry=RetryPolicy(max_retries=0)))
            assert h.wait(90), "timeout never fired"
            assert h.status == JobStatus.FAILED
            assert h.error_class == QUOTA
            assert isinstance(h.error, TimeoutError)

    def test_timed_out_trackers_are_retired_not_reused(self):
        """Abandoned rank threads may still touch their pools, so the
        warm set of a timed-out job must never be banked again."""
        with JobService(slots=1, max_queue=4) as svc:
            h = svc.submit(JobSpec(
                fn=deadlock_job(tag=91), name="deadlock",
                quota=QuotaPolicy(wall_timeout=0.5),
                retry=RetryPolicy(max_retries=0)))
            assert h.wait(60)
            assert h.status == JobStatus.FAILED
            assert svc.metrics.get("pools_retired") == 1
            assert svc.bank.retired >= 1
            # The next job gets a fresh set and completes normally.
            h2 = svc.submit(JobSpec(fn=pingpong_job(iters=1),
                                    name="after"))
            assert h2.wait(30)
            assert h2.status == JobStatus.COMPLETED
