"""Oracle property tests: distributed results vs single-process numpy.

Each property generates random shapes/contents, runs the distributed
operation, and compares against the obvious numpy computation — the
strongest form of end-to-end check the simulator allows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLOAT64, INT32, pack, subarray
from repro.mpi import run


class TestSubarrayOracle:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(2, 8), st.data())
    def test_2d_subarray_equals_numpy_slice(self, nr, nc, data):
        r0 = data.draw(st.integers(0, nr - 1))
        c0 = data.draw(st.integers(0, nc - 1))
        sr = data.draw(st.integers(1, nr - r0))
        sc = data.draw(st.integers(1, nc - c0))
        t = subarray([nr, nc], [sr, sc], [r0, c0], FLOAT64)
        m = np.arange(nr * nc, dtype=np.float64).reshape(nr, nc) * 1.5
        assert np.array_equal(pack(t, m, 1).view(np.float64),
                              m[r0:r0 + sr, c0:c0 + sc].ravel())

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5), st.data())
    def test_3d_subarray_equals_numpy_slice(self, a, b, c, data):
        s = [data.draw(st.integers(0, d - 1)) for d in (a, b, c)]
        n = [data.draw(st.integers(1, d - o)) for d, o in zip((a, b, c), s)]
        t = subarray([a, b, c], n, s, INT32)
        m = np.arange(a * b * c, dtype=np.int32).reshape(a, b, c)
        want = m[s[0]:s[0] + n[0], s[1]:s[1] + n[1], s[2]:s[2] + n[2]]
        assert np.array_equal(pack(t, m, 1).view(np.int32), want.ravel())


class TestCollectiveOracles:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 16),
           st.sampled_from(["sum", "min", "max"]))
    def test_allreduce_matches_numpy(self, nprocs, width, op):
        rng = np.random.default_rng(width * 31 + nprocs)
        contributions = rng.integers(-50, 50, size=(nprocs, width)).astype(float)

        def fn(comm):
            out = np.zeros(width)
            comm.allreduce(contributions[comm.rank].copy(), out, op=op)
            return out

        res = run(fn, nprocs=nprocs)
        want = {"sum": contributions.sum(0), "min": contributions.min(0),
                "max": contributions.max(0)}[op]
        for got in res.results:
            assert np.array_equal(got, want)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 8))
    def test_allgather_matches_concatenation(self, nprocs, width):
        def fn(comm):
            mine = np.arange(width, dtype=np.int64) + 1000 * comm.rank
            out = np.zeros(width * comm.size, dtype=np.int64)
            comm.allgather(mine, out)
            return out

        res = run(fn, nprocs=nprocs)
        want = np.concatenate([np.arange(width, dtype=np.int64) + 1000 * r
                               for r in range(nprocs)])
        for got in res.results:
            assert np.array_equal(got, want)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(2, 4), st.integers(1, 6))
    def test_alltoall_is_a_transpose(self, nprocs, width):
        def fn(comm):
            send = np.arange(nprocs * width, dtype=np.int64) \
                + 100_000 * comm.rank
            recv = np.zeros(nprocs * width, dtype=np.int64)
            comm.alltoall(send, recv, count=width)
            return recv

        res = run(fn, nprocs=nprocs)
        # Block (r, s) of the result at rank r equals block (r) of sender s.
        for r in range(nprocs):
            got = res.results[r].reshape(nprocs, width)
            for s in range(nprocs):
                want = (np.arange(nprocs * width, dtype=np.int64)
                        + 100_000 * s).reshape(nprocs, width)[r]
                assert np.array_equal(got[s], want), (r, s)


class TestPickleOracle:
    @settings(max_examples=6, deadline=None)
    @given(st.recursive(
        st.one_of(st.integers(-1000, 1000), st.text(max_size=20),
                  st.booleans(), st.none()),
        lambda inner: st.one_of(
            st.lists(inner, max_size=4),
            st.dictionaries(st.text(max_size=6), inner, max_size=4)),
        max_leaves=12))
    def test_arbitrary_object_graph_roundtrips(self, obj):
        from repro.serial import get_strategy

        def fn(comm):
            s = get_strategy("pickle-oob-cdt")
            if comm.rank == 0:
                s.send(comm, obj, dest=1)
                return None
            return s.recv(comm, source=0)

        assert run(fn, nprocs=2).results[1] == obj
