"""Property-based over-the-wire roundtrips: random derived types through
the full stack (typemap construction -> engine -> transport -> unpack)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLOAT64, INT32, create_struct, hindexed, resized, vector
from repro.mpi import run


@st.composite
def derived_types(draw):
    """A random derived datatype plus a count, with bounded footprint."""
    kind = draw(st.sampled_from(["vector", "hindexed", "struct"]))
    if kind == "vector":
        count = draw(st.integers(1, 6))
        blen = draw(st.integers(1, 4))
        stride = draw(st.integers(blen, blen + 4))
        t = vector(count, blen, stride, INT32)
    elif kind == "hindexed":
        nblocks = draw(st.integers(1, 5))
        blens = [draw(st.integers(1, 3)) for _ in range(nblocks)]
        displs = []
        pos = 0
        for b in blens:
            pos += draw(st.integers(0, 16))
            displs.append(pos)
            pos += b * 4
        t = hindexed(blens, displs, INT32)
    else:
        nfields = draw(st.integers(1, 3))
        blens, displs, types = [], [], []
        pos = 0
        for _ in range(nfields):
            pos += draw(st.integers(0, 8))
            ft = draw(st.sampled_from([INT32, FLOAT64]))
            bl = draw(st.integers(1, 3))
            blens.append(bl)
            displs.append(pos)
            types.append(ft)
            pos += bl * ft.size
        t = resized(create_struct(blens, displs, types), 0,
                    pos + draw(st.integers(0, 8)))
    nelem = draw(st.integers(1, 8))
    return t, nelem


class TestWireRoundtripProperties:
    @settings(max_examples=10, deadline=None)
    @given(derived_types())
    def test_random_derived_type_over_the_wire(self, t_and_n):
        t, nelem = t_and_n
        from repro.core import required_span
        span = max(required_span(t, nelem), t.extent * nelem, 1)
        rng = np.random.default_rng(5)
        payload = rng.integers(0, 256, size=span, dtype=np.uint8)

        def fn(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, datatype=t, count=nelem)
                return None
            out = np.zeros(span, dtype=np.uint8)
            comm.recv(out, source=0, datatype=t, count=nelem)
            return out

        res = run(fn, nprocs=2)
        got = res.results[1]
        from repro.core import pack
        assert bytes(pack(t, got, nelem)) == bytes(pack(t, payload, nelem))

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 2000), min_size=0, max_size=8),
           st.integers(0, 2))
    def test_random_object_graphs_over_strategies(self, sizes, strat_idx):
        from repro.serial import STRATEGIES, get_strategy
        name = sorted(STRATEGIES)[strat_idx]
        obj = {"arrays": [np.arange(n, dtype=np.float32) for n in sizes],
               "meta": {"sizes": sizes}}

        def fn(comm):
            s = get_strategy(name)
            if comm.rank == 0:
                s.send(comm, obj, dest=1)
                return None
            return s.recv(comm, source=0)

        got = run(fn, nprocs=2).results[1]
        assert got["meta"]["sizes"] == sizes
        assert all(np.array_equal(a, b)
                   for a, b in zip(got["arrays"], obj["arrays"]))
