"""Communicator point-to-point tests across all datatype kinds."""

import numpy as np
import pytest

from repro.core import (BYTE, FLOAT64, INT32, Field, StructSpec, create_struct,
                        resized, vector)
from repro.errors import MPIError, RuntimeAbort
from repro.mpi import ANY_SOURCE, ANY_TAG, run
from repro.mpi.requests import Request


def pair(fn0, fn1, **kw):
    return run([fn0, fn1], nprocs=2, **kw).results


class TestBlockingSendRecv:
    def test_numpy_inference(self):
        def s(comm):
            comm.send(np.arange(10, dtype=np.float64), dest=1, tag=3)

        def r(comm):
            buf = np.zeros(10, dtype=np.float64)
            st = comm.recv(buf, source=0, tag=3)
            return buf, st

        _, (buf, st) = pair(s, r)
        assert np.array_equal(buf, np.arange(10, dtype=np.float64))
        assert st.source == 0 and st.tag == 3 and st.nbytes == 80
        assert st.get_count(FLOAT64) == 10

    def test_bytes_inference(self):
        def s(comm):
            comm.send(b"hello world", dest=1)

        def r(comm):
            buf = bytearray(11)
            comm.recv(buf, source=0)
            return bytes(buf)

        assert pair(s, r)[1] == b"hello world"

    def test_explicit_count_datatype(self):
        def s(comm):
            comm.send(np.arange(20, dtype=np.int32), dest=1,
                      datatype=INT32, count=10)

        def r(comm):
            buf = np.zeros(10, dtype=np.int32)
            comm.recv(buf, source=0, datatype=INT32, count=10)
            return buf

        assert pair(s, r)[1].tolist() == list(range(10))

    def test_derived_datatype(self):
        t = resized(create_struct([3, 1], [0, 16], [INT32, FLOAT64]), 0, 24)
        sd = np.dtype({"names": ["a", "b", "c", "d"],
                       "formats": ["<i4", "<i4", "<i4", "<f8"],
                       "offsets": [0, 4, 8, 16], "itemsize": 24})

        def s(comm):
            arr = np.zeros(6, dtype=sd)
            arr["a"] = np.arange(6)
            arr["d"] = np.arange(6) * 1.5
            comm.send(arr, dest=1, datatype=t, count=6)

        def r(comm):
            buf = np.zeros(6, dtype=sd)
            comm.recv(buf, source=0, datatype=t, count=6)
            return buf

        got = pair(s, r)[1]
        assert got["a"].tolist() == list(range(6))
        assert got["d"].tolist() == [i * 1.5 for i in range(6)]

    def test_vector_datatype_strides(self):
        t = vector(4, 1, 2, INT32)  # every other int

        def s(comm):
            comm.send(np.arange(8, dtype=np.int32), dest=1, datatype=t, count=1)

        def r(comm):
            buf = np.zeros(8, dtype=np.int32)
            comm.recv(buf, source=0, datatype=t, count=1)
            return buf

        assert pair(s, r)[1].tolist() == [0, 0, 2, 0, 4, 0, 6, 0]

    def test_custom_datatype_default_count(self):
        spec = StructSpec([Field("x", "<f8"),
                           Field("data", "<i4", shape="dynamic")])
        dt = spec.custom_datatype()

        class O:
            pass

        def s(comm):
            o = O()
            o.x = 2.5
            o.data = np.arange(4096, dtype=np.int32)
            comm.send(o, dest=1, datatype=dt)

        def r(comm):
            o = O()
            comm.recv(o, source=0, datatype=dt)
            return o.x, o.data.sum()

        x, total = pair(s, r)[1]
        assert x == 2.5 and total == np.arange(4096).sum()

    def test_large_rendezvous_payload(self):
        n = 1 << 20

        def s(comm):
            comm.send(np.full(n, 7, dtype=np.uint8), dest=1)

        def r(comm):
            buf = np.zeros(n, dtype=np.uint8)
            comm.recv(buf, source=0)
            return int(buf.sum())

        assert pair(s, r)[1] == 7 * n


class TestWildcardsAndTags:
    def test_any_source(self):
        def s(comm):
            comm.send(np.array([comm.rank], dtype=np.int32), dest=0, tag=1)

        def r(comm):
            buf = np.zeros(1, dtype=np.int32)
            st = comm.recv(buf, source=ANY_SOURCE, tag=1)
            return st.source

        res = run([r, s, s], nprocs=3)
        assert res.results[0] in (1, 2)

    def test_any_tag(self):
        def s(comm):
            comm.send(np.zeros(1, dtype=np.int32), dest=1, tag=77)

        def r(comm):
            st = comm.recv(np.zeros(1, dtype=np.int32), source=0, tag=ANY_TAG)
            return st.tag

        assert pair(s, r)[1] == 77

    def test_tag_separation(self):
        def s(comm):
            comm.send(np.array([1], dtype=np.int32), dest=1, tag=1)
            comm.send(np.array([2], dtype=np.int32), dest=1, tag=2)

        def r(comm):
            a = np.zeros(1, dtype=np.int32)
            b = np.zeros(1, dtype=np.int32)
            comm.recv(b, source=0, tag=2)  # out of order by tag
            comm.recv(a, source=0, tag=1)
            return int(a[0]), int(b[0])

        assert pair(s, r)[1] == (1, 2)

    def test_fifo_same_tag(self):
        def s(comm):
            for i in range(5):
                comm.send(np.array([i], dtype=np.int32), dest=1, tag=4)

        def r(comm):
            out = []
            for _ in range(5):
                buf = np.zeros(1, dtype=np.int32)
                comm.recv(buf, source=0, tag=4)
                out.append(int(buf[0]))
            return out

        assert pair(s, r)[1] == [0, 1, 2, 3, 4]

    def test_invalid_peer(self):
        def bad(comm):
            comm.send(b"x", dest=5)

        with pytest.raises(RuntimeAbort) as ei:
            run(bad, nprocs=2, timeout=10)
        assert all(isinstance(e, MPIError) for e in ei.value.failures.values())

    def test_invalid_tag(self):
        def bad(comm):
            comm.send(b"x", dest=1, tag=1 << 31)

        with pytest.raises(RuntimeAbort):
            run(bad, nprocs=2, timeout=10)

    def test_uninferrable_buffer(self):
        def bad(comm):
            comm.send({"not": "a buffer"}, dest=1)

        with pytest.raises(RuntimeAbort):
            run(bad, nprocs=2, timeout=10)


class TestNonblocking:
    def test_isend_irecv(self):
        def s(comm):
            reqs = [comm.isend(np.array([i], dtype=np.int32), dest=1, tag=i)
                    for i in range(4)]
            Request.waitall(reqs)

        def r(comm):
            bufs = [np.zeros(1, dtype=np.int32) for _ in range(4)]
            reqs = [comm.irecv(b, source=0, tag=i)
                    for i, b in enumerate(bufs)]
            Request.waitall(reqs)
            return [int(b[0]) for b in bufs]

        assert pair(s, r)[1] == [0, 1, 2, 3]

    def test_sendrecv_exchange(self):
        def fn(comm):
            mine = np.array([comm.rank], dtype=np.int32)
            theirs = np.zeros(1, dtype=np.int32)
            comm.sendrecv(mine, dest=1 - comm.rank, recvbuf=theirs,
                          source=1 - comm.rank)
            return int(theirs[0])

        res = run(fn, nprocs=2)
        assert res.results == [1, 0]

    def test_request_wait_idempotent(self):
        def s(comm):
            req = comm.isend(np.zeros(4, dtype=np.uint8), dest=1)
            req.wait()
            req.wait()

        def r(comm):
            buf = np.zeros(4, dtype=np.uint8)
            req = comm.irecv(buf, source=0)
            st1 = req.wait()
            st2 = req.wait()
            assert st1 is st2
            return True

        assert pair(s, r)[1]


class TestDup:
    def test_isolated_tag_space(self):
        def fn(comm):
            comm2 = comm.dup()
            if comm.rank == 0:
                comm.send(np.array([1], dtype=np.int32), dest=1, tag=0)
                comm2.send(np.array([2], dtype=np.int32), dest=1, tag=0)
            else:
                a = np.zeros(1, dtype=np.int32)
                b = np.zeros(1, dtype=np.int32)
                comm2.recv(b, source=0, tag=0)  # dup traffic only
                comm.recv(a, source=0, tag=0)
                return int(a[0]), int(b[0])

        res = run(fn, nprocs=2)
        assert res.results[1] == (1, 2)

    def test_dup_ids_agree_across_ranks(self):
        def fn(comm):
            return comm.dup().comm_id, comm.dup().comm_id

        res = run(fn, nprocs=3)
        assert res.results[0] == res.results[1] == res.results[2]
        assert res.results[0][0] != res.results[0][1]
