"""SPMD runtime tests."""

import numpy as np
import pytest

from repro.errors import RuntimeAbort
from repro.mpi import run
from repro.ucp.netsim import LinkParams


class TestRun:
    def test_results_per_rank(self):
        res = run(lambda comm: comm.rank * 10, nprocs=4)
        assert res.results == [0, 10, 20, 30]

    def test_size_visible(self):
        res = run(lambda comm: comm.size, nprocs=3)
        assert res.results == [3, 3, 3]

    def test_per_rank_functions(self):
        res = run([lambda c: "a", lambda c: "b"], nprocs=2)
        assert res.results == ["a", "b"]

    def test_fn_count_mismatch(self):
        with pytest.raises(ValueError):
            run([lambda c: None], nprocs=2)

    def test_failure_aggregated(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 died")
            return "ok"

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=2, timeout=10)
        assert 1 in ei.value.failures
        assert isinstance(ei.value.failures[1], ValueError)

    def test_deadlock_detected(self):
        def fn(comm):
            # Both ranks post a recv that can never match.
            buf = np.zeros(4, np.uint8)
            comm.recv(buf, source=1 - comm.rank, tag=9)

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=2, timeout=0.5)

    def test_clocks_reported(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, np.uint8), dest=1)
            else:
                comm.recv(np.zeros(100, np.uint8), source=0)

        res = run(fn, nprocs=2)
        assert len(res.clocks) == 2
        assert res.max_clock > 0

    def test_memory_reported(self):
        res = run(lambda comm: None, nprocs=2)
        assert all("peak_bytes" in m for m in res.memory)

    def test_custom_params(self):
        params = LinkParams(latency=1e-3)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(8, np.uint8), dest=1)
            else:
                comm.recv(np.zeros(8, np.uint8), source=0)
            return comm.clock.now

        res = run(fn, nprocs=2, params=params)
        assert res.results[1] >= 1e-3

    def test_single_rank(self):
        res = run(lambda comm: comm.rank, nprocs=1)
        assert res.results == [0]
