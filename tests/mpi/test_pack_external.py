"""MPI_Pack / MPI_Unpack equivalents."""

import numpy as np
import pytest

from repro.core import FLOAT64, INT32, create_struct, resized, vector
from repro.errors import MPIError
from repro.mpi import pack_into, pack_size, unpack_from


class TestPackExternal:
    def test_pack_size(self):
        t = vector(3, 2, 4, INT32)
        assert pack_size(1, t) == 24
        assert pack_size(5, INT32) == 20

    def test_pack_then_unpack(self):
        t = vector(3, 2, 4, INT32)
        src = np.arange(12, dtype=np.int32)
        out = np.zeros(24, dtype=np.uint8)
        pos = pack_into(src, 1, t, out, 0)
        assert pos == 24
        dst = np.zeros(12, dtype=np.int32)
        pos2 = unpack_from(out, 0, dst, 1, t)
        assert pos2 == 24
        assert dst.tolist() == [0, 1, 0, 0, 4, 5, 0, 0, 8, 9, 0, 0]

    def test_incremental_positions(self):
        """Mixed types appended into one buffer, mpi4py-style."""
        out = np.zeros(100, dtype=np.uint8)
        pos = pack_into(np.array([7], dtype=np.int32), 1, INT32, out, 0)
        pos = pack_into(np.array([2.5]), 1, FLOAT64, out, pos)
        assert pos == 12
        a = np.zeros(1, dtype=np.int32)
        b = np.zeros(1, dtype=np.float64)
        p = unpack_from(out, 0, a, 1, INT32)
        p = unpack_from(out, p, b, 1, FLOAT64)
        assert p == 12 and a[0] == 7 and b[0] == 2.5

    def test_overflow_detected(self):
        out = np.zeros(10, dtype=np.uint8)
        with pytest.raises(MPIError):
            pack_into(np.arange(4, dtype=np.int32), 4, INT32, out, 0)
        with pytest.raises(MPIError):
            unpack_from(out, 8, np.zeros(1, dtype=np.int32), 1, INT32)

    def test_negative_position(self):
        out = np.zeros(10, dtype=np.uint8)
        with pytest.raises(MPIError):
            pack_into(np.zeros(1, dtype=np.int32), 1, INT32, out, -1)

    def test_bytearray_output(self):
        out = bytearray(8)
        pack_into(np.array([3.5]), 1, FLOAT64, out, 0)
        assert np.frombuffer(out, dtype=np.float64)[0] == 3.5

    def test_struct_with_gap(self):
        t = resized(create_struct([1, 1], [0, 8], [INT32, FLOAT64]), 0, 16)
        sd = np.dtype({"names": ["a", "d"], "formats": ["<i4", "<f8"],
                       "offsets": [0, 8], "itemsize": 16})
        src = np.zeros(2, dtype=sd)
        src["a"] = [1, 2]
        src["d"] = [0.5, 1.5]
        out = np.zeros(pack_size(2, t), dtype=np.uint8)
        pack_into(src, 2, t, out, 0)
        dst = np.zeros(2, dtype=sd)
        unpack_from(out, 0, dst, 2, t)
        assert (dst == src).all()
