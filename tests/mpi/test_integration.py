"""Cross-module integration stress: mixed traffic over one fabric.

These jobs interleave every transfer path (contiguous, derived, custom
pack-only, custom with regions, pickle strategies) across multiple ranks,
tags and communicators in a single run, which exercises tag matching,
protocol selection and the engine's state handling under interleaving.
"""

import numpy as np
import pytest

from repro.core import Field, StructSpec, create_struct, resized, INT32, FLOAT64
from repro.mpi import run
from repro.mpi.requests import Request
from repro.serial import get_strategy, make_complex_object
from repro.types import (STRUCT_SIMPLE, DoubleVec, double_vec_custom_datatype,
                         make_struct_simple, struct_simple_custom_datatype,
                         struct_simple_datatype)


class TestMixedTraffic:
    def test_all_paths_interleaved_pairwise(self):
        """Rank 0 fires five different-typed messages; rank 1 receives them
        out of posting order by tag."""

        spec = StructSpec([Field("k", "<i8"),
                           Field("data", "<f8", shape="dynamic")])

        class O:
            pass

        def fn(comm):
            derived = struct_simple_datatype()
            custom = struct_simple_custom_datatype()
            dv_t = double_vec_custom_datatype()
            sp_t = spec.custom_datatype()
            if comm.rank == 0:
                reqs = [
                    comm.isend(np.arange(100, dtype=np.int32), dest=1, tag=1),
                    comm.isend(make_struct_simple(32), dest=1, tag=2,
                               datatype=derived, count=32),
                    comm.isend(make_struct_simple(32), dest=1, tag=3,
                               datatype=custom, count=32),
                    comm.isend(DoubleVec.uniform(50_000, 4096), dest=1, tag=4,
                               datatype=dv_t),
                ]
                o = O(); o.k = 5; o.data = np.linspace(0, 9, 1000)
                reqs.append(comm.isend(o, dest=1, tag=5, datatype=sp_t))
                Request.waitall(reqs)
                return True

            results = {}
            # Receive in reverse tag order to force unexpected-queue traffic.
            o = O()
            comm.recv(o, source=0, tag=5, datatype=sp_t)
            results["spec"] = (o.k, float(o.data.sum()))
            dv = DoubleVec()
            comm.recv(dv, source=0, tag=4, datatype=dv_t)
            results["dv"] = dv.total_bytes
            b3 = np.zeros(32, STRUCT_SIMPLE)
            comm.recv(b3, source=0, tag=3, datatype=custom, count=32)
            results["custom"] = (b3 == make_struct_simple(32)).all()
            b2 = np.zeros(32, STRUCT_SIMPLE)
            comm.recv(b2, source=0, tag=2, datatype=derived, count=32)
            results["derived"] = (b2 == make_struct_simple(32)).all()
            b1 = np.zeros(100, np.int32)
            comm.recv(b1, source=0, tag=1)
            results["contig"] = b1.sum() == sum(range(100))
            return results

        res = run(fn, nprocs=2)
        got = res.results[1]
        assert got["contig"] and got["derived"] and got["custom"]
        assert got["dv"] == 50_000
        assert got["spec"] == (5, pytest.approx(4500.0))

    @pytest.mark.parametrize("nprocs", [3, 5])
    def test_all_to_all_object_exchange(self, nprocs):
        """Every rank sends a pickled object to every other rank."""

        def fn(comm):
            s = get_strategy("pickle-oob-cdt")
            got = {}
            # Pairwise ordered exchange: the custom-datatype path is
            # rendezvous-like, so a blocking send needs its receiver active
            # (everyone-sends-first would be the classic MPI deadlock).
            for step in range(1, comm.size):
                to = (comm.rank + step) % comm.size
                frm = (comm.rank - step) % comm.size
                payload = {"from": comm.rank, "arr": np.full(5000, comm.rank)}
                if comm.rank < to:
                    s.send(comm, payload, dest=to, tag=comm.rank)
                    obj = s.recv(comm, source=frm, tag=frm)
                else:
                    obj = s.recv(comm, source=frm, tag=frm)
                    s.send(comm, payload, dest=to, tag=comm.rank)
                got[frm] = (obj["from"], float(obj["arr"][0]))
            return got

        res = run(fn, nprocs=nprocs)
        for rank, got in enumerate(res.results):
            assert set(got) == set(range(nprocs)) - {rank}
            for peer, (frm, val) in got.items():
                assert frm == peer and val == float(peer)

    def test_many_small_messages_fifo_under_load(self):
        n_msgs = 200

        def fn(comm):
            if comm.rank == 0:
                reqs = [comm.isend(np.array([i], dtype=np.int64), dest=1, tag=7)
                        for i in range(n_msgs)]
                Request.waitall(reqs)
                return None
            out = []
            for _ in range(n_msgs):
                buf = np.zeros(1, dtype=np.int64)
                comm.recv(buf, source=0, tag=7)
                out.append(int(buf[0]))
            return out

        assert run(fn, nprocs=2).results[1] == list(range(n_msgs))

    def test_bidirectional_custom_exchange(self):
        """Both ranks simultaneously send custom-datatype messages."""
        dv_t = double_vec_custom_datatype()

        def fn(comm):
            mine = DoubleVec.uniform(30_000 + comm.rank * 1000, 512)
            theirs = DoubleVec()
            rreq = comm.irecv(theirs, source=1 - comm.rank, tag=0,
                              datatype=double_vec_custom_datatype())
            sreq = comm.isend(mine, dest=1 - comm.rank, tag=0, datatype=dv_t)
            rreq.wait()
            sreq.wait()
            return theirs.total_bytes

        res = run(fn, nprocs=2)
        assert res.results[0] == 31_000
        assert res.results[1] == 30_000

    def test_subcommunicator_and_world_traffic_interleave(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            # World-level broadcast while sub-level allreduce is in flight.
            token = np.zeros(4, np.float64) if comm.rank else np.ones(4)
            comm.bcast(token, root=0)
            local = np.full(2, float(sub.rank))
            out = np.zeros(2)
            sub.allreduce(local, out)
            return token.sum(), out.tolist()

        res = run(fn, nprocs=4)
        for tok, red in res.results:
            assert tok == 4.0
            assert red == [1.0, 1.0]  # ranks 0+1 within each 2-rank group

    def test_virtual_time_consistency_across_mixed_run(self):
        """Clocks stay monotone and close after heavy mixed traffic."""

        def fn(comm):
            s = get_strategy("pickle-basic")
            for i in range(5):
                if comm.rank == 0:
                    comm.send(np.zeros(1 << i * 2, np.uint8), dest=1, tag=i)
                    s.send(comm, make_complex_object(1 << 17), dest=1, tag=50 + i)
                else:
                    comm.recv(np.zeros(1 << i * 2, np.uint8), source=0, tag=i)
                    s.recv(comm, source=0, tag=50 + i)
            comm.barrier()
            return comm.clock.now

        res = run(fn, nprocs=2)
        t0, t1 = res.results
        assert t0 > 0 and t1 > 0
        assert abs(t0 - t1) < max(t0, t1) * 0.01  # barrier synchronized
