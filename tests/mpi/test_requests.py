"""Request/Status object tests."""

import numpy as np
import pytest

from repro.core import BYTE, FLOAT64, INT32
from repro.mpi import run
from repro.mpi.requests import (ANY_SOURCE, ANY_TAG, CompletedRequest,
                                Request, Status)


class TestStatus:
    def test_fields(self):
        st = Status(source=2, tag=9, nbytes=40)
        assert (st.source, st.tag, st.nbytes) == (2, 9, 40)

    def test_get_count_exact(self):
        st = Status(0, 0, 40)
        assert st.get_count(INT32) == 10
        assert st.get_count(FLOAT64) == 5
        assert st.get_count(BYTE) == 40

    def test_get_count_partial_is_undefined(self):
        st = Status(0, 0, 41)
        assert st.get_count(INT32) == -1  # MPI_UNDEFINED

    def test_get_count_zero_size_type(self):
        from repro.core import contiguous
        st = Status(0, 0, 0)
        assert st.get_count(contiguous(0, INT32)) == 0

    def test_repr(self):
        assert "source=1" in repr(Status(1, 2, 3))


class TestCompletedRequest:
    def test_born_done(self):
        st = Status(0, 0, 8)
        req = CompletedRequest(st)
        assert req.test()
        assert req.wait() is st

    def test_none_status(self):
        assert CompletedRequest().wait() is None


class TestWaitallTestall:
    def test_waitall_returns_statuses(self):
        def fn(comm):
            if comm.rank == 0:
                reqs = [comm.isend(np.full(4, i, np.uint8), dest=1, tag=i)
                        for i in range(3)]
                Request.waitall(reqs)
                return None
            bufs = [np.zeros(4, np.uint8) for _ in range(3)]
            reqs = [comm.irecv(b, source=0, tag=i)
                    for i, b in enumerate(bufs)]
            stats = Request.waitall(reqs)
            return [(s.tag, s.nbytes) for s in stats], [int(b[0]) for b in bufs]

        stats, vals = run(fn, nprocs=2).results[1]
        assert stats == [(0, 4), (1, 4), (2, 4)]
        assert vals == [0, 1, 2]

    def test_testall_transitions(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send(np.zeros(4, np.uint8), dest=1, tag=0)
                return None
            req = comm.irecv(np.zeros(4, np.uint8), source=0, tag=0)
            before = Request.testall([req])
            comm.barrier()
            req.wait()
            after = Request.testall([req])
            return before, after

        before, after = run(fn, nprocs=2).results[1]
        assert before is False and after is True

    def test_test_does_not_complete_recv_work(self):
        """test() only reports matching; delivery happens in wait()."""
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.full(8, 5, np.uint8), dest=1, tag=0)
                comm.barrier()
                return None
            buf = np.zeros(8, np.uint8)
            req = comm.irecv(buf, source=0, tag=0)
            comm.barrier()  # message has surely arrived
            while not req.test():
                pass
            st = req.wait()
            return int(buf[0]), st.nbytes

        assert run(fn, nprocs=2).results[1] == (5, 8)
