"""Extended probe/status: per-component lengths (the paper's Section VI
wish, implemented).

"Ideally, there should be some way to better handle this length
information, perhaps by extending MPI_Probe and MPI_Get_count."  Our
Status carries the wire components' lengths, so a prober can size every
region without a second message.
"""

import numpy as np
import pytest

from repro.core import Region, type_create_custom
from repro.mpi import run
from repro.types import DoubleVec, double_vec_custom_datatype


class TestExtendedStatus:
    def test_probe_reveals_component_lengths(self):
        dt = double_vec_custom_datatype()

        def fn(comm):
            if comm.rank == 0:
                comm.send(DoubleVec.uniform(4096, 1024), dest=1, tag=1,
                          datatype=dt)
                return None
            st = comm.probe(source=0, tag=1)
            dv = DoubleVec()
            comm.recv(dv, source=0, tag=1, datatype=dt)
            return st.entry_lengths, st.packed_entries, st.region_lengths

        entry_lengths, packed, regions = run(fn, nprocs=2).results[1]
        # header (5*8B) in-band + four 1 KiB sub-vectors as regions.
        assert packed == 1
        assert entry_lengths[0] == 40
        assert regions == (1024, 1024, 1024, 1024)

    def test_recv_status_carries_lengths_too(self):
        dt = double_vec_custom_datatype()

        def fn(comm):
            if comm.rank == 0:
                comm.send(DoubleVec.uniform(2048, 1024), dest=1, tag=1,
                          datatype=dt)
                return None
            dv = DoubleVec()
            st = comm.recv(dv, source=0, tag=1, datatype=dt)
            return st.region_lengths

        assert run(fn, nprocs=2).results[1] == (1024, 1024)

    def test_contiguous_message_single_entry(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, np.uint8), dest=1, tag=1)
                return None
            st = comm.probe(source=0, tag=1)
            comm.recv(np.zeros(100, np.uint8), source=0, tag=1)
            return st.entry_lengths, st.packed_entries

        lengths, packed = run(fn, nprocs=2).results[1]
        assert lengths == (100,) and packed == 0

    def test_mprobe_sized_dynamic_receive(self):
        """The full workflow the paper wants: probe, learn region sizes,
        preallocate, receive — no lengths message, no over-allocation."""

        def region_only_type(get_regions):
            return type_create_custom(
                query_fn=lambda s, b, c: 0,
                region_count_fn=lambda s, b, c: len(get_regions(b)),
                region_fn=lambda s, b, c, n: [Region(r) for r in get_regions(b)])

        def fn(comm):
            if comm.rank == 0:
                payload = [np.arange(n, dtype=np.uint8) for n in (10, 300, 7)]
                t = region_only_type(lambda b: payload)
                comm.send(object(), dest=1, tag=2, datatype=t)
                return None
            handle, st = comm.mprobe(source=0, tag=2)
            bufs = [np.zeros(n, np.uint8) for n in st.region_lengths]
            t = region_only_type(lambda b: bufs)
            handle.mrecv(object(), datatype=t)
            return [int(b.sum()) for b in bufs]

        sums = run(fn, nprocs=2).results[1]
        assert sums == [sum(range(10)), int(np.arange(300, dtype=np.uint8).sum()),
                        sum(range(7))]
