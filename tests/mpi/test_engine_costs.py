"""Virtual-time behaviour of the transfer engine.

These tests pin the cost-model effects each paper figure relies on, at the
engine level (no bench harness involved).
"""

import numpy as np
import pytest

from repro.core import (BYTE, INT32, create_struct, resized,
                        type_create_custom)
from repro.core.regions import Region
from repro.mpi import EngineConfig, run
from repro.types import (STRUCT_SIMPLE, make_struct_simple,
                         struct_simple_datatype)
from repro.ucp.netsim import DEFAULT_PARAMS

from ..conftest import require_transport_capability


def one_way_time(send_fn, recv_fn, params=None, engine_config=None):
    """Virtual time on the receiving rank after one message."""

    def s(comm):
        send_fn(comm)

    def r(comm):
        recv_fn(comm)
        return comm.clock.now

    res = run([s, r], nprocs=2, params=params, engine_config=engine_config)
    return res.results[1]


def contig_time(nbytes, params=None):
    return one_way_time(
        lambda c: c.send(np.zeros(nbytes, np.uint8), dest=1),
        lambda c: c.recv(np.zeros(nbytes, np.uint8), source=0),
        params=params)


class TestProtocolEffects:
    def test_latency_floor(self):
        t = contig_time(1)
        assert t >= DEFAULT_PARAMS.latency

    def test_rendezvous_dip(self):
        """Crossing the eager limit costs more time (the Fig. 7 dip)."""
        lim = DEFAULT_PARAMS.eager_limit
        below = contig_time(lim)
        above = contig_time(lim + 64)
        assert above > below + DEFAULT_PARAMS.rndv_handshake * 0.5

    def test_larger_messages_take_longer(self):
        assert contig_time(1 << 20) > contig_time(1 << 10)

    def test_eager_limit_override(self):
        params = DEFAULT_PARAMS.with_overrides(eager_limit=1 << 30)
        lim = DEFAULT_PARAMS.eager_limit
        smooth = (one_way_time(
            lambda c: c.send(np.zeros(lim + 64, np.uint8), dest=1),
            lambda c: c.recv(np.zeros(lim + 64, np.uint8), source=0),
            params=params))
        dipped = contig_time(lim + 64)
        assert smooth < dipped


def region_type(nregions, region_bytes):
    """Custom type exposing ``nregions`` regions and no packed data."""
    payload = [np.zeros(region_bytes, np.uint8) for _ in range(nregions)]

    def query_fn(state, buf, count):
        return 0

    def region_count_fn(state, buf, count):
        return nregions

    def region_fn(state, buf, count, n):
        return [Region(p) for p in payload]

    return type_create_custom(query_fn=query_fn,
                              region_count_fn=region_count_fn,
                              region_fn=region_fn)


class TestIovEffects:
    def _time(self, nregions, region_bytes):
        ts = region_type(nregions, region_bytes)
        tr = region_type(nregions, region_bytes)
        return one_way_time(
            lambda c: c.send(object(), dest=1, datatype=ts),
            lambda c: c.recv(object(), source=0, datatype=tr))

    def test_many_small_regions_cost_more(self):
        """Same bytes, more entries -> more time (NAS_MG_x vs NAS_MG_y)."""
        few = self._time(8, 8192)
        many = self._time(1024, 64)
        assert many > few

    def test_iov_no_eager_rndv_discontinuity(self):
        lim = DEFAULT_PARAMS.eager_limit
        below = self._time(4, lim // 4 - 64)
        above = self._time(4, lim // 4 + 64)
        # Far smaller jump than the handshake the contiguous path pays.
        assert above - below < DEFAULT_PARAMS.rndv_handshake / 2


class TestGapPenalty:
    def test_derived_gapped_slower_than_custom_bytes(self):
        """The Open MPI gap penalty of Fig. 5, at the engine level."""
        count = 4096
        t = struct_simple_datatype()
        arr = make_struct_simple(count)

        derived = one_way_time(
            lambda c: c.send(arr, dest=1, datatype=t, count=count),
            lambda c: c.recv(np.zeros(count, STRUCT_SIMPLE), source=0,
                             datatype=t, count=count))
        raw = contig_time(count * 20)
        assert derived > raw * 1.5

    def test_contiguous_derived_takes_fast_path(self):
        """A gap-free derived type costs the same as raw bytes (Fig. 6)."""
        from repro.core import contiguous
        t = contiguous(1024, INT32)
        fast = one_way_time(
            lambda c: c.send(np.zeros(1024, np.int32), dest=1, datatype=t,
                             count=1),
            lambda c: c.recv(np.zeros(1024, np.int32), source=0, datatype=t,
                             count=1))
        raw = contig_time(4096)
        assert fast == pytest.approx(raw, rel=0.01)


class TestOutOfOrderAblation:
    def _dtype(self, log, inorder):
        def query_fn(state, buf, count):
            return 64

        def pack_fn(state, buf, count, offset, dst):
            n = min(dst.shape[0], 64 - offset)
            dst[:n] = offset & 0xFF
            return int(n)

        def unpack_fn(state, buf, count, offset, src):
            log.append(offset)

        return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                                  unpack_fn=unpack_fn, inorder=inorder)

    @pytest.mark.parametrize("inorder,expect_sorted", [(True, True),
                                                       (False, False)])
    def test_ooo_respects_inorder_flag(self, inorder, expect_sorted):
        require_transport_capability("shared_address_space")
        params = DEFAULT_PARAMS.with_overrides(frag_size=16)
        cfg = EngineConfig(ooo_fragments=True)
        log = []

        def s(comm):
            comm.send(object(), dest=1, datatype=self._dtype([], inorder))

        def r(comm):
            comm.recv(object(), source=0, datatype=self._dtype(log, inorder))

        run([s, r], nprocs=2, params=params, engine_config=cfg)
        assert len(log) == 4
        assert (log == sorted(log)) == expect_sorted

    def test_default_delivery_in_order(self):
        require_transport_capability("shared_address_space")
        params = DEFAULT_PARAMS.with_overrides(frag_size=16)
        log = []

        def s(comm):
            comm.send(object(), dest=1, datatype=self._dtype([], False))

        def r(comm):
            comm.recv(object(), source=0, datatype=self._dtype(log, False))

        run([s, r], nprocs=2, params=params)
        assert log == sorted(log)


class TestMemoryEffects:
    def test_derived_send_allocates_bounce(self):
        count = 100
        t = struct_simple_datatype()
        arr = make_struct_simple(count)

        def s(comm):
            comm.send(arr, dest=1, datatype=t, count=count)
            return comm.memory.snapshot()["total_allocated"]

        def r(comm):
            comm.recv(np.zeros(count, STRUCT_SIMPLE), source=0, datatype=t,
                      count=count)

        res = run([s, r], nprocs=2)
        assert res.results[0] >= count * 20

    def test_contiguous_send_allocates_nothing(self):
        def s(comm):
            comm.send(np.zeros(4096, np.uint8), dest=1)
            return comm.memory.snapshot()["total_allocated"]

        def r(comm):
            comm.recv(np.zeros(4096, np.uint8), source=0)

        assert run([s, r], nprocs=2).results[0] == 0
