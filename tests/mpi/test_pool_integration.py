"""Buffer-pool behaviour through the full simulated transport.

The pool is a wall-clock optimization; these tests pin down that (a) it is
actually exercised by the hot derived-datatype paths — repeated sends must
recycle bounce buffers and fragment staging — and (b) it never changes what
the receiver sees.
"""

import numpy as np

from repro.mpi import run
from repro.types import make_struct_simple, struct_simple_datatype

#: Packed bytes/element is 20; this count packs to 40 KiB, above the 32 KiB
#: eager limit, so the message goes rendezvous and fragments at 8 KiB.
RNDV_COUNT = 2048
#: Packs to 2.5 KiB — comfortably eager.
EAGER_COUNT = 128


def _pingpong(iters, count):
    dtype = struct_simple_datatype()

    def main(comm):
        sbuf = make_struct_simple(count)
        rbuf = make_struct_simple(count)
        if comm.rank == 0:
            for _ in range(iters):
                comm.send(sbuf, 1, 31, datatype=dtype, count=count)
                comm.recv(rbuf, 1, 32, datatype=dtype, count=count)
            return rbuf.copy()
        for _ in range(iters):
            comm.recv(rbuf, 0, 31, datatype=dtype, count=count)
            comm.send(rbuf, 0, 32, datatype=dtype, count=count)
        return None

    return main


class TestPoolHitRate:
    def test_fragmented_rendezvous_run_hits_pool(self):
        """Bounce buffers and wire staging recycle across rndv messages."""
        result = run(_pingpong(4, RNDV_COUNT), nprocs=2)
        for rank in (0, 1):
            pool = result.memory[rank]["pool"]
            assert pool["hits"] > 0, (rank, pool)
            assert pool["returned"] > 0, (rank, pool)

    def test_eager_run_hits_pool(self):
        result = run(_pingpong(4, EAGER_COUNT), nprocs=2)
        for rank in (0, 1):
            pool = result.memory[rank]["pool"]
            assert pool["hits"] > 0, (rank, pool)

    def test_recycling_does_not_corrupt_data(self):
        """Round-tripped payload is intact even though every bounce buffer
        and staging chunk is a dirty pooled buffer by the later iterations."""
        echoed = run(_pingpong(6, RNDV_COUNT), nprocs=2).results[0]
        expect = make_struct_simple(RNDV_COUNT)
        assert np.array_equal(echoed, expect)
