"""Cartesian topology tests."""

import numpy as np
import pytest

from repro.errors import MPIError, RuntimeAbort
from repro.mpi import run
from repro.mpi.topology import CartComm, cart_create, dims_create


class TestDimsCreate:
    @pytest.mark.parametrize("n,ndims,expect", [
        (12, 2, [4, 3]),
        (8, 3, [2, 2, 2]),
        (7, 1, [7]),
        (6, 2, [3, 2]),
        (1, 2, [1, 1]),
    ])
    def test_balanced(self, n, ndims, expect):
        assert dims_create(n, ndims) == expect

    def test_fixed_dimension_respected(self):
        assert dims_create(12, 2, [3, 0]) == [3, 4]

    def test_indivisible_rejected(self):
        with pytest.raises(MPIError):
            dims_create(12, 2, [5, 0])

    def test_all_fixed_must_cover(self):
        assert dims_create(6, 2, [2, 3]) == [2, 3]
        with pytest.raises(MPIError):
            dims_create(6, 2, [2, 2])

    def test_bad_args(self):
        with pytest.raises(MPIError):
            dims_create(4, 2, [0, 0, 0])
        with pytest.raises(MPIError):
            dims_create(4, 2, [-1, 0])


class TestCoordinates:
    def test_row_major_mapping(self):
        def fn(comm):
            cart = cart_create(comm, [2, 3])
            return cart.coords, cart.rank_of(cart.coords)

        res = run(fn, nprocs=6)
        assert res.results[0] == ([0, 0], 0)
        assert res.results[4] == ([1, 1], 4)
        assert res.results[5] == ([1, 2], 5)

    def test_wrong_grid_size(self):
        def fn(comm):
            cart_create(comm, [2, 2])

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=6, timeout=10)

    def test_periodic_wrap(self):
        def fn(comm):
            cart = cart_create(comm, [4], periodic=[True])
            return cart.shift(0, 1)

        res = run(fn, nprocs=4)
        assert res.results[0] == (3, 1)
        assert res.results[3] == (2, 0)

    def test_non_periodic_edges_are_none(self):
        def fn(comm):
            cart = cart_create(comm, [4])
            return cart.shift(0, 1)

        res = run(fn, nprocs=4)
        assert res.results[0] == (None, 1)
        assert res.results[3] == (2, None)


class TestNeighborExchange:
    @pytest.mark.parametrize("n,periodic", [(4, False), (4, True), (2, True),
                                            (3, False)])
    def test_1d_halo(self, n, periodic):
        def fn(comm):
            cart = cart_create(comm, [comm.size], periodic=[periodic])
            low_face = np.array([10.0 * comm.rank])       # my low halo
            high_face = np.array([10.0 * comm.rank + 1])  # my high halo
            from_low = np.full(1, np.nan)
            from_high = np.full(1, np.nan)
            cart.neighbor_sendrecv(0, low_face, high_face, from_low,
                                   from_high, tag=4)
            return float(from_low[0]), float(from_high[0])

        res = run(fn, nprocs=n)
        for r, (lo_val, hi_val) in enumerate(res.results):
            lo, hi = (r - 1) % n, (r + 1) % n
            if periodic or r > 0:
                assert lo_val == 10.0 * lo + 1  # low neighbour's high face
            else:
                assert np.isnan(lo_val)
            if periodic or r < n - 1:
                assert hi_val == 10.0 * hi  # high neighbour's low face
            else:
                assert np.isnan(hi_val)

    def test_2d_grid_exchange_both_dims(self):
        def fn(comm):
            cart = cart_create(comm, [2, 2], periodic=[True, True])
            me = float(comm.rank)
            got = []
            for dim in range(2):
                from_low = np.zeros(1)
                from_high = np.zeros(1)
                cart.neighbor_sendrecv(dim, np.array([me]), np.array([me]),
                                       from_low, from_high, tag=dim)
                got.append((from_low[0], from_high[0]))
            return got

        res = run(fn, nprocs=4)
        # rank 0 at (0,0): dim-0 neighbours are rank 2 both ways (wrap),
        # dim-1 neighbours are rank 1 both ways.
        assert res.results[0] == [(2.0, 2.0), (1.0, 1.0)]
