"""Collective operation tests at several communicator sizes."""

import numpy as np
import pytest

from repro.core import Field, StructSpec
from repro.errors import RuntimeAbort
from repro.mpi import run

SIZES = [1, 2, 3, 4, 7, 8]


@pytest.mark.parametrize("n", SIZES)
class TestBarrier:
    def test_completes(self, n):
        def fn(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(run(fn, nprocs=n).results)

    def test_synchronizes_clocks(self, n):
        def fn(comm):
            if comm.rank == 0:
                comm.clock.advance(1.0)  # one slow rank
            comm.barrier()
            return comm.clock.now

        res = run(fn, nprocs=n)
        if n > 1:
            assert all(t >= 1.0 for t in res.results)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
class TestBcast:
    def test_numpy(self, n, root):
        root_ = n - 1 if root == "last" else 0

        def fn(comm):
            buf = (np.arange(16, dtype=np.int32) if comm.rank == root_
                   else np.zeros(16, dtype=np.int32))
            comm.bcast(buf, root=root_)
            return buf.tolist()

        res = run(fn, nprocs=n)
        assert all(r == list(range(16)) for r in res.results)


class TestBcastCustom:
    def test_custom_datatype_forwarded_through_tree(self):
        spec = StructSpec([Field("k", "<i4"),
                           Field("data", "<f8", shape="dynamic")])
        dt = spec.custom_datatype()

        class O:
            pass

        def fn(comm):
            o = O()
            if comm.rank == 0:
                o.k = 11
                o.data = np.arange(500, dtype=np.float64)
            comm.bcast(o, root=0, datatype=dt)
            return int(o.k), float(o.data.sum())

        res = run(fn, nprocs=5)
        expect = (11, float(np.arange(500).sum()))
        assert all(r == expect for r in res.results)


@pytest.mark.parametrize("n", SIZES)
class TestGatherScatter:
    def test_gather(self, n):
        def fn(comm):
            mine = np.full(4, comm.rank, dtype=np.int32)
            recv = np.zeros(4 * n, dtype=np.int32) if comm.rank == 0 else None
            out = comm.gather(mine, recv, root=0)
            return out.tolist() if out is not None else None

        res = run(fn, nprocs=n)
        assert res.results[0] == sum([[r] * 4 for r in range(n)], [])
        assert all(r is None for r in res.results[1:])

    def test_scatter(self, n):
        def fn(comm):
            send = (np.arange(3 * n, dtype=np.float64) if comm.rank == 0
                    else None)
            recv = np.zeros(3, dtype=np.float64)
            comm.scatter(send, recv, root=0)
            return recv.tolist()

        res = run(fn, nprocs=n)
        for r, got in enumerate(res.results):
            assert got == [3 * r, 3 * r + 1, 3 * r + 2]

    def test_allgather(self, n):
        def fn(comm):
            mine = np.full(2, comm.rank + 1, dtype=np.int64)
            recv = np.zeros(2 * n, dtype=np.int64)
            comm.allgather(mine, recv)
            return recv.tolist()

        res = run(fn, nprocs=n)
        expect = sum([[r + 1] * 2 for r in range(n)], [])
        assert all(r == expect for r in res.results)


@pytest.mark.parametrize("n", SIZES)
class TestReduce:
    @pytest.mark.parametrize("op,expect_fn", [
        ("sum", lambda n: n * (n - 1) / 2),
        ("max", lambda n: n - 1),
        ("min", lambda n: 0),
    ])
    def test_reduce_ops(self, n, op, expect_fn):
        def fn(comm):
            mine = np.full(3, float(comm.rank))
            out = np.zeros(3)
            res = comm.reduce(mine, out, op=op, root=0)
            return out.tolist() if res is not None else None

        res = run(fn, nprocs=n)
        assert res.results[0] == [expect_fn(n)] * 3

    def test_allreduce(self, n):
        def fn(comm):
            mine = np.full(2, float(comm.rank + 1))
            out = np.zeros(2)
            comm.allreduce(mine, out, op="sum")
            return out.tolist()

        res = run(fn, nprocs=n)
        expect = [n * (n + 1) / 2] * 2
        assert all(r == expect for r in res.results)

    def test_prod(self, n):
        def fn(comm):
            mine = np.full(1, 2.0)
            out = np.zeros(1)
            comm.allreduce(mine, out, op="prod")
            return out[0]

        res = run(fn, nprocs=n)
        assert all(r == 2.0 ** n for r in res.results)

    def test_unknown_op(self, n):
        def fn(comm):
            comm.allreduce(np.zeros(1), np.zeros(1), op="xor")

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=n, timeout=10)


@pytest.mark.parametrize("n", SIZES)
class TestAlltoall:
    def test_exchange(self, n):
        def fn(comm):
            send = np.arange(n, dtype=np.int64) + 100 * comm.rank
            recv = np.zeros(n, dtype=np.int64)
            comm.alltoall(send, recv, count=1)
            return recv.tolist()

        res = run(fn, nprocs=n)
        for r in range(n):
            assert res.results[r] == [100 * s + r for s in range(n)]


class TestCollectiveUserTrafficIsolation:
    def test_collective_does_not_steal_user_messages(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([42], dtype=np.int32), dest=1, tag=0)
                comm.barrier()
            else:
                comm.barrier()
                buf = np.zeros(1, dtype=np.int32)
                comm.recv(buf, source=0, tag=0)
                return int(buf[0])

        assert run(fn, nprocs=2).results[1] == 42
