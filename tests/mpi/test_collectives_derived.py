"""Collectives with derived (non-contiguous) datatypes."""

import numpy as np
import pytest

from repro.mpi import run
from repro.types import (STRUCT_SIMPLE, make_struct_simple,
                         struct_simple_datatype)


class TestGatherDerived:
    def test_gather_gapped_structs(self):
        """Each rank contributes 4 gapped structs; root gets them packed."""
        t = struct_simple_datatype()

        def fn(comm):
            mine = make_struct_simple(4)
            mine["a"] += 1000 * comm.rank
            recv = (np.zeros(4 * 20 * comm.size, dtype=np.uint8)
                    if comm.rank == 0 else None)
            out = comm.gather(mine, recv, root=0, datatype=t, count=4)
            if out is None:
                return None
            # Root sees the packed streams concatenated.
            rows = out.reshape(comm.size * 4, 20)
            return rows[:, :4].copy().view(np.int32).reshape(-1).tolist()

        res = run(fn, nprocs=3)
        a_values = res.results[0]
        assert a_values == [r * 1000 + i for r in range(3) for i in range(4)]

    def test_scatter_gapped_structs(self):
        t = struct_simple_datatype()

        def fn(comm):
            if comm.rank == 0:
                # Packed blocks, one per rank (20 B/element, 2 elements).
                src = make_struct_simple(2 * comm.size)
                from repro.core import pack
                send = pack(t, src, 2 * comm.size)
            else:
                send = None
            recv = np.zeros(2, dtype=STRUCT_SIMPLE)
            comm.scatter(send, recv, root=0, datatype=t, count=2)
            return recv["a"].tolist()

        res = run(fn, nprocs=4)
        for r, got in enumerate(res.results):
            assert got == [2 * r, 2 * r + 1]

    def test_allgather_gapped_structs(self):
        t = struct_simple_datatype()

        def fn(comm):
            mine = make_struct_simple(1)
            mine["d"] = float(comm.rank) + 0.5
            recv = np.zeros(20 * comm.size, dtype=np.uint8)
            comm.allgather(mine, recv, datatype=t, count=1)
            rows = recv.reshape(comm.size, 20)
            return rows[:, 12:20].copy().view(np.float64).reshape(-1).tolist()

        res = run(fn, nprocs=3)
        expect = [0.5, 1.5, 2.5]
        assert all(r == expect for r in res.results)

    def test_bcast_gapped_structs_in_place(self):
        t = struct_simple_datatype()

        def fn(comm):
            buf = (make_struct_simple(8) if comm.rank == 0
                   else np.zeros(8, dtype=STRUCT_SIMPLE))
            comm.bcast(buf, root=0, datatype=t, count=8)
            return (buf == make_struct_simple(8)).all()

        assert all(run(fn, nprocs=5).results)
