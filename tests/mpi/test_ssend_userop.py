"""Synchronous sends and user-defined reduction operators."""

import numpy as np
import pytest

from repro.mpi import run


class TestSsend:
    def test_ssend_roundtrip(self):
        def fn(comm):
            if comm.rank == 0:
                comm.ssend(np.arange(16, dtype=np.int32), dest=1, tag=1)
                return None
            buf = np.zeros(16, dtype=np.int32)
            comm.recv(buf, source=0, tag=1)
            return buf.tolist()

        assert run(fn, nprocs=2).results[1] == list(range(16))

    def test_issend_incomplete_until_receive(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.issend(np.zeros(8, dtype=np.uint8), dest=1, tag=2)
                incomplete = not req.test()   # small message, but sync mode
                comm.barrier()
                req.wait()
                return incomplete
            comm.barrier()
            comm.recv(np.zeros(8, dtype=np.uint8), source=0, tag=2)
            return None

        assert run(fn, nprocs=2).results[0] is True

    def test_plain_small_send_completes_immediately(self):
        """Contrast: eager MPI_Send buffers the message locally."""
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.zeros(8, dtype=np.uint8), dest=1, tag=2)
                done = req.test()
                comm.barrier()
                return done
            comm.barrier()
            comm.recv(np.zeros(8, dtype=np.uint8), source=0, tag=2)
            return None

        assert run(fn, nprocs=2).results[0] is True

    def test_ssend_deadlocks_without_receiver(self):
        from repro.errors import RuntimeAbort

        def fn(comm):
            if comm.rank == 0:
                comm.ssend(np.zeros(4, dtype=np.uint8), dest=1, tag=3)
            # rank 1 never receives

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=2, timeout=0.5)


class TestUserDefinedOp:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_callable_op(self, n):
        def absmax(a, b):
            return np.maximum(np.abs(a), np.abs(b))

        def fn(comm):
            mine = np.array([(-1.0) ** comm.rank * (comm.rank + 1), 0.5])
            out = np.zeros(2)
            comm.allreduce(mine, out, op=absmax)
            return out.tolist()

        res = run(fn, nprocs=n)
        assert all(r == [float(n), 0.5] for r in res.results)

    def test_reduce_callable_at_root_only(self):
        def fn(comm):
            mine = np.full(3, comm.rank + 1, dtype=np.float64)
            out = np.zeros(3)
            r = comm.reduce(mine, out, op=lambda a, b: a * b, root=0)
            return out.tolist() if r is not None else None

        res = run(fn, nprocs=4)
        assert res.results[0] == [24.0] * 3

    def test_bad_op_rejected(self):
        from repro.errors import RuntimeAbort

        def fn(comm):
            comm.allreduce(np.zeros(1), np.zeros(1), op="median")

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=2, timeout=10)
