"""MPI_Comm_split tests: rank remapping, traffic isolation, collectives."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, run


class TestSplit:
    def test_even_odd_groups(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.rank, sub.size

        res = run(fn, nprocs=6)
        for world_rank, (r, s) in enumerate(res.results):
            assert s == 3
            assert r == world_rank // 2

    def test_key_reverses_order(self):
        def fn(comm):
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        res = run(fn, nprocs=4)
        assert res.results == [3, 2, 1, 0]

    def test_undefined_color_returns_none(self):
        def fn(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            if comm.rank == 0:
                return sub is None
            return sub.size

        res = run(fn, nprocs=3)
        assert res.results[0] is True
        assert res.results[1] == res.results[2] == 2

    def test_p2p_within_group_uses_local_ranks(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            if sub.rank == 0:
                sub.send(np.array([comm.rank], dtype=np.int32), dest=1, tag=1)
                return None
            buf = np.zeros(1, dtype=np.int32)
            st = sub.recv(buf, source=0, tag=1)
            return int(buf[0]), st.source

        res = run(fn, nprocs=4)
        # world 2 is local 1 of the even group; its local-0 peer is world 0.
        assert res.results[2] == (0, 0)
        assert res.results[3] == (1, 0)

    def test_any_source_status_is_local(self):
        def fn(comm):
            sub = comm.split(color=0, key=comm.rank)
            if sub.rank == 2:
                sub.send(b"x", dest=0, tag=5)
                return None
            if sub.rank == 0:
                st = sub.recv(bytearray(1), source=ANY_SOURCE, tag=5)
                return st.source
            return None

        res = run(fn, nprocs=3)
        assert res.results[0] == 2

    def test_groups_are_traffic_isolated(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            # Both groups run the same local-rank pattern on the same tag.
            if sub.rank == 0:
                sub.send(np.array([comm.rank], dtype=np.int32), dest=1, tag=9)
                return None
            buf = np.zeros(1, dtype=np.int32)
            sub.recv(buf, source=0, tag=9)
            return int(buf[0])

        res = run(fn, nprocs=4)
        assert res.results[2] == 0  # even group got its own message
        assert res.results[3] == 1  # odd group got its own

    def test_collectives_on_subcommunicator(self):
        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            mine = np.full(2, float(comm.rank))
            out = np.zeros(2)
            sub.allreduce(mine, out, op="sum")
            sub.barrier()
            return out.tolist()

        res = run(fn, nprocs=6)
        assert res.results[0] == [0 + 2 + 4.0] * 2
        assert res.results[1] == [1 + 3 + 5.0] * 2

    def test_split_of_split(self):
        def fn(comm):
            half = comm.split(color=comm.rank // 2, key=comm.rank)
            solo = half.split(color=half.rank, key=0)
            return half.size, solo.size

        res = run(fn, nprocs=4)
        assert all(r == (2, 1) for r in res.results)

    def test_custom_datatype_over_split(self):
        from repro.core import Field, StructSpec
        spec = StructSpec([Field("v", "<f8", shape="dynamic")])

        def fn(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            dt = spec.custom_datatype()

            class O:
                pass

            if sub.rank == 0:
                o = O()
                o.v = np.full(1000, float(comm.rank))
                sub.send(o, dest=1, datatype=dt)
                return None
            o = O()
            sub.recv(o, source=0, datatype=dt)
            return float(o.v[0])

        res = run(fn, nprocs=4)
        assert res.results[2] == 0.0
        assert res.results[3] == 1.0


class TestWaitany:
    def test_waitany_returns_ready_index(self):
        from repro.mpi.requests import Request

        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send(np.array([7], dtype=np.int32), dest=1, tag=2)
                comm.send(np.array([8], dtype=np.int32), dest=1, tag=1)
                return None
            a = np.zeros(1, dtype=np.int32)
            b = np.zeros(1, dtype=np.int32)
            reqs = [comm.irecv(a, source=0, tag=1),
                    comm.irecv(b, source=0, tag=2)]
            comm.barrier()
            i, st = Request.waitany(reqs)
            j, st2 = Request.waitany(reqs)  # already-complete requests count
            return sorted([i, j]), int(a[0]), int(b[0])

        idx, a, b = run(fn, nprocs=2).results[1]
        assert idx == [0, 1]
        assert (a, b) == (8, 7)

    def test_waitsome(self):
        from repro.mpi.requests import Request

        def fn(comm):
            if comm.rank == 0:
                for t in range(3):
                    comm.send(np.zeros(2, np.uint8), dest=1, tag=t)
                return None
            reqs = [comm.irecv(np.zeros(2, np.uint8), source=0, tag=t)
                    for t in range(3)]
            done = []
            while len(done) < 3:
                done.extend(i for i, _ in Request.waitsome(
                    [r for r in reqs]))
            return len(done) >= 3

        assert run(fn, nprocs=2).results[1]


class TestSplitStatusLocalization:
    def test_probe_and_mprobe_report_local_source(self):
        def fn(comm):
            sub = comm.split(color=0, key=comm.rank)
            if sub.rank == 2:
                sub.send(b"a", dest=0, tag=6)
                sub.send(b"b", dest=0, tag=7)
                return None
            if sub.rank == 0:
                st = sub.probe(source=2, tag=6)
                sub.recv(bytearray(1), source=2, tag=6)
                handle, st2 = sub.mprobe(source=2, tag=7)
                handle.mrecv(bytearray(1))
                return st.source, st2.source
            return None

        res = run(fn, nprocs=3)
        assert res.results[0] == (2, 2)
