"""Idempotent MPI_Cancel: a second cancel must be a no-op.

The hazard the model checker's RPD703 ownership invariant guards against:
the first cancel returns the request's pool buffers, the pool hands them
to a new owner, and a stale second cancel would recycle them *again* —
stealing the buffer out from under the new owner.  These tests pin the
contract at the Request layer and end-to-end through the buffer pool.
"""

import numpy as np

from repro.mpi.requests import Request
from repro.mpi.runtime import run

from ..conftest import require_transport_capability


class _StubTransportReq:
    """Transport request whose cancel always wins."""

    def __init__(self):
        self.cancel_calls = 0

    def cancel(self):
        self.cancel_calls += 1
        return True


class TestRequestLayer:
    def test_second_cancel_is_noop(self):
        req = Request(_StubTransportReq())
        assert req.cancel() is True
        assert req.cancel() is False
        assert req._req.cancel_calls == 1  # transport asked exactly once

    def test_on_cancel_hook_runs_exactly_once(self):
        calls = []
        req = Request(_StubTransportReq(), on_cancel=lambda: calls.append(1))
        assert req.cancel() is True
        req.cancel()
        req.cancel()
        assert calls == [1]
        assert req._on_cancel is None  # consumed, unreachable forever

    def test_cancel_after_completion_is_noop(self):
        req = Request(_StubTransportReq())
        req._done = True
        assert req.cancel() is False
        assert req._req.cancel_calls == 0

    def test_status_reports_cancelled(self):
        req = Request(_StubTransportReq())
        req.cancel()
        st = req.wait()
        assert st.cancelled


class TestPoolOwnership:
    def test_double_cancel_does_not_steal_reacquired_buffer(self):
        """After cancel #1 recycles the staging chunk, a new send acquires
        it; cancel #2 must not hand the live buffer back to the pool."""
        require_transport_capability("cancel", "sanitizer")

        def fn(comm):
            if comm.rank == 1:
                buf = np.zeros(512, np.int32)
                comm.recv(buf, source=0, tag=2)
                return int(buf[0]), int(buf[-1])
            dead = comm.isend(np.full(512, 7, np.int32), dest=1, tag=1)
            assert dead.cancel()
            # The pool hands the recycled staging chunk to this send.
            live = comm.isend(np.full(512, 9, np.int32), dest=1, tag=2)
            assert dead.cancel() is False  # stale cancel: no second recycle
            live.wait()
            return "sent"

        res = run(fn, nprocs=2, sanitize=True, timeout=30)
        assert res.results[1] == (9, 9)  # payload intact, not stolen
        assert res.sanitizer_report.clean
        for mem in res.memory:
            assert mem["pool"]["outstanding"] == 0

    def test_double_cancel_recv_releases_bounce_buffer_once(self):
        require_transport_capability("sanitizer")

        def fn(comm):
            if comm.rank == 0:
                return None
            req = comm.irecv(np.zeros(64, np.uint8), source=0, tag=9)
            assert req.cancel()
            assert req.cancel() is False
            assert req.wait().cancelled
            return "ok"

        res = run(fn, nprocs=2, sanitize=True, timeout=30)
        assert res.results[1] == "ok"
        for mem in res.memory:
            assert mem["pool"]["outstanding"] == 0
