"""Probe / mprobe / mrecv tests (the machinery behind pickle-basic)."""

import numpy as np
import pytest

from repro.core import BYTE, Field, StructSpec
from repro.mpi import ANY_SOURCE, ANY_TAG, run


def pair(fn0, fn1, **kw):
    return run([fn0, fn1], nprocs=2, **kw).results


class TestProbe:
    def test_probe_reports_size_without_consuming(self):
        def s(comm):
            comm.send(b"0123456789", dest=1, tag=2)

        def r(comm):
            st = comm.probe(source=0, tag=2)
            buf = bytearray(st.nbytes)
            comm.recv(buf, source=0, tag=2)
            return st.nbytes, bytes(buf)

        n, data = pair(s, r)[1]
        assert n == 10 and data == b"0123456789"

    def test_iprobe_miss_returns_none(self):
        def r(comm):
            return comm.iprobe(source=0, tag=9)

        def s(comm):
            pass

        assert pair(s, r)[1] is None

    def test_probe_wildcards(self):
        def s(comm):
            comm.send(b"xyz", dest=1, tag=42)

        def r(comm):
            st = comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
            return st.source, st.tag, st.nbytes

        assert pair(s, r)[1] == (0, 42, 3)


class TestMprobe:
    def test_mprobe_mrecv(self):
        def s(comm):
            comm.send(b"payload!", dest=1, tag=5)

        def r(comm):
            handle, st = comm.mprobe(source=0, tag=5)
            buf = bytearray(st.nbytes)
            handle.mrecv(buf, datatype=BYTE, count=st.nbytes)
            return bytes(buf)

        assert pair(s, r)[1] == b"payload!"

    def test_mprobe_removes_from_matching(self):
        def s(comm):
            comm.send(b"first", dest=1, tag=5)
            comm.send(b"second", dest=1, tag=5)

        def r(comm):
            handle, st = comm.mprobe(source=0, tag=5)
            # A plain recv must now see the *second* message.
            buf2 = bytearray(6)
            comm.recv(buf2, source=0, tag=5)
            buf1 = bytearray(st.nbytes)
            handle.mrecv(buf1, datatype=BYTE, count=st.nbytes)
            return bytes(buf1), bytes(buf2)

        assert pair(s, r)[1] == (b"first", b"second")

    def test_mrecv_once_only(self):
        def s(comm):
            comm.send(b"x", dest=1, tag=5)

        def r(comm):
            handle, st = comm.mprobe(source=0, tag=5)
            buf = bytearray(1)
            handle.mrecv(buf, datatype=BYTE, count=1)
            try:
                handle.mrecv(buf, datatype=BYTE, count=1)
            except Exception:
                return "raised"
            return "no raise"

        assert pair(s, r)[1] == "raised"

    def test_improbe_nonblocking(self):
        def s(comm):
            comm.barrier()
            comm.send(b"late", dest=1, tag=7)

        def r(comm):
            miss = comm.improbe(source=0, tag=7)
            comm.barrier()
            st = comm.probe(source=0, tag=7)  # wait for arrival
            hit = comm.improbe(source=0, tag=7)
            assert hit is not None
            handle, st = hit
            buf = bytearray(st.nbytes)
            handle.mrecv(buf, datatype=BYTE, count=st.nbytes)
            return miss, bytes(buf)

        miss, data = pair(s, r)[1]
        assert miss is None and data == b"late"

    def test_mrecv_custom_datatype(self):
        spec = StructSpec([Field("n", "<i8"),
                           Field("data", "<f8", shape="dynamic")])
        dt = spec.custom_datatype()

        class O:
            pass

        def s(comm):
            o = O()
            o.n = 3
            o.data = np.linspace(0, 1, 300)
            comm.send(o, dest=1, tag=6, datatype=dt)

        def r(comm):
            handle, st = comm.mprobe(source=0, tag=6)
            o = O()
            handle.mrecv(o, datatype=dt)
            return o.n, o.data.shape[0]

        assert pair(s, r)[1] == (3, 300)

    def test_mrecv_derived_datatype(self):
        from repro.core import INT32, vector
        t = vector(3, 1, 2, INT32)

        def s(comm):
            comm.send(np.arange(6, dtype=np.int32), dest=1, tag=8,
                      datatype=t, count=1)

        def r(comm):
            handle, st = comm.mprobe(source=0, tag=8)
            buf = np.zeros(6, dtype=np.int32)
            handle.mrecv(buf, datatype=t, count=1)
            return buf.tolist()

        assert pair(s, r)[1] == [0, 0, 2, 0, 4, 0]
