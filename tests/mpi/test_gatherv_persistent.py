"""gatherv/scatterv and persistent-request tests."""

import numpy as np
import pytest

from repro.errors import RuntimeAbort
from repro.mpi import run
from repro.types import STRUCT_SIMPLE, make_struct_simple, struct_simple_datatype


class TestGatherv:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_variable_contributions(self, n):
        def fn(comm):
            counts = [r + 1 for r in range(comm.size)]
            mine = np.full(counts[comm.rank], comm.rank, dtype=np.int32)
            total = sum(counts)
            recv = np.zeros(total * 4, dtype=np.uint8) if comm.rank == 0 else None
            out = comm.gatherv(mine, recv, counts, root=0)
            if out is None:
                return None
            return out.view(np.int32).tolist()

        res = run(fn, nprocs=n)
        expect = [r for r in range(n) for _ in range(r + 1)]
        assert res.results[0] == expect

    def test_gatherv_derived_datatype(self):
        t = struct_simple_datatype()

        def fn(comm):
            counts = [2, 1, 3]
            mine = make_struct_simple(counts[comm.rank])
            mine["b"] += 100 * comm.rank
            recv = (np.zeros(sum(counts) * 20, dtype=np.uint8)
                    if comm.rank == 0 else None)
            out = comm.gatherv(mine, recv, counts, root=0, datatype=t,
                               count=counts[comm.rank])
            if out is None:
                return None
            rows = out.reshape(sum(counts), 20)
            return rows[:, 4:8].copy().view(np.int32).reshape(-1).tolist()

        res = run(fn, nprocs=3)
        # b = 2*idx + 1 + 100*rank, per-rank idx restarting at 0.
        assert res.results[0] == [1, 3, 101, 201, 203, 205]

    def test_wrong_counts_length(self):
        def fn(comm):
            mine = np.zeros(1, dtype=np.int32)
            recv = np.zeros(8, dtype=np.uint8) if comm.rank == 0 else None
            comm.gatherv(mine, recv, [1], root=0)  # size-2 comm, 1 count

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=2, timeout=10)


class TestScatterv:
    @pytest.mark.parametrize("n", [2, 4])
    def test_variable_blocks(self, n):
        def fn(comm):
            counts = [r + 1 for r in range(comm.size)]
            if comm.rank == 0:
                send = np.concatenate(
                    [np.full(c, r, dtype=np.int64)
                     for r, c in enumerate(counts)])
            else:
                send = None
            recv = np.zeros(counts[comm.rank], dtype=np.int64)
            comm.scatterv(send, counts, recv, root=0,
                          count=counts[comm.rank])
            return recv.tolist()

        res = run(fn, nprocs=n)
        for r, got in enumerate(res.results):
            assert got == [r] * (r + 1)

    def test_roundtrip_with_gatherv(self):
        def fn(comm):
            counts = [3, 1, 2][:comm.size]
            if comm.rank == 0:
                send = np.arange(sum(counts), dtype=np.float64)
            else:
                send = None
            recv = np.zeros(counts[comm.rank], dtype=np.float64)
            comm.scatterv(send, counts, recv, root=0, count=counts[comm.rank])
            back = (np.zeros(sum(counts) * 8, dtype=np.uint8)
                    if comm.rank == 0 else None)
            out = comm.gatherv(recv, back, counts, root=0)
            return out.view(np.float64).tolist() if out is not None else None

        res = run(fn, nprocs=3)
        assert res.results[0] == list(np.arange(6, dtype=np.float64))


class TestPersistentRequests:
    def test_restartable_halo_pattern(self):
        iters = 4

        def fn(comm):
            out = np.zeros(8, dtype=np.int32)
            inbox = np.zeros(8, dtype=np.int32)
            if comm.rank == 0:
                sreq = comm.send_init(out, dest=1, tag=3)
                history = []
                for it in range(iters):
                    out[:] = it
                    sreq.start().wait()
                    history.append(it)
                return history
            rreq = comm.recv_init(inbox, source=0, tag=3)
            got = []
            for _ in range(iters):
                rreq.start()
                rreq.wait()
                got.append(int(inbox[0]))
            return got

        res = run(fn, nprocs=2)
        assert res.results[1] == list(range(iters))

    def test_wait_before_start_rejected(self):
        def fn(comm):
            req = comm.recv_init(np.zeros(1, dtype=np.int32), source=0, tag=0)
            req.wait()

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=2, timeout=10)

    def test_restart_while_active_rejected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                return None
            req = comm.recv_init(np.zeros(1, dtype=np.int32), source=0, tag=1)
            req.start()
            try:
                req.start()  # still pending: no message will ever arrive
            finally:
                comm.barrier()

        with pytest.raises(RuntimeAbort):
            run(fn, nprocs=2, timeout=10)

    def test_test_reflects_state(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send(np.ones(1, dtype=np.int32), dest=1, tag=2)
                return None
            req = comm.recv_init(np.zeros(1, dtype=np.int32), source=0, tag=2)
            before = req.test()
            req.start()
            comm.barrier()
            req.wait()
            after = req.test()
            return before, after

        assert run(fn, nprocs=2).results[1] == (False, True)
