"""Every DDTBench workload under every transfer method, plus Table I."""

import numpy as np
import pytest

from repro.core import pack, pack_all, unpack, unpack_all
from repro.ddtbench import (WORKLOADS, all_workloads, format_table1,
                            make_workload, table1_rows)
from repro.mpi import run

NAMES = sorted(WORKLOADS)


@pytest.fixture(params=NAMES)
def workload(request):
    return make_workload(request.param)


class TestMetadata:
    def test_registry(self):
        assert len(WORKLOADS) == 12
        with pytest.raises(KeyError):
            make_workload("NOPE")

    def test_table1_columns(self):
        rows = table1_rows()
        assert len(rows) == 12
        for row in rows:
            assert set(row) >= {"Benchmark", "MPI Datatypes", "Loop Structure",
                                "Memory Regions"}

    def test_table1_matches_paper_flags(self):
        """Region practicability column of the paper's Table I."""
        flags = {r["Benchmark"]: bool(r["Memory Regions"]) for r in table1_rows()}
        assert not flags["LAMMPS"]
        assert flags["MILC"]
        assert flags["NAS_LU_x"] and flags["NAS_LU_y"]
        assert flags["NAS_MG_x"] and flags["NAS_MG_y"]
        assert not flags["WRF_x_vec"] and not flags["WRF_y_vec"]
        # The extended subset keeps the same logic: indexed scatters cannot
        # expose sensible regions, column blocks can.
        assert not flags["LAMMPS_full"] and not flags["SPECFEM3D_oc"]
        assert flags["FFT2"]

    def test_format_table1_renders(self):
        text = format_table1()
        for name in NAMES:
            assert name in text

    def test_region_structure_matches_paper_narrative(self):
        """Few/large regions where regions won; many/tiny where they lost."""
        counts = {w.name: w.layout.merged().run_count for w in all_workloads()}
        assert counts["MILC"] <= 16            # few large slabs
        assert counts["NAS_LU_x"] == 1         # contiguous
        assert counts["NAS_MG_y"] <= 64        # one row per plane
        assert counts["NAS_LU_y"] > 500        # many 40-byte pencils
        assert counts["NAS_MG_x"] > 500        # many single elements


class TestMethodsAgree:
    def test_manual_equals_layout(self, workload):
        buf = workload.make_send_buffer()
        assert bytes(workload.manual_pack(buf).view(np.uint8)) == \
            bytes(workload.layout.gather(buf))

    def test_derived_equals_manual(self, workload):
        buf = workload.make_send_buffer()
        dt = workload.derived_datatype()
        assert bytes(pack(dt, buf, 1)) == \
            bytes(workload.manual_pack(buf).view(np.uint8))

    def test_custom_pack_equals_manual(self, workload):
        buf = workload.make_send_buffer()
        packed, regs = pack_all(workload.custom_pack_datatype(), buf, 1)
        assert packed == bytes(workload.manual_pack(buf).view(np.uint8))
        assert regs == []

    def test_coroutine_equals_manual(self, workload):
        buf = workload.make_send_buffer()
        packed, _ = pack_all(workload.custom_coroutine_datatype(), buf, 1,
                             frag_size=997)
        assert packed == bytes(workload.manual_pack(buf).view(np.uint8))


class TestRoundtrips:
    def test_manual(self, workload):
        buf = workload.make_send_buffer()
        rb = workload.make_recv_buffer()
        workload.manual_unpack(workload.manual_pack(buf), rb)
        assert workload.exchanged_equal(buf, rb)

    def test_derived(self, workload):
        buf = workload.make_send_buffer()
        dt = workload.derived_datatype()
        rb = workload.make_recv_buffer()
        unpack(dt, rb, 1, pack(dt, buf, 1))
        assert workload.exchanged_equal(buf, rb)

    def test_custom_pack(self, workload):
        buf = workload.make_send_buffer()
        dt = workload.custom_pack_datatype()
        packed, _ = pack_all(dt, buf, 1)
        rb = workload.make_recv_buffer()
        unpack_all(dt, rb, 1, packed)
        assert workload.exchanged_equal(buf, rb)

    def test_custom_coroutine(self, workload):
        buf = workload.make_send_buffer()
        dt = workload.custom_coroutine_datatype()
        packed, _ = pack_all(dt, buf, 1, frag_size=1024)
        rb = workload.make_recv_buffer()
        unpack_all(dt, rb, 1, packed, frag_size=1024)
        assert workload.exchanged_equal(buf, rb)

    def test_custom_region(self, workload):
        if not workload.meta.memory_regions:
            with pytest.raises(ValueError):
                workload.custom_region_datatype()
            return
        buf = workload.make_send_buffer()
        dt = workload.custom_region_datatype()
        packed, regs = pack_all(dt, buf, 1)
        assert packed == b""
        rb = workload.make_recv_buffer()
        unpack_all(dt, rb, 1, b"", [bytes(r.read_bytes()) for r in regs])
        assert workload.exchanged_equal(buf, rb)


class TestOverMPI:
    @pytest.mark.parametrize("name", ["LAMMPS", "MILC", "NAS_LU_y"])
    @pytest.mark.parametrize("method", ["derived", "custom-pack",
                                        "custom-region"])
    def test_pingpong(self, name, method):
        w = make_workload(name)
        if method == "custom-region" and not w.meta.memory_regions:
            pytest.skip("regions impracticable")

        def fn(comm):
            ww = make_workload(name)
            if method == "derived":
                dt = ww.derived_datatype()
            elif method == "custom-pack":
                dt = ww.custom_pack_datatype()
            else:
                dt = ww.custom_region_datatype()
            if comm.rank == 0:
                buf = ww.make_send_buffer()
                comm.send(buf, dest=1, datatype=dt, count=1)
                return ww.layout.gather(buf)
            rb = ww.make_recv_buffer()
            comm.recv(rb, source=0, datatype=dt, count=1)
            return ww.layout.gather(rb)

        res = run(fn, nprocs=2)
        assert np.array_equal(res.results[0], res.results[1])
