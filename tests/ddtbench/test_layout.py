"""RunLayout machinery tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ddtbench.base import RunLayout


class TestValidation:
    def test_basic(self):
        lay = RunLayout([(0, 4), (8, 4)], 16)
        assert lay.total_bytes == 8
        assert lay.run_count == 2

    def test_empty(self):
        lay = RunLayout([], 16)
        assert lay.total_bytes == 0
        assert lay.run_count == 0

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            RunLayout([(0, 0)], 16)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            RunLayout([(12, 8)], 16)
        with pytest.raises(ValueError):
            RunLayout([(-1, 4)], 16)


class TestMerged:
    def test_adjacent_in_order_merged(self):
        lay = RunLayout([(0, 4), (4, 4), (12, 4)], 16)
        m = lay.merged()
        assert m.runs.tolist() == [[0, 8], [12, 4]]

    def test_non_adjacent_kept(self):
        lay = RunLayout([(0, 4), (8, 4)], 16)
        assert lay.merged().run_count == 2

    def test_out_of_order_not_merged(self):
        lay = RunLayout([(4, 4), (0, 4)], 16)
        assert lay.merged().run_count == 2

    def test_merge_preserves_bytes(self):
        lay = RunLayout([(0, 2), (2, 2), (4, 2), (10, 2)], 16)
        assert lay.merged().total_bytes == lay.total_bytes


class TestGatherScatter:
    def test_gather(self):
        buf = np.arange(16, dtype=np.uint8)
        lay = RunLayout([(2, 3), (10, 2)], 16)
        assert lay.gather(buf).tolist() == [2, 3, 4, 10, 11]

    def test_gather_respects_run_order(self):
        buf = np.arange(16, dtype=np.uint8)
        lay = RunLayout([(10, 2), (2, 3)], 16)
        assert lay.gather(buf).tolist() == [10, 11, 2, 3, 4]

    def test_scatter_inverse(self):
        buf = np.arange(32, dtype=np.uint8)
        lay = RunLayout([(1, 5), (10, 1), (20, 7)], 32)
        packed = lay.gather(buf)
        out = np.zeros(32, dtype=np.uint8)
        lay.scatter(packed, out)
        assert np.array_equal(lay.gather(out), packed)
        # untouched bytes stay zero
        mask = np.zeros(32, dtype=bool)
        for off, ln in lay.runs:
            mask[off:off + ln] = True
        assert (out[~mask] == 0).all()

    def test_gather_into_provided(self):
        buf = np.arange(16, dtype=np.uint8)
        lay = RunLayout([(0, 4)], 16)
        out = np.zeros(4, dtype=np.uint8)
        lay.gather(buf, out=out)
        assert out.tolist() == [0, 1, 2, 3]

    def test_empty_layout(self):
        lay = RunLayout([], 8)
        assert lay.gather(np.zeros(8, np.uint8)).shape == (0,)
        lay.scatter(np.zeros(0, np.uint8), np.zeros(8, np.uint8))


@st.composite
def layouts(draw):
    nbytes = draw(st.integers(16, 512))
    nruns = draw(st.integers(0, 20))
    runs = []
    for _ in range(nruns):
        ln = draw(st.integers(1, 16))
        off = draw(st.integers(0, nbytes - ln))
        runs.append((off, ln))
    return RunLayout(runs, nbytes)


class TestProperties:
    @given(layouts())
    def test_gather_scatter_roundtrip(self, lay):
        rng = np.random.default_rng(7)
        buf = rng.integers(0, 256, size=lay.buffer_bytes, dtype=np.uint8)
        packed = lay.gather(buf)
        assert packed.shape[0] == lay.total_bytes
        out = np.zeros_like(buf)
        lay.scatter(packed, out)
        assert np.array_equal(lay.gather(out), packed)

    @given(layouts())
    def test_merged_gathers_identically(self, lay):
        rng = np.random.default_rng(8)
        buf = rng.integers(0, 256, size=lay.buffer_bytes, dtype=np.uint8)
        assert np.array_equal(lay.gather(buf), lay.merged().gather(buf))

    @given(layouts())
    def test_merged_never_more_runs(self, lay):
        assert lay.merged().run_count <= lay.run_count
