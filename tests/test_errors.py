"""Error hierarchy and failure-injection tests.

The paper stresses that callback error propagation is "crucial for
serialization libraries that can fail in the case of invalid data"; these
tests inject failures at every layer and check they surface cleanly instead
of hanging or corrupting peers.
"""

import numpy as np
import pytest

from repro import errors
from repro.core import Region, type_create_custom
from repro.errors import (CallbackError, MPIError, RuntimeAbort,
                          TruncationError, error_name)
from repro.mpi import run


def _all_error_classes():
    """Every (name, code) the module defines, MPI_SUCCESS included."""
    return sorted((n, v) for n, v in vars(errors).items()
                  if n == "MPI_SUCCESS" or n.startswith("MPI_ERR_"))


class TestHierarchy:
    def test_error_names(self):
        assert error_name(errors.MPI_SUCCESS) == "MPI_SUCCESS"
        assert error_name(errors.MPI_ERR_TRUNCATE) == "MPI_ERR_TRUNCATE"
        assert "UNKNOWN" in error_name(424242)

    def test_every_class_round_trips(self):
        classes = _all_error_classes()
        assert len(classes) >= 21  # MPI_SUCCESS + the MPI_ERR_* table
        for name, code in classes:
            assert error_name(code) == name
            assert errors.error_code(name) == code
            s = errors.error_string(code)
            assert s.startswith(name + ": ") and len(s) > len(name) + 2

    def test_error_string_unknown_code(self):
        assert errors.error_string(424242) == \
            "MPI_ERR_UNKNOWN(424242): unrecognized error class"
        with pytest.raises(KeyError):
            errors.error_code("MPI_ERR_NOPE")

    def test_diagnostic_error_carries_findings(self):
        from repro.analyze import Diagnostic
        d = Diagnostic("RPD101", "blocks overlap")
        e = errors.DiagnosticError("bad type", code=errors.MPI_ERR_TYPE,
                                   diagnostics=[d])
        assert e.code == errors.MPI_ERR_TYPE
        assert e.diagnostics[0].code == "RPD101"

    def test_mpierror_carries_code(self):
        e = MPIError(errors.MPI_ERR_TYPE, "bad type")
        assert e.code == errors.MPI_ERR_TYPE
        assert "MPI_ERR_TYPE" in str(e) and "bad type" in str(e)

    def test_truncation_is_mpierror(self):
        e = TruncationError("too big")
        assert isinstance(e, MPIError)
        assert e.code == errors.MPI_ERR_TRUNCATE

    def test_callback_error_preserves_cause(self):
        cause = ValueError("corrupt stream")
        e = CallbackError("pack failed", cause=cause)
        assert e.__cause__ is cause

    def test_runtime_abort_message(self):
        e = RuntimeAbort({1: ValueError("x"), 3: KeyError("y")})
        assert "rank 1" in str(e) and "rank 3" in str(e)
        assert set(e.failures) == {1, 3}


class TestUlfmClasses:
    """The fault-tolerance error classes (ULFM-style) round-trip too."""

    def test_codes_in_introspected_table(self):
        for name in ("MPI_ERR_PROC_FAILED", "MPI_ERR_REVOKED",
                     "MPI_ERR_PROC_FAILED_PENDING"):
            code = getattr(errors, name)
            assert error_name(code) == name
            assert errors.error_code(name) == code
            assert errors.error_string(code).startswith(name + ": ")

    def test_proc_failed_carries_sorted_ranks(self):
        e = errors.ProcFailedError("peers died", failed_ranks={3, 1})
        assert isinstance(e, MPIError)
        assert e.code == errors.MPI_ERR_PROC_FAILED
        assert e.failed_ranks == (1, 3)

    def test_pending_and_revoked_codes(self):
        assert errors.ProcFailedPendingError("x").code == \
            errors.MPI_ERR_PROC_FAILED_PENDING
        assert errors.RevokedError("x").code == errors.MPI_ERR_REVOKED

    def test_rank_crash_is_experiment_not_mpi_error(self):
        e = errors.RankCrashError(2, 1.5e-3)
        assert not isinstance(e, MPIError)
        assert e.rank == 2 and e.vtime == pytest.approx(1.5e-3)


def failing_type(where: str):
    """A custom type whose ``where`` callback raises."""

    def boom(*a):
        raise ValueError(f"injected failure in {where}")

    def ok_query(state, buf, count):
        return 8

    def ok_pack(state, buf, count, offset, dst):
        n = min(dst.shape[0], 8 - offset)
        dst[:n] = 7
        return int(n)

    def ok_unpack(state, buf, count, offset, src):
        pass

    kw = dict(query_fn=ok_query, pack_fn=ok_pack, unpack_fn=ok_unpack)
    if where == "query":
        kw["query_fn"] = boom
    elif where == "pack":
        kw["pack_fn"] = boom
    elif where == "unpack":
        kw["unpack_fn"] = boom
    elif where == "state":
        kw["state_fn"] = boom
    elif where == "regions":
        kw["region_count_fn"] = lambda s, b, c: 1
        kw["region_fn"] = boom
    return type_create_custom(**kw)


class TestSendSideInjection:
    @pytest.mark.parametrize("where", ["query", "pack", "state", "regions"])
    def test_send_callback_failure_aborts_cleanly(self, where):
        def fn(comm):
            if comm.rank == 0:
                comm.send(object(), dest=1, datatype=failing_type(where))
            else:
                # The receive can never be satisfied; fail fast via iprobe.
                pass

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=2, timeout=10)
        assert isinstance(ei.value.failures[0], CallbackError)
        assert where in str(ei.value.failures[0].__cause__)


class TestRecvSideInjection:
    def test_unpack_failure_propagates_and_releases_sender(self):
        def fn(comm):
            if comm.rank == 0:
                # Large enough to matter; iov is rendezvous-like so the
                # sender blocks until the receiver acts.
                comm.send(object(), dest=1, datatype=failing_type(None))
                return "sent"
            comm.recv(object(), source=0, datatype=failing_type("unpack"))

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=2, timeout=15)
        # Rank 1 failed with the injected error; rank 0 either finished or
        # was released with a transport error — it must NOT be deadlocked.
        assert 1 in ei.value.failures
        assert isinstance(ei.value.failures[1], CallbackError)

    def test_region_length_mismatch_detected(self):
        def make(nbytes):
            payload = np.zeros(nbytes, np.uint8)
            return type_create_custom(
                query_fn=lambda s, b, c: 0,
                region_count_fn=lambda s, b, c: 1,
                region_fn=lambda s, b, c, n: [Region(payload)])

        def fn(comm):
            if comm.rank == 0:
                comm.send(object(), dest=1, datatype=make(100))
            else:
                comm.recv(object(), source=0, datatype=make(50))

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=2, timeout=15)
        assert isinstance(ei.value.failures[1], MPIError)

    def test_truncation_over_mpi(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, np.uint8), dest=1)
            else:
                comm.recv(np.zeros(10, np.uint8), source=0, count=10)

        with pytest.raises(RuntimeAbort) as ei:
            run(fn, nprocs=2, timeout=10)
        assert isinstance(ei.value.failures[1], TruncationError)

    def test_failure_does_not_poison_other_traffic(self):
        """A failed transfer on one tag must not corrupt a later one."""
        def fn(comm):
            if comm.rank == 0:
                try:
                    comm.send(object(), dest=1, datatype=failing_type("pack"),
                              tag=1)
                except CallbackError:
                    pass
                comm.send(np.full(16, 9, np.uint8), dest=1, tag=2)
                return None
            buf = np.zeros(16, np.uint8)
            comm.recv(buf, source=0, tag=2)
            return int(buf.sum())

        assert run(fn, nprocs=2).results[1] == 144
