"""Figure 5: struct-simple latency.

The 4-byte C-layout gap pushes the derived-datatype engine onto its
per-block slow path: custom and manual-pack are far faster at size.
"""

import pytest

from conftest import save_series
from repro.bench import (StructCustomCase, StructDerivedCase, StructPackedCase,
                         fig5_struct_simple_latency, run_once)


def test_fig5_regenerate(benchmark):
    fs = benchmark.pedantic(fig5_struct_simple_latency,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("method,case", [
    ("custom", StructCustomCase),
    ("manual-pack", StructPackedCase),
    ("rsmpi", StructDerivedCase),
])
def test_fig5_transfer(benchmark, method, case):
    benchmark(lambda: run_once(lambda s: case(s, "struct-simple"), 1 << 15))
