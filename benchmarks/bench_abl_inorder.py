"""Ablation: the ``inorder`` flag under out-of-order fragment delivery.

With ``ooo_fragments`` enabled the engine reverses fragment delivery for
types that allow it (inorder=False).  Offset-addressed unpack callbacks must
reconstruct identical data either way; inorder=True types keep strictly
increasing offsets.  The bench verifies correctness both ways and times the
paths.
"""

import numpy as np
import pytest

from conftest import save_text
from repro.bench import WorkloadCase, run_once
from repro.ddtbench import make_workload
from repro.mpi import EngineConfig, run
from repro.ucp.netsim import DEFAULT_PARAMS

PARAMS = DEFAULT_PARAMS.with_overrides(frag_size=2048)


def transfer(ooo: bool):
    def fn(comm):
        w = make_workload("MILC")
        dt = w.custom_pack_datatype()  # offset-addressed: inorder=False
        if comm.rank == 0:
            buf = w.make_send_buffer()
            comm.send(buf, dest=1, datatype=dt, count=1)
            return bytes(w.layout.gather(buf))
        rb = w.make_recv_buffer()
        comm.recv(rb, source=0, datatype=dt, count=1)
        return bytes(w.layout.gather(rb))

    res = run(fn, nprocs=2, params=PARAMS,
              engine_config=EngineConfig(ooo_fragments=ooo))
    return res.results


def sweep():
    in_order = transfer(False)
    out_of_order = transfer(True)
    ok = (in_order[0] == in_order[1] == out_of_order[0] == out_of_order[1])
    w = make_workload("MILC")
    t_in = run_once(lambda s: WorkloadCase(make_workload("MILC"),
                                           "custom-pack"),
                    w.packed_bytes, params=PARAMS)
    t_ooo = run_once(lambda s: WorkloadCase(make_workload("MILC"),
                                            "custom-pack"),
                     w.packed_bytes, params=PARAMS,
                     engine_config=EngineConfig(ooo_fragments=True))
    return "\n".join([
        f"data identical under out-of-order delivery: {ok}",
        f"in-order latency:     {t_in.latency_us:.2f} us",
        f"out-of-order latency: {t_ooo.latency_us:.2f} us",
    ])


def test_abl_inorder(benchmark):
    text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert "identical under out-of-order delivery: True" in text
    save_text("abl_inorder", text)
