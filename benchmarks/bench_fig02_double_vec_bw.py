"""Figure 2: double-vector bandwidth (sub-vector 1024 B).

Custom (regions) out-bandwidths manual packing at large sizes and
approaches the raw-bytes baseline.
"""

import pytest

from conftest import save_series
from repro.bench import (DoubleVecCustomCase, DoubleVecPackedCase,
                         fig2_double_vec_bandwidth, run_once)


def test_fig2_regenerate(benchmark):
    fs = benchmark.pedantic(fig2_double_vec_bandwidth,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("size", [1 << 14, 1 << 18])
def test_fig2_custom_transfer(benchmark, size):
    benchmark(lambda: run_once(lambda s: DoubleVecCustomCase(s, 1024), size))


@pytest.mark.parametrize("size", [1 << 14, 1 << 18])
def test_fig2_manual_pack_transfer(benchmark, size):
    benchmark(lambda: run_once(lambda s: DoubleVecPackedCase(s, 1024), size))
