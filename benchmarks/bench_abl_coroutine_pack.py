"""Ablation: coroutine (generator) partial packing vs full packing.

The paper prototyped C++ coroutines for suspendable loop-nest packing
(Listing 9) but had to fall back to full packing because Clang would not
vectorize inside coroutines.  Python generators work, so this bench compares
the two strategies on every DDTBench workload — in virtual time they charge
identically; in *wall* time the generator pays real suspension overhead,
which the pytest-benchmark cases below measure.
"""

import pytest

from conftest import save_text
from repro.bench import WorkloadCase, run_once
from repro.ddtbench import WORKLOADS, make_workload


def sweep():
    rows = ["workload | full-pack_us | coroutine_us"]
    for name in WORKLOADS:
        w = make_workload(name)
        full = run_once(lambda s: WorkloadCase(make_workload(name),
                                               "custom-pack"), w.packed_bytes)
        coro = run_once(lambda s: WorkloadCase(make_workload(name),
                                               "custom-coro"), w.packed_bytes)
        rows.append(f"{name:10s} | {full.latency_us:12.2f} | {coro.latency_us:12.2f}")
    return "\n".join(rows)


def test_abl_coroutine_pack(benchmark):
    text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text("abl_coroutine_pack", text)


@pytest.mark.parametrize("method", ["custom-pack", "custom-coro"])
def test_abl_coroutine_wall_time(benchmark, method):
    """Real wall-clock of the two pack strategies (NAS_LU_y loop nest)."""
    w = make_workload("NAS_LU_y")
    benchmark(lambda: run_once(
        lambda s: WorkloadCase(make_workload("NAS_LU_y"), method),
        w.packed_bytes))
