"""Figure 8: Python pingpong with single NumPy arrays.

roofline (raw buffers) vs pickle-basic vs pickle-oob vs pickle-oob-cdt.
Out-of-band methods win from 2^18 up; none reaches the roofline (receive
allocations).
"""

import pytest

from conftest import save_series
from repro.bench import PickleCase, RawBytesCase, fig8_pickle_single_array, run_once
from repro.serial import (BasicPickle, OobCdtPickle, OobPickle,
                          make_single_array)


def test_fig8_regenerate(benchmark):
    fs = benchmark.pedantic(fig8_pickle_single_array,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("strategy", [BasicPickle, OobPickle, OobCdtPickle])
def test_fig8_strategy_transfer(benchmark, strategy):
    benchmark(lambda: run_once(
        lambda s: PickleCase(s, strategy(), lambda n: make_single_array(n)),
        1 << 19))


def test_fig8_roofline_transfer(benchmark):
    benchmark(lambda: run_once(RawBytesCase, 1 << 19))
