"""Figure 9: Python pingpong with a complex object of 128-KiB arrays.

The out-of-band strategies win at the largest sizes; the custom-datatype
variant (one MPI message) beats one-message-per-buffer.
"""

import pytest

from conftest import save_series
from repro.bench import PickleCase, fig9_pickle_complex_object, run_once
from repro.serial import (BasicPickle, OobCdtPickle, OobPickle,
                          make_complex_object)


def test_fig9_regenerate(benchmark):
    fs = benchmark.pedantic(fig9_pickle_complex_object,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("strategy", [BasicPickle, OobPickle, OobCdtPickle])
def test_fig9_strategy_transfer(benchmark, strategy):
    benchmark(lambda: run_once(
        lambda s: PickleCase(s, strategy(), lambda n: make_complex_object(n)),
        1 << 20))
