"""Ablation: fragment size of the custom pack pipeline.

The pack callback is invoked once per fragment, so tiny fragments pay
callback overhead per message while huge fragments lose nothing in this
serial simulator (a pipelining implementation would trade off differently).
Sweeps the ``frag_size`` transport parameter against a pack-heavy workload.
"""

import pytest

from conftest import save_text
from repro.bench import WorkloadCase, run_once
from repro.ddtbench import make_workload
from repro.ucp.netsim import DEFAULT_PARAMS

FRAG_SIZES = [512, 2048, 8192, 32768, 131072]


def sweep():
    w = make_workload("MILC")
    rows = ["frag_size | latency_us"]
    for frag in FRAG_SIZES:
        params = DEFAULT_PARAMS.with_overrides(frag_size=frag)
        pt = run_once(lambda s: WorkloadCase(make_workload("MILC"),
                                             "custom-pack"),
                      w.packed_bytes, params=params)
        rows.append(f"{frag:9d} | {pt.latency_us:10.2f}")
    return "\n".join(rows)


def test_abl_fragment_size(benchmark):
    text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text("abl_fragment_size", text)


@pytest.mark.parametrize("frag", [512, 8192, 131072])
def test_abl_fragment_transfer(benchmark, frag):
    w = make_workload("MILC")
    params = DEFAULT_PARAMS.with_overrides(frag_size=frag)
    benchmark(lambda: run_once(
        lambda s: WorkloadCase(make_workload("MILC"), "custom-pack"),
        w.packed_bytes, params=params))
