"""Figure 4: struct-vector bandwidth (sizes are multiples of the ~8 KiB
packed element)."""

import pytest

from conftest import save_series
from repro.bench import (StructCustomCase, StructDerivedCase,
                         fig4_struct_vec_bandwidth, run_once)


def test_fig4_regenerate(benchmark):
    fs = benchmark.pedantic(fig4_struct_vec_bandwidth,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("size", [1 << 15, 1 << 19])
def test_fig4_custom_transfer(benchmark, size):
    benchmark(lambda: run_once(lambda s: StructCustomCase(s, "struct-vec"), size))


@pytest.mark.parametrize("size", [1 << 15, 1 << 19])
def test_fig4_derived_transfer(benchmark, size):
    benchmark(lambda: run_once(lambda s: StructDerivedCase(s, "struct-vec"), size))
