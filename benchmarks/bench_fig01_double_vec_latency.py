"""Figure 1: double-vector latency while varying the sub-vector size.

Paper claims regenerated here: the bytes baseline is lowest; custom improves
with larger sub-vectors from ~2^9; manual-pack has the highest latency at
large sizes.
"""

import pytest

from conftest import save_series
from repro.bench import (DoubleVecCustomCase, DoubleVecPackedCase,
                         RawBytesCase, fig1_double_vec_latency, run_once)


def test_fig1_regenerate(benchmark):
    fs = benchmark.pedantic(fig1_double_vec_latency,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("subvec", [64, 1024, 4096])
def test_fig1_custom_transfer(benchmark, subvec):
    benchmark(lambda: run_once(lambda s: DoubleVecCustomCase(s, subvec), 65536))


def test_fig1_manual_pack_transfer(benchmark):
    benchmark(lambda: run_once(lambda s: DoubleVecPackedCase(s, 1024), 65536))


def test_fig1_bytes_baseline_transfer(benchmark):
    benchmark(lambda: run_once(RawBytesCase, 65536))
