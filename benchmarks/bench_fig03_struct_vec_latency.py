"""Figure 3: struct-vector latency.

Custom starts above the derived-datatype baseline at small element counts
and converges/beats it at large sizes (the paper's crossover was ~2^18; see
EXPERIMENTS.md for the divergence note).
"""

import pytest

from conftest import save_series
from repro.bench import (StructCustomCase, StructDerivedCase, StructPackedCase,
                         fig3_struct_vec_latency, run_once)


def test_fig3_regenerate(benchmark):
    fs = benchmark.pedantic(fig3_struct_vec_latency,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("method,case", [
    ("custom", StructCustomCase),
    ("manual-pack", StructPackedCase),
    ("rsmpi", StructDerivedCase),
])
def test_fig3_transfer(benchmark, method, case):
    benchmark(lambda: run_once(lambda s: case(s, "struct-vec"), 1 << 16))
