"""Ablation: process placement (intra- vs inter-node transfers).

The paper's testbed has exactly two nodes; this ablation generalizes the
simulator to multi-rank nodes and shows how the custom-datatype advantage
shifts: intra-node (shared-memory) transfers have such low fixed costs that
the scatter/gather path's base overhead matters more, while inter-node
transfers amortize it.
"""

import pytest

from conftest import save_text
from repro.bench import DoubleVecCustomCase, DoubleVecPackedCase, run_once
from repro.mpi import run
from repro.ucp.netsim import DEFAULT_PARAMS

PARAMS = DEFAULT_PARAMS.with_overrides(ranks_per_node=2)
SIZE = 256 * 1024


def _pair_time(case_factory, src, dst):
    import numpy as np

    def fn(comm):
        case = case_factory(SIZE)
        case.setup(comm)
        if comm.rank == src:
            case.send(comm, dst, 0)
            case.recv(comm, dst, 1)
            return comm.clock.now
        if comm.rank == dst:
            case.recv(comm, src, 0)
            case.send(comm, src, 1)
            return comm.clock.now
        return None

    res = run(fn, nprocs=4, params=PARAMS)
    return res.results[src] / 2


def sweep():
    rows = ["method | intra-node_us | inter-node_us"]
    for name, factory in [("custom", lambda s: DoubleVecCustomCase(s, 1024)),
                          ("manual-pack", lambda s: DoubleVecPackedCase(s, 1024))]:
        intra = _pair_time(factory, 0, 1) * 1e6
        inter = _pair_time(factory, 0, 2) * 1e6
        rows.append(f"{name:11s} | {intra:13.2f} | {inter:13.2f}")
    return "\n".join(rows)


def test_abl_placement(benchmark):
    text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text("abl_placement", text)
