"""Figure 7: struct-simple bandwidth.

manual-pack dips right after the eager limit (its packed stream switches to
rendezvous); custom rides the iovec path and is smooth across the switch.
"""

import pytest

from conftest import save_series
from repro.bench import (StructCustomCase, StructPackedCase,
                         fig7_struct_simple_bandwidth, run_once)


def test_fig7_regenerate(benchmark):
    fs = benchmark.pedantic(fig7_struct_simple_bandwidth,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("size", [1 << 15, 1 << 16])
def test_fig7_manual_pack_across_the_dip(benchmark, size):
    benchmark(lambda: run_once(lambda s: StructPackedCase(s, "struct-simple"),
                               size))


@pytest.mark.parametrize("size", [1 << 15, 1 << 16])
def test_fig7_custom_across_the_dip(benchmark, size):
    benchmark(lambda: run_once(lambda s: StructCustomCase(s, "struct-simple"),
                               size))
