"""Figure 10: DDTBench bandwidths per workload and method.

Regions win for MILC / NAS_LU_x / NAS_MG_y (few large runs) and lose for
NAS_LU_y / NAS_MG_x (many tiny runs); custom packing is competitive for
LAMMPS.
"""

import pytest

from conftest import save_series
from repro.bench import WorkloadCase, fig10_ddtbench, run_once
from repro.ddtbench import make_workload


def test_fig10_regenerate(benchmark):
    fs = benchmark.pedantic(fig10_ddtbench, rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("name", ["LAMMPS", "MILC", "NAS_LU_y", "WRF_y_vec"])
@pytest.mark.parametrize("method", ["ompi-datatype", "manual-pack",
                                    "custom-pack"])
def test_fig10_transfer(benchmark, name, method):
    w = make_workload(name)
    benchmark(lambda: run_once(lambda s: WorkloadCase(w, method),
                               w.packed_bytes))


@pytest.mark.parametrize("name", ["MILC", "NAS_LU_x", "NAS_MG_x"])
def test_fig10_region_transfer(benchmark, name):
    w = make_workload(name)
    benchmark(lambda: run_once(lambda s: WorkloadCase(w, "custom-region"),
                               w.packed_bytes))
