"""Table I: DDTBench benchmark characteristics, regenerated from the
workload registry (plus measured region statistics the simulator can
compute exactly)."""

from conftest import save_text
from repro.ddtbench import format_table1


def test_table1_regenerate(benchmark):
    text = benchmark.pedantic(format_table1, rounds=1, iterations=1)
    save_text("table1", text)
