"""Ablation: eager->rendezvous threshold placement.

The Fig. 7 manual-pack dip must track the configured eager limit; with an
eager-only transport (threshold -> infinity) the dip disappears entirely —
confirming the paper's attribution of the dip to the protocol switch.
"""

import pytest

from conftest import save_text
from repro.bench import StructPackedCase, pow2_sizes, sweep_pingpong
from repro.bench.calibration import no_rendezvous_params
from repro.ucp.netsim import DEFAULT_PARAMS

LIMITS = [8 * 1024, 32 * 1024, 128 * 1024]


def sweep():
    sizes = pow2_sizes(12, 19)
    rows = ["size | " + " | ".join(f"limit={lim // 1024}K" for lim in LIMITS)
            + " | eager-only"]
    series = []
    for lim in LIMITS:
        params = DEFAULT_PARAMS.with_overrides(eager_limit=lim)
        pts = sweep_pingpong(lambda s: StructPackedCase(s, "struct-simple"),
                             sizes, params=params)
        series.append([p.bandwidth_MBps for p in pts])
    pts = sweep_pingpong(lambda s: StructPackedCase(s, "struct-simple"),
                         sizes, params=no_rendezvous_params())
    series.append([p.bandwidth_MBps for p in pts])
    for i, size in enumerate(sizes):
        rows.append(f"{size:7d} | " + " | ".join(f"{s[i]:10.1f}" for s in series))
    return "\n".join(rows)


def test_abl_rendezvous_threshold(benchmark):
    text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text("abl_rendezvous_threshold", text)
