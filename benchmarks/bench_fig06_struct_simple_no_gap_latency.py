"""Figure 6: struct-simple-no-gap latency.

Without the gap the derived type is contiguous, the engine takes the
zero-copy fast path, and rsmpi/Open MPI 'performs as expected'.
"""

import pytest

from conftest import save_series
from repro.bench import (StructDerivedCase, StructPackedCase,
                         fig6_struct_simple_no_gap_latency, run_once)


def test_fig6_regenerate(benchmark):
    fs = benchmark.pedantic(fig6_struct_simple_no_gap_latency,
                            kwargs=dict(quick=True), rounds=1, iterations=1)
    save_series(fs)


@pytest.mark.parametrize("method,case", [
    ("manual-pack", StructPackedCase),
    ("rsmpi", StructDerivedCase),
])
def test_fig6_transfer(benchmark, method, case):
    benchmark(lambda: run_once(lambda s: case(s, "struct-simple-no-gap"),
                               1 << 15))
