"""Shared benchmark helpers.

Every ``bench_figXX`` module does two things:

* a *regeneration* benchmark that rebuilds the paper figure's series from
  the virtual-time harness (the reproduction artifact, saved under
  ``benchmarks/results/``), and
* *micro* benchmarks that time the real execution of representative
  transfers with pytest-benchmark (wall-clock of the simulator itself).
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_series(fs, extra: str = "") -> str:
    """Persist a regenerated figure under benchmarks/results/ and return
    the rendered text."""
    from repro.bench import format_figure

    RESULTS_DIR.mkdir(exist_ok=True)
    text = format_figure(fs)
    if extra:
        text += "\n" + extra
    (RESULTS_DIR / f"{fs.figure}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


def save_text(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
