"""Derived-type corpus for the wall-clock harness.

Each entry is a non-contiguous layout the paper's figures exercise (plus one
contiguous control): the struct types of Figs. 3-7, a classic strided
vector, and the DDTBench workloads whose derived types dominate Fig. 10.
Entries carry everything a throughput loop needs: the datatype, a filled
source buffer, the element count, and the packed size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import FLOAT64, Datatype, vector
from repro.core.packing import packed_size, required_span
from repro.ddtbench.registry import make_workload
from repro.types import (make_struct_simple, make_struct_simple_no_gap,
                         struct_simple_datatype,
                         struct_simple_no_gap_datatype)


@dataclass
class CorpusEntry:
    name: str
    dtype: Datatype
    src: np.ndarray
    count: int
    #: Contiguous layouts are reported but exempt from the speedup gate —
    #: both engines are a single memcpy there.
    contiguous: bool = False

    @property
    def packed_bytes(self) -> int:
        return packed_size(self.dtype, self.count)


def _struct_simple(target_bytes: int) -> CorpusEntry:
    t = struct_simple_datatype()
    count = max(1, target_bytes // t.size)
    return CorpusEntry("struct-simple", t, make_struct_simple(count), count)


def _struct_simple_no_gap(target_bytes: int) -> CorpusEntry:
    t = struct_simple_no_gap_datatype()
    count = max(1, target_bytes // t.size)
    return CorpusEntry("struct-simple-no-gap", t,
                       make_struct_simple_no_gap(count), count,
                       contiguous=True)


def _vector(target_bytes: int) -> CorpusEntry:
    # 16 doubles taken every other position — a 2-D column slab.
    t = vector(16, 1, 2, FLOAT64)
    count = max(1, target_bytes // t.size)
    rng = np.random.default_rng(7)
    src = rng.integers(0, 255, required_span(t, count), dtype=np.uint8)
    return CorpusEntry("vector-f64", t, src, count)


def _ddtbench(name: str) -> CorpusEntry:
    w = make_workload(name)
    return CorpusEntry(f"ddtbench-{name}", w.derived_datatype(),
                       w.make_send_buffer(), 1)


def build_corpus(target_bytes: int) -> list[CorpusEntry]:
    """The harness corpus; ``target_bytes`` sizes the synthetic entries."""
    return [
        _struct_simple(target_bytes),
        _struct_simple_no_gap(target_bytes),
        _vector(target_bytes),
        _ddtbench("WRF_x_vec"),
        _ddtbench("WRF_y_vec"),
        _ddtbench("MILC"),
    ]
