"""Wall-clock perf-regression harness (see docs/performance.md).

Unlike ``benchmarks/fig*.py`` — which measure *virtual* time on the
simulated fabric — this package measures real elapsed time of the engine
itself: pack/unpack throughput over the derived-type corpus, the fragment
pipeline, end-to-end ``run()`` message rate, and a DDTBench subset.  Results
land in ``BENCH_perf.json`` at the repo root.
"""
