"""Wall-clock perf harness: pack plans vs the retained reference engine.

Measures real elapsed time (``time.perf_counter``), not virtual fabric time:

* whole-message ``pack``/``unpack`` throughput over the derived-type corpus,
* the fragment pipeline at ``frag_size`` granularity — :class:`PackCursor` /
  :class:`UnpackCursor` against the pre-plan per-fragment window engine,
* end-to-end ``repro.mpi.run()`` message rate with a derived datatype,
* a DDTBench round-trip subset.

Every sample is the median of ``k`` trials.  Results are written to
``BENCH_perf.json`` at the repo root.  With ``--check`` the harness enforces
the regression gates: windowed pack/unpack on non-contiguous types must beat
the reference engine by the required factor, and throughput must stay above
the checked-in floors in ``baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py [--quick] [--check]
                                                 [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf.corpus import CorpusEntry, build_corpus  # noqa: E402
from repro.core.packing import (pack, pack_reference, pack_window_reference,
                                unpack, unpack_reference,
                                unpack_window_reference)  # noqa: E402
from repro.core.packplan import PackCursor, UnpackCursor  # noqa: E402
from repro.core.typecache import clear_plan_cache  # noqa: E402
from repro.ddtbench.registry import make_workload  # noqa: E402
from repro.mpi.runtime import run  # noqa: E402
from repro.types import struct_simple_datatype  # noqa: E402

FRAG_SIZE = 8192          # the fabric's pipeline granularity (LinkParams)
MIN_TRIAL_SECONDS = 4e-3  # calibrate reps until one trial takes this long
# Windowed plan-vs-reference gate (--check). The reference engine shares the
# typemap's memoized size/bounds accessors, which made it ~3x faster; the
# ratio is therefore looser than it was, and absolute regressions are caught
# by the baseline.json throughput floors instead.
SPEEDUP_FLOOR = 1.5
BASELINE_PATH = Path(__file__).with_name("baseline.json")
# Multi-core scaling gate: at 4 ranks the shm backend (one process per
# rank, packing in parallel into shared arenas) must reach at least this
# multiple of inproc's aggregate pack bandwidth on non-contiguous DDTBench
# kernels.  Only enforceable on a machine with >= 4 cores — the GIL vs
# multi-core comparison is meaningless on fewer — so the gate records and
# skips elsewhere (see bench_shm_scaling).
SHM_SCALING_FLOOR = 2.0
SHM_SCALING_MIN_CORES = 4
# Job-service gate: one service slot running N small jobs must reach at
# least this fraction of back-to-back run() throughput on the same jobs —
# i.e. admission, queueing, quota plumbing and warm-set recycling may not
# eat more than the complement of this.  Warm buffer pools typically win
# the overhead back, so this floor has real slack for CI-machine noise.
JOB_SERVICE_FLOOR = 0.70


def _median_seconds(fn, k: int) -> float:
    """Median of ``k`` timed trials of ``fn()``, reps auto-calibrated so a
    single trial is long enough for the clock."""
    reps = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= MIN_TRIAL_SECONDS or reps >= 4096:
            break
        reps *= 2 if elapsed <= 0 else max(
            2, int(MIN_TRIAL_SECONDS / max(elapsed, 1e-9) * 1.3))
    trials = []
    for _ in range(k):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        trials.append((time.perf_counter() - t0) / reps)
    return statistics.median(trials)


def _mb_per_s(nbytes: int, seconds: float) -> float:
    return nbytes / seconds / 1e6


# ---------------------------------------------------------------------------
# sections
# ---------------------------------------------------------------------------

def bench_whole_message(entry: CorpusEntry, k: int) -> dict:
    """Whole-message pack and unpack: plan engine vs reference."""
    d, src, n = entry.dtype, entry.src, entry.count
    nbytes = entry.packed_bytes
    out = np.empty(nbytes, dtype=np.uint8)
    packed = pack(d, src, n)
    dst = np.empty(np.asarray(src).nbytes, dtype=np.uint8).reshape(-1)

    plan_pack = _median_seconds(lambda: pack(d, src, n, out=out), k)
    ref_pack = _median_seconds(lambda: pack_reference(d, src, n, out=out), k)
    plan_unpack = _median_seconds(lambda: unpack(d, dst, n, packed), k)
    ref_unpack = _median_seconds(lambda: unpack_reference(d, dst, n, packed), k)
    return {
        "bytes": nbytes,
        "pack": {"plan_mb_s": _mb_per_s(nbytes, plan_pack),
                 "ref_mb_s": _mb_per_s(nbytes, ref_pack),
                 "speedup": ref_pack / plan_pack},
        "unpack": {"plan_mb_s": _mb_per_s(nbytes, plan_unpack),
                   "ref_mb_s": _mb_per_s(nbytes, ref_unpack),
                   "speedup": ref_unpack / plan_unpack},
    }


def bench_windowed(entry: CorpusEntry, k: int) -> dict:
    """The fragment pipeline: cursors vs per-fragment window calls."""
    d, src, n = entry.dtype, entry.src, entry.count
    total = entry.packed_bytes
    packed = pack(d, src, n)
    dst = np.empty(np.asarray(src).nbytes, dtype=np.uint8).reshape(-1)

    def plan_pack_pipeline():
        with PackCursor(d, src, n) as cur:
            off = 0
            while off < total:
                ln = min(FRAG_SIZE, total - off)
                cur.window(off, ln)
                off += ln

    def ref_pack_pipeline():
        off = 0
        while off < total:
            ln = min(FRAG_SIZE, total - off)
            pack_window_reference(d, src, n, off, ln)
            off += ln

    def plan_unpack_pipeline():
        with UnpackCursor(d, dst, n) as cur:
            off = 0
            while off < total:
                ln = min(FRAG_SIZE, total - off)
                cur.write(off, packed[off:off + ln])
                off += ln

    def ref_unpack_pipeline():
        off = 0
        while off < total:
            ln = min(FRAG_SIZE, total - off)
            unpack_window_reference(d, dst, n, off, packed[off:off + ln])
            off += ln

    plan_p = _median_seconds(plan_pack_pipeline, k)
    ref_p = _median_seconds(ref_pack_pipeline, k)
    plan_u = _median_seconds(plan_unpack_pipeline, k)
    ref_u = _median_seconds(ref_unpack_pipeline, k)
    return {
        "bytes": total, "frag_size": FRAG_SIZE,
        "window_pack": {"plan_mb_s": _mb_per_s(total, plan_p),
                        "ref_mb_s": _mb_per_s(total, ref_p),
                        "speedup": ref_p / plan_p},
        "window_unpack": {"plan_mb_s": _mb_per_s(total, plan_u),
                          "ref_mb_s": _mb_per_s(total, ref_u),
                          "speedup": ref_u / plan_u},
    }


def _pingpong_main(iters: int, count: int):
    dtype = struct_simple_datatype()
    from repro.types import make_struct_simple

    def main(comm):
        sbuf = make_struct_simple(count)
        rbuf = make_struct_simple(count)
        if comm.rank == 0:
            for _ in range(iters):
                comm.send(sbuf, 1, 11, datatype=dtype, count=count)
                comm.recv(rbuf, 1, 12, datatype=dtype, count=count)
        else:
            for _ in range(iters):
                comm.recv(rbuf, 0, 11, datatype=dtype, count=count)
                comm.send(rbuf, 0, 12, datatype=dtype, count=count)

    return main


def bench_message_rate(k: int, iters: int,
                       transport: str | None = None) -> dict:
    """End-to-end ``run()``: derived-datatype pingpong messages per second
    of wall-clock time (thread spawn included), plus the pool counters the
    job observed."""
    count = 128  # ~2.5 KiB packed: an eager-path message
    result = run(_pingpong_main(iters, count), nprocs=2,
                 transport=transport)
    seconds = _median_seconds(
        lambda: run(_pingpong_main(iters, count), nprocs=2,
                    transport=transport), k)
    pool = result.memory[0].get("pool", {})
    return {"iters": iters, "count": count,
            "transport": result.transport,
            "msgs_per_s": (2 * iters) / seconds,
            "seconds": seconds,
            "rank0_pool_hits": pool.get("hits", 0),
            "rank0_pool_misses": pool.get("misses", 0)}


def _ddt_roundtrip_main(name: str):
    def main(comm):
        w = make_workload(name)
        dtype = w.derived_datatype()
        if comm.rank == 0:
            comm.send(w.make_send_buffer(), 1, 21, datatype=dtype, count=1)
            comm.recv(w.make_recv_buffer(), 1, 22, datatype=dtype, count=1)
        else:
            rbuf = w.make_recv_buffer()
            comm.recv(rbuf, 0, 21, datatype=dtype, count=1)
            comm.send(rbuf, 0, 22, datatype=dtype, count=1)

    return main


def bench_ddtbench(names: list[str], k: int,
                   transport: str | None = None) -> dict:
    """Round-trip one element of each workload's derived type end-to-end."""
    out = {}
    for name in names:
        seconds = _median_seconds(
            lambda name=name: run(_ddt_roundtrip_main(name), nprocs=2,
                                  transport=transport), k)
        out[name] = {"seconds": seconds}
    return out


def _scaling_main(name: str, iters: int):
    """All ranks shift one derived-type message around a ring per iter, so
    every rank packs and unpacks concurrently — the aggregate-bandwidth
    shape where per-rank processes beat GIL-sharing threads."""
    def main(comm):
        w = make_workload(name)
        dtype = w.derived_datatype()
        dst = (comm.rank + 1) % comm.size
        src = (comm.rank - 1) % comm.size
        sbuf = w.make_send_buffer()
        rbuf = w.make_recv_buffer()
        for _ in range(iters):
            sreq = comm.isend(sbuf, dst, 31, datatype=dtype, count=1)
            comm.recv(rbuf, src, 31, datatype=dtype, count=1)
            sreq.wait()

    return main


def bench_shm_scaling(names: list[str], nprocs: int, iters: int,
                      k: int) -> dict:
    """Multi-core scaling: aggregate derived-type pack bandwidth of an
    ``nprocs``-rank ring exchange, inproc (threads, one core under the
    GIL) vs shm (one process per rank packing into shared arenas).

    The ``shm_vs_inproc`` ratio is the tentpole claim of the transport
    layer; the --check floor (``SHM_SCALING_FLOOR``) is enforced only on
    machines with at least ``SHM_SCALING_MIN_CORES`` cores — elsewhere the
    numbers are recorded with an explicit skip reason (a 1-core container
    cannot exhibit multi-core scaling, only its overheads).
    """
    from repro.core.packing import packed_size
    from repro.ucp.transport import available_transports

    cpu_count = os.cpu_count() or 1
    avail = available_transports()
    out = {"nprocs": nprocs, "iters": iters, "cpu_count": cpu_count,
           "floor": SHM_SCALING_FLOOR, "kernels": {}}
    if avail.get("shm"):
        out["enforced"] = False
        out["skip_reason"] = f"shm transport unavailable: {avail['shm']}"
    elif cpu_count < SHM_SCALING_MIN_CORES:
        out["enforced"] = False
        out["skip_reason"] = (
            f"host has {cpu_count} core(s); the {SHM_SCALING_FLOOR:.0f}x "
            f"floor needs >= {SHM_SCALING_MIN_CORES} (ratios recorded, "
            f"not enforced)")
    else:
        out["enforced"] = True
        out["skip_reason"] = ""

    backends = ["inproc"] + ([] if avail.get("shm") else ["shm"])
    for name in names:
        w = make_workload(name)
        per_msg = packed_size(w.derived_datatype(), 1)
        total = per_msg * iters * nprocs
        entry = {"bytes_per_msg": per_msg, "aggregate_bytes": total}
        for t in backends:
            seconds = _median_seconds(
                lambda name=name, t=t: run(_scaling_main(name, iters),
                                           nprocs=nprocs, transport=t,
                                           timeout=600.0), k)
            entry[t] = {"seconds": seconds,
                        "agg_mb_s": _mb_per_s(total, seconds)}
        if "inproc" in entry and "shm" in entry:
            entry["shm_vs_inproc"] = (entry["shm"]["agg_mb_s"]
                                      / entry["inproc"]["agg_mb_s"])
        out["kernels"][name] = entry
    return out


def bench_job_service(jobs: int, k: int) -> dict:
    """Job-service throughput vs back-to-back ``run()`` of the same jobs.

    Two configurations of :class:`repro.serve.JobService` run ``jobs``
    identical small pingpong jobs: one slot (apples-to-apples with the
    sequential baseline — the gap is pure scheduler overhead, minus what
    warm buffer pools win back) and two slots (what the service is for).
    The ``--check`` gate enforces ``JOB_SERVICE_FLOOR`` on the one-slot
    ratio: queueing, admission, quota plumbing and warm-set recycling
    together must not cost more than that fraction of raw ``run()``.
    """
    from repro.serve import JobService, JobSpec
    from repro.serve.workloads import pingpong_job

    fn = pingpong_job(iters=4, nbytes=1024)

    def back_to_back():
        for _ in range(jobs):
            run(fn, nprocs=2)

    def service(slots: int):
        svc = JobService(slots=slots, max_queue=jobs)
        for i in range(jobs):
            svc.submit(JobSpec(fn=fn, name=f"bench-{i}"))
        svc.wait_idle()
        svc.shutdown()

    base_s = _median_seconds(back_to_back, k)
    serial_s = _median_seconds(lambda: service(1), k)
    parallel_s = _median_seconds(lambda: service(2), k)
    base_rate = jobs / base_s
    serial_rate = jobs / serial_s
    return {
        "jobs": jobs,
        "back_to_back_jobs_per_s": base_rate,
        "service_1slot_jobs_per_s": serial_rate,
        "service_2slot_jobs_per_s": jobs / parallel_s,
        #: >= 1 means the service (warm pools included) beats raw run().
        "ratio_1slot": serial_rate / base_rate,
        "scheduler_overhead_ms_per_job": (serial_s - base_s) / jobs * 1e3,
        "floor": JOB_SERVICE_FLOOR,
    }


def bench_protomodel(nranks: int, depth: int) -> dict:
    """Model-checker throughput: states explored per second of wall clock
    over the builtin scenario suite (the `proto-verify` CI job's cost)."""
    from repro.analyze.protomodel import verify_shipped

    report = verify_shipped(nranks=nranks, depth=depth)
    return {"nranks": nranks, "depth": depth,
            "scenarios": len(report.results),
            "states": report.states,
            "transitions": sum(r.transitions for r in report.results),
            "seconds": report.elapsed,
            "states_per_s": report.states_per_s,
            "clean": not report.diagnostics}


def bench_races() -> dict:
    """Race-analyzer throughput: fabric files audited per second of wall
    clock over the shipped audit set (the `race-audit` CI job's cost)."""
    from repro.analyze.races import analyze_paths, shipped_audit_paths

    t0 = time.perf_counter()
    findings, nfiles, _audit = analyze_paths(shipped_audit_paths())
    seconds = time.perf_counter() - t0
    return {"files": nfiles,
            "findings": len(findings),
            "seconds": seconds,
            "files_per_s": nfiles / seconds if seconds else float("inf"),
            "clean": not findings}


# ---------------------------------------------------------------------------
# gates
# ---------------------------------------------------------------------------

def check_results(report: dict) -> list[str]:
    """The --check gates; returns a list of human-readable failures."""
    failures = []
    for name, entry in report["corpus"].items():
        if entry["contiguous"]:
            continue
        for section in ("window_pack", "window_unpack"):
            sp = entry[section]["speedup"]
            if sp < SPEEDUP_FLOOR:
                failures.append(
                    f"{section}/{name}: plan speedup {sp:.2f}x is below the "
                    f"required {SPEEDUP_FLOOR:.1f}x")
    if BASELINE_PATH.exists():
        floors = json.loads(BASELINE_PATH.read_text())["floors_mb_s"]
        for key, floor in floors.items():
            section, _, name = key.partition("/")
            entry = report["corpus"].get(name)
            if entry is None or section not in entry:
                continue
            got = entry[section]["plan_mb_s"]
            if got < floor:
                failures.append(
                    f"{key}: {got:.0f} MB/s is below the baseline floor "
                    f"{floor:.0f} MB/s (>2x regression)")
    else:
        failures.append(f"baseline file missing: {BASELINE_PATH}")
    js = report.get("job_service")
    if js is not None and js["ratio_1slot"] < js["floor"]:
        failures.append(
            f"job_service: one-slot service throughput is "
            f"{js['ratio_1slot']:.2f}x of back-to-back run(); the floor "
            f"is {js['floor']:.2f}x (scheduler overhead regression)")
    pm = report.get("protomodel")
    if pm is not None and not pm["clean"]:
        failures.append("protomodel: shipped protocol has model-checker "
                        "findings (run `repro-analyze proto`)")
    ra = report.get("races")
    if ra is not None and not ra["clean"]:
        failures.append("races: shipped fabric has race-audit findings "
                        "(run `repro-analyze races --strict`)")
    sc = report.get("shm_scaling")
    if sc is not None and sc.get("enforced"):
        for name, entry in sc["kernels"].items():
            ratio = entry.get("shm_vs_inproc")
            if ratio is None:
                failures.append(f"shm_scaling/{name}: no shm measurement")
            elif ratio < sc["floor"]:
                failures.append(
                    f"shm_scaling/{name}: shm aggregate pack bandwidth is "
                    f"{ratio:.2f}x inproc at {sc['nprocs']} ranks; the "
                    f"floor is {sc['floor']:.1f}x")
    return failures


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller corpus and fewer trials (CI smoke mode)")
    ap.add_argument("--check", action="store_true",
                    help="enforce speedup and baseline-floor gates")
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "BENCH_perf.json",
                    help="where to write the JSON report")
    ap.add_argument("--transport", default=None,
                    help="transport backend for the end-to-end sections "
                         "(inproc/shm/asyncio; default: $REPRO_TRANSPORT, "
                         "else inproc).  The scaling section always "
                         "compares inproc vs shm regardless")
    args = ap.parse_args(argv)

    k = 3 if args.quick else 5
    target = (1 << 18) if args.quick else (1 << 20)
    ddt_names = ["WRF_x_vec", "MILC"] if args.quick \
        else ["WRF_x_vec", "WRF_y_vec", "MILC"]

    clear_plan_cache()
    report = {"schema": 1, "mode": "quick" if args.quick else "full",
              "k": k, "target_bytes": target, "corpus": {}}
    for entry in build_corpus(target):
        stats = {"contiguous": entry.contiguous}
        stats.update(bench_whole_message(entry, k))
        stats.update(bench_windowed(entry, k))
        report["corpus"][entry.name] = stats
        w = stats["window_pack"]
        print(f"{entry.name:24s} {stats['bytes']:>9d} B  "
              f"window_pack {w['plan_mb_s']:8.0f} MB/s "
              f"(ref {w['ref_mb_s']:8.0f}, {w['speedup']:5.2f}x)")

    report["message_rate"] = bench_message_rate(k, iters=50 if args.quick
                                                else 200,
                                                transport=args.transport)
    print(f"{'derived pingpong':24s} "
          f"{report['message_rate']['msgs_per_s']:8.0f} msgs/s "
          f"({report['message_rate']['transport']})")
    report["ddtbench_roundtrip"] = bench_ddtbench(ddt_names, k,
                                                  transport=args.transport)

    report["shm_scaling"] = bench_shm_scaling(
        ["WRF_x_vec", "MILC"], nprocs=4,
        iters=4 if args.quick else 16, k=min(k, 3))
    sc = report["shm_scaling"]
    for name, entry in sc["kernels"].items():
        ratio = entry.get("shm_vs_inproc")
        shown = f"{ratio:5.2f}x shm/inproc" if ratio is not None \
            else "shm unavailable"
        print(f"{'scaling ' + name:24s} "
              f"{entry['inproc']['agg_mb_s']:8.0f} MB/s inproc  {shown}"
              f"{'' if sc['enforced'] else '  [not enforced]'}")
    if sc["skip_reason"]:
        print(f"{'scaling gate':24s} skipped: {sc['skip_reason']}")

    report["job_service"] = bench_job_service(jobs=8 if args.quick else 24,
                                              k=min(k, 3))
    js = report["job_service"]
    print(f"{'job service':24s} "
          f"{js['service_1slot_jobs_per_s']:8.0f} jobs/s 1-slot "
          f"({js['ratio_1slot']:.2f}x of back-to-back, "
          f"{js['service_2slot_jobs_per_s']:.0f} jobs/s 2-slot)")

    report["protomodel"] = bench_protomodel(nranks=2 if args.quick else 3,
                                            depth=60)
    pm = report["protomodel"]
    print(f"{'protocol model check':24s} {pm['states_per_s']:8.0f} states/s "
          f"({pm['states']} states, {pm['scenarios']} scenarios, "
          f"{'clean' if pm['clean'] else 'FINDINGS'})")

    report["races"] = bench_races()
    ra = report["races"]
    print(f"{'race audit':24s} {ra['files_per_s']:8.0f} files/s "
          f"({ra['files']} files, "
          f"{'clean' if ra['clean'] else 'FINDINGS'})")

    failures = check_results(report) if args.check else []
    report["checks"] = {"enforced": args.check, "failures": failures}

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
