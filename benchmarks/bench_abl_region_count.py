"""Ablation: region granularity at fixed payload.

A 256-KiB double-vector sent as N regions of 256KiB/N each: per-entry
scatter/gather overhead makes many tiny regions lose — the mechanism behind
the NAS_LU_y / NAS_MG_x results and the expensive-regions calibration
variant makes regions lose everywhere.
"""

import pytest

from conftest import save_text
from repro.bench import DoubleVecCustomCase, DoubleVecPackedCase, run_once
from repro.bench.calibration import expensive_regions_params

TOTAL = 256 * 1024
SUBVECS = [64, 256, 1024, 4096, 16384, 65536]


def sweep():
    rows = ["subvec_bytes | regions | custom_MBps | custom_expensive_MBps"]
    manual = run_once(lambda s: DoubleVecPackedCase(s, 1024), TOTAL)
    for sv in SUBVECS:
        pt = run_once(lambda s: DoubleVecCustomCase(s, sv), TOTAL)
        pt2 = run_once(lambda s: DoubleVecCustomCase(s, sv), TOTAL,
                       params=expensive_regions_params())
        rows.append(f"{sv:12d} | {TOTAL // sv:7d} | {pt.bandwidth_MBps:11.1f} "
                    f"| {pt2.bandwidth_MBps:11.1f}")
    rows.append(f"manual-pack reference: {manual.bandwidth_MBps:.1f} MB/s")
    return "\n".join(rows)


def test_abl_region_count(benchmark):
    text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_text("abl_region_count", text)


@pytest.mark.parametrize("sv", [64, 4096, 65536])
def test_abl_region_transfer(benchmark, sv):
    benchmark(lambda: run_once(lambda s: DoubleVecCustomCase(s, sv), TOTAL))
