#!/usr/bin/env python
"""2-D Jacobi halo exchange: derived datatypes vs the custom region API.

A classic stencil code (the NAS workloads' access pattern): each rank owns a
strip of a global grid and exchanges one-row halos with its neighbours every
iteration.  The same exchange is run twice —

* with a classic derived datatype (``contiguous`` rows), and
* with a custom datatype exposing the halo rows as memory regions —

and the converged grids are verified identical.

Run:  python examples/halo_exchange.py
"""

import numpy as np

from repro.core import FLOAT64, Region, contiguous, type_create_custom
from repro.mpi import run

NRANKS = 4
NX = 64          # global columns
ROWS_PER_RANK = 16
ITERS = 30


def row_region_datatype(row_getter):
    """Custom type sending/receiving one grid row as a single region."""

    def query_fn(state, buf, count):
        return 0

    def region_count_fn(state, buf, count):
        return 1

    def region_fn(state, buf, count, n):
        return [Region(row_getter(buf), datatype=FLOAT64)]

    return type_create_custom(query_fn=query_fn,
                              region_count_fn=region_count_fn,
                              region_fn=region_fn, name="custom:halo-row")


def jacobi(comm, use_custom: bool):
    # Local strip with one ghost row above and below.
    grid = np.zeros((ROWS_PER_RANK + 2, NX))
    # Dirichlet boundary: hot left edge, scaled per global row.
    start_row = comm.rank * ROWS_PER_RANK
    for i in range(1, ROWS_PER_RANK + 1):
        grid[i, 0] = 100.0 * (start_row + i) / (NRANKS * ROWS_PER_RANK)

    up = comm.rank - 1
    down = comm.rank + 1

    row_t = contiguous(NX, FLOAT64)
    send_top_t = row_region_datatype(lambda g: g[1])
    send_bot_t = row_region_datatype(lambda g: g[ROWS_PER_RANK])
    recv_top_t = row_region_datatype(lambda g: g[0])
    recv_bot_t = row_region_datatype(lambda g: g[ROWS_PER_RANK + 1])

    for _ in range(ITERS):
        reqs = []
        if up >= 0:
            if use_custom:
                reqs.append(comm.irecv(grid, source=up, tag=1,
                                       datatype=recv_top_t))
                reqs.append(comm.isend(grid, dest=up, tag=2,
                                       datatype=send_top_t))
            else:
                reqs.append(comm.irecv(grid[0], source=up, tag=1,
                                       datatype=row_t, count=1))
                reqs.append(comm.isend(np.ascontiguousarray(grid[1]), dest=up,
                                       tag=2, datatype=row_t, count=1))
        if down < comm.size:
            if use_custom:
                reqs.append(comm.irecv(grid, source=down, tag=2,
                                       datatype=recv_bot_t))
                reqs.append(comm.isend(grid, dest=down, tag=1,
                                       datatype=send_bot_t))
            else:
                reqs.append(comm.irecv(grid[ROWS_PER_RANK + 1], source=down,
                                       tag=2, datatype=row_t, count=1))
                reqs.append(comm.isend(
                    np.ascontiguousarray(grid[ROWS_PER_RANK]), dest=down,
                    tag=1, datatype=row_t, count=1))
        for r in reqs:
            r.wait()

        # Five-point stencil over the owned rows; ghost rows at the global
        # top/bottom stay zero (a cold boundary).
        R = ROWS_PER_RANK
        new = grid.copy()
        new[1:R + 1, 1:-1] = 0.25 * (grid[0:R, 1:-1] + grid[2:R + 2, 1:-1]
                                     + grid[1:R + 1, 0:-2] + grid[1:R + 1, 2:])
        # Keep the boundary condition pinned.
        for i in range(1, ROWS_PER_RANK + 1):
            new[i, 0] = grid[i, 0]
        grid = new
    return grid[1:ROWS_PER_RANK + 1]


def main(comm):
    derived = jacobi(comm, use_custom=False)
    custom = jacobi(comm, use_custom=True)
    return derived, custom


if __name__ == "__main__":
    result = run(main, nprocs=NRANKS)
    full_derived = np.vstack([r[0] for r in result.results])
    full_custom = np.vstack([r[1] for r in result.results])
    assert np.allclose(full_derived, full_custom), \
        "derived-datatype and custom-region halo exchanges disagree"
    print(f"Jacobi on a {NRANKS * ROWS_PER_RANK}x{NX} grid, {ITERS} iters, "
          f"{NRANKS} ranks")
    print(f"interior mean temperature: {full_custom.mean():.4f} "
          f"(derived == custom: True)")
    print(f"max virtual time: {result.max_clock * 1e6:.1f} us")
