#!/usr/bin/env python
"""Pingpong through the C-flavoured API layer (the mpicd-capi analogue).

Uses the paper's literal calling conventions — ``MPI_Type_create_custom``
with callbacks that return error codes and deliver outputs as tuples
(Listings 2-5), and p2p calls returning ``MPI_SUCCESS``/``MPI_ERR_*``.

Run:  python examples/capi_pingpong.py
"""

import numpy as np

from repro import capi
from repro.errors import MPI_SUCCESS
from repro.mpi import run

ITERS = 5


class Message:
    """A tiny header plus a bulk array (packed + region, respectively)."""

    def __init__(self, seq=0, n=0):
        self.header = bytearray(np.asarray(seq, dtype="<i8").tobytes())
        self.bulk = np.zeros(n, dtype=np.float64)


def make_type():
    def queryfn(state, buf, count):
        return MPI_SUCCESS, len(buf.header)

    def packfn(state, buf, count, offset, dst):
        used = min(len(dst), len(buf.header) - offset)
        dst[:used] = np.frombuffer(bytes(buf.header[offset:offset + used]),
                                   np.uint8)
        return MPI_SUCCESS, used

    def unpackfn(state, buf, count, offset, src):
        buf.header[offset:offset + len(src)] = bytes(src)
        return MPI_SUCCESS

    def region_countfn(state, buf, count):
        return MPI_SUCCESS, 1

    def regionfn(state, buf, count, region_count):
        return MPI_SUCCESS, [buf.bulk], [buf.bulk.nbytes], None

    err, dtype = capi.MPI_Type_create_custom(
        queryfn=queryfn, packfn=packfn, unpackfn=unpackfn,
        region_countfn=region_countfn, regionfn=regionfn)
    assert err == MPI_SUCCESS
    return dtype


def main(comm):
    err, rank = capi.MPI_Comm_rank(comm)
    dtype = make_type()
    n = 16_384

    for it in range(ITERS):
        if rank == 0:
            out = Message(seq=it, n=n)
            out.bulk[:] = it + np.arange(n) * 1e-6
            assert capi.MPI_Send(comm, out, 1, dtype, 1, it) == MPI_SUCCESS
            back = Message(seq=-1, n=n)
            err, status = capi.MPI_Recv(comm, back, 1, dtype, 1, it)
            assert err == MPI_SUCCESS
            seq = int(np.frombuffer(bytes(back.header), "<i8")[0])
            assert seq == it and np.allclose(back.bulk, out.bulk)
        else:
            inbox = Message(seq=-1, n=n)
            err, status = capi.MPI_Recv(comm, inbox, 1, dtype, 0, it)
            assert err == MPI_SUCCESS
            assert capi.MPI_Send(comm, inbox, 1, dtype, 0, it) == MPI_SUCCESS
    capi.MPI_Barrier(comm)
    return comm.clock.now


if __name__ == "__main__":
    result = run(main, nprocs=2)
    rtt_us = result.max_clock / ITERS * 1e6
    print(f"{ITERS} pingpongs of an 8 B header + 128 KiB region via the "
          f"C API: {rtt_us:.2f} us/round-trip (virtual)")
