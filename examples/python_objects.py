#!/usr/bin/env python
"""Moving arbitrary Python objects: the three pickle strategies compared.

Sends the same object graph (the paper's Fig. 9 shape: a user object holding
many 128-KiB NumPy arrays) with each strategy and reports virtual transfer
time, message count and transient allocations — the three axes the paper's
Python evaluation argues about.

Run:  python examples/python_objects.py
"""

import numpy as np

from repro.mpi import run
from repro.serial import STRATEGIES, get_strategy, make_complex_object
from repro.ucp.tagmatch import TagMatcher

TOTAL_BYTES = 4 << 20  # 4 MiB of array payload


def measure(strategy_name):
    messages = []
    orig_deposit = TagMatcher.deposit

    def counting_deposit(self, msg):
        messages.append(msg.header.total_bytes)
        return orig_deposit(self, msg)

    def fn(comm):
        s = get_strategy(strategy_name)
        if comm.rank == 0:
            obj = make_complex_object(TOTAL_BYTES)
            t0 = comm.clock.now
            s.send(comm, obj, dest=1)
            return comm.clock.now - t0, comm.memory.snapshot()
        t0 = comm.clock.now
        obj = s.recv(comm, source=0)
        dt = comm.clock.now - t0
        assert obj.validate(), "checksums broken in transit"
        return dt, comm.memory.snapshot()

    TagMatcher.deposit = counting_deposit
    try:
        result = run(fn, nprocs=2)
    finally:
        TagMatcher.deposit = orig_deposit

    send_dt, send_mem = result.results[0]
    recv_dt, recv_mem = result.results[1]
    return {
        "strategy": strategy_name,
        "one_way_ms": recv_dt * 1e3,
        "bandwidth_MBps": TOTAL_BYTES / recv_dt / 1e6,
        "mpi_messages": len(messages),
        "sender_transient_KiB": send_mem["total_allocated"] // 1024,
        "receiver_transient_KiB": recv_mem["total_allocated"] // 1024,
    }


if __name__ == "__main__":
    print(f"object: ComplexObject with {TOTAL_BYTES >> 20} MiB of 128-KiB arrays\n")
    header = (f"{'strategy':16s} {'one-way':>9s} {'bandwidth':>12s} "
              f"{'messages':>9s} {'send alloc':>11s} {'recv alloc':>11s}")
    print(header)
    print("-" * len(header))
    for name in STRATEGIES:
        r = measure(name)
        print(f"{r['strategy']:16s} {r['one_way_ms']:7.3f}ms "
              f"{r['bandwidth_MBps']:9.1f}MB/s {r['mpi_messages']:9d} "
              f"{r['sender_transient_KiB']:8d}KiB {r['receiver_transient_KiB']:8d}KiB")
    print("\npickle-basic pays a full serialized copy on both sides;")
    print("pickle-oob avoids the copies but needs one MPI message per buffer;")
    print("pickle-oob-cdt (the paper) does it in a single MPI message.")
