#!/usr/bin/env python
"""2-D heat diffusion on a Cartesian process grid.

Combines three pieces of the library: :func:`repro.mpi.cart_create` for the
process grid and halo partners, derived row datatypes for the contiguous
north/south halos, and ``neighbor_sendrecv`` for deadlock-free exchanges in
both dimensions.  A serial reference run verifies the distributed result
bit-for-bit.

Run:  python examples/stencil_cart.py
"""

import numpy as np

from repro.mpi import cart_create, dims_create, run

GRID = (24, 32)   # global rows x cols
PROCS = 4
ITERS = 20
ALPHA = 0.2


def step(field):
    """One explicit diffusion step on an array with 1-cell ghost borders."""
    new = field.copy()
    new[1:-1, 1:-1] = field[1:-1, 1:-1] + ALPHA * (
        field[:-2, 1:-1] + field[2:, 1:-1] + field[1:-1, :-2]
        + field[1:-1, 2:] - 4 * field[1:-1, 1:-1])
    return new


def initial(global_rows, global_cols):
    g = np.zeros((global_rows, global_cols))
    g[global_rows // 3: 2 * global_rows // 3,
      global_cols // 3: 2 * global_cols // 3] = 100.0
    return g


def serial_reference():
    g = np.zeros((GRID[0] + 2, GRID[1] + 2))
    g[1:-1, 1:-1] = initial(*GRID)
    for _ in range(ITERS):
        g = step(g)
    return g[1:-1, 1:-1]


def main(comm):
    dims = dims_create(comm.size, 2)
    cart = cart_create(comm, dims)
    pr, pc = cart.coords
    rows, cols = GRID[0] // dims[0], GRID[1] // dims[1]

    local = np.zeros((rows + 2, cols + 2))
    local[1:-1, 1:-1] = initial(*GRID)[pr * rows:(pr + 1) * rows,
                                       pc * cols:(pc + 1) * cols]

    for _ in range(ITERS):
        # Dim 0 (rows): contiguous halo rows.
        cart.neighbor_sendrecv(
            0,
            np.ascontiguousarray(local[1, 1:-1]),      # my top face -> up
            np.ascontiguousarray(local[rows, 1:-1]),   # my bottom face -> down
            local[0, 1:-1], local[rows + 1, 1:-1], tag=1)
        # Dim 1 (cols): strided halo columns, copied through temporaries the
        # way a column datatype would.
        left_out = np.ascontiguousarray(local[1:-1, 1])
        right_out = np.ascontiguousarray(local[1:-1, cols])
        left_in = np.zeros(rows)
        right_in = np.zeros(rows)
        cart.neighbor_sendrecv(1, left_out, right_out, left_in, right_in,
                               tag=2)
        lo, hi = cart.shift(1, 1)
        if lo is not None:
            local[1:-1, 0] = left_in
        if hi is not None:
            local[1:-1, cols + 1] = right_in
        local = step(local)
    return pr, pc, local[1:-1, 1:-1]


if __name__ == "__main__":
    result = run(main, nprocs=PROCS)
    dims = dims_create(PROCS, 2)
    rows, cols = GRID[0] // dims[0], GRID[1] // dims[1]
    assembled = np.zeros(GRID)
    for pr, pc, block in result.results:
        assembled[pr * rows:(pr + 1) * rows, pc * cols:(pc + 1) * cols] = block
    reference = serial_reference()
    assert np.allclose(assembled, reference), "distributed != serial"
    print(f"diffusion on a {GRID[0]}x{GRID[1]} grid over a "
          f"{dims[0]}x{dims[1]} process grid, {ITERS} steps")
    print(f"peak temperature {assembled.max():.3f} "
          f"(matches serial reference: True)")
    print(f"max virtual time {result.max_clock * 1e6:.1f} us")
