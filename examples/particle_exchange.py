#!/usr/bin/env python
"""Particle ghost exchange (the LAMMPS motivation) on a rank ring.

Each rank owns a particle set and ships its border particles to the next
rank in a ring.  The border count varies per step, so the message is a
*dynamic* type — the case the paper says derived datatypes cannot express
"without complicated address manipulation and expensive datatype recreation
for every unique buffer".  Here the custom datatype carries the count
in-band and exposes the coordinate/velocity/charge arrays as memory regions.

Run:  python examples/particle_exchange.py
"""

import numpy as np

from repro.core import Region, type_create_custom
from repro.mpi import run

NRANKS = 4
STEPS = 3
N_LOCAL = 5_000


class BorderBatch:
    """Struct-of-arrays border set: x(3N), v(3N), q(N) plus the count."""

    def __init__(self, n=0):
        self.n = n
        self.x = np.zeros(3 * n)
        self.v = np.zeros(3 * n)
        self.q = np.zeros(n)

    @classmethod
    def select(cls, rng, step, rank):
        """A per-step, per-rank border set of varying size."""
        n = int(rng.integers(100, 900))
        b = cls(n)
        b.x[:] = rank + step + np.arange(3 * n) * 1e-4
        b.v[:] = -rank - np.arange(3 * n) * 1e-5
        b.q[:] = np.sign(np.sin(np.arange(n) + rank))
        return b

    def checksum(self):
        return float(self.x.sum() + self.v.sum() + self.q.sum())


def border_datatype():
    """Custom type: int64 count in-band; x, v, q as regions.

    On the receive side the count arrives first (unpack), after which the
    region query can allocate correctly sized arrays — the ordering the
    engine guarantees.
    """

    def query_fn(state, buf, count):
        return 8

    def pack_fn(state, buf, count, offset, dst):
        header = np.asarray(buf.n, dtype="<i8").reshape(1).view(np.uint8)
        step = min(dst.shape[0], 8 - offset)
        dst[:step] = header[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        header = np.zeros(1, dtype="<i8").view(np.uint8)
        header[offset:offset + src.shape[0]] = src
        buf.n = int(header.view("<i8")[0])
        buf.x = np.empty(3 * buf.n)
        buf.v = np.empty(3 * buf.n)
        buf.q = np.empty(buf.n)

    def region_count_fn(state, buf, count):
        return 3

    def region_fn(state, buf, count, n):
        return [Region(buf.x), Region(buf.v), Region(buf.q)]

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn,
                              region_count_fn=region_count_fn,
                              region_fn=region_fn, inorder=True,
                              name="custom:border-batch")


def main(comm):
    dtype = border_datatype()
    rng = np.random.default_rng(1000 + comm.rank)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    received = []

    for step in range(STEPS):
        outgoing = BorderBatch.select(rng, step, comm.rank)
        # Post the receive first, then send: a deadlock-free ring.
        inbox = BorderBatch()
        rreq = comm.irecv(inbox, source=left, tag=step, datatype=dtype)
        sreq = comm.isend(outgoing, dest=right, tag=step, datatype=dtype)
        rreq.wait()
        sreq.wait()
        received.append((inbox.n, inbox.checksum()))
        print(f"[rank {comm.rank}] step {step}: sent {outgoing.n} particles, "
              f"received {inbox.n} from rank {left}")
    return received


def expected(rank):
    """Recompute what `rank` should have received from its left neighbor."""
    left = (rank - 1) % NRANKS
    rng = np.random.default_rng(1000 + left)
    out = []
    for step in range(STEPS):
        b = BorderBatch.select(rng, step, left)
        out.append((b.n, b.checksum()))
    return out


if __name__ == "__main__":
    result = run(main, nprocs=NRANKS)
    for rank in range(NRANKS):
        got = result.results[rank]
        want = expected(rank)
        assert len(got) == len(want)
        for (gn, gc), (wn, wc) in zip(got, want):
            assert gn == wn and abs(gc - wc) < 1e-6 * max(abs(wc), 1.0)
    print(f"ring exchange verified on {NRANKS} ranks, {STEPS} steps; "
          f"max virtual time {result.max_clock * 1e6:.1f} us")
