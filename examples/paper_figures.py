#!/usr/bin/env python
"""Regenerate any of the paper's figures/tables from the command line.

Examples::

    python examples/paper_figures.py --list
    python examples/paper_figures.py fig5 fig7
    python examples/paper_figures.py --all --quick
    python examples/paper_figures.py fig8 --full
"""

import argparse
import sys

from repro.bench import ALL_FIGURES, fig10_ddtbench, format_figure
from repro.ddtbench import format_table1


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("figures", nargs="*",
                    help="figure ids (fig1..fig10, table1)")
    ap.add_argument("--all", action="store_true", help="regenerate everything")
    ap.add_argument("--full", action="store_true",
                    help="full paper size ranges (slower)")
    ap.add_argument("--list", action="store_true", help="list figure ids")
    args = ap.parse_args(argv)

    ids = list(ALL_FIGURES) + ["fig10", "table1"]
    if args.list:
        print("\n".join(ids))
        return 0
    wanted = ids if args.all else args.figures
    if not wanted:
        ap.error("give figure ids, --all, or --list")

    for fid in wanted:
        if fid == "table1":
            print(f"== table1: DDTBench characteristics ==")
            print(format_table1())
        elif fid == "fig10":
            print(format_figure(fig10_ddtbench(), width=13))
        elif fid in ALL_FIGURES:
            print(format_figure(ALL_FIGURES[fid](quick=not args.full)))
        else:
            print(f"unknown figure {fid!r}; try --list", file=sys.stderr)
            return 2
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
