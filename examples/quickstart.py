#!/usr/bin/env python
"""Quickstart: send a Python object with a custom MPI datatype.

Runs a 2-rank SPMD job in-process (the simulator's ``mpiexec``), declares a
struct once with :class:`repro.core.StructSpec`, and moves an object whose
dynamic array travels as a zero-copy memory region while the scalars and the
array length travel in-band — the two-stage protocol of the paper's
Section III.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Field, StructSpec
from repro.mpi import run

# Declare the type once (the RSMPI derive-macro analogue).  `shape="dynamic"`
# means the array length is only known per object and is carried in-band.
PARTICLE_BATCH = StructSpec([
    Field("step", "<i8"),
    Field("energy", "<f8"),
    Field("positions", "<f8", shape="dynamic"),
], name="particle-batch")


class Batch:
    """Any plain object with matching attributes works."""


def main(comm):
    dtype = PARTICLE_BATCH.custom_datatype()

    if comm.rank == 0:
        batch = Batch()
        batch.step = 42
        batch.energy = -17.25
        batch.positions = np.linspace(0.0, 1.0, 30_000)
        comm.send(batch, dest=1, tag=0, datatype=dtype)
        print(f"[rank 0] sent step={batch.step} with "
              f"{batch.positions.nbytes} B of positions "
              f"(virtual time {comm.clock.now * 1e6:.2f} us)")
    else:
        batch = Batch()
        status = comm.recv(batch, source=0, tag=0, datatype=dtype)
        print(f"[rank 1] got step={batch.step} energy={batch.energy} "
              f"positions[:3]={batch.positions[:3]} "
              f"({status.nbytes} B on the wire, "
              f"virtual time {comm.clock.now * 1e6:.2f} us)")
        assert batch.step == 42
        assert np.isclose(batch.positions.sum(), 15_000.0)
    return comm.clock.now


if __name__ == "__main__":
    result = run(main, nprocs=2)
    print(f"done; per-rank virtual clocks: "
          f"{[f'{t * 1e6:.2f} us' for t in result.clocks]}")
