"""Error codes and exception hierarchy.

The paper stresses that the custom-datatype callbacks propagate failures via
return values (``MPI_SUCCESS`` or an error code), because serialization
libraries can fail on invalid data.  In Python the natural equivalent is an
exception hierarchy; every callback failure is wrapped into an
:class:`MPIError` carrying the closest MPI error class so that applications
can still dispatch on numeric codes.
"""

from __future__ import annotations

# Numeric error classes, mirroring the MPI standard's error classes that the
# prototype maps callback failures onto.
MPI_SUCCESS = 0
MPI_ERR_BUFFER = 1
MPI_ERR_COUNT = 2
MPI_ERR_TYPE = 3
MPI_ERR_TAG = 4
MPI_ERR_COMM = 5
MPI_ERR_RANK = 6
MPI_ERR_REQUEST = 7
MPI_ERR_TRUNCATE = 15
MPI_ERR_INTERN = 17
MPI_ERR_PENDING = 18
MPI_ERR_ARG = 13
MPI_ERR_OTHER = 16

_ERROR_NAMES = {
    MPI_SUCCESS: "MPI_SUCCESS",
    MPI_ERR_BUFFER: "MPI_ERR_BUFFER",
    MPI_ERR_COUNT: "MPI_ERR_COUNT",
    MPI_ERR_TYPE: "MPI_ERR_TYPE",
    MPI_ERR_TAG: "MPI_ERR_TAG",
    MPI_ERR_COMM: "MPI_ERR_COMM",
    MPI_ERR_RANK: "MPI_ERR_RANK",
    MPI_ERR_REQUEST: "MPI_ERR_REQUEST",
    MPI_ERR_TRUNCATE: "MPI_ERR_TRUNCATE",
    MPI_ERR_INTERN: "MPI_ERR_INTERN",
    MPI_ERR_PENDING: "MPI_ERR_PENDING",
    MPI_ERR_ARG: "MPI_ERR_ARG",
    MPI_ERR_OTHER: "MPI_ERR_OTHER",
}


def error_name(code: int) -> str:
    """Return the symbolic name for an MPI error class."""
    return _ERROR_NAMES.get(code, f"MPI_ERR_UNKNOWN({code})")


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MPIError(ReproError):
    """An MPI-level failure carrying a numeric error class.

    Parameters
    ----------
    code:
        One of the ``MPI_ERR_*`` constants.
    message:
        Human-readable description.
    """

    def __init__(self, code: int, message: str = ""):
        self.code = code
        super().__init__(f"{error_name(code)}: {message}" if message else error_name(code))


class TruncationError(MPIError):
    """Receive buffer too small for the matched message."""

    def __init__(self, message: str = ""):
        super().__init__(MPI_ERR_TRUNCATE, message)


class TypeError_(MPIError):
    """Datatype mismatch or malformed datatype construction."""

    def __init__(self, message: str = ""):
        super().__init__(MPI_ERR_TYPE, message)


class CallbackError(MPIError):
    """A user-provided custom-datatype callback failed.

    The original exception (or numeric code returned by the callback) is
    preserved so applications can recover serializer-specific detail.
    """

    def __init__(self, message: str = "", cause: BaseException | None = None,
                 code: int = MPI_ERR_OTHER):
        super().__init__(code, message)
        self.__cause__ = cause


class TransportError(ReproError):
    """Failure inside the simulated UCP transport."""


class RuntimeAbort(ReproError):
    """Raised when a rank in an SPMD job failed; aggregates per-rank errors."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        detail = "; ".join(f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(failures.items()))
        super().__init__(f"{len(failures)} rank(s) failed: {detail}")
