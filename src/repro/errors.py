"""Error codes and exception hierarchy.

The paper stresses that the custom-datatype callbacks propagate failures via
return values (``MPI_SUCCESS`` or an error code), because serialization
libraries can fail on invalid data.  In Python the natural equivalent is an
exception hierarchy; every callback failure is wrapped into an
:class:`MPIError` carrying the closest MPI error class so that applications
can still dispatch on numeric codes.
"""

from __future__ import annotations

# Numeric error classes, mirroring the MPI standard's error classes that the
# prototype maps callback failures onto.
MPI_SUCCESS = 0
MPI_ERR_BUFFER = 1
MPI_ERR_COUNT = 2
MPI_ERR_TYPE = 3
MPI_ERR_TAG = 4
MPI_ERR_COMM = 5
MPI_ERR_RANK = 6
MPI_ERR_REQUEST = 7
MPI_ERR_ROOT = 8
MPI_ERR_GROUP = 9
MPI_ERR_OP = 10
MPI_ERR_TOPOLOGY = 11
MPI_ERR_DIMS = 12
MPI_ERR_ARG = 13
MPI_ERR_UNKNOWN = 14
MPI_ERR_TRUNCATE = 15
MPI_ERR_OTHER = 16
MPI_ERR_INTERN = 17
MPI_ERR_PENDING = 18
MPI_ERR_IN_STATUS = 19
MPI_ERR_NO_MEM = 20
# ULFM-style fault-tolerance classes (MPI 4.x / User-Level Failure
# Mitigation): surfaced by the fault-injected fabric when a peer process
# crashed or a transfer could not be recovered by the reliability protocol.
MPI_ERR_PROC_FAILED = 21
MPI_ERR_REVOKED = 22
MPI_ERR_PROC_FAILED_PENDING = 23

#: Symbolic name for every code above, generated from the module globals so
#: the table can never fall out of sync with a newly added ``MPI_ERR_*``.
_ERROR_NAMES = {
    value: name
    for name, value in sorted(vars().items())
    if name == "MPI_SUCCESS" or name.startswith("MPI_ERR_")
}

#: One-line descriptions (the MPI_Error_string analogue).
_ERROR_STRINGS = {
    MPI_SUCCESS: "no error",
    MPI_ERR_BUFFER: "invalid buffer pointer",
    MPI_ERR_COUNT: "invalid count argument",
    MPI_ERR_TYPE: "invalid datatype argument",
    MPI_ERR_TAG: "invalid tag argument",
    MPI_ERR_COMM: "invalid communicator",
    MPI_ERR_RANK: "invalid rank",
    MPI_ERR_REQUEST: "invalid request (handle)",
    MPI_ERR_ROOT: "invalid root",
    MPI_ERR_GROUP: "invalid group",
    MPI_ERR_OP: "invalid operation",
    MPI_ERR_TOPOLOGY: "invalid topology",
    MPI_ERR_DIMS: "invalid dimension argument",
    MPI_ERR_ARG: "invalid argument of some other kind",
    MPI_ERR_UNKNOWN: "unknown error",
    MPI_ERR_TRUNCATE: "message truncated on receive",
    MPI_ERR_OTHER: "known error not in this list",
    MPI_ERR_INTERN: "internal MPI (implementation) error",
    MPI_ERR_PENDING: "pending request",
    MPI_ERR_IN_STATUS: "error code is in status",
    MPI_ERR_NO_MEM: "memory is exhausted",
    MPI_ERR_PROC_FAILED: "a peer process has failed",
    MPI_ERR_REVOKED: "the communicator has been revoked",
    MPI_ERR_PROC_FAILED_PENDING: "a pending operation may never complete "
                                 "because a potential peer has failed",
}


def error_name(code: int) -> str:
    """Return the symbolic name for an MPI error class."""
    return _ERROR_NAMES.get(code, f"MPI_ERR_UNKNOWN({code})")


def error_string(code: int) -> str:
    """Human-readable description of an error class (MPI_Error_string)."""
    try:
        return f"{_ERROR_NAMES[code]}: {_ERROR_STRINGS[code]}"
    except KeyError:
        return f"MPI_ERR_UNKNOWN({code}): unrecognized error class"


def error_code(name: str) -> int:
    """Inverse of :func:`error_name`; raises KeyError for unknown names."""
    for code, known in _ERROR_NAMES.items():
        if known == name:
            return code
    raise KeyError(f"unknown MPI error class name {name!r}")


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MPIError(ReproError):
    """An MPI-level failure carrying a numeric error class.

    Parameters
    ----------
    code:
        One of the ``MPI_ERR_*`` constants.
    message:
        Human-readable description.
    """

    def __init__(self, code: int, message: str = ""):
        self.code = code
        super().__init__(f"{error_name(code)}: {message}" if message else error_name(code))


class TruncationError(MPIError):
    """Receive buffer too small for the matched message."""

    def __init__(self, message: str = ""):
        super().__init__(MPI_ERR_TRUNCATE, message)


class TypeError_(MPIError):
    """Datatype mismatch or malformed datatype construction."""

    def __init__(self, message: str = ""):
        super().__init__(MPI_ERR_TYPE, message)


class CallbackError(MPIError):
    """A user-provided custom-datatype callback failed.

    The original exception (or numeric code returned by the callback) is
    preserved so applications can recover serializer-specific detail.
    """

    def __init__(self, message: str = "", cause: BaseException | None = None,
                 code: int = MPI_ERR_OTHER):
        super().__init__(code, message)
        self.__cause__ = cause


class DiagnosticError(MPIError):
    """Static-analysis findings promoted to a hard failure.

    Raised by :mod:`repro.analyze` entry points that run in enforcing mode;
    carries the diagnostics (each of which maps to an ``MPI_ERR_*`` class via
    its code table entry) so callers can still dispatch numerically.
    """

    def __init__(self, message: str = "", code: int = MPI_ERR_TYPE,
                 diagnostics=()):
        super().__init__(code, message)
        #: The :class:`repro.analyze.Diagnostic` findings behind the failure.
        self.diagnostics = list(diagnostics)


class DeadlockError(MPIError):
    """The runtime sanitizer detected a distributed deadlock.

    Raised in every blocked rank once a wait-for cycle (or a wait on a
    terminated rank) is proven, releasing the job in bounded time instead
    of hitting the wall-clock timeout.  The full cycle evidence lives in
    the job's sanitizer report (diagnostic RPD440).
    """

    def __init__(self, message: str = ""):
        super().__init__(MPI_ERR_PENDING, message)


class ProcFailedError(MPIError):
    """A peer process crashed or a transfer could not be recovered.

    The ULFM ``MPI_ERR_PROC_FAILED`` class: raised by waits that depend on
    a crashed rank, by sends whose reliability retry budget ran out, and by
    receives matching a message the sender could not get through.  Carries
    the world ranks believed to have failed (``failed_ranks``) so
    applications running under ``MPI_ERRORS_RETURN`` can shrink around
    them.
    """

    def __init__(self, message: str = "", failed_ranks=()):
        super().__init__(MPI_ERR_PROC_FAILED, message)
        self.failed_ranks = tuple(sorted(failed_ranks))


class ProcFailedPendingError(MPIError):
    """A wildcard (ANY_SOURCE) operation may never complete.

    The ULFM ``MPI_ERR_PROC_FAILED_PENDING`` class: some — but not all —
    potential senders of a wildcard receive have failed, so the operation
    is still matchable but can no longer be guaranteed to complete.
    """

    def __init__(self, message: str = "", failed_ranks=()):
        super().__init__(MPI_ERR_PROC_FAILED_PENDING, message)
        self.failed_ranks = tuple(sorted(failed_ranks))


class RevokedError(MPIError):
    """Operation on a communicator that has been revoked (ULFM)."""

    def __init__(self, message: str = ""):
        super().__init__(MPI_ERR_REVOKED, message)


class RankCrashError(ReproError):
    """A fault plan killed this rank at a scheduled virtual time.

    Deliberately *not* an :class:`MPIError`: the crashed process does not
    observe an MPI error class — it simply stops.  Peers observe the crash
    as :class:`ProcFailedError` through the failure detector.
    """

    def __init__(self, rank: int, vtime: float):
        self.rank = rank
        self.vtime = vtime
        super().__init__(f"rank {rank} crashed by fault plan at "
                         f"virtual t={vtime:.3e}s")


class PoolLeakError(ReproError):
    """A job returned its warm worker set with buffers still outstanding.

    Raised by :meth:`repro.ucp.memory.BufferPool.reset_for_job` /
    :meth:`repro.ucp.memory.MemoryTracker.reset_for_job` at the job
    boundary, so a leak in job N is attributed to job N instead of being
    discovered hundreds of jobs later as unexplained pool growth.  Carries
    the offending job's label and the leak size.
    """

    def __init__(self, job: str, outstanding: int, leaked_bytes: int):
        self.job = job
        self.outstanding = outstanding
        self.leaked_bytes = leaked_bytes
        super().__init__(
            f"job {job!r} leaked {outstanding} pool buffer(s) "
            f"({leaked_bytes} bytes) — reset_for_job requires a balanced "
            f"pool at the job boundary")


class TimeBudgetExceeded(ReproError):
    """A rank exhausted its job's virtual-time budget.

    Deliberately *not* an :class:`MPIError` — like a fault-plan crash, the
    rank simply stops where the quota cut it off.  The job service
    classifies the resulting abort as a deterministic quota failure (the
    same program replayed gets the same virtual time), so it is never
    retried.
    """

    def __init__(self, budget: float, now: float):
        self.budget = budget
        self.now = now
        super().__init__(f"virtual-time budget exhausted: t={now:.3e}s "
                         f"exceeds the job's budget of {budget:.3e}s")


class MemoryQuotaError(MPIError):
    """A rank exceeded its job's transient-memory ceiling.

    The ``MPI_ERR_NO_MEM`` class: raised by
    :meth:`repro.ucp.memory.MemoryTracker` accounting when live transient
    bytes would cross the per-job ceiling.  Raised *before* a pool buffer
    is handed out, so the breach never strands pool state.
    """

    def __init__(self, ceiling: int, live_bytes: int, requested: int):
        self.ceiling = ceiling
        self.live_bytes = live_bytes
        self.requested = requested
        super().__init__(
            MPI_ERR_NO_MEM,
            f"transient allocation of {requested} bytes would put "
            f"{live_bytes} live bytes over the job's {ceiling}-byte "
            f"ceiling")


class TransportError(ReproError):
    """Failure inside the simulated UCP transport."""


class RuntimeAbort(ReproError):
    """Raised when a rank in an SPMD job failed; aggregates per-rank errors."""

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        #: Sanitizer findings gathered before the abort (set by the runtime
        #: when the job ran with ``sanitize=True``).
        self.sanitizer_report = None
        detail = "; ".join(f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(failures.items()))
        super().__init__(f"{len(failures)} rank(s) failed: {detail}")
