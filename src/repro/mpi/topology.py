"""Cartesian process topologies (MPI_Cart_create and friends).

The DDTBench/NAS workloads are halo exchanges on process grids; this module
provides the standard topology helpers so the examples and applications can
write dimension-generic neighbour exchanges:

* :func:`dims_create` — factor a rank count into a balanced grid
  (MPI_Dims_create),
* :class:`CartComm` — a communicator wrapper with coordinate queries and
  :meth:`CartComm.shift` for halo partners (MPI_Cart_shift).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import MPI_ERR_ARG, MPI_ERR_COMM, MPIError
from .comm import Communicator


def dims_create(nnodes: int, ndims: int,
                dims: Optional[Sequence[int]] = None) -> list[int]:
    """Factor ``nnodes`` into ``ndims`` balanced factors (MPI_Dims_create).

    Entries of ``dims`` that are nonzero are kept fixed; zeros are filled
    with the most balanced factorization (larger factors first).
    """
    out = list(dims) if dims is not None else [0] * ndims
    if len(out) != ndims:
        raise MPIError(MPI_ERR_ARG, f"dims has {len(out)} entries, ndims={ndims}")
    fixed = 1
    free = []
    for i, d in enumerate(out):
        if d < 0:
            raise MPIError(MPI_ERR_ARG, f"negative dimension {d}")
        if d:
            fixed *= d
        else:
            free.append(i)
    if fixed == 0 or nnodes % fixed:
        raise MPIError(MPI_ERR_ARG,
                       f"{nnodes} ranks not divisible by fixed dims {out}")
    rem = nnodes // fixed
    if not free:
        if rem != 1:
            raise MPIError(MPI_ERR_ARG,
                           f"fixed dims {out} use only {fixed} of {nnodes} ranks")
        return out
    # Greedy balanced factorization of ``rem`` over the free slots.
    factors = []
    n = rem
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    sizes = [1] * len(free)
    for f in sorted(factors, reverse=True):
        sizes[sizes.index(min(sizes))] *= f
    for slot, size in zip(free, sorted(sizes, reverse=True)):
        out[slot] = size
    return out


class CartComm:
    """A communicator with Cartesian coordinates (row-major rank order)."""

    def __init__(self, comm: Communicator, dims: Sequence[int],
                 periodic: Sequence[bool] | None = None):
        self.comm = comm
        self.dims = [int(d) for d in dims]
        if any(d <= 0 for d in self.dims):
            raise MPIError(MPI_ERR_ARG, f"dimensions must be positive: {self.dims}")
        total = 1
        for d in self.dims:
            total *= d
        if total != comm.size:
            raise MPIError(MPI_ERR_COMM,
                           f"grid {self.dims} needs {total} ranks, "
                           f"communicator has {comm.size}")
        self.periodic = list(periodic) if periodic is not None \
            else [False] * len(self.dims)
        if len(self.periodic) != len(self.dims):
            raise MPIError(MPI_ERR_ARG, "periodic flags must match ndims")

    # -- coordinate mapping ------------------------------------------------

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords_of(self, rank: int) -> list[int]:
        """MPI_Cart_coords: row-major decomposition of ``rank``."""
        if not 0 <= rank < self.comm.size:
            raise MPIError(MPI_ERR_ARG, f"rank {rank} outside grid")
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return coords[::-1]

    def rank_of(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank (periodic wrap where allowed)."""
        if len(coords) != self.ndims:
            raise MPIError(MPI_ERR_ARG, f"expected {self.ndims} coordinates")
        rank = 0
        for d, c, per in zip(self.dims, coords, self.periodic):
            if per:
                c %= d
            elif not 0 <= c < d:
                raise MPIError(MPI_ERR_ARG,
                               f"coordinate {c} outside non-periodic dim {d}")
            rank = rank * d + c
        return rank

    @property
    def coords(self) -> list[int]:
        """This rank's coordinates."""
        return self.coords_of(self.comm.rank)

    def shift(self, dim: int, disp: int = 1) -> tuple[Optional[int], Optional[int]]:
        """MPI_Cart_shift: (source, dest) ranks for a ``disp`` shift.

        ``None`` stands for MPI_PROC_NULL at non-periodic edges.
        """
        if not 0 <= dim < self.ndims:
            raise MPIError(MPI_ERR_ARG, f"dimension {dim} out of range")
        me = self.coords

        def neighbour(delta: int) -> Optional[int]:
            c = list(me)
            c[dim] += delta
            if not self.periodic[dim] and not 0 <= c[dim] < self.dims[dim]:
                return None
            return self.rank_of(c)

        return neighbour(-disp), neighbour(+disp)

    # -- neighbour exchange convenience --------------------------------------

    def neighbor_sendrecv(self, dim: int, sendbuf_low, sendbuf_high,
                          recvbuf_low, recvbuf_high, tag: int = 0,
                          datatype=None, count=None) -> None:
        """Exchange halos with both neighbours along ``dim``.

        Sends ``sendbuf_low`` toward the lower neighbour and
        ``sendbuf_high`` toward the upper one; receives symmetrically.
        Missing neighbours (non-periodic edges) are skipped.
        """
        lo, hi = self.shift(dim, 1)
        # Direction-coded tags: on a 2-rank periodic ring both neighbours are
        # the same process, so "travelling down" and "travelling up" must be
        # distinguishable or the two halos would cross.
        tag_down = (tag << 1) & 0x3FFFFFFF        # toward lower coordinate
        tag_up = ((tag << 1) | 1) & 0x3FFFFFFF    # toward higher coordinate
        reqs = []
        if lo is not None:
            reqs.append(self.comm.irecv(recvbuf_low, source=lo, tag=tag_up,
                                        datatype=datatype, count=count))
            reqs.append(self.comm.isend(sendbuf_low, dest=lo, tag=tag_down,
                                        datatype=datatype, count=count))
        if hi is not None:
            reqs.append(self.comm.irecv(recvbuf_high, source=hi, tag=tag_down,
                                        datatype=datatype, count=count))
            reqs.append(self.comm.isend(sendbuf_high, dest=hi, tag=tag_up,
                                        datatype=datatype, count=count))
        for r in reqs:
            r.wait()


def cart_create(comm: Communicator, dims: Sequence[int],
                periodic: Sequence[bool] | None = None) -> CartComm:
    """MPI_Cart_create over a duplicated communicator (isolated tag space)."""
    return CartComm(comm.dup(), dims, periodic)
