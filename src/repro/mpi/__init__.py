"""Simplified MPI implementation (the paper's "mpicd" analogue in Python).

Quickstart::

    import numpy as np
    from repro.mpi import run

    def main(comm):
        if comm.rank == 0:
            comm.send(np.arange(8, dtype=np.int32), dest=1, tag=5)
        else:
            buf = np.zeros(8, dtype=np.int32)
            comm.recv(buf, source=0, tag=5)
            return buf

    print(run(main).results[1])
"""

from .comm import (ERRORS_ARE_FATAL, ERRORS_RETURN, MAX_USER_TAG,
                   Communicator, MessageHandle, PersistentRequest)
from .engine import EngineConfig, TransferEngine
from .pack_external import pack_into, pack_size, unpack_from
from .requests import ANY_SOURCE, ANY_TAG, CompletedRequest, Request, Status
from .runtime import JobResult, run
from .topology import CartComm, cart_create, dims_create

__all__ = [
    "Communicator", "MessageHandle", "PersistentRequest", "MAX_USER_TAG",
    "ERRORS_ARE_FATAL", "ERRORS_RETURN",
    "TransferEngine", "EngineConfig",
    "Request", "CompletedRequest", "Status", "ANY_SOURCE", "ANY_TAG",
    "run", "JobResult",
    "pack_size", "pack_into", "unpack_from",
    "CartComm", "cart_create", "dims_create",
]
