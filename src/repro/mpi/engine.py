"""The transfer engine: datatype-aware send/receive over the transport.

This is the Python analogue of the paper's ``mpicd`` middle layer.  For every
send/receive it selects a transport descriptor and charges virtual time:

========================  ==========================  =========================
datatype                  transport descriptor        modelled cost
========================  ==========================  =========================
predefined / contiguous   CONTIG (zero-copy)          protocol only
derived, non-contiguous   CONTIG over a temp buffer   alloc + typemap walk
                                                      (per-block ``elem_cost``
                                                      — the Open MPI gap
                                                      penalty of Fig. 5)
custom                    IOV: packed fragments        callbacks + packed-byte
                          first, then regions          copies; regions move
                          (CONTIG when the whole       zero-copy
                          message is one region)
========================  ==========================  =========================

Receive-side custom delivery runs as a :class:`~repro.ucp.dtypes.HandlerData`
callback on the receiving thread: unpack the in-band fragments first, *then*
query the receiver's regions (whose placement may depend on the unpacked
metadata) and scatter into them — the two-stage choreography of Section III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.custom import (CustomDatatype, CustomRecvOperation,
                           CustomSendOperation)
from ..core.datatype import Datatype
from ..core.packing import pack, packed_size, unpack
from ..errors import MPIError, TruncationError
from ..ucp.context import Worker
from ..ucp.dtypes import ContigData, HandlerData, IovData
from ..ucp.wire import WireMessage
from .requests import Request, Status


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level knobs (transport knobs live in LinkParams)."""

    #: Deliver packed fragments of custom types in reverse order when the
    #: type allows it (``inorder=False``) — the out-of-order ablation.
    ooo_fragments: bool = False


class TransferEngine:
    """Per-rank datatype engine bound to one transport worker."""

    def __init__(self, worker: Worker, config: EngineConfig | None = None):
        self.worker = worker
        self.model = worker.model
        self.config = config or EngineConfig()

    @property
    def frag_size(self) -> int:
        return self.worker.config.frag_size

    # ------------------------------------------------------------------
    # send
    # ------------------------------------------------------------------

    def start_send(self, dest: int, tag64: int, buf, count: int,
                   dtype: Datatype, sync: bool = False) -> Request:
        """Start a send; ``sync=True`` gives MPI_Ssend completion semantics
        (the custom/IOV path is already rendezvous-like, so the flag only
        changes contiguous transfers)."""
        ep = self.worker.endpoint(dest)
        san = self.worker.sanitizer
        if isinstance(dtype, CustomDatatype):
            req = self._send_custom(ep, tag64, buf, count, dtype)
        elif dtype.is_contiguous:
            nbytes = packed_size(dtype, count)
            sig = dtype.signature(count) if san is not None else None
            treq = ep.tag_send(tag64, ContigData(buf, nbytes),
                               force_rndv=sync, signature=sig)
            req = Request(treq)
        else:
            req = self._send_derived(ep, tag64, buf, count, dtype, sync=sync)
        if san is not None:
            self._sanitize_send(san, req, buf, count, dtype, dest, tag64)
        return req

    def _sanitize_send(self, san, req: Request, buf, count: int,
                       dtype: Datatype, dest: int, tag64: int) -> None:
        """Register the send with the sanitizer (shadow buffer + label)."""
        if isinstance(dtype, CustomDatatype):
            san.check_custom_lifecycle(self.worker.index, dtype)
        san.on_send_posted(self.worker.index, req, buf, dtype, count,
                           dest, tag64)
        rec = req._san_record
        if rec is not None and req._req is not None:
            req._req.san_detail = rec.label

    def _send_derived(self, ep, tag64: int, buf, count: int,
                      dtype: Datatype, sync: bool = False) -> Request:
        """Pack through the typemap engine, then send contiguous."""
        nbytes = packed_size(dtype, count)
        clock = self.worker.clock
        temp = self.worker.memory.acquire(nbytes, clock, self.model)
        pack(dtype, buf, count, out=temp)
        nblocks = count * len(dtype.typemap.merged_blocks())
        clock.advance(self.model.typemap_pack_time(nblocks, nbytes))
        sig = dtype.signature(count) if self.worker.sanitizer is not None \
            else None
        req = ep.tag_send(tag64, ContigData(temp, nbytes), force_rndv=sync,
                          signature=sig)
        self.worker.memory.release(temp)  # transport copied or owns the ref
        if not req.msg.rndv:
            # Eager staging copied the bytes; the bounce buffer is free now.
            # Rendezvous keeps a live view — delivery returns it instead.
            self.worker.memory.pool.release(temp)
        return Request(req)

    def _send_custom(self, ep, tag64: int, buf, count: int,
                     dtype: CustomDatatype) -> Request:
        clock = self.worker.clock
        with CustomSendOperation(dtype, buf, count) as op:
            frags = op.pack_fragments(self.frag_size)
            regions = op.regions()
            packed_bytes = sum(int(f.shape[0]) for f in frags)
            clock.advance(self.model.callback_time(op.ncallbacks)
                          + self.model.copy_time(packed_bytes))
        if not frags and len(regions) == 1:
            # Single contiguous buffer: the prototype prefers CONTIG.
            desc = ContigData(regions[0].read_bytes())
        elif not frags and not regions:
            desc = ContigData(np.empty(0, dtype=np.uint8))
        else:
            entries = [np.asarray(f) for f in frags]
            entries += [r.read_bytes() for r in regions]
            desc = IovData(entries, packed_entries=len(frags))
        return Request(ep.tag_send(tag64, desc))

    # ------------------------------------------------------------------
    # receive
    # ------------------------------------------------------------------

    def start_recv(self, tag64: int, mask: int, buf, count: int,
                   dtype: Datatype, peers=None) -> Request:
        san = self.worker.sanitizer
        if isinstance(dtype, CustomDatatype):
            desc = HandlerData(self._custom_recv_handler(buf, count, dtype))
            treq = self.worker.tag_recv(tag64, desc, mask, peers=peers)
            req = Request(treq)
        elif dtype.is_contiguous:
            nbytes = packed_size(dtype, count)
            desc = ContigData(buf, nbytes, writable=True)
            if san is not None:
                desc.expected_signature = dtype.signature(count)
            treq = self.worker.tag_recv(tag64, desc, mask, peers=peers)
            req = Request(treq)
        else:
            req = self._recv_derived(tag64, mask, buf, count, dtype,
                                     peers=peers)
        if san is not None:
            self._sanitize_recv(san, req, buf, count, dtype, peers, tag64)
        return req

    def _sanitize_recv(self, san, req: Request, buf, count: int,
                       dtype: Datatype, peers, tag64: int) -> None:
        """Register the receive with the sanitizer (shadow buffer + label)."""
        if isinstance(dtype, CustomDatatype):
            san.check_custom_lifecycle(self.worker.index, dtype)
        san.on_recv_posted(self.worker.index, req, buf, dtype, count,
                           peers, tag64)
        rec = req._san_record
        if rec is not None and req._req is not None:
            req._req.san_detail = rec.label

    def _recv_derived(self, tag64: int, mask: int, buf, count: int,
                      dtype: Datatype, peers=None) -> Request:
        nbytes = packed_size(dtype, count)
        clock = self.worker.clock
        temp = self.worker.memory.acquire(nbytes, clock, self.model)
        desc = ContigData(temp, nbytes, writable=True)
        if self.worker.sanitizer is not None:
            desc.expected_signature = dtype.signature(count)
        treq = self.worker.tag_recv(tag64, desc, mask, peers=peers)

        def on_complete() -> Status:
            try:
                info = treq.wait()
                got = info.nbytes
                if got % max(dtype.size, 1):
                    raise TruncationError(
                        f"received {got} bytes, not a whole number of "
                        f"{dtype.size}-byte elements")
                nelem = got // dtype.size if dtype.size else 0
                unpack(dtype, buf, nelem, temp[:got])
                nblocks = nelem * len(dtype.typemap.merged_blocks())
                clock.advance(self.model.typemap_pack_time(nblocks, got))
            except BaseException:
                # Failed delivery (truncation, peer failure, poisoned
                # message) must not strand the bounce buffer in the pool's
                # outstanding set.
                self.worker.memory.recycle(temp)
                raise
            self.worker.memory.recycle(temp)
            return Status.from_recv_info(info)

        def on_cancel() -> None:
            self.worker.memory.recycle(temp)

        return Request(treq, on_complete=on_complete, on_cancel=on_cancel)

    def _custom_recv_handler(self, buf, count: int, dtype: CustomDatatype):
        """Build the delivery handler that runs on the receiving thread."""
        engine = self

        def handler(msg: WireMessage) -> int:
            engine.deliver_custom(msg, buf, count, dtype)
            return msg.header.total_bytes

        return handler

    def deliver_custom(self, msg: WireMessage, buf, count: int,
                       dtype: CustomDatatype) -> None:
        """Scatter one wire message through the custom-type callbacks."""
        hdr = msg.header
        k = hdr.packed_entries
        chunks = msg.chunks
        clock = self.worker.clock
        san = self.worker.sanitizer
        with CustomRecvOperation(dtype, buf, count) as op:
            if san is not None:
                # Contract check on live traffic: what the receiver's query
                # callback promises must be what the sender actually packed.
                # Recv-side queries may legitimately fail on not-yet-filled
                # objects; only a successful, definite promise is compared.
                try:
                    promised = op.expected_packed_size()
                except Exception:
                    promised = -1
                actual = sum(int(n) for n in hdr.entry_lengths[:k])
                san.check_packed_promise(self.worker.index, hdr.source,
                                         dtype, promised, actual)
            packed = list(zip(self._offsets(hdr.entry_lengths[:k]), chunks[:k]))
            if self.config.ooo_fragments and not dtype.inorder and len(packed) > 1:
                packed = packed[::-1]
            for offset, chunk in packed:
                op.unpack_fragment(offset, chunk)
            region_lens = list(hdr.entry_lengths[k:])
            try:
                regions = op.recv_regions(region_lens)
            except MPIError as exc:
                if san is not None:
                    san.report_region_mismatch(self.worker.index,
                                               hdr.source, dtype, exc)
                raise
            for chunk, region in zip(chunks[k:], regions):
                region.writable_view()[: chunk.shape[0]] = chunk
            clock.advance(self.model.callback_time(op.ncallbacks)
                          + self.model.copy_time(op.bytes_unpacked))

    def recv_custom_message(self, msg: WireMessage, buf, count: int,
                            dtype: CustomDatatype) -> Status:
        """Mprobe-style receive of an already-claimed custom message."""
        info = self.worker.msg_recv(
            msg, HandlerData(self._custom_recv_handler(buf, count, dtype)))
        return Status.from_recv_info(info)

    @staticmethod
    def _offsets(lengths) -> list[int]:
        out, pos = [], 0
        for n in lengths:
            out.append(pos)
            pos += int(n)
        return out
