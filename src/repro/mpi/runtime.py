"""SPMD runtime: run rank functions as threads over a shared fabric.

:func:`run` is the ``mpiexec`` of the simulator::

    from repro.mpi import run

    def main(comm):
        if comm.rank == 0:
            comm.send(data, dest=1)
        else:
            comm.recv(buf, source=0)

    result = run(main, nprocs=2)

Each rank runs in its own thread with its own worker (clock, matcher,
memory tracker).  Exceptions in any rank abort the job and are re-raised as
:class:`~repro.errors.RuntimeAbort` with all per-rank failures attached.  A
wall-clock ``timeout`` converts distributed deadlocks (e.g. two blocking
rendezvous sends facing each other) into errors instead of hangs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..errors import RankCrashError, RuntimeAbort
from ..ucp.context import Fabric, UcpConfig, UcpContext
from ..ucp.faults import FaultPlan, ReliabilityConfig
from ..ucp.netsim import LinkParams
from .comm import Communicator
from .engine import EngineConfig


@dataclass
class JobResult:
    """Everything a bench or test wants to know after a job."""

    results: list[Any]
    fabric: Fabric
    #: Final virtual time per rank (seconds).
    clocks: list[float] = field(default_factory=list)
    #: Memory tracker snapshots per rank.
    memory: list[dict[str, int]] = field(default_factory=list)
    #: Per-rank message traces (when tracing was enabled).
    traces: list[list[dict]] = field(default_factory=list)
    #: Sanitizer findings (a SanitizeReport when the job ran with
    #: ``sanitize=True``; None otherwise).
    sanitizer_report: Any = None
    #: Per-rank reliability counters (:class:`repro.ucp.faults.
    #: ReliabilityStats` snapshots); empty on a pristine fabric.
    reliability: list[dict] = field(default_factory=list)
    #: Per-channel fault/recovery event logs (``"src->dst"`` ->
    #: event dicts); deterministic for a given fault-plan seed.
    fault_trace: dict[str, list] = field(default_factory=dict)
    #: Ranks the fault plan crashed.  A scheduled crash is not an
    #: application failure: surviving ranks' results are still returned
    #: (their ``results`` entry), the crashed rank's entry stays None.
    crashed: list[int] = field(default_factory=list)

    @property
    def max_clock(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def run(fn: Callable[[Communicator], Any] | Sequence[Callable[[Communicator], Any]],
        nprocs: int = 2,
        params: Optional[LinkParams] = None,
        engine_config: Optional[EngineConfig] = None,
        timeout: float = 120.0,
        trace_messages: bool = False,
        sanitize: bool = False,
        faults: Optional[FaultPlan | dict] = None,
        reliability: Optional[ReliabilityConfig | dict | bool] = None
        ) -> JobResult:
    """Run an SPMD job.

    Parameters
    ----------
    fn:
        Either one function (same code on every rank, branching on
        ``comm.rank``) or a sequence of ``nprocs`` per-rank functions.
    nprocs:
        Number of ranks (threads).
    params:
        Link/cost-model overrides (ablations change these).
    engine_config:
        Engine-level knobs (e.g. out-of-order fragment delivery).
    timeout:
        Wall-clock seconds before the job is declared deadlocked.
    sanitize:
        Attach the :mod:`repro.sanitize` dynamic verifier.  Findings land
        on ``JobResult.sanitizer_report`` (clean runs) or on the raised
        :class:`~repro.errors.RuntimeAbort`'s ``sanitizer_report``.  With
        the sanitizer attached, distributed deadlocks are detected and
        aborted in bounded time instead of burning the whole ``timeout``.
    faults:
        A :class:`~repro.ucp.faults.FaultPlan` (or its dict form) of
        seeded wire faults and rank crash/stall events.  None — the
        default — leaves the fabric pristine and allocates no fault
        machinery at all.
    reliability:
        The recovery protocol: True or a
        :class:`~repro.ucp.faults.ReliabilityConfig` (or its dict form)
        enables per-fragment CRC + sequencing with ACK/NACK-driven
        retransmission, charged through virtual time.
    """
    if callable(fn):
        fns = [fn] * nprocs
    else:
        fns = list(fn)
        if len(fns) != nprocs:
            raise ValueError(f"got {len(fns)} rank functions for nprocs={nprocs}")

    if faults is not None and not isinstance(faults, FaultPlan):
        faults = FaultPlan.from_dict(faults)
    if reliability is not None and not isinstance(reliability,
                                                  ReliabilityConfig):
        reliability = ReliabilityConfig.from_dict(reliability)
    config = UcpConfig(params=params if params is not None else LinkParams(),
                       trace_messages=trace_messages,
                       faults=faults, reliability=reliability)
    fabric = UcpContext(config).create_fabric(nprocs)
    injector = fabric.injector

    san = None
    if sanitize:
        from ..sanitize import JobSanitizer
        san = JobSanitizer(nprocs)
        for w in fabric.workers:
            w.sanitizer = san

    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    crashes: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker_main(rank: int) -> None:
        comm = Communicator(fabric.worker(rank), nprocs, comm_id=0,
                            engine_config=engine_config)
        try:
            results[rank] = fns[rank](comm)
        except RankCrashError as exc:
            # A crash *scheduled by the fault plan* is part of the
            # experiment, not an application failure: record it, drop the
            # rank's in-flight state, and let the survivors finish.
            with failures_lock:
                crashes[rank] = exc
            if injector is not None:
                injector.drop_rank(rank)
            if san is not None:
                san.rank_failed(rank)
        except BaseException as exc:  # report, don't kill the interpreter
            with failures_lock:
                failures[rank] = exc
            if injector is not None:
                # Peers blocked on this rank must not hang on its corpse.
                injector.detector.mark_dead(
                    rank, f"{type(exc).__name__}: {exc}")
            if san is not None:
                san.rank_failed(rank)
        else:
            if injector is not None:
                injector.flush_rank(rank)
                injector.detector.mark_finished(rank)
            if san is not None:
                san.finalize_rank(rank)

    threads = [threading.Thread(target=worker_main, args=(r,),
                                name=f"mpi-rank-{r}", daemon=True)
               for r in range(nprocs)]
    for t in threads:
        t.start()
    deadline_hit = False
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            deadline_hit = True
    if deadline_hit:
        alive = [t.name for t in threads if t.is_alive()]
        abort = RuntimeAbort(failures or {
            -1: TimeoutError(f"ranks still running after {timeout}s "
                             f"(deadlock?): {alive}")})
        if san is not None:
            abort.sanitizer_report = san.report(aborted=True,
                                                failures=failures)
        raise abort
    if failures:
        abort = RuntimeAbort(failures)
        if san is not None:
            abort.sanitizer_report = san.report(aborted=True,
                                                failures=failures)
        raise abort

    report = None
    if san is not None:
        san.finalize_job(fabric)
        report = san.report()

    reliability_stats: list[dict] = []
    fault_trace: dict[str, list] = {}
    if injector is not None:
        # Faulted-job teardown: messages nobody will ever claim (sent to a
        # crashed rank, abandoned transfers) give their staging chunks
        # back, then any buffer still outstanding is force-reclaimed so
        # faults never masquerade as pool leaks.  Runs after the sanitizer
        # sweep so RPD421 findings still see the unclaimed messages.
        for w in fabric.workers:
            for msg in w.matcher.unmatched_messages():
                pool = fabric.worker(msg.header.source).memory.pool
                for chunk in msg.chunks:
                    pool.release(chunk)
                msg.chunks = []
        for w in fabric.workers:
            w.memory.pool.reclaim()
        reliability_stats = [s.snapshot() for s in injector.stats]
        fault_trace = injector.traces()

    memory = []
    for i, w in enumerate(fabric.workers):
        snap = w.memory.snapshot()
        if injector is not None:
            snap["reliability"] = reliability_stats[i]
        memory.append(snap)

    return JobResult(
        results=results,
        fabric=fabric,
        clocks=[w.clock.now for w in fabric.workers],
        memory=memory,
        traces=[list(w.trace) for w in fabric.workers],
        sanitizer_report=report,
        reliability=reliability_stats,
        fault_trace=fault_trace,
        crashed=sorted(crashes),
    )
