"""SPMD runtime: run rank functions as threads over a shared fabric.

:func:`run` is the ``mpiexec`` of the simulator::

    from repro.mpi import run

    def main(comm):
        if comm.rank == 0:
            comm.send(data, dest=1)
        else:
            comm.recv(buf, source=0)

    result = run(main, nprocs=2)

Each rank runs in its own thread with its own worker (clock, matcher,
memory tracker).  Exceptions in any rank abort the job and are re-raised as
:class:`~repro.errors.RuntimeAbort` with all per-rank failures attached.  A
wall-clock ``timeout`` converts distributed deadlocks (e.g. two blocking
rendezvous sends facing each other) into errors instead of hangs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..errors import RuntimeAbort
from ..ucp.context import Fabric, UcpConfig, UcpContext
from ..ucp.netsim import LinkParams
from .comm import Communicator
from .engine import EngineConfig


@dataclass
class JobResult:
    """Everything a bench or test wants to know after a job."""

    results: list[Any]
    fabric: Fabric
    #: Final virtual time per rank (seconds).
    clocks: list[float] = field(default_factory=list)
    #: Memory tracker snapshots per rank.
    memory: list[dict[str, int]] = field(default_factory=list)
    #: Per-rank message traces (when tracing was enabled).
    traces: list[list[dict]] = field(default_factory=list)
    #: Sanitizer findings (a SanitizeReport when the job ran with
    #: ``sanitize=True``; None otherwise).
    sanitizer_report: Any = None

    @property
    def max_clock(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def run(fn: Callable[[Communicator], Any] | Sequence[Callable[[Communicator], Any]],
        nprocs: int = 2,
        params: Optional[LinkParams] = None,
        engine_config: Optional[EngineConfig] = None,
        timeout: float = 120.0,
        trace_messages: bool = False,
        sanitize: bool = False) -> JobResult:
    """Run an SPMD job.

    Parameters
    ----------
    fn:
        Either one function (same code on every rank, branching on
        ``comm.rank``) or a sequence of ``nprocs`` per-rank functions.
    nprocs:
        Number of ranks (threads).
    params:
        Link/cost-model overrides (ablations change these).
    engine_config:
        Engine-level knobs (e.g. out-of-order fragment delivery).
    timeout:
        Wall-clock seconds before the job is declared deadlocked.
    sanitize:
        Attach the :mod:`repro.sanitize` dynamic verifier.  Findings land
        on ``JobResult.sanitizer_report`` (clean runs) or on the raised
        :class:`~repro.errors.RuntimeAbort`'s ``sanitizer_report``.  With
        the sanitizer attached, distributed deadlocks are detected and
        aborted in bounded time instead of burning the whole ``timeout``.
    """
    if callable(fn):
        fns = [fn] * nprocs
    else:
        fns = list(fn)
        if len(fns) != nprocs:
            raise ValueError(f"got {len(fns)} rank functions for nprocs={nprocs}")

    config = UcpConfig(params=params if params is not None else LinkParams(),
                       trace_messages=trace_messages)
    fabric = UcpContext(config).create_fabric(nprocs)

    san = None
    if sanitize:
        from ..sanitize import JobSanitizer
        san = JobSanitizer(nprocs)
        for w in fabric.workers:
            w.sanitizer = san

    results: list[Any] = [None] * nprocs
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker_main(rank: int) -> None:
        comm = Communicator(fabric.worker(rank), nprocs, comm_id=0,
                            engine_config=engine_config)
        try:
            results[rank] = fns[rank](comm)
        except BaseException as exc:  # report, don't kill the interpreter
            with failures_lock:
                failures[rank] = exc
            if san is not None:
                san.rank_failed(rank)
        else:
            if san is not None:
                san.finalize_rank(rank)

    threads = [threading.Thread(target=worker_main, args=(r,),
                                name=f"mpi-rank-{r}", daemon=True)
               for r in range(nprocs)]
    for t in threads:
        t.start()
    deadline_hit = False
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            deadline_hit = True
    if deadline_hit:
        alive = [t.name for t in threads if t.is_alive()]
        abort = RuntimeAbort(failures or {
            -1: TimeoutError(f"ranks still running after {timeout}s "
                             f"(deadlock?): {alive}")})
        if san is not None:
            abort.sanitizer_report = san.report(aborted=True,
                                                failures=failures)
        raise abort
    if failures:
        abort = RuntimeAbort(failures)
        if san is not None:
            abort.sanitizer_report = san.report(aborted=True,
                                                failures=failures)
        raise abort

    report = None
    if san is not None:
        san.finalize_job(fabric)
        report = san.report()

    return JobResult(
        results=results,
        fabric=fabric,
        clocks=[w.clock.now for w in fabric.workers],
        memory=[w.memory.snapshot() for w in fabric.workers],
        traces=[list(w.trace) for w in fabric.workers],
        sanitizer_report=report,
    )
