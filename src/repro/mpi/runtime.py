"""SPMD runtime: run rank functions over a swappable transport backend.

:func:`run` is the ``mpiexec`` of the simulator::

    from repro.mpi import run

    def main(comm):
        if comm.rank == 0:
            comm.send(data, dest=1)
        else:
            comm.recv(buf, source=0)

    result = run(main, nprocs=2)

How ranks execute depends on the transport backend (see
:mod:`repro.ucp.transport`): ``inproc`` (default) and ``asyncio`` run one
thread per rank over a shared fabric, ``shm`` forks one process per rank
with shared-memory arenas.  Exceptions in any rank abort the job and are
re-raised as :class:`~repro.errors.RuntimeAbort` with all per-rank
failures attached.  A wall-clock ``timeout`` converts distributed
deadlocks (e.g. two blocking rendezvous sends facing each other) into
errors instead of hangs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..errors import RankCrashError, RuntimeAbort  # noqa: F401  (re-export)
from ..ucp.context import Fabric, UcpConfig
from ..ucp.faults import FaultPlan, ReliabilityConfig
from ..ucp.netsim import LinkParams
from ..ucp.transport import create_transport
from .comm import Communicator
from .engine import EngineConfig


@dataclass
class JobResult:
    """Everything a bench or test wants to know after a job."""

    results: list[Any]
    fabric: Fabric
    #: Final virtual time per rank (seconds).
    clocks: list[float] = field(default_factory=list)
    #: Memory tracker snapshots per rank.
    memory: list[dict[str, int]] = field(default_factory=list)
    #: Per-rank message traces (when tracing was enabled).
    traces: list[list[dict]] = field(default_factory=list)
    #: Sanitizer findings (a SanitizeReport when the job ran with
    #: ``sanitize=True``; None otherwise).
    sanitizer_report: Any = None
    #: Per-rank reliability counters (:class:`repro.ucp.faults.
    #: ReliabilityStats` snapshots); empty on a pristine fabric.
    reliability: list[dict] = field(default_factory=list)
    #: Per-channel fault/recovery event logs (``"src->dst"`` ->
    #: event dicts); deterministic for a given fault-plan seed.
    fault_trace: dict[str, list] = field(default_factory=dict)
    #: Ranks the fault plan crashed.  A scheduled crash is not an
    #: application failure: surviving ranks' results are still returned
    #: (their ``results`` entry), the crashed rank's entry stays None.
    crashed: list[int] = field(default_factory=list)
    #: Name of the transport backend the job ran on.
    transport: str = "inproc"
    #: Messages delivered to the application per rank (always counted —
    #: no tracing needed).  The job service aggregates this into msgs/s.
    msgs_delivered: list[int] = field(default_factory=list)

    @property
    def max_clock(self) -> float:
        return max(self.clocks) if self.clocks else 0.0


def run(fn: Callable[[Communicator], Any] | Sequence[Callable[[Communicator], Any]],
        nprocs: int = 2,
        params: Optional[LinkParams] = None,
        engine_config: Optional[EngineConfig] = None,
        timeout: float = 120.0,
        trace_messages: bool = False,
        sanitize: bool = False,
        faults: Optional[FaultPlan | dict] = None,
        reliability: Optional[ReliabilityConfig | dict | bool] = None,
        transport: Optional[str] = None,
        memory_trackers: Optional[Sequence] = None,
        fabric_hook: Optional[Callable] = None,
        ) -> JobResult:
    """Run an SPMD job.

    Parameters
    ----------
    fn:
        Either one function (same code on every rank, branching on
        ``comm.rank``) or a sequence of ``nprocs`` per-rank functions.
    nprocs:
        Number of ranks.
    params:
        Link/cost-model overrides (ablations change these).
    engine_config:
        Engine-level knobs (e.g. out-of-order fragment delivery).
    timeout:
        Wall-clock seconds before the job is declared deadlocked.
    sanitize:
        Attach the :mod:`repro.sanitize` dynamic verifier.  Findings land
        on ``JobResult.sanitizer_report`` (clean runs) or on the raised
        :class:`~repro.errors.RuntimeAbort`'s ``sanitizer_report``.  With
        the sanitizer attached, distributed deadlocks are detected and
        aborted in bounded time instead of burning the whole ``timeout``.
    faults:
        A :class:`~repro.ucp.faults.FaultPlan` (or its dict form) of
        seeded wire faults and rank crash/stall events.  None — the
        default — leaves the fabric pristine and allocates no fault
        machinery at all.
    reliability:
        The recovery protocol: True or a
        :class:`~repro.ucp.faults.ReliabilityConfig` (or its dict form)
        enables per-fragment CRC + sequencing with ACK/NACK-driven
        retransmission, charged through virtual time.
    transport:
        Backend name (``inproc``/``shm``/``asyncio``); None defers to the
        ``REPRO_TRANSPORT`` environment variable, then ``inproc``.
        Raises :class:`~repro.ucp.transport.TransportUnavailableError`
        when the backend cannot run on this platform or cannot run this
        job (e.g. ``sanitize=True`` on ``shm``).
    memory_trackers:
        Warm per-rank :class:`~repro.ucp.memory.MemoryTracker` instances
        to install instead of fresh ones — the job-service seam that lets
        buffer pools survive across jobs.  Only supported by backends
        whose ranks share the driver's address space
        (``supports_warm_pools``).
    fabric_hook:
        Callable invoked with the live :class:`~repro.ucp.context.Fabric`
        after the data plane is wired and before any rank starts; the job
        service uses it to install budgeted clocks and capture the kill
        handle.  Same backend support as ``memory_trackers``.
    """
    if callable(fn):
        fns = [fn] * nprocs
    else:
        fns = list(fn)
        if len(fns) != nprocs:
            raise ValueError(f"got {len(fns)} rank functions for nprocs={nprocs}")

    if faults is not None and not isinstance(faults, FaultPlan):
        faults = FaultPlan.from_dict(faults)
    if reliability is not None and not isinstance(reliability,
                                                  ReliabilityConfig):
        reliability = ReliabilityConfig.from_dict(reliability)
    config = UcpConfig(params=params if params is not None else LinkParams(),
                       trace_messages=trace_messages,
                       faults=faults, reliability=reliability)

    backend = create_transport(transport)
    backend.check_job_supported(config, sanitize=sanitize)
    extra = {}
    if memory_trackers is not None or fabric_hook is not None:
        if not backend.supports_warm_pools:
            from ..ucp.transport.base import TransportUnavailableError
            raise TransportUnavailableError(
                f"transport '{backend.name}' does not support warm worker "
                f"reuse (memory_trackers/fabric_hook need ranks in the "
                f"driver's address space); use --transport inproc or "
                f"asyncio")
        extra = {"memory_trackers": memory_trackers,
                 "fabric_hook": fabric_hook}
    return backend.run_job(fns, nprocs, config,
                           engine_config=engine_config,
                           timeout=timeout, sanitize=sanitize, **extra)
