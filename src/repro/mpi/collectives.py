"""Collective operations built over point-to-point.

The paper leaves collective integration of custom datatypes as future work
(Section VIII); this module implements the classic collectives the substrate
needs (dissemination barrier, binomial-tree bcast/reduce, ring allgather,
pairwise alltoall) and — as the extension the paper anticipates — allows
custom datatypes in ``bcast``, where intermediate tree nodes reconstruct the
object with the unpack callbacks and re-serialize it with the pack callbacks
when forwarding.

All collectives use reserved tags above the user-tag range, so they never
interfere with application traffic on the same communicator.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..core.custom import CustomDatatype
from ..core.datatype import Datatype
from ..errors import MPI_ERR_ARG, MPIError
from ..ucp.constants import match_mask, pack_tag
from .comm import MAX_USER_TAG, Communicator
from .requests import Status

# Reserved internal tags (>= MAX_USER_TAG, < 2**32), spaced so per-step
# offsets within one collective cannot collide with another collective.
TAG_BARRIER = MAX_USER_TAG + (1 << 16)
TAG_BCAST = MAX_USER_TAG + (2 << 16)
TAG_GATHER = MAX_USER_TAG + (3 << 16)
TAG_SCATTER = MAX_USER_TAG + (4 << 16)
TAG_ALLGATHER = MAX_USER_TAG + (5 << 16)
TAG_REDUCE = MAX_USER_TAG + (6 << 16)
TAG_ALLTOALL = MAX_USER_TAG + (7 << 16)
TAG_GATHERV = MAX_USER_TAG + (8 << 16)
TAG_SCATTERV = MAX_USER_TAG + (9 << 16)

_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
}


def _isend(comm: Communicator, dest: int, tag: int, buf, count, dtype):
    tag64 = pack_tag(comm.comm_id & 0xFFFF, comm.rank, tag)
    return comm.engine.start_send(comm._world(dest), tag64, buf, count, dtype)


def _send(comm: Communicator, dest: int, tag: int, buf, count, dtype) -> None:
    _isend(comm, dest, tag, buf, count, dtype).wait()


def _recv(comm: Communicator, source: int, tag: int, buf, count, dtype) -> Status:
    tag64 = pack_tag(comm.comm_id & 0xFFFF, source, tag)
    req = comm.engine.start_recv(tag64, match_mask(False, False), buf, count,
                                 dtype, peers=(comm._world(source),))
    return req.wait()


def _resolve(comm: Communicator, buf, count, dtype):
    return comm._resolve(buf, count, dtype)


def barrier(comm: Communicator) -> None:
    """Dissemination barrier: ceil(log2(n)) rounds of paired token sends."""
    n = comm.size
    if n == 1:
        return
    token = np.zeros(1, dtype=np.uint8)
    inbox = np.zeros(1, dtype=np.uint8)
    step = 1
    round_no = 0
    while step < n:
        dest = (comm.rank + step) % n
        source = (comm.rank - step) % n
        tag = TAG_BARRIER + round_no
        sreq = _isend(comm, dest, tag, token, 1, _byte())
        _recv(comm, source, tag, inbox, 1, _byte())
        sreq.wait()
        step <<= 1
        round_no += 1


def _byte() -> Datatype:
    from ..core.datatype import BYTE
    return BYTE


def bcast(comm: Communicator, buf, root: int = 0,
          datatype: Optional[Datatype] = None,
          count: Optional[int] = None) -> Any:
    """Binomial-tree broadcast.

    Supports custom datatypes: a non-root rank first receives (driving its
    unpack/region callbacks), then forwards the reconstructed object down
    the tree (driving its pack/region callbacks) — the forwarding pattern
    the paper's future-work discussion needs from collectives.
    """
    buf, count, datatype = _resolve(comm, buf, count, datatype)
    n = comm.size
    if n == 1:
        return buf
    # Virtual ranks rooted at 0.
    vrank = (comm.rank - root) % n

    # Receive from parent.
    if vrank != 0:
        parent = _parent(vrank)
        _recv(comm, (parent + root) % n, TAG_BCAST, buf, count, datatype)
    # Forward to children.
    level = 1
    while level < n:
        if vrank < level:
            child = vrank + level
            if child < n:
                _send(comm, (child + root) % n, TAG_BCAST, buf, count, datatype)
        level <<= 1
    return buf


def _parent(vrank: int) -> int:
    """Parent in the binomial broadcast tree used above."""
    # The tree grows by doubling: in the round where ``vrank`` first became
    # active (the highest power of two <= vrank), its parent is vrank minus
    # that power.
    high = 1 << (vrank.bit_length() - 1)
    return vrank - high


def gather(comm: Communicator, sendbuf, recvbuf, root: int = 0,
           datatype: Optional[Datatype] = None,
           count: Optional[int] = None) -> Optional[np.ndarray]:
    """Linear gather of equal-size contributions to the root."""
    sendbuf, count, datatype = _resolve(comm, sendbuf, count, datatype)
    if isinstance(datatype, CustomDatatype):
        raise MPIError(MPI_ERR_ARG,
                       "gather of custom datatypes is not supported; "
                       "see repro.serial for object collectives")
    if comm.rank != root:
        _send(comm, root, TAG_GATHER, sendbuf, count, datatype)
        return None
    out = np.asarray(recvbuf)
    block = count * datatype.size
    flat = out.view(np.uint8).reshape(-1)
    if flat.shape[0] < block * comm.size:
        raise MPIError(MPI_ERR_ARG,
                       f"gather recvbuf too small: need {block * comm.size} bytes")
    for r in range(comm.size):
        dst = flat[r * block:(r + 1) * block]
        if r == root:
            from ..core.packing import pack
            pack(datatype, sendbuf, count, out=dst)
        else:
            # Contributions land packed at the root regardless of the send
            # datatype, so receive them as raw bytes.
            _recv(comm, r, TAG_GATHER, dst, block, _byte())
    return out


def scatter(comm: Communicator, sendbuf, recvbuf, root: int = 0,
            datatype: Optional[Datatype] = None,
            count: Optional[int] = None) -> Any:
    """Linear scatter of equal-size blocks from the root."""
    recvbuf, count, datatype = _resolve(comm, recvbuf, count, datatype)
    if isinstance(datatype, CustomDatatype):
        raise MPIError(MPI_ERR_ARG, "scatter of custom datatypes is not supported")
    block = count * datatype.size
    if comm.rank == root:
        flat = np.asarray(sendbuf).view(np.uint8).reshape(-1)
        if flat.shape[0] < block * comm.size:
            raise MPIError(MPI_ERR_ARG,
                           f"scatter sendbuf too small: need {block * comm.size} bytes")
        reqs = []
        for r in range(comm.size):
            if r == root:
                continue
            reqs.append(_isend(comm, r, TAG_SCATTER,
                               flat[r * block:(r + 1) * block], block, _byte()))
        from ..core.packing import unpack
        unpack(datatype, recvbuf, count, flat[root * block:(root + 1) * block])
        for q in reqs:
            q.wait()
    else:
        if datatype.is_contiguous:
            _recv(comm, root, TAG_SCATTER, recvbuf, count, datatype)
        else:
            tmp = np.empty(block, dtype=np.uint8)
            _recv(comm, root, TAG_SCATTER, tmp, block, _byte())
            from ..core.packing import unpack
            unpack(datatype, recvbuf, count, tmp)
    return recvbuf


def gatherv(comm: Communicator, sendbuf, recvbuf, recvcounts,
            root: int = 0, datatype: Optional[Datatype] = None,
            count: Optional[int] = None) -> Optional[np.ndarray]:
    """MPI_Gatherv: per-rank contribution sizes.

    ``recvcounts`` (significant at the root) gives each rank's element
    count; contributions land packed and contiguous at the root in rank
    order.  Non-root ranks pass their own ``count``.
    """
    sendbuf, count, datatype = _resolve(comm, sendbuf, count, datatype)
    if isinstance(datatype, CustomDatatype):
        raise MPIError(MPI_ERR_ARG, "gatherv of custom datatypes is not supported")
    if comm.rank != root:
        _send(comm, root, TAG_GATHERV, sendbuf, count, datatype)
        return None
    counts = [int(c) for c in recvcounts]
    if len(counts) != comm.size:
        raise MPIError(MPI_ERR_ARG,
                       f"recvcounts has {len(counts)} entries for "
                       f"{comm.size} ranks")
    esize = datatype.size
    total = sum(counts) * esize
    flat = np.asarray(recvbuf).view(np.uint8).reshape(-1)
    if flat.shape[0] < total:
        raise MPIError(MPI_ERR_ARG, f"gatherv recvbuf too small: need {total}")
    pos = 0
    for r in range(comm.size):
        nbytes = counts[r] * esize
        dst = flat[pos:pos + nbytes]
        if r == root:
            from ..core.packing import pack
            pack(datatype, sendbuf, counts[r], out=dst)
        else:
            _recv(comm, r, TAG_GATHERV, dst, nbytes, _byte())
        pos += nbytes
    return flat[:total]


def scatterv(comm: Communicator, sendbuf, sendcounts, recvbuf,
             root: int = 0, datatype: Optional[Datatype] = None,
             count: Optional[int] = None) -> Any:
    """MPI_Scatterv: per-rank block sizes from a packed root buffer."""
    recvbuf, count, datatype = _resolve(comm, recvbuf, count, datatype)
    if isinstance(datatype, CustomDatatype):
        raise MPIError(MPI_ERR_ARG, "scatterv of custom datatypes is not supported")
    esize = datatype.size
    if comm.rank == root:
        counts = [int(c) for c in sendcounts]
        if len(counts) != comm.size:
            raise MPIError(MPI_ERR_ARG,
                           f"sendcounts has {len(counts)} entries for "
                           f"{comm.size} ranks")
        flat = np.asarray(sendbuf).view(np.uint8).reshape(-1)
        if flat.shape[0] < sum(counts) * esize:
            raise MPIError(MPI_ERR_ARG, "scatterv sendbuf too small")
        reqs = []
        pos = 0
        for r in range(comm.size):
            nbytes = counts[r] * esize
            if r == root:
                from ..core.packing import unpack
                unpack(datatype, recvbuf, counts[r], flat[pos:pos + nbytes])
            else:
                reqs.append(_isend(comm, r, TAG_SCATTERV,
                                   flat[pos:pos + nbytes], nbytes, _byte()))
            pos += nbytes
        for q in reqs:
            q.wait()
    else:
        nbytes = count * esize
        if datatype.is_contiguous:
            _recv(comm, root, TAG_SCATTERV, recvbuf, count, datatype)
        else:
            tmp = np.empty(nbytes, dtype=np.uint8)
            _recv(comm, root, TAG_SCATTERV, tmp, nbytes, _byte())
            from ..core.packing import unpack
            unpack(datatype, recvbuf, count, tmp)
    return recvbuf


def allgather(comm: Communicator, sendbuf, recvbuf,
              datatype: Optional[Datatype] = None,
              count: Optional[int] = None) -> np.ndarray:
    """Ring allgather (bandwidth-optimal for large messages)."""
    sendbuf, count, datatype = _resolve(comm, sendbuf, count, datatype)
    if isinstance(datatype, CustomDatatype):
        raise MPIError(MPI_ERR_ARG, "allgather of custom datatypes is not supported")
    n = comm.size
    block = count * datatype.size
    flat = np.asarray(recvbuf).view(np.uint8).reshape(-1)
    if flat.shape[0] < block * n:
        raise MPIError(MPI_ERR_ARG,
                       f"allgather recvbuf too small: need {block * n} bytes")
    from ..core.packing import pack
    pack(datatype, sendbuf, count, out=flat[comm.rank * block:(comm.rank + 1) * block])
    if n == 1:
        return recvbuf
    right = (comm.rank + 1) % n
    left = (comm.rank - 1) % n
    for step in range(n - 1):
        send_block = (comm.rank - step) % n
        recv_block = (comm.rank - step - 1) % n
        sreq = _isend(comm, right, TAG_ALLGATHER + step,
                      flat[send_block * block:(send_block + 1) * block],
                      block, _byte())
        _recv(comm, left, TAG_ALLGATHER + step,
              flat[recv_block * block:(recv_block + 1) * block], block, _byte())
        sreq.wait()
    return recvbuf


def reduce(comm: Communicator, sendbuf, recvbuf, op="sum",
           root: int = 0) -> Optional[np.ndarray]:
    """Binomial-tree reduction over numpy arrays.

    ``op`` is a name from :data:`_OPS` or any callable
    ``op(acc, incoming) -> array`` (MPI_Op_create with a commutative user
    function).
    """
    if callable(op):
        def ufunc(a, b, out):
            out[...] = op(a, b)
    elif op in _OPS:
        ufunc = _OPS[op]
    else:
        raise MPIError(MPI_ERR_ARG, f"unknown reduction op {op!r}; "
                                    f"choose from {sorted(_OPS)} or pass a callable")
    send = np.asarray(sendbuf)
    acc = send.copy()
    n = comm.size
    vrank = (comm.rank - root) % n
    # Reduce up the tree: children send to parents, doubling each round.
    mask = 1
    scratch = np.empty_like(acc)
    while mask < n:
        if vrank & mask:
            parent = vrank & ~mask
            _send(comm, (parent + root) % n, TAG_REDUCE, acc, acc.size,
                  _np_dtype(acc))
            break
        child = vrank | mask
        if child < n:
            _recv(comm, (child + root) % n, TAG_REDUCE, scratch, scratch.size,
                  _np_dtype(scratch))
            ufunc(acc, scratch, out=acc)
        mask <<= 1
    if comm.rank == root:
        out = np.asarray(recvbuf)
        out[...] = acc.reshape(out.shape)
        return out
    return None


def _np_dtype(arr: np.ndarray):
    from ..core.datatype import from_numpy_dtype
    return from_numpy_dtype(arr.dtype)


def allreduce(comm: Communicator, sendbuf, recvbuf, op="sum") -> np.ndarray:
    """Reduce to rank 0, then broadcast (simple and correct)."""
    out = np.asarray(recvbuf)
    reduce(comm, sendbuf, out, op=op, root=0)
    bcast(comm, out, root=0)
    return out


def alltoall(comm: Communicator, sendbuf, recvbuf,
             datatype: Optional[Datatype] = None,
             count: Optional[int] = None) -> np.ndarray:
    """Pairwise-exchange alltoall of equal blocks."""
    n = comm.size
    if datatype is None:
        if isinstance(sendbuf, np.ndarray):
            from ..core.datatype import from_numpy_dtype
            datatype = from_numpy_dtype(sendbuf.dtype)
        else:
            from ..core.datatype import BYTE
            datatype = BYTE
    send = np.asarray(sendbuf).view(np.uint8).reshape(-1)
    recv = np.asarray(recvbuf).view(np.uint8).reshape(-1)
    if count is None:
        if send.shape[0] % (n * datatype.size):
            raise MPIError(MPI_ERR_ARG, "cannot infer alltoall block count")
        count = send.shape[0] // (n * datatype.size)
    block = count * datatype.size
    if send.shape[0] < n * block or recv.shape[0] < n * block:
        raise MPIError(MPI_ERR_ARG,
                       f"alltoall buffers must hold {n * block} bytes")
    recv[comm.rank * block:(comm.rank + 1) * block] = \
        send[comm.rank * block:(comm.rank + 1) * block]
    for step in range(1, n):
        to = (comm.rank + step) % n
        frm = (comm.rank - step) % n
        sreq = _isend(comm, to, TAG_ALLTOALL + step,
                      send[to * block:(to + 1) * block], block, _byte())
        _recv(comm, frm, TAG_ALLTOALL + step,
              recv[frm * block:(frm + 1) * block], block, _byte())
        sreq.wait()
    return recvbuf
