"""MPI request and status objects."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import MPI_ERR_REQUEST, MPIError
from ..ucp.constants import unpack_tag
from ..ucp.context import RecvInfo, RecvRequest, SendRequest

#: Wildcards (match mpi4py's numeric conventions closely enough for tests).
ANY_SOURCE = -1
ANY_TAG = -1


class Status:
    """Completion information of a receive (MPI_Status).

    Beyond the standard fields this carries the per-component lengths of
    multi-part (custom datatype) messages — the extension the paper's
    Section VI asks for: "perhaps by extending MPI_Probe and
    MPI_Get_count", so receivers can learn region lengths without a second
    message.
    """

    def __init__(self, source: int, tag: int, nbytes: int,
                 entry_lengths: tuple[int, ...] = (),
                 packed_entries: int = 0):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        #: Byte length of each wire component (packed fragments first, then
        #: memory regions).  A single-entry tuple for contiguous messages.
        self.entry_lengths = tuple(entry_lengths)
        #: How many leading entries are in-band packed data.
        self.packed_entries = packed_entries

    @property
    def region_lengths(self) -> tuple[int, ...]:
        """Lengths of the memory-region components (MPI_Get_count for each
        region, in the paper's terms)."""
        return self.entry_lengths[self.packed_entries:]

    @classmethod
    def from_recv_info(cls, info: RecvInfo) -> "Status":
        _, _, user_tag = unpack_tag(info.tag)
        return cls(source=info.source, tag=user_tag, nbytes=info.nbytes,
                   entry_lengths=info.entry_lengths,
                   packed_entries=info.packed_entries)

    def get_count(self, datatype) -> int:
        """Number of whole ``datatype`` elements received (MPI_Get_count)."""
        size = datatype.size
        if size == 0:
            return 0
        if self.nbytes % size:
            return -1  # MPI_UNDEFINED
        return self.nbytes // size

    def __repr__(self) -> str:
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """A nonblocking operation handle.

    Wraps the transport request plus an optional *completion hook* that runs
    on the owning thread exactly once at wait time (the engine uses it to run
    receive-side unpack work and to free custom-datatype state).
    """

    #: Sanitizer-side shadow record (class default keeps the normal path
    #: attribute-cheap; the engine sets an instance value when sanitizing).
    _san_record = None

    def __init__(self, transport_req: SendRequest | RecvRequest | None,
                 on_complete: Optional[Callable[[], Optional[Status]]] = None):
        self._req = transport_req
        self._on_complete = on_complete
        self._status: Optional[Status] = None
        self._done = False

    def test(self) -> bool:
        """Non-blocking completion check (does not run delivery work)."""
        if self._done:
            return True
        if self._req is None:
            return True
        return self._req.test()

    def wait(self, timeout: float | None = None) -> Optional[Status]:
        """Complete the operation; returns a Status for receives."""
        if self._done:
            return self._status
        if self._san_record is not None:
            # Pre-delivery checksum check (a receive buffer must not have
            # been touched between the post and now).
            self._san_record.before_wait()
        if self._req is not None:
            result = self._req.wait(timeout=timeout)
        else:
            result = None
        if self._on_complete is not None:
            self._status = self._on_complete()
        elif isinstance(result, RecvInfo):
            self._status = Status.from_recv_info(result)
        self._done = True
        if self._san_record is not None:
            self._san_record.after_wait()
        return self._status

    @staticmethod
    def waitall(requests: Sequence["Request"],
                timeout: float | None = None) -> list[Optional[Status]]:
        """Complete every request (MPI_Waitall)."""
        return [r.wait(timeout=timeout) for r in requests]

    @staticmethod
    def testall(requests: Sequence["Request"]) -> bool:
        return all(r.test() for r in requests)

    @staticmethod
    def waitany(requests: Sequence["Request"],
                poll_interval: float = 1e-4) -> tuple[int, Optional[Status]]:
        """Complete one ready request (MPI_Waitany); returns (index, status).

        Polls ``test()`` across the set; the first request reporting
        completion is waited (running its delivery work on this thread).
        """
        if not requests:
            raise MPIError(MPI_ERR_REQUEST, "waitany on an empty request list")
        import time
        while True:
            active = False
            for i, r in enumerate(requests):
                if r._done:
                    continue  # inactive, as in MPI_Waitany
                active = True
                if r.test():
                    return i, r.wait()
            if not active:
                return -1, None  # MPI_UNDEFINED: all requests inactive
            time.sleep(poll_interval)

    @staticmethod
    def waitsome(requests: Sequence["Request"],
                 poll_interval: float = 1e-4
                 ) -> list[tuple[int, Optional[Status]]]:
        """Complete every currently-ready request, blocking for at least
        one (MPI_Waitsome)."""
        import time
        while True:
            pending = [(i, r) for i, r in enumerate(requests) if not r._done]
            if not pending:
                return []  # all inactive
            done = [(i, r) for i, r in pending if r.test()]
            if done:
                return [(i, r.wait()) for i, r in done]
            time.sleep(poll_interval)


class CompletedRequest(Request):
    """A request born complete (used for locally-satisfiable operations)."""

    def __init__(self, status: Optional[Status] = None):
        super().__init__(None)
        self._status = status
        self._done = True


def require_incomplete(req: Request) -> None:
    if req._done:
        raise MPIError(MPI_ERR_REQUEST, "request already completed")
