"""MPI request and status objects."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import (MPI_ERR_IN_STATUS, MPI_ERR_REQUEST, MPI_SUCCESS,
                      MPIError)
from ..ucp.constants import unpack_tag
from ..ucp.context import RecvInfo, RecvRequest, SendRequest

#: Wildcards (match mpi4py's numeric conventions closely enough for tests).
ANY_SOURCE = -1
ANY_TAG = -1


class Status:
    """Completion information of a receive (MPI_Status).

    Beyond the standard fields this carries the per-component lengths of
    multi-part (custom datatype) messages — the extension the paper's
    Section VI asks for: "perhaps by extending MPI_Probe and
    MPI_Get_count", so receivers can learn region lengths without a second
    message.
    """

    def __init__(self, source: int, tag: int, nbytes: int,
                 entry_lengths: tuple[int, ...] = (),
                 packed_entries: int = 0):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        #: Byte length of each wire component (packed fragments first, then
        #: memory regions).  A single-entry tuple for contiguous messages.
        self.entry_lengths = tuple(entry_lengths)
        #: How many leading entries are in-band packed data.
        self.packed_entries = packed_entries
        #: Per-request error class (``MPI_ERR_IN_STATUS`` convention):
        #: ``MPI_SUCCESS`` on clean completion, the failing ``MPI_ERR_*``
        #: code when :meth:`Request.waitall` aggregated an error.
        self.error = MPI_SUCCESS
        #: True when this status belongs to a successfully cancelled
        #: request (the MPI_Test_cancelled convention).
        self.cancelled = False

    @property
    def region_lengths(self) -> tuple[int, ...]:
        """Lengths of the memory-region components (MPI_Get_count for each
        region, in the paper's terms)."""
        return self.entry_lengths[self.packed_entries:]

    @classmethod
    def from_recv_info(cls, info: RecvInfo) -> "Status":
        _, _, user_tag = unpack_tag(info.tag)
        return cls(source=info.source, tag=user_tag, nbytes=info.nbytes,
                   entry_lengths=info.entry_lengths,
                   packed_entries=info.packed_entries)

    def get_count(self, datatype) -> int:
        """Number of whole ``datatype`` elements received (MPI_Get_count)."""
        size = datatype.size
        if size == 0:
            return 0
        if self.nbytes % size:
            return -1  # MPI_UNDEFINED
        return self.nbytes // size

    def __repr__(self) -> str:
        return f"Status(source={self.source}, tag={self.tag}, nbytes={self.nbytes})"


class Request:
    """A nonblocking operation handle.

    Wraps the transport request plus an optional *completion hook* that runs
    on the owning thread exactly once at wait time (the engine uses it to run
    receive-side unpack work and to free custom-datatype state).
    """

    #: Sanitizer-side shadow record (class default keeps the normal path
    #: attribute-cheap; the engine sets an instance value when sanitizing).
    _san_record = None

    def __init__(self, transport_req: SendRequest | RecvRequest | None,
                 on_complete: Optional[Callable[[], Optional[Status]]] = None,
                 on_cancel: Optional[Callable[[], None]] = None):
        self._req = transport_req
        self._on_complete = on_complete
        #: Cleanup hook run exactly once on a successful cancel (the engine
        #: uses it to return bounce buffers to the pool).
        self._on_cancel = on_cancel
        #: Error-handler context (the owning Communicator); consulted when
        #: a wait raises an MPI error so ``MPI_ERRORS_ARE_FATAL`` can abort
        #: the whole job.
        self._errctx = None
        self._status: Optional[Status] = None
        self._done = False
        self.cancelled = False

    def test(self) -> bool:
        """Non-blocking completion check (does not run delivery work)."""
        if self._done:
            return True
        if self._req is None:
            return True
        return self._req.test()

    def wait(self, timeout: float | None = None) -> Optional[Status]:
        """Complete the operation; returns a Status for receives."""
        if self._done:
            return self._status
        if self._san_record is not None:
            # Pre-delivery checksum check (a receive buffer must not have
            # been touched between the post and now).
            self._san_record.before_wait()
        try:
            if self._req is not None:
                result = self._req.wait(timeout=timeout)
            else:
                result = None
            if self._on_complete is not None:
                self._status = self._on_complete()
            elif isinstance(result, RecvInfo):
                self._status = Status.from_recv_info(result)
        except MPIError as exc:
            self._done = True
            if self._errctx is not None:
                self._errctx._handle_mpi_error(exc)
            raise
        self._done = True
        if self._san_record is not None:
            self._san_record.after_wait()
        return self._status

    def cancel(self) -> bool:
        """Cancel the operation if it has not completed (MPI_Cancel).

        Returns True when the cancel won the race: the transport operation
        is withdrawn, any bounce buffers go back to the pool (via the
        engine's ``on_cancel`` hook), and a later :meth:`wait` returns a
        Status with ``cancelled=True`` (the MPI_Test_cancelled convention).
        False (no effect) once the operation matched or completed — in MPI
        terms the operation completes normally.

        Idempotent: a second cancel is a no-op returning False.  The
        ``on_cancel`` hook is consumed on first use — it recycles pool
        buffers, and a stale second invocation could release a buffer the
        pool has already handed to a new owner (the double-recycle the
        model checker's RPD703 ownership invariant guards against).
        """
        if self._done or self.cancelled:
            return False
        treq = self._req
        if treq is None or not hasattr(treq, "cancel"):
            return False
        if not treq.cancel():
            return False
        self.cancelled = True
        self._done = True
        st = Status(source=-1, tag=-1, nbytes=0)
        st.cancelled = True
        self._status = st
        hook, self._on_cancel = self._on_cancel, None
        if hook is not None:
            hook()
        if self._san_record is not None:
            self._san_record.mark_cancelled()
        return True

    @staticmethod
    def waitall(requests: Sequence["Request"],
                timeout: float | None = None) -> list[Optional[Status]]:
        """Complete every request (MPI_Waitall).

        On MPI errors, every remaining request is still waited (so no work
        is silently abandoned) and a single ``MPI_ERR_IN_STATUS`` error is
        raised carrying one Status per request — clean completions hold
        ``MPI_SUCCESS`` in ``Status.error``, failures hold the failing
        error class.  The raised exception exposes them as ``.statuses``
        and the underlying exceptions as ``.errors`` (index -> exception).
        """
        statuses: list[Optional[Status]] = [None] * len(requests)
        errors: dict[int, MPIError] = {}
        for i, r in enumerate(requests):
            try:
                statuses[i] = r.wait(timeout=timeout)
            except MPIError as exc:
                errors[i] = exc
                st = Status(source=-1, tag=-1, nbytes=0)
                st.error = exc.code
                statuses[i] = st
        if errors:
            agg = MPIError(
                MPI_ERR_IN_STATUS,
                f"{len(errors)} of {len(requests)} request(s) failed: " +
                "; ".join(f"[{i}] {e}" for i, e in sorted(errors.items())))
            agg.statuses = statuses
            agg.errors = errors
            raise agg
        return statuses

    @staticmethod
    def testall(requests: Sequence["Request"]) -> bool:
        return all(r.test() for r in requests)

    @staticmethod
    def waitany(requests: Sequence["Request"],
                poll_interval: float = 1e-4) -> tuple[int, Optional[Status]]:
        """Complete one ready request (MPI_Waitany); returns (index, status).

        Polls ``test()`` across the set; the first request reporting
        completion is waited (running its delivery work on this thread).
        """
        if not requests:
            raise MPIError(MPI_ERR_REQUEST, "waitany on an empty request list")
        import time
        while True:
            active = False
            for i, r in enumerate(requests):
                if r._done:
                    continue  # inactive, as in MPI_Waitany
                active = True
                if r.test():
                    return i, r.wait()
            if not active:
                return -1, None  # MPI_UNDEFINED: all requests inactive
            time.sleep(poll_interval)

    @staticmethod
    def waitsome(requests: Sequence["Request"],
                 poll_interval: float = 1e-4
                 ) -> list[tuple[int, Optional[Status]]]:
        """Complete every currently-ready request, blocking for at least
        one (MPI_Waitsome)."""
        import time
        while True:
            pending = [(i, r) for i, r in enumerate(requests) if not r._done]
            if not pending:
                return []  # all inactive
            done = [(i, r) for i, r in pending if r.test()]
            if done:
                return [(i, r.wait()) for i, r in done]
            time.sleep(poll_interval)


class CompletedRequest(Request):
    """A request born complete (used for locally-satisfiable operations)."""

    def __init__(self, status: Optional[Status] = None):
        super().__init__(None)
        self._status = status
        self._done = True


def require_incomplete(req: Request) -> None:
    if req._done:
        raise MPIError(MPI_ERR_REQUEST, "request already completed")
