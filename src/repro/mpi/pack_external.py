"""MPI_Pack / MPI_Unpack / MPI_Pack_size equivalents.

These wrap the typemap engine for application-driven packing — the
``ompi-pack`` method of the DDTBench comparison (pack with MPI datatypes up
front, then send the contiguous buffer).
"""

from __future__ import annotations

import numpy as np

from ..core.datatype import Datatype
from ..core.packing import pack as _pack
from ..core.packing import packed_size
from ..core.packing import unpack as _unpack
from ..errors import MPI_ERR_BUFFER, MPIError


def pack_size(count: int, dtype: Datatype) -> int:
    """Upper bound on packed bytes (MPI_Pack_size)."""
    return packed_size(dtype, count)


def pack_into(buf, count: int, dtype: Datatype, outbuf, position: int) -> int:
    """MPI_Pack: append ``count`` elements at ``position``; returns the new
    position."""
    nbytes = packed_size(dtype, count)
    out = np.frombuffer(memoryview(outbuf), dtype=np.uint8) \
        if not isinstance(outbuf, np.ndarray) else outbuf.view(np.uint8).reshape(-1)
    if position < 0 or position + nbytes > out.shape[0]:
        raise MPIError(MPI_ERR_BUFFER,
                       f"pack of {nbytes} bytes at {position} overflows "
                       f"{out.shape[0]}-byte buffer")
    _pack(dtype, buf, count, out=out[position:position + nbytes])
    return position + nbytes


def unpack_from(inbuf, position: int, buf, count: int, dtype: Datatype) -> int:
    """MPI_Unpack: consume ``count`` elements at ``position``; returns the
    new position."""
    nbytes = packed_size(dtype, count)
    src = np.frombuffer(memoryview(inbuf), dtype=np.uint8) \
        if not isinstance(inbuf, np.ndarray) else inbuf.view(np.uint8).reshape(-1)
    if position < 0 or position + nbytes > src.shape[0]:
        raise MPIError(MPI_ERR_BUFFER,
                       f"unpack of {nbytes} bytes at {position} overflows "
                       f"{src.shape[0]}-byte buffer")
    _unpack(dtype, buf, count, src[position:position + nbytes])
    return position + nbytes
