"""Communicators: the user-facing point-to-point API.

The surface follows mpi4py's buffer-mode conventions where that makes sense
(explicit buffers, datatype + count), extended with the paper's custom
datatypes, which are accepted anywhere a datatype is.

Datatype/count inference mirrors mpi4py's automatic discovery: a bare numpy
array infers its predefined type and element count; bytes-like buffers infer
``MPI_BYTE``; a custom datatype defaults to ``count=1``.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..core.custom import CustomDatatype
from ..core.datatype import BYTE, Datatype, from_numpy_dtype
from ..errors import MPI_ERR_COMM, MPI_ERR_RANK, MPI_ERR_TAG, MPIError
from ..ucp.constants import match_mask, pack_tag
from ..ucp.context import Worker
from .engine import EngineConfig, TransferEngine
from .requests import ANY_SOURCE, ANY_TAG, Request, Status

#: User tags must stay below this; the range above is reserved for
#: collectives and other internal protocols.
MAX_USER_TAG = 1 << 30

#: Error-handler policies (the MPI_Errhandler analogues).  FATAL — the MPI
#: default — turns any MPI error on this communicator into a job-wide
#: abort: on a fault-injected fabric the failure detector poisons every
#: other rank's blocking waits, so the whole job terminates promptly.
#: RETURN hands the error to the caller as a raised :class:`MPIError` and
#: lets the rank keep using the communicator (ULFM-style continuation).
ERRORS_ARE_FATAL = "MPI_ERRORS_ARE_FATAL"
ERRORS_RETURN = "MPI_ERRORS_RETURN"


class Communicator:
    """An MPI communicator bound to one rank's worker thread."""

    def __init__(self, worker: Worker, size: int, comm_id: int = 0,
                 engine_config: EngineConfig | None = None,
                 group: tuple[int, ...] | None = None,
                 errhandler: str = ERRORS_ARE_FATAL):
        self.worker = worker
        self._size = size
        #: Communicator ids must agree across ranks; COMM_WORLD is 0 and
        #: children derive ids deterministically in dup/split order.
        self.comm_id = comm_id
        self._dup_count = 0
        self._split_count = 0
        #: For split communicators: world rank of each local rank, in local
        #: rank order.  None means the identity mapping (COMM_WORLD).
        self._group = group
        self._errhandler = errhandler
        self.engine = TransferEngine(worker, engine_config)
        if group is not None and worker.index not in group:
            raise MPIError(MPI_ERR_COMM,
                           f"worker {worker.index} not in group {group}")

    # -- error handlers ------------------------------------------------------

    def set_errhandler(self, handler: str) -> None:
        """MPI_Comm_set_errhandler: choose FATAL or RETURN semantics."""
        if handler not in (ERRORS_ARE_FATAL, ERRORS_RETURN):
            raise MPIError(MPI_ERR_COMM,
                           f"unknown error handler {handler!r}")
        self._errhandler = handler

    def get_errhandler(self) -> str:
        """MPI_Comm_get_errhandler."""
        return self._errhandler

    def _handle_mpi_error(self, exc: MPIError) -> None:
        """Apply this communicator's error handler to a raised MPI error.

        Called by :class:`~repro.mpi.requests.Request` just before the
        error propagates.  Under ``MPI_ERRORS_ARE_FATAL`` on a
        fault-injected fabric this aborts the whole job through the
        failure detector; the exception is then re-raised in this rank
        either way (Python has no way to "not return" from the call).
        """
        if self._errhandler != ERRORS_ARE_FATAL:
            return
        fi = self.worker.fabric.injector
        if fi is not None:
            fi.detector.abort_job(
                f"rank {self.rank} (comm {self.comm_id}): {exc}")

    # -- introspection ------------------------------------------------------

    @property
    def rank(self) -> int:
        if self._group is not None:
            return self._group.index(self.worker.index)
        return self.worker.index

    @property
    def size(self) -> int:
        return len(self._group) if self._group is not None else self._size

    # -- rank translation (identity for COMM_WORLD) ----------------------

    def _world(self, local_rank: int) -> int:
        """World (worker) index of a communicator-local rank."""
        return self._group[local_rank] if self._group is not None else local_rank

    def _local(self, world_rank: int) -> int:
        """Communicator-local rank of a worker index."""
        if self._group is None:
            return world_rank
        return self._group.index(world_rank)

    @property
    def clock(self):
        """This rank's virtual clock (for benchmarking)."""
        return self.worker.clock

    @property
    def memory(self):
        """This rank's allocation tracker."""
        return self.worker.memory

    def dup(self) -> "Communicator":
        """MPI_Comm_dup: same group, isolated tag space.

        Ids are derived deterministically from (parent id, dup order), so
        every rank obtains the same child id as long as all ranks call
        ``dup`` in the same order — the usual collective contract.
        """
        child_id = (self.comm_id * 31 + self._dup_count + 1) % (1 << 16)
        self._dup_count += 1
        return Communicator(self.worker, self._size, comm_id=child_id,
                            engine_config=self.engine.config,
                            errhandler=self._errhandler)

    def split(self, color: Optional[int], key: int = 0) -> Optional["Communicator"]:
        """MPI_Comm_split: partition by color, order by (key, parent rank).

        ``color=None`` (MPI_UNDEFINED) returns None.  Collective: every rank
        of this communicator must call it.
        """
        import numpy as np  # local to avoid cycle at import time

        n = self.size
        mine = np.array([-1 if color is None else int(color), int(key),
                         self.rank], dtype="<i8")
        table = np.zeros(3 * n, dtype="<i8")
        self.allgather(mine, table)
        self._split_count += 1
        if color is None:
            return None
        rows = table.reshape(n, 3)
        members = sorted((int(k), int(r)) for c, k, r in rows
                         if int(c) == int(color))
        group = tuple(self._world(r) for _, r in members)
        child_id = (self.comm_id * 131 + self._split_count * 31
                    + int(color) + 7) % (1 << 16)
        return Communicator(self.worker, self._size, comm_id=child_id,
                            engine_config=self.engine.config, group=group,
                            errhandler=self._errhandler)

    # -- argument handling ----------------------------------------------------

    def _resolve(self, buf: Any, count: Optional[int],
                 datatype: Optional[Datatype]) -> tuple[Any, int, Datatype]:
        if datatype is None:
            if isinstance(buf, np.ndarray):
                datatype = from_numpy_dtype(buf.dtype)
                count = buf.size if count is None else count
            elif isinstance(buf, (bytes, bytearray, memoryview)):
                datatype = BYTE
                count = len(buf) if count is None else count
            else:
                raise MPIError(
                    MPI_ERR_RANK,
                    f"cannot infer a datatype for {type(buf).__name__}; pass "
                    f"datatype= explicitly (custom types accept any object)")
        elif count is None:
            if isinstance(datatype, CustomDatatype):
                count = 1
            elif isinstance(buf, np.ndarray) and datatype.extent:
                count = buf.nbytes // datatype.extent
            else:
                raise MPIError(MPI_ERR_RANK,
                               "count is required for this buffer/datatype")
        if count < 0:
            raise MPIError(MPI_ERR_RANK, f"negative count {count}")
        return buf, count, datatype

    def _check_peer(self, rank: int, allow_any: bool = False) -> None:
        if allow_any and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self._size:
            raise MPIError(MPI_ERR_RANK,
                           f"rank {rank} outside communicator of size {self._size}")

    def _check_tag(self, tag: int, allow_any: bool = False) -> None:
        if allow_any and tag == ANY_TAG:
            return
        if not 0 <= tag < MAX_USER_TAG:
            raise MPIError(MPI_ERR_TAG, f"tag {tag} out of range [0, {MAX_USER_TAG})")

    def _send_tag64(self, tag: int) -> int:
        # The matching tag carries the communicator-local source rank.
        return pack_tag(self.comm_id & 0xFFFF, self.rank, tag & 0xFFFFFFFF)

    def _recv_pattern(self, source: int, tag: int) -> tuple[int, int]:
        any_src = source == ANY_SOURCE
        any_tag = tag == ANY_TAG
        tag64 = pack_tag(self.comm_id & 0xFFFF,
                         0 if any_src else source,
                         0 if any_tag else tag & 0xFFFFFFFF)
        return tag64, match_mask(any_src, any_tag)

    # -- point to point ---------------------------------------------------

    def isend(self, buf: Any, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None,
              count: Optional[int] = None) -> Request:
        """Nonblocking send (MPI_Isend)."""
        self._check_peer(dest)
        self._check_tag(tag)
        buf, count, datatype = self._resolve(buf, count, datatype)
        req = self.engine.start_send(self._world(dest), self._send_tag64(tag),
                                     buf, count, datatype)
        req._errctx = self
        return req

    def send(self, buf: Any, dest: int, tag: int = 0,
             datatype: Optional[Datatype] = None,
             count: Optional[int] = None) -> None:
        """Blocking send (MPI_Send)."""
        self.isend(buf, dest, tag, datatype, count).wait()

    def issend(self, buf: Any, dest: int, tag: int = 0,
               datatype: Optional[Datatype] = None,
               count: Optional[int] = None) -> Request:
        """Nonblocking synchronous send (MPI_Issend): completion of the
        returned request implies the matching receive has started."""
        self._check_peer(dest)
        self._check_tag(tag)
        buf, count, datatype = self._resolve(buf, count, datatype)
        req = self.engine.start_send(self._world(dest), self._send_tag64(tag),
                                     buf, count, datatype, sync=True)
        req._errctx = self
        return req

    def ssend(self, buf: Any, dest: int, tag: int = 0,
              datatype: Optional[Datatype] = None,
              count: Optional[int] = None) -> None:
        """Blocking synchronous send (MPI_Ssend)."""
        self.issend(buf, dest, tag, datatype, count).wait()

    def irecv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              datatype: Optional[Datatype] = None,
              count: Optional[int] = None) -> Request:
        """Nonblocking receive (MPI_Irecv)."""
        self._check_peer(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        buf, count, datatype = self._resolve(buf, count, datatype)
        tag64, mask = self._recv_pattern(source, tag)
        req = self.engine.start_recv(tag64, mask, buf, count, datatype,
                                     peers=self._recv_peers(source))
        req._errctx = self
        return req

    def _recv_peers(self, source: int) -> Optional[tuple[int, ...]]:
        """World ranks that could satisfy a receive from ``source`` — the
        wait-for targets the sanitizer's deadlock detector needs.  None
        means any rank in the job (COMM_WORLD wildcard)."""
        if source == ANY_SOURCE:
            return tuple(self._group) if self._group is not None else None
        return (self._world(source),)

    def recv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None,
             count: Optional[int] = None) -> Status:
        """Blocking receive (MPI_Recv)."""
        return self._localize(self.irecv(buf, source, tag, datatype, count)
                              .wait())

    def _localize(self, status: Optional[Status]) -> Optional[Status]:
        """Translate a Status's world source into a comm-local rank."""
        if status is not None and self._group is not None:
            status.source = self._local(status.source)
        return status

    def sendrecv(self, sendbuf: Any, dest: int, recvbuf: Any, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 senddatatype: Optional[Datatype] = None,
                 sendcount: Optional[int] = None,
                 recvdatatype: Optional[Datatype] = None,
                 recvcount: Optional[int] = None) -> Status:
        """MPI_Sendrecv: deadlock-free paired exchange."""
        rreq = self.irecv(recvbuf, source, recvtag, recvdatatype, recvcount)
        sreq = self.isend(sendbuf, dest, sendtag, senddatatype, sendcount)
        status = rreq.wait()
        sreq.wait()
        return status

    # -- persistent requests ------------------------------------------------

    def send_init(self, buf: Any, dest: int, tag: int = 0,
                  datatype: Optional[Datatype] = None,
                  count: Optional[int] = None) -> "PersistentRequest":
        """MPI_Send_init: a restartable send (start with ``.start()``)."""
        self._check_peer(dest)
        self._check_tag(tag)
        return PersistentRequest(
            lambda: self.isend(buf, dest, tag, datatype, count))

    def recv_init(self, buf: Any, source: int = ANY_SOURCE,
                  tag: int = ANY_TAG,
                  datatype: Optional[Datatype] = None,
                  count: Optional[int] = None) -> "PersistentRequest":
        """MPI_Recv_init: a restartable receive."""
        self._check_peer(source, allow_any=True)
        self._check_tag(tag, allow_any=True)
        return PersistentRequest(
            lambda: self.irecv(buf, source, tag, datatype, count))

    # -- probing --------------------------------------------------------------

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking MPI_Probe (message stays matchable)."""
        tag64, mask = self._recv_pattern(source, tag)
        msg = self.worker.tag_probe(tag64, mask, remove=False, block=True)
        return self._localize(Status.from_recv_info(_msg_info(msg)))

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> Optional[Status]:
        """Nonblocking MPI_Iprobe."""
        tag64, mask = self._recv_pattern(source, tag)
        msg = self.worker.tag_probe(tag64, mask, remove=False, block=False)
        if msg is None:
            return None
        return self._localize(Status.from_recv_info(_msg_info(msg)))

    def mprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
               ) -> tuple["MessageHandle", Status]:
        """Blocking MPI_Mprobe: claim the message for a later mrecv."""
        tag64, mask = self._recv_pattern(source, tag)
        msg = self.worker.tag_probe(tag64, mask, remove=True, block=True)
        return (MessageHandle(self, msg),
                self._localize(Status.from_recv_info(_msg_info(msg))))

    def improbe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG
                ) -> Optional[tuple["MessageHandle", Status]]:
        """Nonblocking MPI_Improbe."""
        tag64, mask = self._recv_pattern(source, tag)
        msg = self.worker.tag_probe(tag64, mask, remove=True, block=False)
        if msg is None:
            return None
        return (MessageHandle(self, msg),
                self._localize(Status.from_recv_info(_msg_info(msg))))

    # -- collectives (implemented in repro.mpi.collectives) -----------------

    def barrier(self) -> None:
        from . import collectives
        collectives.barrier(self)

    def bcast(self, buf, root: int = 0, datatype=None, count=None):
        from . import collectives
        return collectives.bcast(self, buf, root, datatype, count)

    def gather(self, sendbuf, recvbuf, root: int = 0, datatype=None, count=None):
        from . import collectives
        return collectives.gather(self, sendbuf, recvbuf, root, datatype, count)

    def scatter(self, sendbuf, recvbuf, root: int = 0, datatype=None, count=None):
        from . import collectives
        return collectives.scatter(self, sendbuf, recvbuf, root, datatype, count)

    def gatherv(self, sendbuf, recvbuf, recvcounts, root: int = 0,
                datatype=None, count=None):
        from . import collectives
        return collectives.gatherv(self, sendbuf, recvbuf, recvcounts, root,
                                   datatype, count)

    def scatterv(self, sendbuf, sendcounts, recvbuf, root: int = 0,
                 datatype=None, count=None):
        from . import collectives
        return collectives.scatterv(self, sendbuf, sendcounts, recvbuf, root,
                                    datatype, count)

    def allgather(self, sendbuf, recvbuf, datatype=None, count=None):
        from . import collectives
        return collectives.allgather(self, sendbuf, recvbuf, datatype, count)

    def reduce(self, sendbuf, recvbuf, op="sum", root: int = 0):
        from . import collectives
        return collectives.reduce(self, sendbuf, recvbuf, op, root)

    def allreduce(self, sendbuf, recvbuf, op="sum"):
        from . import collectives
        return collectives.allreduce(self, sendbuf, recvbuf, op)

    def alltoall(self, sendbuf, recvbuf, datatype=None, count=None):
        from . import collectives
        return collectives.alltoall(self, sendbuf, recvbuf, datatype, count)


class PersistentRequest:
    """A restartable operation (MPI persistent requests).

    ``start()`` (re)activates the operation against the same buffer and
    arguments; ``wait()`` completes the active instance.  Mirrors
    MPI_Send_init / MPI_Recv_init / MPI_Start semantics closely enough for
    iterative halo-exchange codes.
    """

    def __init__(self, factory):
        self._factory = factory
        self._active: Optional[Request] = None

    def start(self) -> "PersistentRequest":
        if self._active is not None and not self._active.test():
            raise MPIError(MPI_ERR_RANK,
                           "persistent request restarted while still active")
        self._active = self._factory()
        return self

    def test(self) -> bool:
        return self._active is not None and self._active.test()

    def wait(self):
        if self._active is None:
            raise MPIError(MPI_ERR_RANK,
                           "persistent request waited before start()")
        status = self._active.wait()
        return status


class MessageHandle:
    """A message claimed by mprobe, receivable exactly once (MPI_Message)."""

    def __init__(self, comm: Communicator, msg):
        self._comm = comm
        self._msg = msg
        self._received = False

    def mrecv(self, buf: Any, datatype: Optional[Datatype] = None,
              count: Optional[int] = None) -> Status:
        """MPI_Mrecv."""
        if self._received:
            raise MPIError(MPI_ERR_RANK, "message already received")
        self._received = True
        buf, count, datatype = self._comm._resolve(buf, count, datatype)
        if isinstance(datatype, CustomDatatype):
            return self._comm._localize(
                self._comm.engine.recv_custom_message(self._msg, buf, count,
                                                      datatype))
        from ..core.packing import packed_size
        from ..ucp.dtypes import ContigData
        if datatype.is_contiguous:
            nbytes = packed_size(datatype, count)
            info = self._comm.worker.msg_recv(
                self._msg, ContigData(buf, nbytes, writable=True))
            return self._comm._localize(Status.from_recv_info(info))
        # Derived path: receive packed, then unpack.
        nbytes = packed_size(datatype, count)
        worker = self._comm.worker
        temp = worker.memory.acquire(nbytes, worker.clock, worker.model)
        info = worker.msg_recv(self._msg, ContigData(temp, nbytes, writable=True))
        from ..core.packing import unpack
        nelem = info.nbytes // datatype.size if datatype.size else 0
        unpack(datatype, buf, nelem, temp[: info.nbytes])
        nblocks = nelem * len(datatype.typemap.merged_blocks())
        worker.clock.advance(worker.model.typemap_pack_time(nblocks, info.nbytes))
        worker.memory.recycle(temp)
        return self._comm._localize(Status.from_recv_info(info))


def _msg_info(msg):
    """Adapt a WireMessage header into a RecvInfo-shaped object."""
    from ..ucp.context import RecvInfo
    hdr = msg.header
    return RecvInfo(source=hdr.source, tag=hdr.tag, nbytes=hdr.total_bytes,
                    entry_lengths=hdr.entry_lengths,
                    packed_entries=hdr.packed_entries)
