"""Datatype base classes and predefined types.

This mirrors the MPI taxonomy the paper works against:

* :class:`PredefinedDatatype` — ``MPI_BYTE``, ``MPI_INT32_T`` and friends,
  each mapped to a numpy dtype so buffers can be handled vectorized.
* :class:`DerivedDatatype` — built from a :class:`~repro.core.typemap.Typemap`
  by the constructors in :mod:`repro.core.derived`.
* The custom datatypes of the paper's new API live in
  :mod:`repro.core.custom` and also subclass :class:`Datatype`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .typemap import Typemap, scalar_typemap


class Datatype:
    """Base class of everything usable as an MPI datatype argument."""

    #: Human-readable name, e.g. ``"MPI_INT32_T"`` or ``"vector(4, 2, 8)"``.
    name: str = "MPI_DATATYPE_NULL"

    @property
    def size(self) -> int:
        """Packed bytes per element (MPI_Type_size)."""
        raise NotImplementedError

    @property
    def extent(self) -> int:
        """Span in memory per element (MPI_Type_get_extent)."""
        raise NotImplementedError

    @property
    def lb(self) -> int:
        return 0

    @property
    def ub(self) -> int:
        return self.lb + self.extent

    @property
    def is_predefined(self) -> bool:
        return False

    @property
    def is_custom(self) -> bool:
        """True for the paper's new custom (callback-driven) datatypes."""
        return False

    @property
    def is_contiguous(self) -> bool:
        """True when pack is the identity and the engine may skip packing."""
        return False

    @property
    def typemap(self) -> Typemap:
        raise NotImplementedError

    def signature(self, count: int = 1) -> Optional[tuple]:
        """Canonical flattened type signature of ``count`` elements.

        Returns run-length ``(basic, n)`` pairs where ``basic`` is a numpy
        style scalar code (``"f8"``, ``"i4"``, ``"u1"``...), e.g.
        ``(("i4", 2), ("f8", 1))`` for a struct of two ints and a double.
        Displacements are erased, so two datatypes with equal signatures
        move the same scalar sequence regardless of layout — MPI's
        send/recv matching rule, used by the runtime sanitizer.  Custom
        (callback-driven) datatypes have no static signature and return
        ``None``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        sig = self.typemap.signature()
        if count == 0 or not sig:
            return ()
        if count == 1:
            return sig
        if len(sig) == 1:
            code, n = sig[0]
            return ((code, n * count),)
        runs: list[list] = []
        for _ in range(count):
            for code, n in sig:
                if runs and runs[-1][0] == code:
                    runs[-1][1] += n
                else:
                    runs.append([code, n])
        return tuple((c, n) for c, n in runs)

    @property
    def shortname(self) -> str:
        """Compact provenance label used inside constructor names and
        analyzer diagnostics (``MPI_DOUBLE`` -> ``double``)."""
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class PredefinedDatatype(Datatype):
    """A fixed-size scalar type with a numpy equivalent."""

    def __init__(self, name: str, np_dtype: Optional[np.dtype]):
        self.name = name
        #: numpy dtype for vectorized handling; None only for MPI_BYTE-like
        #: raw types (which use uint8).
        self.np_dtype = np.dtype(np_dtype) if np_dtype is not None else np.dtype(np.uint8)
        self._size = int(self.np_dtype.itemsize)
        #: numpy-style scalar code ("f8", "i4", ...), the signature atom.
        self.scalar_code = f"{self.np_dtype.kind}{self._size}"
        self._typemap = scalar_typemap(self._size, scalar=self.scalar_code)

    @property
    def size(self) -> int:
        return self._size

    @property
    def extent(self) -> int:
        return self._size

    @property
    def is_predefined(self) -> bool:
        return True

    @property
    def is_contiguous(self) -> bool:
        return True

    @property
    def typemap(self) -> Typemap:
        return self._typemap

    @property
    def shortname(self) -> str:
        """Lowercased C-style spelling: ``MPI_INT32_T`` -> ``int32``."""
        n = self.name
        if n.startswith("MPI_"):
            n = n[4:]
        if n.endswith("_T"):
            n = n[:-2]
        return n.lower()


class DerivedDatatype(Datatype):
    """A committed derived datatype wrapping a typemap.

    Parameters
    ----------
    tm:
        The composed typemap.
    kind:
        Constructor kind ("contiguous", "vector", ...) for introspection
        (the MPI envelope/contents queries).
    children:
        The base datatypes this type was built from.
    """

    def __init__(self, tm: Typemap, kind: str, name: str = "",
                 children: tuple[Datatype, ...] = (),
                 params: dict | None = None):
        self._tm = tm
        self.kind = kind
        self.name = name or f"{kind}(size={tm.size}, extent={tm.extent})"
        self.children = children
        #: Constructor arguments (MPI_Type_get_contents analogue); see
        #: :mod:`repro.core.introspect`.
        self.params = dict(params or {})
        self._committed = False

    @property
    def size(self) -> int:
        return self._tm.size

    @property
    def extent(self) -> int:
        return self._tm.extent

    @property
    def lb(self) -> int:
        return self._tm.lb

    @property
    def typemap(self) -> Typemap:
        return self._tm

    @property
    def is_contiguous(self) -> bool:
        return self._tm.is_contiguous

    @property
    def has_gaps(self) -> bool:
        return self._tm.has_gaps

    @property
    def nscalars(self) -> int:
        return self._tm.nscalars

    def commit(self) -> "DerivedDatatype":
        """MPI_Type_commit.  Idempotent; returns self for chaining."""
        self._committed = True
        return self

    @property
    def committed(self) -> bool:
        return self._committed


# --- predefined instances --------------------------------------------------

BYTE = PredefinedDatatype("MPI_BYTE", np.uint8)
CHAR = PredefinedDatatype("MPI_CHAR", np.int8)
INT8 = PredefinedDatatype("MPI_INT8_T", np.int8)
UINT8 = PredefinedDatatype("MPI_UINT8_T", np.uint8)
INT16 = PredefinedDatatype("MPI_INT16_T", np.int16)
UINT16 = PredefinedDatatype("MPI_UINT16_T", np.uint16)
INT32 = PredefinedDatatype("MPI_INT32_T", np.int32)
UINT32 = PredefinedDatatype("MPI_UINT32_T", np.uint32)
INT64 = PredefinedDatatype("MPI_INT64_T", np.int64)
UINT64 = PredefinedDatatype("MPI_UINT64_T", np.uint64)
FLOAT32 = PredefinedDatatype("MPI_FLOAT", np.float32)
FLOAT64 = PredefinedDatatype("MPI_DOUBLE", np.float64)
COMPLEX64 = PredefinedDatatype("MPI_C_FLOAT_COMPLEX", np.complex64)
COMPLEX128 = PredefinedDatatype("MPI_C_DOUBLE_COMPLEX", np.complex128)

#: All predefined datatypes by name.
PREDEFINED: dict[str, PredefinedDatatype] = {
    t.name: t
    for t in (BYTE, CHAR, INT8, UINT8, INT16, UINT16, INT32, UINT32,
              INT64, UINT64, FLOAT32, FLOAT64, COMPLEX64, COMPLEX128)
}

_NP_TO_PREDEFINED: dict[np.dtype, PredefinedDatatype] = {}
for _t in (INT8, UINT8, INT16, UINT16, INT32, UINT32, INT64, UINT64,
           FLOAT32, FLOAT64, COMPLEX64, COMPLEX128):
    _NP_TO_PREDEFINED.setdefault(_t.np_dtype, _t)


def from_numpy_dtype(dt: np.dtype | str) -> PredefinedDatatype:
    """Map a scalar numpy dtype to the matching predefined MPI type."""
    dt = np.dtype(dt)
    try:
        return _NP_TO_PREDEFINED[dt]
    except KeyError:
        raise KeyError(f"no predefined MPI datatype for numpy dtype {dt!r}") from None
