"""Per-Python-type datatype caching (the RSMPI derive-macro behaviour).

RSMPI creates a derived datatype lazily "on first use of the type in a call"
and caches it for later usage (Section II.D).  :func:`cached_datatype` gives
Python classes the same ergonomics: decorate a zero-argument factory — or
register one per class — and every call site shares a single committed
datatype instance.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .datatype import Datatype

_lock = threading.Lock()
_cache: dict[Any, Datatype] = {}
_factories: dict[Any, Callable[[], Datatype]] = {}


def register_datatype(key: Any, factory: Callable[[], Datatype]) -> None:
    """Register a lazy datatype factory under ``key`` (usually a class).

    The factory runs at most once, on first :func:`datatype_of` lookup —
    exactly RSMPI's first-use creation + caching.
    """
    with _lock:
        _factories[key] = factory
        _cache.pop(key, None)


def datatype_of(key: Any) -> Datatype:
    """The cached datatype for ``key``, creating it on first use."""
    with _lock:
        if key in _cache:
            return _cache[key]
        try:
            factory = _factories[key]
        except KeyError:
            raise KeyError(f"no datatype registered for {key!r}") from None
        dtype = factory()
        commit = getattr(dtype, "commit", None)
        if callable(commit):
            commit()
        _cache[key] = dtype
        return dtype


def cached_datatype(key: Any):
    """Decorator form of :func:`register_datatype`::

        @cached_datatype(Particle)
        def _particle_type():
            return StructSpec([...]).custom_datatype()

        comm.send(p, dest=1, datatype=datatype_of(Particle))
    """

    def deco(factory: Callable[[], Datatype]):
        register_datatype(key, factory)
        return factory

    return deco


def clear_datatype_cache() -> None:
    """Drop every cached instance (factories stay registered)."""
    with _lock:
        _cache.clear()


def cache_info() -> dict[str, int]:
    """(registered, instantiated) counts — for tests and debugging."""
    with _lock:
        return {"registered": len(_factories), "instantiated": len(_cache)}
