"""Per-Python-type datatype caching (the RSMPI derive-macro behaviour).

RSMPI creates a derived datatype lazily "on first use of the type in a call"
and caches it for later usage (Section II.D).  :func:`cached_datatype` gives
Python classes the same ergonomics: decorate a zero-argument factory — or
register one per class — and every call site shares a single committed
datatype instance.

The module also hosts the **pack-plan cache**: :func:`pack_plan` compiles a
:class:`repro.core.packplan.PackPlan` at most once per ``(typemap identity,
count-class)`` and serves it from an LRU.  Keys use ``id(typemap)`` — the
typemap is immutable, so identity is a sound (and hash-free) cache key — and
a ``weakref.finalize`` hook evicts entries when the typemap is collected, so
a recycled ``id()`` can never alias a freed datatype's plan.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Any, Callable

from .datatype import Datatype
from .packplan import COUNT_MANY, COUNT_ONE, PackPlan, count_class

_lock = threading.Lock()
_cache: dict[Any, Datatype] = {}
_factories: dict[Any, Callable[[], Datatype]] = {}


def register_datatype(key: Any, factory: Callable[[], Datatype]) -> None:
    """Register a lazy datatype factory under ``key`` (usually a class).

    The factory runs at most once, on first :func:`datatype_of` lookup —
    exactly RSMPI's first-use creation + caching.
    """
    with _lock:
        _factories[key] = factory
        _cache.pop(key, None)


def datatype_of(key: Any) -> Datatype:
    """The cached datatype for ``key``, creating it on first use."""
    with _lock:
        if key in _cache:
            return _cache[key]
        try:
            factory = _factories[key]
        except KeyError:
            raise KeyError(f"no datatype registered for {key!r}") from None
    # Run the user factory with no lock held (RPD803): a factory that
    # re-enters the cache — a struct type resolving a nested registered
    # type — would self-deadlock on the non-reentrant lock, and every
    # other rank would stall behind arbitrary user code.
    dtype = factory()
    commit = getattr(dtype, "commit", None)
    if callable(commit):
        commit()
    with _lock:
        # Two ranks may race to build the same type; the first insert
        # wins and the duplicate is discarded (factories are pure).
        return _cache.setdefault(key, dtype)


def cached_datatype(key: Any):
    """Decorator form of :func:`register_datatype`::

        @cached_datatype(Particle)
        def _particle_type():
            return StructSpec([...]).custom_datatype()

        comm.send(p, dest=1, datatype=datatype_of(Particle))
    """

    def deco(factory: Callable[[], Datatype]):
        register_datatype(key, factory)
        return factory

    return deco


def clear_datatype_cache() -> None:
    """Drop every cached instance (factories stay registered)."""
    with _lock:
        _cache.clear()


def cache_info() -> dict[str, int]:
    """(registered, instantiated) counts — for tests and debugging."""
    with _lock:
        return {"registered": len(_factories), "instantiated": len(_cache)}


# ---------------------------------------------------------------------------
# pack-plan LRU
# ---------------------------------------------------------------------------

#: Upper bound on cached plans; 2 count-classes x 128 live datatypes covers
#: every benchmark and any plausible application working set.
PLAN_CACHE_MAXSIZE = 256

_plan_lock = threading.Lock()
_plans: OrderedDict[tuple[int, int], PackPlan] = OrderedDict()
_plan_finalizers: dict[int, weakref.finalize] = {}
_plan_stats = {"hits": 0, "contig_hits": 0, "compiled_hits": 0,
               "misses": 0, "evictions": 0, "compile_races": 0}


def _evict_typemap_plans(tm_id: int) -> None:
    """weakref.finalize hook: drop every plan of a collected typemap.

    CPython runs finalizers before the object's memory is released, so this
    always fires before ``id(tm)`` can be reused by a new typemap.
    """
    with _plan_lock:
        _plan_finalizers.pop(tm_id, None)
        for cls in (COUNT_ONE, COUNT_MANY):
            if _plans.pop((tm_id, cls), None) is not None:
                _plan_stats["evictions"] += 1


def pack_plan(dtype: Datatype, count: int) -> PackPlan:
    """The compiled plan for packing ``count`` elements of ``dtype``.

    Compiled on first use per ``(typemap identity, count-class)`` and cached
    in an LRU of :data:`PLAN_CACHE_MAXSIZE` entries.
    """
    tm = dtype.typemap
    key = (id(tm), count_class(count))
    with _plan_lock:
        plan = _plans.get(key)
        if plan is not None:
            _plans.move_to_end(key)
            _plan_stats["hits"] += 1
            # Bucket by what the hit saved: a contiguous fast-path plan is
            # a trivial memcpy decision, a compiled plan skipped the full
            # IR lowering + pass pipeline.
            if plan.contiguous:
                _plan_stats["contig_hits"] += 1
            else:
                _plan_stats["compiled_hits"] += 1
            return plan
        _plan_stats["misses"] += 1
    # Compile outside the lock (pure function of the immutable typemap; a
    # concurrent duplicate compile is wasted work, never wrong).
    plan = PackPlan(tm, key[1])
    with _plan_lock:
        # Double-checked insert: under concurrent jobs two slots can miss
        # on the same key and compile in parallel.  First insert wins —
        # mirroring ``datatype_of`` — so exactly one plan object is ever
        # live per key and the finalizer/eviction accounting can't see
        # two generations of the same entry.
        existing = _plans.get(key)
        if existing is not None:
            _plans.move_to_end(key)
            _plan_stats["compile_races"] += 1
            return existing
        _plans[key] = plan
        _plans.move_to_end(key)
        if key[0] not in _plan_finalizers:
            _plan_finalizers[key[0]] = weakref.finalize(
                tm, _evict_typemap_plans, key[0])
        while len(_plans) > PLAN_CACHE_MAXSIZE:
            _plans.popitem(last=False)
            _plan_stats["evictions"] += 1
    return plan


def plan_cache_info() -> dict[str, int]:
    """Plan-cache statistics: size, hits, misses, evictions.

    ``hits`` is the total; ``contig_hits``/``compiled_hits`` split it by
    whether the served plan was a contiguous fast-path plan or a compiled
    (IR-lowered) one, so the pipeline's cache behaviour is observable.
    """
    with _plan_lock:
        return {"size": len(_plans), **_plan_stats}


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the statistics."""
    with _plan_lock:
        _plans.clear()
        for fin in _plan_finalizers.values():
            fin.detach()
        _plan_finalizers.clear()
        for k in _plan_stats:
            _plan_stats[k] = 0
