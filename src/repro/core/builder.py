"""High-level custom-datatype construction from declarative field specs.

RSMPI generates MPI type-creation calls from ``#[derive]`` procedural macros
on struct definitions; the paper notes that an extended Rust MPI "may
implement macros to automatically generate manual packing".  This module is
the Python analogue: describe a struct once with :class:`Field` entries and
:class:`StructSpec` derives all seven custom-datatype callbacks —

* scalar fields and small/forced-inline arrays are *packed* (gathered into
  the in-band stream),
* large fixed arrays are exposed as *memory regions* (zero-copy),
* dynamic arrays additionally put their lengths into the packed stream so
  the receive side can allocate before its regions are queried — exactly the
  two-stage choreography of Section III.

Objects are plain Python instances with one attribute per field (scalars as
numbers, arrays as 1-D numpy arrays).  ``count > 1`` sends a sequence of
such objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..errors import CallbackError
from .custom import CustomDatatype, type_create_custom
from .datatype import from_numpy_dtype
from .regions import Region

#: Arrays at least this large default to the region (zero-copy) path.
DEFAULT_REGION_THRESHOLD = 512

#: numpy dtype of the in-band length headers for dynamic fields.
_LEN_DTYPE = np.dtype("<i8")


@dataclass(frozen=True)
class Field:
    """One struct field.

    Parameters
    ----------
    name:
        Attribute name on the Python object.
    dtype:
        numpy scalar dtype of the field's elements.
    shape:
        ``None`` for a scalar, an ``int`` for a fixed-length 1-D array, or
        the string ``"dynamic"`` for a variable-length 1-D array whose
        length travels in the packed stream.
    region:
        Force the array onto (True) or off (False) the zero-copy region
        path; ``None`` picks by size against the spec threshold.  Scalars
        are always packed.
    """

    name: str
    dtype: str | np.dtype
    shape: int | str | None = None
    region: bool | None = None

    def __post_init__(self):
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        if isinstance(self.shape, str) and self.shape != "dynamic":
            raise ValueError(f"shape must be None, an int, or 'dynamic', got {self.shape!r}")
        if isinstance(self.shape, int) and self.shape < 0:
            raise ValueError(f"negative fixed shape {self.shape}")
        if self.shape is None and self.region:
            raise ValueError(f"scalar field {self.name!r} cannot be a region")

    @property
    def is_scalar(self) -> bool:
        return self.shape is None

    @property
    def is_dynamic(self) -> bool:
        return self.shape == "dynamic"

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize


class StructSpec:
    """A declarative struct description deriving custom-type callbacks."""

    def __init__(self, fields: Sequence[Field], name: str = "struct",
                 region_threshold: int = DEFAULT_REGION_THRESHOLD):
        if not fields:
            raise ValueError("StructSpec needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate field names in {names}")
        self.fields = tuple(fields)
        self.name = name
        self.region_threshold = region_threshold

    # -- classification ---------------------------------------------------

    def _field_is_region(self, f: Field, nbytes: int) -> bool:
        if f.is_scalar:
            return False
        if f.region is not None:
            return f.region
        return nbytes >= self.region_threshold

    def _objs(self, buf: Any, count: int) -> list[Any]:
        if count == 1 and not isinstance(buf, (list, tuple)):
            return [buf]
        objs = list(buf)
        if len(objs) < count:
            raise CallbackError(
                f"buffer holds {len(objs)} objects, count is {count}")
        return objs[:count]

    def _array(self, obj: Any, f: Field) -> np.ndarray:
        arr = getattr(obj, f.name, None)
        if arr is None and isinstance(f.shape, int):
            # Receive side of a fixed-shape region field: allocate the
            # destination on first touch.
            arr = np.empty(f.shape, dtype=f.dtype)
            setattr(obj, f.name, arr)
        arr = np.ascontiguousarray(arr, dtype=f.dtype)
        if arr.ndim != 1:
            arr = arr.reshape(-1)
        if isinstance(f.shape, int) and arr.shape[0] != f.shape:
            raise CallbackError(
                f"field {f.name!r} expected length {f.shape}, got {arr.shape[0]}")
        return arr

    # -- send-side layout ---------------------------------------------------

    def _packed_parts(self, obj: Any) -> list[np.ndarray]:
        """In-band byte chunks of one object, in field order."""
        parts: list[np.ndarray] = []
        for f in self.fields:
            if f.is_scalar:
                parts.append(np.asarray(getattr(obj, f.name), dtype=f.dtype)
                             .reshape(1).view(np.uint8))
                continue
            arr = self._array(obj, f)
            nbytes = arr.nbytes
            if f.is_dynamic:
                parts.append(np.asarray(arr.shape[0], dtype=_LEN_DTYPE)
                             .reshape(1).view(np.uint8))
            if not self._field_is_region(f, nbytes):
                parts.append(arr.view(np.uint8).reshape(-1))
        return parts

    def _send_regions(self, obj: Any) -> list[Region]:
        regs: list[Region] = []
        for f in self.fields:
            if f.is_scalar:
                continue
            arr = self._array(obj, f)
            if self._field_is_region(f, arr.nbytes):
                regs.append(Region(arr, datatype=from_numpy_dtype(f.dtype)))
        return regs

    # -- derived callbacks --------------------------------------------------

    def custom_datatype(self, inorder: bool = False) -> CustomDatatype:
        """Derive the custom datatype for this spec."""
        spec = self

        class _State:
            """Per-operation cache of the in-band stream (send) or the
            incremental parse position (recv)."""

            __slots__ = ("packed", "cursor", "objs")

            def __init__(self):
                self.packed: np.ndarray | None = None
                self.cursor = 0
                self.objs: list[Any] | None = None

        def state_fn(context, buf, count):
            return _State()

        def state_free_fn(state):
            state.packed = None

        def _ensure_packed(state: _State, buf, count) -> np.ndarray:
            if state.packed is None:
                objs = spec._objs(buf, count)
                parts: list[np.ndarray] = []
                for o in objs:
                    parts.extend(spec._packed_parts(o))
                state.packed = (np.concatenate(parts) if parts
                                else np.empty(0, dtype=np.uint8))
            return state.packed

        def query_fn(state, buf, count):
            return int(_ensure_packed(state, buf, count).shape[0])

        def pack_fn(state, buf, count, offset, dst):
            packed = _ensure_packed(state, buf, count)
            step = min(dst.shape[0], packed.shape[0] - offset)
            dst[:step] = packed[offset:offset + step]
            return int(step)

        def unpack_fn(state, buf, count, offset, src):
            # Accumulate fragments, attempting a parse after each one.  The
            # stream is self-delimiting (field sizes are known, dynamic
            # lengths are in-band), so a parse succeeds exactly when the
            # full stream has arrived; a short stream raises and is retried
            # on the next fragment.  Fragments may arrive at arbitrary
            # offsets, so this derivation tolerates out-of-order delivery.
            if state.packed is None:
                state.packed = np.zeros(0, dtype=np.uint8)
            end = offset + src.shape[0]
            if end > state.packed.shape[0]:
                grown = np.zeros(end, dtype=np.uint8)
                grown[: state.packed.shape[0]] = state.packed
                state.packed = grown
            state.packed[offset:end] = src
            state.cursor = max(state.cursor, end)
            try:
                _parse(state, buf, count)
            except Exception:
                state.objs = None  # incomplete; retry later

        def _parse(state: _State, buf, count) -> list[Any]:
            """Decode the accumulated stream into the receive objects."""
            if state.objs is not None:
                return state.objs
            objs = spec._objs(buf, count)
            data = state.packed if state.packed is not None else np.empty(0, np.uint8)
            pos = 0
            for o in objs:
                for f in spec.fields:
                    if f.is_scalar:
                        n = f.itemsize
                        val = data[pos:pos + n].view(f.dtype)[0]
                        setattr(o, f.name, f.dtype.type(val))
                        pos += n
                        continue
                    if f.is_dynamic:
                        ln = int(data[pos:pos + _LEN_DTYPE.itemsize].view(_LEN_DTYPE)[0])
                        pos += _LEN_DTYPE.itemsize
                    else:
                        ln = int(f.shape)
                    nbytes = ln * f.itemsize
                    if spec._field_is_region(f, nbytes):
                        # Allocate the destination now; the region pass fills it.
                        setattr(o, f.name, np.empty(ln, dtype=f.dtype))
                    else:
                        arr = data[pos:pos + nbytes].copy().view(f.dtype)
                        setattr(o, f.name, arr)
                        pos += nbytes
            state.objs = objs
            return objs

        def region_count_fn(state, buf, count):
            if state.packed is not None and state.objs is None and state.cursor:
                # Receive side: parse the stream before exposing regions.
                _parse(state, buf, count)
            if state.objs is not None:
                objs = state.objs
            else:
                objs = spec._objs(buf, count)
                _ensure_packed(state, buf, count)
            return sum(len(spec._send_regions(o)) for o in objs)

        def region_fn(state, buf, count, region_count):
            objs = state.objs if state.objs is not None else spec._objs(buf, count)
            regs: list[Region] = []
            for o in objs:
                regs.extend(spec._send_regions(o))
            return regs

        return type_create_custom(
            query_fn=query_fn, pack_fn=pack_fn, unpack_fn=unpack_fn,
            region_count_fn=region_count_fn, region_fn=region_fn,
            state_fn=state_fn, state_free_fn=state_free_fn,
            inorder=inorder, name=f"custom:{spec.name}")
