"""Compiled pack plans and streaming pack/unpack cursors.

The stand-in datatype engine used to re-derive its layout on every call:
``pack()``/``unpack()`` recomputed ``Typemap.merged_blocks()`` plus the
strided-2D view parameters per invocation, and the fragment-pipeline
primitives re-packed boundary elements for every window.  TEMPI's core
observation (PAPERS.md) is that compiling a datatype to a canonical
representation *once* and reusing it is what makes non-contiguous transfers
fast; this module is that compiler.

* :class:`PackPlan` — everything layout-derived and count-independent,
  compiled once per ``(typemap identity, count-class)`` and cached through
  :func:`repro.core.typecache.pack_plan`.  Compilation lowers the typemap
  into the :mod:`repro.core.planir` op IR, runs the rewrite pass pipeline
  (block coalescing, stride canonicalization, loop collapsing, contiguity
  promotion, gather formation), and binds an executor backend to the final
  IR; the contiguous fast-path decision stays at the plan level.  The
  lowered IR, the applied pass names, and the resolved backend are exposed
  as ``plan.ir`` / ``plan.passes`` / ``plan.executor`` so the static
  verifier (:mod:`repro.analyze.planverify`) can re-check exactly what
  executes.
* :class:`PackCursor` / :class:`UnpackCursor` — per-request streaming state
  for the GENERIC fragment pipeline.  A cursor packs (or scatters) each
  element range exactly once into a pooled scratch buffer; successive
  windows slice the retained scratch instead of re-packing the boundary
  elements of every fragment.

Plans change *wall-clock* execution only.  The bytes produced are identical
to the retained reference implementation (asserted property-style by
``tests/core/test_packplan.py``) and the virtual-time cost model charged by
:mod:`repro.mpi.engine` is untouched.
"""

from __future__ import annotations

import numpy as np

from ..errors import MPI_ERR_BUFFER, MPIError
from .datatype import Datatype
from .planir import (IRExecutor, default_pipeline, get_default_executor,
                     lower_typemap, run_pipeline)

#: Count classes a plan may be compiled for.  ``COUNT_ONE`` plans may form
#: gathers regardless of row aliasing (a single element has no inter-row
#: scatter-order hazard); ``COUNT_MANY`` plans keep the vectorized
#: cross-element guarantees (see :func:`repro.core.planir.form_gather_pass`).
COUNT_ONE = 1
COUNT_MANY = 2

_NEGATIVE_DISPL_MSG = "negative displacements are not supported"

#: PackCursor lookahead: each scratch materialization packs at least this
#: many bytes ahead, so an 8 KiB fragment pipeline slices most windows out
#: of scratch instead of paying per-fragment pack overhead.
_CURSOR_BATCH_BYTES = 1 << 16


def count_class(count: int) -> int:
    """The plan count-class a pack of ``count`` elements executes under."""
    return COUNT_ONE if count == 1 else COUNT_MANY


class PackPlan:
    """A typemap compiled to its executable packing form.

    Instances are immutable and shareable across threads; compile through
    :func:`repro.core.typecache.pack_plan`, which caches one plan per
    ``(typemap identity, count-class)`` in an LRU.
    """

    __slots__ = ("size", "extent", "row_span", "true_ub", "contiguous",
                 "negative_lb", "nblocks", "count_cls", "ir", "passes",
                 "executor", "_exec")

    def __init__(self, tm, count_cls: int = COUNT_MANY,
                 executor: str | None = None):
        self.count_cls = count_cls
        self.size = tm.size
        self.extent = tm.extent
        self.true_ub = tm.true_ub
        self.row_span = max(tm.true_ub, tm.extent)
        self.contiguous = tm.is_contiguous
        self.negative_lb = tm.true_lb < 0
        self.nblocks = len(tm.merged_blocks())
        # Lower to the op IR and canonicalize.  COUNT_ONE plans never
        # vectorize across element rows, so gather formation need not guard
        # against aliasing rows (row_span > extent).
        if executor is None:
            executor = get_default_executor()
        pipeline = default_pipeline(many_rows=(count_cls == COUNT_MANY),
                                    executor=executor)
        self.ir, self.passes = run_pipeline(lower_typemap(tm), pipeline)
        self._exec = IRExecutor(self.ir)
        #: Resolved backend: ``contig`` fast path, ``slices``, or ``gather``.
        self.executor = "contig" if self.contiguous else self._exec.kind

    # -- execution ---------------------------------------------------------
    # Callers (repro.core.packing) validate buffer sizes and handle count==0
    # so the error messages stay byte-identical to the reference engine.

    def _full_rows(self, nbytes: int, count: int) -> int:
        """Rows coverable by the strided 2-D view (the last element may stop
        at its true upper bound, short of a full extent)."""
        if nbytes >= (count - 1) * self.extent + self.row_span:
            return count
        return count - 1

    def pack_into(self, src: np.ndarray, count: int, out: np.ndarray) -> None:
        """Pack ``count`` elements from ``src`` into the flat ``out``."""
        size = self.size
        if self.contiguous:
            total = size * count
            out[:total] = src[:total]
            return
        if self.negative_lb:
            raise MPIError(MPI_ERR_BUFFER, _NEGATIVE_DISPL_MSG)
        ex = self._exec
        if count == 1:
            ex.pack_one(src, out)
            return
        full_rows = self._full_rows(src.shape[0], count)
        if full_rows:
            ex.pack_rows(src, out, full_rows)
        ext = self.extent
        for i in range(full_rows, count):
            # The short final element: its buffer stops at true_ub, so the
            # strided cross-row view cannot cover it.  Leaf offsets never
            # exceed true_ub, so element-based execution is in bounds.
            ex.pack_one(src[i * ext:], out[i * size:])

    def unpack_into(self, dst: np.ndarray, count: int,
                    packed: np.ndarray) -> None:
        """Scatter the flat ``packed`` stream into ``count`` elements."""
        size = self.size
        if self.contiguous:
            total = size * count
            dst[:total] = packed[:total]
            return
        if self.negative_lb:
            raise MPIError(MPI_ERR_BUFFER, _NEGATIVE_DISPL_MSG)
        ex = self._exec
        if count == 1:
            ex.unpack_one(dst, packed)
            return
        full_rows = self._full_rows(dst.shape[0], count)
        if full_rows:
            ex.unpack_rows(dst, packed, full_rows)
        ext = self.extent
        for i in range(full_rows, count):
            ex.unpack_one(dst[i * ext:], packed[i * size:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "contig" if self.contiguous else f"{self.nblocks} blocks"
        return (f"PackPlan({kind}, size={self.size}, extent={self.extent}, "
                f"cls={self.count_cls}, executor={self.executor}, "
                f"passes={list(self.passes)})")


# ---------------------------------------------------------------------------
# streaming cursors (the GENERIC fragment pipeline)
# ---------------------------------------------------------------------------

def _scratch_alloc(pool, nbytes: int) -> np.ndarray:
    if pool is None:
        return np.empty(nbytes, dtype=np.uint8)
    return pool.acquire(nbytes)


def _scratch_free(pool, buf) -> None:
    if pool is not None and buf is not None:
        pool.release(buf)


class PackCursor:
    """Per-request pack state over the packed stream of one send.

    ``window(offset, length)`` returns the packed bytes of the half-open
    window — the :func:`repro.core.packing.pack_window` contract — but packs
    every element at most once: the scratch holding the most recently packed
    element range is retained, so the element straddling a fragment boundary
    is served from scratch instead of being re-packed by the next fragment.

    ``pool`` (optional) is any object with ``acquire(nbytes)``/``release``
    — in the simulator the per-worker :class:`repro.ucp.memory.BufferPool`.
    Use as a context manager (or call :meth:`close`) to return the scratch.
    """

    def __init__(self, dtype: Datatype, buf, count: int, pool=None):
        from .packing import _as_u8  # local import: packing imports us
        from .typecache import pack_plan
        self.dtype = dtype
        self.count = count
        self.total = dtype.size * count
        self._src = _as_u8(buf)
        self._plan = pack_plan(dtype, count if count else 1)
        self._pool = pool
        self._scratch: np.ndarray | None = None
        self._e0 = 0  # element range currently materialized in scratch
        self._e1 = 0

    # -- context management ------------------------------------------------

    def __enter__(self) -> "PackCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        _scratch_free(self._pool, self._scratch)
        self._scratch = None
        self._e0 = self._e1 = 0

    # -- the pipeline primitive -------------------------------------------

    def window(self, offset: int, length: int) -> np.ndarray:
        """Packed bytes of ``[offset, offset + length)``; a view, valid
        until the next :meth:`window` call."""
        size = self._plan.size
        if offset < 0 or length < 0 or offset + length > self.total:
            raise MPIError(
                MPI_ERR_BUFFER,
                f"pack window [{offset}, {offset + length}) outside "
                f"[0, {self.total})")
        if length == 0 or size == 0:
            return np.empty(0, dtype=np.uint8)
        if self._plan.contiguous:
            return self._src[offset:offset + length]
        first = offset // size
        last = (offset + length - 1) // size
        if not (self._e0 <= first and last < self._e1):
            # Materialize with lookahead: pack whole batches so successive
            # fragments slice scratch instead of packing per window.
            batch = max(last + 1 - first, _CURSOR_BATCH_BYTES // size, 1)
            self._materialize(first, min(self.count, first + batch))
        lo = offset - self._e0 * size
        return self._scratch[lo:lo + length]

    def pack(self, offset: int, dst: np.ndarray) -> int:
        """GenericData-style pack callback: fill ``dst``, return bytes
        written (``pack(offset, dst) -> used``)."""
        w = self.window(offset, min(int(dst.shape[0]),
                                    self.total - offset))
        dst[: w.shape[0]] = w
        return int(w.shape[0])

    def _materialize(self, e0: int, e1: int) -> None:
        """Ensure scratch holds the packed bytes of elements ``[e0, e1)``,
        re-using (not re-packing) any overlap with the current range."""
        plan = self._plan
        size = plan.size
        ext = plan.extent
        nbytes = (e1 - e0) * size
        fresh = _scratch_alloc(self._pool, nbytes)
        pack_from = e0
        if (self._scratch is not None and self._e0 <= e0 < self._e1
                and e1 > self._e1):
            # Forward overlap (the boundary element of the previous
            # fragment): copy its packed bytes instead of re-walking it.
            keep = self._e1 - e0
            fresh[: keep * size] = \
                self._scratch[(e0 - self._e0) * size:
                              (e0 - self._e0) * size + keep * size]
            pack_from = self._e1
        if pack_from < e1:
            sub = self._src[pack_from * ext:]
            plan.pack_into(sub, e1 - pack_from,
                           fresh[(pack_from - e0) * size:])
        _scratch_free(self._pool, self._scratch)
        self._scratch = fresh
        self._e0, self._e1 = e0, e1


class UnpackCursor:
    """Per-request unpack state over the packed stream of one receive.

    Fragments written in increasing-offset order (the pipeline's guarantee)
    accumulate in an element-aligned staging scratch and scatter in whole
    batches — one plan execution per ~:data:`_CURSOR_BATCH_BYTES`, not one
    per fragment — so boundary elements are never read-modify-written per
    fragment.  Out-of-order writes fall back to the stateless
    :func:`repro.core.packing.unpack_window`.

    The cursor buffers: call :meth:`flush` (or :meth:`close`, or use as a
    context manager) after the last fragment to scatter the tail.
    """

    def __init__(self, dtype: Datatype, buf, count: int, pool=None):
        from .packing import _as_u8
        from .typecache import pack_plan
        self.dtype = dtype
        self.count = count
        self.total = dtype.size * count
        self._buf = buf
        self._dst = _as_u8(buf, writable=True)
        self._plan = pack_plan(dtype, count if count else 1)
        self._pool = pool
        self._pos = 0  # next expected in-order stream offset
        size = self._plan.size
        self._cap = max(_CURSOR_BATCH_BYTES // size, 1) * size if size else 0
        self._stage: np.ndarray | None = None
        self._start = 0  # stream offset of _stage[0]; element-aligned
        self._fill = 0

    def __enter__(self) -> "UnpackCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self.flush()
        _scratch_free(self._pool, self._stage)
        self._stage = None

    def write(self, offset: int, frag) -> None:
        """Deliver one packed fragment at ``offset`` (GenericData-style
        unpack callback signature)."""
        from .packing import unpack_window
        data = np.asarray(frag, dtype=np.uint8)
        length = int(data.shape[0])
        size = self._plan.size
        if offset < 0 or offset + length > self.total:
            raise MPIError(
                MPI_ERR_BUFFER,
                f"unpack window [{offset}, {offset + length}) outside "
                f"[0, {self.total})")
        if length == 0 or size == 0:
            return
        if offset != self._pos or self._plan.negative_lb:
            # Random access (out-of-order ablation): stateless fallback.
            self.flush()
            unpack_window(self.dtype, self._buf, self.count, offset, data)
            self._pos = offset + length
            return
        if self._plan.contiguous:
            self._dst[offset:offset + length] = data
            self._pos += length
            return
        pos = 0
        head = (-self._pos) % size
        if head and self._fill == 0:
            # Re-entering mid-element (after an out-of-order flush): finish
            # the boundary element statelessly, then stage from the next.
            take = min(head, length)
            unpack_window(self.dtype, self._buf, self.count, self._pos,
                          data[:take])
            self._pos += take
            pos = take
        ext = self._plan.extent
        while pos < length:
            if self._fill == 0:
                # Big in-order runs scatter straight from the fragment.
                whole = (length - pos) // size
                if whole * size >= self._cap:
                    elem = self._pos // size
                    self._plan.unpack_into(self._dst[elem * ext:], whole,
                                           data[pos:pos + whole * size])
                    pos += whole * size
                    self._pos += whole * size
                    continue
                self._start = self._pos
            if self._stage is None:
                self._stage = _scratch_alloc(self._pool, self._cap)
            take = min(length - pos, self._cap - self._fill)
            self._stage[self._fill:self._fill + take] = data[pos:pos + take]
            self._fill += take
            self._pos += take
            pos += take
            if self._fill == self._cap:
                self._drain()

    def _drain(self) -> None:
        """Scatter the staged whole elements; keep the partial tail."""
        if not self._fill:
            return
        size = self._plan.size
        whole = self._fill // size
        if whole:
            elem = self._start // size
            self._plan.unpack_into(self._dst[elem * self._plan.extent:],
                                   whole, self._stage[: whole * size])
            rem = self._fill - whole * size
            if rem:
                self._stage[:rem] = \
                    self._stage[whole * size: whole * size + rem]
            self._start += whole * size
            self._fill = rem

    def flush(self) -> None:
        """Scatter everything staged; a trailing partial element goes
        through a read-modify-write that preserves the bytes outside it."""
        self._drain()
        if not self._fill:
            return
        from .packing import unpack_window
        unpack_window(self.dtype, self._buf, self.count, self._start,
                      self._stage[: self._fill])
        self._start += self._fill
        self._fill = 0
