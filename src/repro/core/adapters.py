"""Object-protocol adapter: let classes describe their own serialization.

Languages in the paper attach serialization to the *type* (Rust traits, C++
member functions, Python ``__reduce_ex__``).  This module defines the
equivalent duck-typed protocol — a class implements a handful of
``mpi_*`` methods and :func:`datatype_for` derives the custom datatype that
drives them.  ``count > 1`` sends a sequence of protocol objects whose
packed streams are concatenated in order.

Protocol methods (all offsets are into the object's own packed stream):

``mpi_packed_size() -> int``
    Total in-band bytes (the query callback).
``mpi_pack(offset, dst) -> int``
    Fill a prefix of the writable uint8 view ``dst`` with packed bytes
    starting at ``offset``; return bytes written.
``mpi_unpack(offset, src) -> None``
    Consume one incoming fragment.
``mpi_regions() -> Sequence[Region]``  (optional)
    Zero-copy regions, queried after all packed data has been delivered on
    the receive side.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, runtime_checkable

from ..errors import CallbackError
from .custom import CustomDatatype, type_create_custom
from .regions import Region


@runtime_checkable
class MPISerializable(Protocol):
    """Structural type of objects accepted by :func:`datatype_for`."""

    def mpi_packed_size(self) -> int: ...

    def mpi_pack(self, offset: int, dst) -> int: ...

    def mpi_unpack(self, offset: int, src) -> None: ...


def _objects(buf: Any, count: int) -> list[Any]:
    objs = [buf] if count == 1 and not isinstance(buf, (list, tuple)) else list(buf)
    if len(objs) < count:
        raise CallbackError(f"buffer holds {len(objs)} objects, count is {count}")
    objs = objs[:count]
    for i, o in enumerate(objs):
        if not isinstance(o, MPISerializable):
            raise CallbackError(
                f"object {i} ({type(o).__name__}) does not implement the "
                f"MPISerializable protocol")
    return objs


class _ProtocolState:
    """Prefix-sum index over per-object packed sizes."""

    __slots__ = ("objs", "starts", "total")

    def __init__(self, objs: list[Any]):
        self.objs = objs
        self.starts = [0]
        for o in objs:
            n = o.mpi_packed_size()
            if not isinstance(n, int) or n < 0:
                raise CallbackError(
                    f"mpi_packed_size must return a non-negative int, got {n!r}")
            self.starts.append(self.starts[-1] + n)
        self.total = self.starts[-1]

    def locate(self, offset: int) -> int:
        """Index of the object owning stream position ``offset``."""
        lo, hi = 0, len(self.objs) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo


def datatype_for(cls: type | None = None, inorder: bool = False,
                 name: str = "") -> CustomDatatype:
    """Derive a custom datatype driving the ``mpi_*`` protocol methods.

    ``cls`` is optional and used only for naming; any protocol-conforming
    object can travel with the resulting type.
    """

    def state_fn(context, buf, count):
        return _ProtocolState(_objects(buf, count))

    def state_free_fn(state):
        state.objs = []

    def query_fn(state, buf, count):
        return state.total

    def pack_fn(state, buf, count, offset, dst):
        i = state.locate(offset)
        obj = state.objs[i]
        local = offset - state.starts[i]
        limit = state.starts[i + 1] - offset  # stay inside this object
        window = dst[: min(dst.shape[0], limit)]
        used = obj.mpi_pack(local, window)
        if not isinstance(used, int) or used <= 0 or used > window.shape[0]:
            raise CallbackError(f"mpi_pack returned invalid used={used!r}")
        return used

    def unpack_fn(state, buf, count, offset, src):
        pos = 0
        while pos < src.shape[0]:
            i = state.locate(offset + pos)
            obj = state.objs[i]
            local = offset + pos - state.starts[i]
            limit = min(src.shape[0] - pos, state.starts[i + 1] - (offset + pos))
            obj.mpi_unpack(local, src[pos:pos + limit])
            pos += limit

    def region_count_fn(state, buf, count):
        return sum(len(_regions_of(o)) for o in state.objs)

    def region_fn(state, buf, count, region_count):
        regs: list[Region] = []
        for o in state.objs:
            regs.extend(_regions_of(o))
        return regs

    def _regions_of(obj) -> Sequence[Region]:
        fn = getattr(obj, "mpi_regions", None)
        return list(fn()) if fn is not None else []

    label = name or (f"custom:{cls.__name__}" if cls is not None else "custom:protocol")
    return type_create_custom(
        query_fn=query_fn, pack_fn=pack_fn, unpack_fn=unpack_fn,
        region_count_fn=region_count_fn, region_fn=region_fn,
        state_fn=state_fn, state_free_fn=state_free_fn,
        inorder=inorder, name=label)
