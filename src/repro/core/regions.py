"""Memory regions (the iovec model of Listing 5).

A :class:`Region` is a contiguous run of memory that the transport may send
or receive *directly*, without packing — the zero-copy half of the custom
datatype API.  On the send side regions are read; on the receive side they
are written, so writability is validated lazily by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors import MPI_ERR_BUFFER, MPIError
from .datatype import BYTE, Datatype


@dataclass
class Region:
    """One scatter/gather entry: a contiguous buffer plus its MPI type.

    Parameters
    ----------
    buffer:
        Any contiguous buffer-protocol object (numpy array, memoryview,
        bytearray, bytes on the send side).
    nbytes:
        Length in bytes; defaults to the whole buffer.
    datatype:
        Predefined MPI type of the region's elements (metadata the paper's
        ``MPI_Type_custom_region_function`` exposes so implementations could
        apply heterogeneity conversions; our homogeneous simulator only
        validates it).
    """

    buffer: Any
    nbytes: int | None = None
    datatype: Datatype = field(default_factory=lambda: BYTE)

    def __post_init__(self):
        view = self.view()
        if self.nbytes is None:
            self.nbytes = view.shape[0]
        if self.nbytes < 0:
            raise MPIError(MPI_ERR_BUFFER, f"negative region length {self.nbytes}")
        if self.nbytes > view.shape[0]:
            raise MPIError(
                MPI_ERR_BUFFER,
                f"region length {self.nbytes} exceeds buffer of {view.shape[0]} bytes")
        if not self.datatype.is_predefined:
            raise MPIError(MPI_ERR_BUFFER,
                           "region datatype must be a predefined type")
        if self.nbytes % self.datatype.size:
            raise MPIError(
                MPI_ERR_BUFFER,
                f"region length {self.nbytes} not a multiple of "
                f"{self.datatype.name} size {self.datatype.size}")

    def view(self) -> np.ndarray:
        """Flat uint8 view of the underlying buffer."""
        if isinstance(self.buffer, np.ndarray):
            if not self.buffer.flags.c_contiguous:
                raise MPIError(MPI_ERR_BUFFER, "region buffer must be C-contiguous")
            return self.buffer.view(np.uint8).reshape(-1)
        mv = memoryview(self.buffer)
        if not mv.contiguous:
            raise MPIError(MPI_ERR_BUFFER, "region buffer must be contiguous")
        return np.frombuffer(mv, dtype=np.uint8)

    def writable_view(self) -> np.ndarray:
        """Flat writable uint8 view (receive side)."""
        if isinstance(self.buffer, np.ndarray):
            v = self.view()
        else:
            mv = memoryview(self.buffer)
            if mv.readonly:
                raise MPIError(MPI_ERR_BUFFER, "receive region buffer is read-only")
            v = np.frombuffer(mv, dtype=np.uint8)
        if not v.flags.writeable:
            raise MPIError(MPI_ERR_BUFFER, "receive region buffer is read-only")
        return v

    def read_bytes(self) -> np.ndarray:
        """The region's bytes (length-trimmed read view)."""
        return self.view()[: self.nbytes]


def total_region_bytes(regions: Sequence[Region]) -> int:
    """Sum of region lengths."""
    return sum(r.nbytes for r in regions)


def region_lengths(regions: Sequence[Region]) -> list[int]:
    """Per-region byte lengths, in order."""
    return [r.nbytes for r in regions]
