"""Typemap algebra for derived datatypes.

MPI defines a derived datatype as a *typemap*: a sequence of (predefined
type, byte displacement) pairs.  For packing purposes only the byte blocks
matter, so this module represents a typemap as an ordered sequence of
:class:`Block` (displacement, length, scalar count) entries together with a
lower bound and extent.  The ordered-block form supports the three
operations every derived-type constructor needs:

* ``repeat`` — replicate with a stride (contiguous / vector),
* ``displace`` — shift all blocks (indexed entries, struct fields),
* ``concat`` — append typemaps in declaration order (struct).

Blocks keep their *declaration order* because MPI's pack order is the
typemap order, not the address order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Block:
    """A run of bytes inside one element of a datatype.

    Attributes
    ----------
    offset:
        Byte displacement from the element base address.
    length:
        Number of bytes in the run.
    nscalars:
        How many predefined scalars the run covers (cost-model metadata;
        a gap-free merged run of 3 ints has length 12 and nscalars 3).
    scalar:
        Numpy-style code of the predefined scalar this run is made of
        (``"f8"``, ``"i4"``, ...); the empty string means untyped bytes.
        Carried so :meth:`Typemap.signature` can reconstruct the MPI type
        signature for sanitizer matching; blocks of different scalars are
        never merged into each other's code.
    """

    offset: int
    length: int
    nscalars: int = 1
    scalar: str = ""

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError(f"block length must be positive, got {self.length}")
        if self.nscalars <= 0:
            raise ValueError(f"nscalars must be positive, got {self.nscalars}")

    @property
    def end(self) -> int:
        return self.offset + self.length

    def shifted(self, delta: int) -> "Block":
        return Block(self.offset + delta, self.length, self.nscalars,
                     self.scalar)


class Typemap:
    """An ordered sequence of byte blocks plus explicit bounds.

    Parameters
    ----------
    blocks:
        Blocks in pack order.
    lb, extent:
        Explicit lower bound and extent.  When omitted they default to the
        *natural* bounds: ``lb = min(offsets)`` and
        ``extent = max(ends) - lb`` (no alignment padding is applied; the
        derived-type constructors add C-layout padding where the paper's
        Rust ``#[repr(C)]`` types have it).
    """

    __slots__ = ("blocks", "lb", "extent", "_merged", "_signature", "_size",
                 "_true_lb", "_true_ub", "__weakref__")

    def __init__(self, blocks: Iterable[Block], lb: int | None = None,
                 extent: int | None = None):
        self.blocks: tuple[Block, ...] = tuple(blocks)
        #: Lazily memoized derived quantities.  A typemap is immutable after
        #: construction, so each is computed at most once per instance (they
        #: used to be recomputed on every pack and every sanitizer envelope
        #: stamp; ``size``/``true_ub`` are on the per-pack hot path through
        #: ``packed_size``/``required_span``).
        self._merged: tuple[Block, ...] | None = None
        self._signature: tuple[tuple[str, int], ...] | None = None
        self._size: int | None = None
        self._true_lb: int | None = None
        self._true_ub: int | None = None
        if not self.blocks and (lb is None or extent is None):
            raise ValueError("empty typemap requires explicit lb and extent")
        nat_lb = min((b.offset for b in self.blocks), default=0)
        nat_ub = max((b.end for b in self.blocks), default=0)
        self.lb = nat_lb if lb is None else lb
        self.extent = (nat_ub - self.lb) if extent is None else extent
        if self.extent < 0:
            raise ValueError(f"negative extent: {self.extent}")

    # -- derived quantities ---------------------------------------------

    @property
    def size(self) -> int:
        """Packed size in bytes (sum of block lengths)."""
        if self._size is None:
            self._size = sum(b.length for b in self.blocks)
        return self._size

    @property
    def ub(self) -> int:
        return self.lb + self.extent

    @property
    def true_lb(self) -> int:
        """Lowest displacement actually covered by data."""
        if self._true_lb is None:
            self._true_lb = min((b.offset for b in self.blocks),
                                default=self.lb)
        return self._true_lb

    @property
    def true_ub(self) -> int:
        if self._true_ub is None:
            self._true_ub = max((b.end for b in self.blocks),
                                default=self.lb)
        return self._true_ub

    @property
    def true_extent(self) -> int:
        return self.true_ub - self.true_lb

    @property
    def nscalars(self) -> int:
        """Number of predefined scalar entries (cost-model metadata)."""
        return sum(b.nscalars for b in self.blocks)

    @property
    def is_contiguous(self) -> bool:
        """True if packing is the identity: one gap-free run, extent==size.

        This is the condition under which an MPI implementation can skip the
        pack engine entirely — the fast path that makes
        ``struct-simple-no-gap`` cheap in the paper's Fig. 6.
        """
        merged = self.merged_blocks()
        return (len(merged) == 1
                and merged[0].offset == self.lb
                and merged[0].length == self.extent)

    @property
    def has_gaps(self) -> bool:
        """True when one element's data does not tile its extent."""
        return not self.is_contiguous

    def merged_blocks(self) -> tuple[Block, ...]:
        """Coalesce blocks that are adjacent both in pack order and memory.

        Memoized on the instance (the structure is immutable); use
        :meth:`compute_merged_blocks` to force the uncached walk.
        """
        if self._merged is None:
            self._merged = self.compute_merged_blocks()
        return self._merged

    def compute_merged_blocks(self) -> tuple[Block, ...]:
        """The uncached merge walk (one pass over ``blocks``).

        Kept public so the retained reference pack implementation (see
        :mod:`repro.core.packing`) can reproduce pre-plan per-call costs.
        """
        merged: list[Block] = []
        for b in self.blocks:
            if merged and merged[-1].end == b.offset:
                prev = merged[-1]
                merged[-1] = Block(prev.offset, prev.length + b.length,
                                   prev.nscalars + b.nscalars,
                                   prev.scalar if prev.scalar == b.scalar
                                   else "")
            else:
                merged.append(b)
        return tuple(merged)

    def signature(self) -> tuple[tuple[str, int], ...]:
        """Canonical MPI type signature: run-length ``(scalar, count)`` pairs.

        The signature is the pack-order sequence of predefined scalars with
        displacements erased (MPI's definition); adjacent runs of the same
        scalar are coalesced.  Blocks without a scalar code count as raw
        bytes (``"u1"``).  Memoized on the instance.
        """
        if self._signature is not None:
            return self._signature
        runs: list[list] = []
        for b in self.blocks:
            if b.scalar:
                code, n = b.scalar, b.nscalars
            else:
                code, n = "u1", b.length
            if runs and runs[-1][0] == code:
                runs[-1][1] += n
            else:
                runs.append([code, n])
        self._signature = tuple((c, n) for c, n in runs)
        return self._signature

    # -- algebra ----------------------------------------------------------

    def displace(self, delta: int) -> "Typemap":
        """Shift every block (and the bounds) by ``delta`` bytes."""
        return Typemap((b.shifted(delta) for b in self.blocks),
                       lb=self.lb + delta, extent=self.extent)

    def repeat(self, count: int, stride_bytes: int | None = None) -> "Typemap":
        """Replicate ``count`` times, successive copies ``stride_bytes`` apart.

        With the default stride (the extent) this implements
        ``MPI_Type_contiguous``; other strides implement hvector rows.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        stride = self.extent if stride_bytes is None else stride_bytes
        blocks: list[Block] = []
        for i in range(count):
            delta = i * stride
            blocks.extend(b.shifted(delta) for b in self.blocks)
        if count == 0:
            return Typemap((), lb=self.lb, extent=0)
        # A negative stride walks the copies downward in memory (MPI allows
        # it for hvector); the span then starts at the *last* copy's lb.
        travel = stride * (count - 1)
        span_lb = self.lb + min(0, travel)
        span_extent = abs(travel) + self.extent
        return Typemap(blocks, lb=span_lb, extent=span_extent)

    @staticmethod
    def concat(maps: Sequence["Typemap"], lb: int | None = None,
               extent: int | None = None) -> "Typemap":
        """Concatenate typemaps in declaration order (struct semantics)."""
        blocks: list[Block] = []
        for m in maps:
            blocks.extend(m.blocks)
        if lb is None:
            lb = min((m.lb for m in maps), default=0)
        if extent is None:
            ub = max((m.ub for m in maps), default=0)
            extent = ub - lb
        return Typemap(blocks, lb=lb, extent=extent)

    def resized(self, lb: int, extent: int) -> "Typemap":
        """Return the same blocks with new explicit bounds."""
        return Typemap(self.blocks, lb=lb, extent=extent)

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Typemap):
            return NotImplemented
        return (self.blocks == other.blocks and self.lb == other.lb
                and self.extent == other.extent)

    def __hash__(self) -> int:
        return hash((self.blocks, self.lb, self.extent))

    def __repr__(self) -> str:
        return (f"Typemap({len(self.blocks)} blocks, size={self.size}, "
                f"lb={self.lb}, extent={self.extent})")


def scalar_typemap(nbytes: int, offset: int = 0, scalar: str = "") -> Typemap:
    """Typemap of a single predefined scalar of ``nbytes`` bytes.

    ``scalar`` is the numpy-style type code carried through the algebra for
    signature reconstruction (empty for untyped bytes).
    """
    return Typemap((Block(offset, nbytes, 1, scalar),))
