"""Callback protocols and lifecycle for the custom datatype API.

These are the Python equivalents of the C function typedefs in the paper's
Listings 3-5.  The translation rules, applied uniformly:

* C out-parameters become return values (``packed_size``, ``used``,
  ``region_count``, the region arrays).
* The C ``int`` error-code return becomes an exception; any exception raised
  by a callback is wrapped in :class:`~repro.errors.CallbackError` so the
  engine can abort the operation cleanly (the paper: "Errors are propagated
  through return values ... Error handling is crucial for serialization
  libraries that can fail in the case of invalid data").
* ``void *state`` is an arbitrary Python object returned by the state
  callback and threaded through every subsequent call.
* Destination/source fragment buffers are writable/readonly ``memoryview``-
  compatible numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

from ..errors import CallbackError
from .regions import Region


@runtime_checkable
class StateFn(Protocol):
    """``MPI_Type_custom_state_function`` (Listing 3).

    Called once per MPI operation touching a custom-type buffer; returns the
    per-operation state object (may be ``None`` for stateless types).
    """

    def __call__(self, context: Any, buf: Any, count: int) -> Any: ...


@runtime_checkable
class StateFreeFn(Protocol):
    """``MPI_Type_custom_state_free_function`` (Listing 3)."""

    def __call__(self, state: Any) -> None: ...


@runtime_checkable
class QueryFn(Protocol):
    """``MPI_Type_custom_query_function`` (Listing 4): total packed bytes."""

    def __call__(self, state: Any, buf: Any, count: int) -> int: ...


@runtime_checkable
class PackFn(Protocol):
    """``MPI_Type_custom_pack_function`` (Listing 4).

    Pack bytes starting at virtual ``offset`` of the packed stream into
    ``dst`` (a writable uint8 numpy view); return the number of bytes
    written.  Partial fills are allowed — the engine calls again with the
    advanced offset and a fresh fragment.
    """

    def __call__(self, state: Any, buf: Any, count: int, offset: int,
                 dst: Any) -> int: ...


@runtime_checkable
class UnpackFn(Protocol):
    """``MPI_Type_custom_unpack_function`` (Listing 4).

    Consume one incoming fragment ``src`` located at virtual ``offset`` of
    the packed stream.
    """

    def __call__(self, state: Any, buf: Any, count: int, offset: int,
                 src: Any) -> None: ...


@runtime_checkable
class RegionCountFn(Protocol):
    """``MPI_Type_custom_region_count_function`` (Listing 5)."""

    def __call__(self, state: Any, buf: Any, count: int) -> int: ...


@runtime_checkable
class RegionFn(Protocol):
    """``MPI_Type_custom_region_function`` (Listing 5).

    Returns the list of :class:`~repro.core.regions.Region`; its length must
    equal the preceding region-count answer.
    """

    def __call__(self, state: Any, buf: Any, count: int,
                 region_count: int) -> Sequence[Region]: ...


@dataclass(frozen=True)
class CallbackSet:
    """The seven callbacks plus context, as passed to type creation.

    Only ``query_fn`` is mandatory.  ``pack_fn``/``unpack_fn`` are required
    whenever the query can report a nonzero packed size; the region pair is
    required for types exposing memory regions.  Validation of these
    conditional requirements happens at operation time (the engine cannot
    know the query's answer earlier).
    """

    query_fn: QueryFn
    pack_fn: Optional[PackFn] = None
    unpack_fn: Optional[UnpackFn] = None
    region_count_fn: Optional[RegionCountFn] = None
    region_fn: Optional[RegionFn] = None
    state_fn: Optional[StateFn] = None
    state_free_fn: Optional[StateFreeFn] = None
    context: Any = None

    def __post_init__(self):
        if self.query_fn is None:
            raise TypeError("query_fn is required")
        if not callable(self.query_fn):
            raise TypeError("query_fn must be callable")
        for name in ("pack_fn", "unpack_fn", "region_count_fn", "region_fn",
                     "state_fn", "state_free_fn"):
            fn = getattr(self, name)
            if fn is not None and not callable(fn):
                raise TypeError(f"{name} must be callable or None")
        if (self.region_count_fn is None) != (self.region_fn is None):
            raise TypeError("region_count_fn and region_fn must be provided together")

    @property
    def has_regions(self) -> bool:
        return self.region_fn is not None


def invoke(name: str, fn: Callable, *args):
    """Call a user callback, translating failures into CallbackError."""
    try:
        return fn(*args)
    except CallbackError:
        raise
    except Exception as exc:  # serializers can raise anything
        raise CallbackError(f"custom-datatype callback {name!r} failed", cause=exc)


class OperationState:
    """Lifecycle manager for the per-operation state object.

    Mirrors the paper's rule that the state is allocated when an MPI
    operation first touches the buffer and freed when the operation
    completes.  Usable as a context manager so the free callback runs even
    when a later callback fails.
    """

    def __init__(self, callbacks: CallbackSet, buf: Any, count: int):
        self._cb = callbacks
        self.buf = buf
        self.count = count
        self.state: Any = None
        self._alive = False

    def __enter__(self) -> "OperationState":
        if self._cb.state_fn is not None:
            self.state = invoke("state_fn", self._cb.state_fn,
                                self._cb.context, self.buf, self.count)
        self._alive = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._alive and self._cb.state_free_fn is not None:
            self._alive = False
            invoke("state_free_fn", self._cb.state_free_fn, self.state)
        else:
            self._alive = False
