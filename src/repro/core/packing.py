"""Derived-datatype pack/unpack engine.

This is the stand-in for the Open MPI datatype engine that the paper
benchmarks against.  Two properties of that engine matter for the figures:

* **Fast path** — a contiguous type (``struct-simple-no-gap``, Fig. 6) packs
  with a single memcpy and, better, the engine can skip packing entirely and
  hand the user buffer to the transport.
* **Slow path** — a type with gaps (``struct-simple``, Fig. 5) is walked
  block by block.  We implement the walk vectorized across elements with
  numpy (one strided 2-D copy per merged block), but the *virtual-time* cost
  charged by the MPI engine uses the per-scalar ``elem_cost`` model, which is
  what reproduces the paper's gap penalty.

Since the plan-compiler PR the public entry points execute a
:class:`repro.core.packplan.PackPlan` compiled once per ``(typemap identity,
count-class)`` and cached through :func:`repro.core.typecache.pack_plan`;
layout derivation (block merging, strided-view descriptors, the contiguous
decision) no longer happens per call.  The pre-plan engine is retained
verbatim as :func:`pack_reference`/:func:`unpack_reference` (and the window
equivalents) — the equivalence test suite asserts the plan path is
byte-identical to it, and ``benchmarks/perf`` measures the speedup against
it.

All functions move real bytes; they are pure with respect to virtual time
(cost charging happens in :mod:`repro.mpi.engine`).
"""

from __future__ import annotations

import numpy as np

from ..errors import MPI_ERR_BUFFER, MPIError
from .datatype import Datatype
from .typecache import pack_plan


def _as_u8(buf, writable: bool = False) -> np.ndarray:
    """View any buffer-protocol object as a flat uint8 array."""
    if isinstance(buf, np.ndarray):
        arr = buf
        if not arr.flags.c_contiguous:
            raise MPIError(MPI_ERR_BUFFER, "buffer must be C-contiguous")
        out = arr.view(np.uint8).reshape(-1)
    else:
        mv = memoryview(buf)
        if not mv.contiguous:
            raise MPIError(MPI_ERR_BUFFER, "buffer must be contiguous")
        out = np.frombuffer(mv, dtype=np.uint8)
    if writable and not out.flags.writeable:
        raise MPIError(MPI_ERR_BUFFER, "buffer is read-only")
    return out


def required_span(dtype: Datatype, count: int) -> int:
    """Bytes of user buffer a send/recv of ``count`` elements touches.

    MPI semantics: the buffer spans ``lb .. (count-1)*extent + ub`` relative
    to the base address; with lb==0 this is simply ``count * extent`` except
    that the final element only needs its true upper bound.
    """
    if count == 0:
        return 0
    tm = dtype.typemap
    return (count - 1) * dtype.extent + max(tm.true_ub, 0)


def packed_size(dtype: Datatype, count: int) -> int:
    """Total packed bytes of ``count`` elements."""
    return dtype.size * count


def pack(dtype: Datatype, buf, count: int, out: np.ndarray | None = None) -> np.ndarray:
    """Pack ``count`` elements of ``dtype`` from ``buf`` into a flat buffer.

    Returns a uint8 array of length ``packed_size(dtype, count)``.  When
    ``out`` is given it must be exactly that long and is filled in place.
    """
    src = _as_u8(buf)
    total = packed_size(dtype, count)
    if out is None:
        out = np.empty(total, dtype=np.uint8)
    else:
        out = _as_u8(out, writable=True)
        if out.shape[0] != total:
            raise MPIError(MPI_ERR_BUFFER,
                           f"pack output must be {total} bytes, got {out.shape[0]}")
    if count == 0:
        return out

    need = required_span(dtype, count)
    if src.shape[0] < need:
        raise MPIError(MPI_ERR_BUFFER,
                       f"send buffer too small: need {need} bytes, have {src.shape[0]}")

    pack_plan(dtype, count).pack_into(src, count, out)
    return out


def unpack(dtype: Datatype, buf, count: int, src) -> None:
    """Unpack a flat packed buffer ``src`` into ``count`` elements in ``buf``."""
    dst = _as_u8(buf, writable=True)
    packed = _as_u8(src)
    total = packed_size(dtype, count)
    if packed.shape[0] < total:
        raise MPIError(MPI_ERR_BUFFER,
                       f"packed buffer too small: need {total}, have {packed.shape[0]}")
    if count == 0:
        return

    need = required_span(dtype, count)
    if dst.shape[0] < need:
        raise MPIError(MPI_ERR_BUFFER,
                       f"recv buffer too small: need {need} bytes, have {dst.shape[0]}")

    pack_plan(dtype, count).unpack_into(dst, count, packed)


def pack_window(dtype: Datatype, buf, count: int, offset: int, length: int) -> np.ndarray:
    """Pack only the packed-stream window ``[offset, offset+length)``.

    This is the primitive beneath fragment pipelines (the GENERIC transport
    datatype): the window need not align with element boundaries.  Contiguous
    types and element-aligned windows pack directly; only a window that cuts
    through an element packs the boundary elements into scratch and slices.
    The result may be a read-only view of ``buf``.

    Stateful pipelines should prefer :class:`repro.core.packplan.PackCursor`,
    which packs each element range once across successive windows.
    """
    size = dtype.size
    total = packed_size(dtype, count)
    if offset < 0 or length < 0 or offset + length > total:
        raise MPIError(MPI_ERR_BUFFER,
                       f"pack window [{offset}, {offset + length}) outside [0, {total})")
    if length == 0:
        return np.empty(0, dtype=np.uint8)
    if size == 0:
        return np.empty(0, dtype=np.uint8)

    src = _as_u8(buf)
    if dtype.typemap.is_contiguous:
        # Identity layout: the packed stream *is* the buffer.
        return src[offset:offset + length]
    first = offset // size
    last = (offset + length - 1) // size
    nelem = last - first + 1
    ext = dtype.extent
    sub = src[first * ext:]
    lo = offset - first * size
    if lo == 0 and length == nelem * size:
        # Aligned window: pack the covered elements straight out.
        return pack(dtype, sub, nelem)
    scratch = pack(dtype, sub, nelem)
    return scratch[lo:lo + length]


def unpack_window(dtype: Datatype, buf, count: int, offset: int, frag) -> None:
    """Unpack one packed-stream fragment at ``offset`` into ``buf``.

    The inverse of :func:`pack_window`.  Fragments not aligned to element
    boundaries require a read-modify-write of the boundary elements, which is
    done through a scratch pack of the affected elements.  In-order pipelines
    should prefer :class:`repro.core.packplan.UnpackCursor`, which completes
    boundary elements incrementally instead.
    """
    data = _as_u8(frag)
    length = data.shape[0]
    size = dtype.size
    total = packed_size(dtype, count)
    if offset < 0 or offset + length > total:
        raise MPIError(MPI_ERR_BUFFER,
                       f"unpack window [{offset}, {offset + length}) outside [0, {total})")
    if length == 0 or size == 0:
        return

    first = offset // size
    last = (offset + length - 1) // size
    nelem = last - first + 1
    dst = _as_u8(buf, writable=True)
    ext = dtype.extent
    sub = dst[first * ext:]
    lo = offset - first * size
    if lo == 0 and length == nelem * size:
        # Aligned fragment: direct scatter.
        unpack(dtype, sub, nelem, data)
        return
    scratch = pack(dtype, sub, nelem)  # preserve bytes outside the window
    scratch[lo:lo + length] = data
    unpack(dtype, sub, nelem, scratch)


# ---------------------------------------------------------------------------
# retained pre-plan reference engine
# ---------------------------------------------------------------------------
# The original per-call implementation, kept as the ground truth for the
# equivalence test suite and as the honest "before" side of benchmarks/perf.
# It re-derives the layout on every call (uncached merge walk, per-call
# contiguity decision) exactly as the engine did before plan compilation.


def pack_reference(dtype: Datatype, buf, count: int,
                   out: np.ndarray | None = None) -> np.ndarray:
    """Pre-plan :func:`pack`: re-derives the typemap layout on every call."""
    src = _as_u8(buf)
    total = packed_size(dtype, count)
    if out is None:
        out = np.empty(total, dtype=np.uint8)
    else:
        out = _as_u8(out, writable=True)
        if out.shape[0] != total:
            raise MPIError(MPI_ERR_BUFFER,
                           f"pack output must be {total} bytes, got {out.shape[0]}")
    if count == 0:
        return out

    need = required_span(dtype, count)
    if src.shape[0] < need:
        raise MPIError(MPI_ERR_BUFFER,
                       f"send buffer too small: need {need} bytes, have {src.shape[0]}")

    tm = dtype.typemap
    blocks = tm.compute_merged_blocks()
    if (len(blocks) == 1 and blocks[0].offset == tm.lb
            and blocks[0].length == tm.extent):
        # Identity layout: one memcpy.
        out[:total] = src[:total]
        return out

    ext = dtype.extent
    size = dtype.size
    if tm.true_lb < 0:
        raise MPIError(MPI_ERR_BUFFER, "negative displacements are not supported")
    # View the source as rows one extent apart (element i starts at i*extent;
    # block displacements index from the element base).  The last element may
    # not span a full extent, so handle it separately when the buffer is short.
    row_span = max(tm.true_ub, ext)
    full_rows = count if src.shape[0] >= (count - 1) * ext + row_span else count - 1
    if full_rows:
        rows = np.lib.stride_tricks.as_strided(
            src, shape=(full_rows, row_span), strides=(ext, 1), writeable=False)
        out2d = out[: full_rows * size].reshape(full_rows, size)
        pos = 0
        for b in blocks:
            out2d[:, pos:pos + b.length] = rows[:, b.offset: b.offset + b.length]
            pos += b.length
    for i in range(full_rows, count):
        base = i * ext
        pos = i * size
        for b in blocks:
            start = base + b.offset
            out[pos:pos + b.length] = src[start:start + b.length]
            pos += b.length
    return out


def unpack_reference(dtype: Datatype, buf, count: int, src) -> None:
    """Pre-plan :func:`unpack`: re-derives the typemap layout on every call."""
    dst = _as_u8(buf, writable=True)
    packed = _as_u8(src)
    total = packed_size(dtype, count)
    if packed.shape[0] < total:
        raise MPIError(MPI_ERR_BUFFER,
                       f"packed buffer too small: need {total}, have {packed.shape[0]}")
    if count == 0:
        return

    need = required_span(dtype, count)
    if dst.shape[0] < need:
        raise MPIError(MPI_ERR_BUFFER,
                       f"recv buffer too small: need {need} bytes, have {dst.shape[0]}")

    tm = dtype.typemap
    blocks = tm.compute_merged_blocks()
    if (len(blocks) == 1 and blocks[0].offset == tm.lb
            and blocks[0].length == tm.extent):
        dst[:total] = packed[:total]
        return

    ext = dtype.extent
    size = dtype.size
    if tm.true_lb < 0:
        raise MPIError(MPI_ERR_BUFFER, "negative displacements are not supported")
    row_span = max(tm.true_ub, ext)
    full_rows = count if dst.shape[0] >= (count - 1) * ext + row_span else count - 1
    if full_rows:
        rows = np.lib.stride_tricks.as_strided(
            dst, shape=(full_rows, row_span), strides=(ext, 1))
        src2d = packed[: full_rows * size].reshape(full_rows, size)
        pos = 0
        for b in blocks:
            rows[:, b.offset: b.offset + b.length] = src2d[:, pos:pos + b.length]
            pos += b.length
    for i in range(full_rows, count):
        base = i * ext
        pos = i * size
        for b in blocks:
            start = base + b.offset
            dst[start:start + b.length] = packed[pos:pos + b.length]
            pos += b.length


def pack_window_reference(dtype: Datatype, buf, count: int, offset: int,
                          length: int) -> np.ndarray:
    """Pre-plan :func:`pack_window`: scratch-packs the overlapped elements
    for every fragment, boundary elements included."""
    size = dtype.size
    total = packed_size(dtype, count)
    if offset < 0 or length < 0 or offset + length > total:
        raise MPIError(MPI_ERR_BUFFER,
                       f"pack window [{offset}, {offset + length}) outside [0, {total})")
    if length == 0 or size == 0:
        return np.empty(0, dtype=np.uint8)

    first = offset // size
    last = (offset + length - 1) // size
    nelem = last - first + 1
    src = _as_u8(buf)
    ext = dtype.extent
    sub = src[first * ext:]
    scratch = pack_reference(dtype, sub, nelem)
    lo = offset - first * size
    return scratch[lo:lo + length]


def unpack_window_reference(dtype: Datatype, buf, count: int, offset: int,
                            frag) -> None:
    """Pre-plan :func:`unpack_window`: read-modify-write through a scratch
    re-pack of the overlapped elements for every unaligned fragment."""
    data = _as_u8(frag)
    length = data.shape[0]
    size = dtype.size
    total = packed_size(dtype, count)
    if offset < 0 or offset + length > total:
        raise MPIError(MPI_ERR_BUFFER,
                       f"unpack window [{offset}, {offset + length}) outside [0, {total})")
    if length == 0 or size == 0:
        return

    first = offset // size
    last = (offset + length - 1) // size
    nelem = last - first + 1
    dst = _as_u8(buf, writable=True)
    ext = dtype.extent
    sub = dst[first * ext:]
    lo = offset - first * size
    if lo == 0 and length == nelem * size:
        unpack_reference(dtype, sub, nelem, data)
        return
    scratch = pack_reference(dtype, sub, nelem)
    scratch[lo:lo + length] = data
    unpack_reference(dtype, sub, nelem, scratch)
