"""Datatype core: derived datatypes, the custom serialization API, builders.

Public surface of the paper's contribution.  Typical use::

    from repro.core import type_create_custom, Region

    dtype = type_create_custom(query_fn=..., pack_fn=..., unpack_fn=...,
                               region_count_fn=..., region_fn=...)
    comm.send(obj, dtype, dest=1, tag=0)
"""

from .datatype import (BYTE, CHAR, COMPLEX64, COMPLEX128, FLOAT32, FLOAT64,
                       INT8, INT16, INT32, INT64, PREDEFINED, UINT8, UINT16,
                       UINT32, UINT64, Datatype, DerivedDatatype,
                       PredefinedDatatype, from_numpy_dtype)
from .typemap import Block, Typemap, scalar_typemap
from .signature import (format_signature, signature_bytes,
                        signature_compatible)
from .derived import (contiguous, create_struct, dup, hindexed, hvector,
                      indexed, indexed_block, resized, subarray, vector)
from .packing import (pack, pack_reference, pack_window,
                      pack_window_reference, packed_size, required_span,
                      unpack, unpack_reference, unpack_window,
                      unpack_window_reference)
from .packplan import PackCursor, PackPlan, UnpackCursor
from .planir import (CopyBlock, Gather, Pass, Program, StridedLoop,
                     byte_map, default_pipeline, get_default_executor,
                     lower_typemap, run_pipeline, set_default_executor)
from .regions import Region, region_lengths, total_region_bytes
from .callbacks import (CallbackSet, OperationState, PackFn, QueryFn,
                        RegionCountFn, RegionFn, StateFn, StateFreeFn,
                        UnpackFn)
from .custom import (CustomDatatype, CustomRecvOperation, CustomSendOperation,
                     pack_all, type_create_custom, unpack_all)
from .coro import (coroutine_pack_callbacks, full_buffer_generator)
from .builder import DEFAULT_REGION_THRESHOLD, Field, StructSpec
from .adapters import MPISerializable, datatype_for
from .introspect import (equivalent, get_contents, get_envelope, marshal,
                         unmarshal)
from .typecache import (cache_info, cached_datatype, clear_datatype_cache,
                        clear_plan_cache, datatype_of, pack_plan,
                        plan_cache_info, register_datatype)

__all__ = [
    # predefined types
    "BYTE", "CHAR", "INT8", "UINT8", "INT16", "UINT16", "INT32", "UINT32",
    "INT64", "UINT64", "FLOAT32", "FLOAT64", "COMPLEX64", "COMPLEX128",
    "PREDEFINED", "from_numpy_dtype",
    # datatype classes
    "Datatype", "PredefinedDatatype", "DerivedDatatype", "CustomDatatype",
    # typemap algebra
    "Block", "Typemap", "scalar_typemap",
    # type signatures
    "signature_compatible", "signature_bytes", "format_signature",
    # derived constructors
    "contiguous", "vector", "hvector", "indexed", "hindexed", "indexed_block",
    "create_struct", "resized", "subarray", "dup",
    # pack engine
    "pack", "unpack", "pack_window", "unpack_window", "packed_size",
    "required_span",
    # pre-plan reference engine (equivalence tests, benchmarks/perf)
    "pack_reference", "unpack_reference", "pack_window_reference",
    "unpack_window_reference",
    # compiled pack plans
    "PackPlan", "PackCursor", "UnpackCursor",
    # pack-plan IR (ops, passes, executors)
    "CopyBlock", "StridedLoop", "Gather", "Program", "Pass",
    "lower_typemap", "byte_map", "default_pipeline", "run_pipeline",
    "set_default_executor", "get_default_executor",
    # regions
    "Region", "region_lengths", "total_region_bytes",
    # custom API
    "type_create_custom", "CustomSendOperation", "CustomRecvOperation",
    "pack_all", "unpack_all",
    # callback protocols
    "CallbackSet", "OperationState", "StateFn", "StateFreeFn", "QueryFn",
    "PackFn", "UnpackFn", "RegionCountFn", "RegionFn",
    # coroutine packing
    "coroutine_pack_callbacks", "full_buffer_generator",
    # builders / adapters
    "Field", "StructSpec", "DEFAULT_REGION_THRESHOLD",
    "MPISerializable", "datatype_for",
    # introspection / marshalling
    "get_envelope", "get_contents", "marshal", "unmarshal", "equivalent",
    # type cache
    "register_datatype", "datatype_of", "cached_datatype",
    "clear_datatype_cache", "cache_info",
    # plan cache
    "pack_plan", "plan_cache_info", "clear_plan_cache",
]
