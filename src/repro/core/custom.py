"""The custom datatype API — the paper's primary contribution.

:func:`type_create_custom` is the Python rendering of the paper's
``MPI_Type_create_custom`` (Listing 2): it binds the seven application
callbacks plus a context and the ``inorder`` flag into a
:class:`CustomDatatype` usable anywhere a datatype argument is accepted.

The module also hosts the two *operation drivers* that implement the staged
callback choreography of Section III:

* :class:`CustomSendOperation` — allocate state, query the packed size, pack
  fragment by fragment, then extract memory regions;
* :class:`CustomRecvOperation` — allocate state, unpack each incoming
  fragment (in order by default), and only then ask the receive side for its
  regions (so region placement may depend on just-unpacked metadata, which is
  exactly what the pickle-5 out-of-band strategy needs).

The drivers move real bytes and keep accounting (callback invocations,
fragment counts) that :mod:`repro.mpi.engine` converts into virtual time.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..errors import CallbackError, MPI_ERR_COUNT, MPI_ERR_TYPE, MPIError
from .callbacks import (CallbackSet, OperationState, PackFn, QueryFn,
                        RegionCountFn, RegionFn, StateFn, StateFreeFn,
                        UnpackFn, invoke)
from .datatype import Datatype
from .regions import Region, region_lengths


class CustomDatatype(Datatype):
    """A datatype whose packing is driven by application callbacks.

    Create with :func:`type_create_custom`; the constructor accepts the same
    arguments directly.
    """

    def __init__(self, callbacks: CallbackSet, inorder: bool = False,
                 name: str = "custom"):
        self.callbacks = callbacks
        #: When True the application requires fragments to be packed and
        #: unpacked in increasing-offset order, inhibiting out-of-order
        #: transport optimizations (Listing 2's ``inorder`` flag).
        self.inorder = bool(inorder)
        self.name = name

    @property
    def is_custom(self) -> bool:
        return True

    @property
    def size(self) -> int:
        raise MPIError(MPI_ERR_TYPE,
                       "custom datatypes have no static size; the packed size "
                       "is per-buffer (query callback)")

    @property
    def extent(self) -> int:
        raise MPIError(MPI_ERR_TYPE, "custom datatypes have no static extent")

    @property
    def typemap(self):
        raise MPIError(MPI_ERR_TYPE, "custom datatypes have no typemap")

    def signature(self, count: int = 1):
        """Custom datatypes serialize per-buffer; no static signature."""
        return None


def type_create_custom(query_fn: QueryFn,
                       pack_fn: Optional[PackFn] = None,
                       unpack_fn: Optional[UnpackFn] = None,
                       region_count_fn: Optional[RegionCountFn] = None,
                       region_fn: Optional[RegionFn] = None,
                       state_fn: Optional[StateFn] = None,
                       state_free_fn: Optional[StateFreeFn] = None,
                       context: Any = None,
                       inorder: bool = False,
                       name: str = "custom") -> CustomDatatype:
    """Create a custom datatype (the paper's ``MPI_Type_create_custom``).

    Parameters mirror Listing 2, with C out-parameters turned into return
    values (see :mod:`repro.core.callbacks` for each signature).
    """
    cb = CallbackSet(query_fn=query_fn, pack_fn=pack_fn, unpack_fn=unpack_fn,
                     region_count_fn=region_count_fn, region_fn=region_fn,
                     state_fn=state_fn, state_free_fn=state_free_fn,
                     context=context)
    return CustomDatatype(cb, inorder=inorder, name=name)


class CustomSendOperation:
    """Send-side driver: state -> query -> pack loop -> regions.

    Use as a context manager so the state-free callback always runs::

        with CustomSendOperation(dtype, buf, count) as op:
            frags = op.pack_fragments(frag_size)
            regions = op.regions()
    """

    def __init__(self, dtype: CustomDatatype, buf: Any, count: int):
        if count < 0:
            raise MPIError(MPI_ERR_COUNT, f"negative count {count}")
        self.dtype = dtype
        self.buf = buf
        self.count = count
        self._op_state = OperationState(dtype.callbacks, buf, count)
        self.ncallbacks = 0  # accounting for the cost model
        self._packed_size: int | None = None

    def __enter__(self) -> "CustomSendOperation":
        self._op_state.__enter__()
        if self.dtype.callbacks.state_fn is not None:
            self.ncallbacks += 1
        return self

    def __exit__(self, *exc_info) -> None:
        if self.dtype.callbacks.state_free_fn is not None:
            self.ncallbacks += 1
        self._op_state.__exit__(*exc_info)

    @property
    def state(self) -> Any:
        return self._op_state.state

    def packed_size(self) -> int:
        """Invoke the query callback (cached for the operation)."""
        if self._packed_size is None:
            cb = self.dtype.callbacks
            n = invoke("query_fn", cb.query_fn, self.state, self.buf, self.count)
            self.ncallbacks += 1
            if not isinstance(n, int) or n < 0:
                raise CallbackError(f"query_fn must return a non-negative int, got {n!r}")
            self._packed_size = n
        return self._packed_size

    def pack_fragments(self, frag_size: int) -> list[np.ndarray]:
        """Run the pack loop; returns the packed fragments in order.

        The pack callback may fill a fragment only partially (the paper
        allows postponing data that does not align with the fragment size),
        in which case the fragment is trimmed and the next call resumes at
        the advanced offset.  A pack callback that makes no progress is an
        error (would loop forever).
        """
        if frag_size <= 0:
            raise MPIError(MPI_ERR_COUNT, f"fragment size must be positive, got {frag_size}")
        total = self.packed_size()
        cb = self.dtype.callbacks
        if total > 0 and cb.pack_fn is None:
            raise CallbackError(
                f"type {self.dtype.name!r} reports packed_size={total} but has no pack_fn")
        frags: list[np.ndarray] = []
        offset = 0
        while offset < total:
            dst = np.zeros(min(frag_size, total - offset), dtype=np.uint8)
            used = invoke("pack_fn", cb.pack_fn, self.state, self.buf,
                          self.count, offset, dst)
            self.ncallbacks += 1
            if not isinstance(used, int) or used < 0 or used > dst.shape[0]:
                raise CallbackError(
                    f"pack_fn returned invalid used={used!r} for a {dst.shape[0]}-byte fragment")
            if used == 0:
                raise CallbackError("pack_fn made no progress (used == 0)")
            frags.append(dst[:used])
            offset += used
        return frags

    def regions(self) -> list[Region]:
        """Invoke the region pair; returns [] for pack-only types."""
        cb = self.dtype.callbacks
        if not cb.has_regions:
            return []
        n = invoke("region_count_fn", cb.region_count_fn, self.state,
                   self.buf, self.count)
        self.ncallbacks += 1
        if not isinstance(n, int) or n < 0:
            raise CallbackError(f"region_count_fn must return a non-negative int, got {n!r}")
        if n == 0:
            return []
        regs = invoke("region_fn", cb.region_fn, self.state, self.buf,
                      self.count, n)
        self.ncallbacks += 1
        regs = list(regs)
        if len(regs) != n:
            raise CallbackError(
                f"region_fn returned {len(regs)} regions, region_count_fn promised {n}")
        for i, r in enumerate(regs):
            if not isinstance(r, Region):
                raise CallbackError(f"region_fn entry {i} is not a Region: {r!r}")
        return regs


class CustomRecvOperation:
    """Receive-side driver: state -> unpack loop -> regions.

    Fragments are delivered via :meth:`unpack_fragment`; the engine delivers
    them in increasing-offset order (our prototype, like the paper's, always
    provides in-order unpacking; out-of-order delivery is exercised by the
    ``inorder`` ablation).  :meth:`recv_regions` must only be called after
    all packed data is unpacked — region placement may depend on it.
    """

    def __init__(self, dtype: CustomDatatype, buf: Any, count: int):
        if count < 0:
            raise MPIError(MPI_ERR_COUNT, f"negative count {count}")
        self.dtype = dtype
        self.buf = buf
        self.count = count
        self._op_state = OperationState(dtype.callbacks, buf, count)
        self.ncallbacks = 0
        self.bytes_unpacked = 0

    def __enter__(self) -> "CustomRecvOperation":
        self._op_state.__enter__()
        if self.dtype.callbacks.state_fn is not None:
            self.ncallbacks += 1
        return self

    def __exit__(self, *exc_info) -> None:
        if self.dtype.callbacks.state_free_fn is not None:
            self.ncallbacks += 1
        self._op_state.__exit__(*exc_info)

    @property
    def state(self) -> Any:
        return self._op_state.state

    def expected_packed_size(self) -> int:
        """Ask the receive side's query callback for its packed size.

        The engine validates this against the incoming wire header; a
        mismatch is a truncation-style error.  Receivers whose packed size
        cannot be known before data arrives (e.g. pickle deserialization —
        the limitation the paper's Section VI discusses) may return ``None``
        from the query callback, reported here as ``-1``, in which case the
        engine trusts the wire header.
        """
        cb = self.dtype.callbacks
        n = invoke("query_fn", cb.query_fn, self.state, self.buf, self.count)
        self.ncallbacks += 1
        if n is None:
            return -1
        if not isinstance(n, int) or n < 0:
            raise CallbackError(f"query_fn must return a non-negative int or None, got {n!r}")
        return n

    def unpack_fragment(self, offset: int, frag) -> None:
        """Deliver one packed fragment at its virtual offset."""
        cb = self.dtype.callbacks
        if cb.unpack_fn is None:
            raise CallbackError(
                f"type {self.dtype.name!r} received packed data but has no unpack_fn")
        frag = np.asarray(frag, dtype=np.uint8)
        invoke("unpack_fn", cb.unpack_fn, self.state, self.buf, self.count,
               offset, frag)
        self.ncallbacks += 1
        self.bytes_unpacked += frag.shape[0]

    def recv_regions(self, expected_lengths: Sequence[int]) -> list[Region]:
        """Obtain writable receive regions and validate their lengths.

        ``expected_lengths`` comes from the wire header (the engine-internal
        answer to the paper's "receive side must know the exact length of
        individual components" limitation).
        """
        cb = self.dtype.callbacks
        if not expected_lengths:
            return []
        if not cb.has_regions:
            raise CallbackError(
                f"incoming message carries {len(expected_lengths)} regions but "
                f"type {self.dtype.name!r} has no region callbacks")
        n = invoke("region_count_fn", cb.region_count_fn, self.state,
                   self.buf, self.count)
        self.ncallbacks += 1
        if n != len(expected_lengths):
            raise MPIError(
                MPI_ERR_TYPE,
                f"receive side reports {n} regions, sender sent {len(expected_lengths)}")
        regs = list(invoke("region_fn", cb.region_fn, self.state, self.buf,
                           self.count, n))
        self.ncallbacks += 1
        if len(regs) != n:
            raise CallbackError(
                f"region_fn returned {len(regs)} regions, region_count_fn promised {n}")
        got = region_lengths(regs)
        if got != list(expected_lengths):
            raise MPIError(
                MPI_ERR_TYPE,
                f"region length mismatch: sender {list(expected_lengths)}, receiver {got}")
        return regs


def pack_all(dtype: CustomDatatype, buf: Any, count: int,
             frag_size: int = 8192) -> tuple[bytes, list[Region]]:
    """Convenience/testing helper: run a full send-side pass.

    Returns the concatenated packed stream and the region list.
    """
    with CustomSendOperation(dtype, buf, count) as op:
        frags = op.pack_fragments(frag_size)
        regions = op.regions()
    packed = b"".join(bytes(f) for f in frags)
    return packed, regions


def unpack_all(dtype: CustomDatatype, buf: Any, count: int, packed: bytes,
               region_data: Sequence[bytes] = (),
               frag_size: int = 8192) -> None:
    """Convenience/testing helper: run a full receive-side pass.

    Splits ``packed`` into fragments, delivers them in order, then copies
    ``region_data`` into the receiver's regions.
    """
    with CustomRecvOperation(dtype, buf, count) as op:
        offset = 0
        data = memoryview(packed)
        while offset < len(data):
            step = min(frag_size, len(data) - offset)
            op.unpack_fragment(offset, np.frombuffer(data[offset:offset + step],
                                                     dtype=np.uint8))
            offset += step
        regs = op.recv_regions([len(d) for d in region_data])
        for reg, payload in zip(regs, region_data):
            reg.writable_view()[: reg.nbytes] = np.frombuffer(payload, dtype=np.uint8)
