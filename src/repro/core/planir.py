"""Op-level pack-plan IR, rewrite passes, and pluggable executors.

:class:`~repro.core.packplan.PackPlan` used to compile a typemap straight to
one fixed executable form (a column-slice table plus an optional byte-gather
index).  This module splits that step into a small compiler in the spirit of
the MLIR-style MPI dialect lowerings (PAPERS.md) and TEMPI's canonical
datatype representation: typemaps lower to an explicit IR, rewrite passes
bring the IR into a cheaper canonical form, and an executor backend turns
the final IR into numpy calls.

IR ops (all offsets are bytes; ``src`` is the element base in user memory,
``dst`` the packed wire stream of one element):

* :class:`CopyBlock` ``(src_off, dst_off, nbytes)`` — one contiguous copy.
* :class:`StridedLoop` ``(count, src_stride, dst_stride, body)`` — repeat
  ``body`` ``count`` times; iteration ``i`` shifts source offsets by
  ``i * src_stride`` and wire offsets by ``i * dst_stride``.  Body ops carry
  the absolute offsets of iteration 0.
* :class:`Gather` ``(src_index, dst_off)`` — byte gather: wire byte
  ``dst_off + j`` reads source byte ``src_index[j]``.

Passes (:data:`default_pipeline`):

* ``coalesce-blocks`` — merge copies adjacent in both memory and wire order;
* ``canonicalize-strides`` — rewrite periodic runs of copies into
  :class:`StridedLoop` ops (TEMPI's stride canonicalization);
* ``collapse-loops`` — flatten perfectly tiling loop nests and inline
  single-iteration loops;
* ``promote-contiguity`` — turn gap-free loops back into single copies;
* ``form-gather`` — when the canonical form still needs too many numpy
  calls per element, collapse the whole program into one byte-gather.

Every pass is *translation-validated* before its output is trusted:
:func:`byte_map` symbolically enumerates the ``wire offset -> source
offset`` byte map of a program, and :mod:`repro.analyze.planverify` proves
the map unchanged across each pass (diagnostic ``RPD610``) and checks IR
well-formedness invariants (``RPD600``-``RPD602``).

Executors (:class:`IRExecutor`): the ``slices`` backend issues one strided
numpy copy per :class:`CopyBlock` leaf (loops become extra ``as_strided``
dimensions, vectorized across elements), the ``gather`` backend executes a
:class:`Gather` with one batched ``np.take`` / fancy-scatter per call.
:func:`set_default_executor` (or ``REPRO_PLAN_EXECUTOR``) forces a backend
process-wide; per-plan overrides go through ``PackPlan(..., executor=...)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator

import numpy as np

from .typemap import Typemap

__all__ = [
    "CopyBlock", "StridedLoop", "Gather", "Program", "Pass",
    "lower_typemap", "byte_map", "enumerate_bytes", "leaf_calls",
    "op_count", "default_pipeline", "run_pipeline", "IRExecutor",
    "set_default_executor", "get_default_executor", "EXECUTORS",
    "coalesce_blocks", "canonicalize_strides", "collapse_loops",
    "promote_contiguity", "form_gather_pass",
]

#: Longest repeating op pattern the stride canonicalizer searches for.
MAX_PERIOD = 8
#: Minimum repetitions before a periodic run becomes a StridedLoop.
MIN_REPS = 4
#: Leaf-call count at which the auto pipeline collapses the program into a
#: single byte-gather (one numpy call instead of a python loop of copies).
GATHER_MIN_CALLS = 32
#: Never materialize a gather index over more than this many packed bytes
#: (the index costs 8 bytes per packed byte).
GATHER_MAX_BYTES = 1 << 20

#: Recognized executor backends (``auto`` lets the pipeline decide).
EXECUTORS = ("auto", "slices", "gather")

_as_strided = np.lib.stride_tricks.as_strided


# ---------------------------------------------------------------------------
# ops and programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CopyBlock:
    """Copy ``nbytes`` from source offset ``src_off`` to wire ``dst_off``."""

    src_off: int
    dst_off: int
    nbytes: int


@dataclass(frozen=True)
class StridedLoop:
    """Repeat ``body`` ``count`` times with per-iteration offset strides.

    Body ops hold the absolute offsets of iteration 0; iteration ``i`` adds
    ``i * src_stride`` / ``i * dst_stride``.  Wire strides are positive for
    any well-formed program (the wire is written front to back); source
    strides may be negative (descending hindexed layouts).
    """

    count: int
    src_stride: int
    dst_stride: int
    body: tuple


class Gather:
    """Byte gather: wire byte ``dst_off + j`` reads source ``src_index[j]``.

    Carries a numpy ``intp`` index array, so equality is defined by value
    (``np.array_equal``) rather than identity.
    """

    __slots__ = ("src_index", "dst_off")

    def __init__(self, src_index, dst_off: int = 0):
        self.src_index = np.ascontiguousarray(src_index, dtype=np.intp)
        self.dst_off = int(dst_off)

    @property
    def nbytes(self) -> int:
        return int(self.src_index.shape[0])

    def __eq__(self, other) -> bool:
        if not isinstance(other, Gather):
            return NotImplemented
        return (self.dst_off == other.dst_off
                and np.array_equal(self.src_index, other.src_index))

    def __hash__(self):  # pragma: no cover - identity is enough
        return id(self)

    def __repr__(self) -> str:
        return f"Gather({self.nbytes} bytes, dst_off={self.dst_off})"


@dataclass(frozen=True)
class Program:
    """An op list plus the layout envelope it was lowered from.

    ``size``/``extent``/``row_span`` mirror the typemap quantities the
    executor needs; ``src_lo``/``src_hi`` are the true bounds every source
    offset must stay within (the ``RPD601`` invariant).
    """

    ops: tuple
    size: int
    extent: int
    row_span: int
    src_lo: int
    src_hi: int

    def with_ops(self, ops: Iterable) -> "Program":
        """The same envelope around a rewritten op list."""
        return replace(self, ops=tuple(ops))

    def __repr__(self) -> str:
        return (f"Program({op_count(self.ops)} ops, {leaf_calls(self.ops)} "
                f"calls, size={self.size}, extent={self.extent})")


def lower_typemap(tm: Typemap) -> Program:
    """Lower a typemap to the canonical initial IR: one :class:`CopyBlock`
    per merged block, wire offsets dense in declaration (pack) order."""
    ops = []
    pos = 0
    for b in tm.merged_blocks():
        ops.append(CopyBlock(b.offset, pos, b.length))
        pos += b.length
    return Program(tuple(ops), size=tm.size, extent=tm.extent,
                   row_span=max(tm.true_ub, tm.extent),
                   src_lo=min(tm.true_lb, 0), src_hi=tm.true_ub)


def op_count(ops: Iterable) -> int:
    """Total op nodes in a (possibly nested) op list."""
    n = 0
    for op in ops:
        n += 1
        if isinstance(op, StridedLoop):
            n += op_count(op.body)
    return n


def leaf_calls(ops: Iterable) -> int:
    """Numpy calls per element the slice/gather executor issues: one per
    :class:`CopyBlock` leaf (loops vectorize into the call) or
    :class:`Gather`."""
    n = 0
    for op in ops:
        if isinstance(op, StridedLoop):
            n += leaf_calls(op.body)
        else:
            n += 1
    return n


def moved_bytes(ops: Iterable) -> int:
    """Packed bytes one execution of ``ops`` writes."""
    total = 0
    for op in ops:
        if isinstance(op, StridedLoop):
            total += op.count * moved_bytes(op.body)
        elif isinstance(op, Gather):
            total += op.nbytes
        else:
            total += op.nbytes
    return total


# ---------------------------------------------------------------------------
# symbolic byte-map enumeration (the translation-validation oracle)
# ---------------------------------------------------------------------------

def enumerate_bytes(prog: Program) -> tuple[np.ndarray, np.ndarray]:
    """``(src, dst)`` byte offsets of every write, in execution order.

    The arrays have one entry per packed byte the program writes; this is
    the ground truth the verifier checks invariants against.
    """
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []

    def emit(op, sbase: int, dbase: int) -> None:
        if isinstance(op, CopyBlock):
            s0 = sbase + op.src_off
            d0 = dbase + op.dst_off
            srcs.append(np.arange(s0, s0 + op.nbytes, dtype=np.intp))
            dsts.append(np.arange(d0, d0 + op.nbytes, dtype=np.intp))
        elif isinstance(op, Gather):
            srcs.append(op.src_index + sbase)
            d0 = dbase + op.dst_off
            dsts.append(np.arange(d0, d0 + op.nbytes, dtype=np.intp))
        else:
            if len(op.body) == 1 and isinstance(op.body[0], CopyBlock):
                # Vectorized common case: a loop over one block.
                b = op.body[0]
                it = np.arange(op.count, dtype=np.intp)[:, None]
                off = np.arange(b.nbytes, dtype=np.intp)[None, :]
                srcs.append(((sbase + b.src_off) + it * op.src_stride
                             + off).ravel())
                dsts.append(((dbase + b.dst_off) + it * op.dst_stride
                             + off).ravel())
                return
            for i in range(op.count):
                for b in op.body:
                    emit(b, sbase + i * op.src_stride,
                         dbase + i * op.dst_stride)

    for op in prog.ops:
        emit(op, 0, 0)
    if not srcs:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    return np.concatenate(srcs), np.concatenate(dsts)


def byte_map(prog: Program) -> np.ndarray:
    """The ``wire offset -> source offset`` map of a program.

    Index ``j`` holds the source byte that wire byte ``j`` reads, or ``-1``
    when the program never writes wire byte ``j``.  Two programs are
    byte-map-equivalent iff these arrays are equal — the property every
    rewrite pass must preserve.
    """
    src, dst = enumerate_bytes(prog)
    out = np.full(prog.size, -1, dtype=np.intp)
    valid = (dst >= 0) & (dst < prog.size)
    out[dst[valid]] = src[valid]
    return out


# ---------------------------------------------------------------------------
# rewrite passes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Pass:
    """A named Program -> Program rewrite."""

    name: str
    fn: Callable[[Program], Program]

    def __call__(self, prog: Program) -> Program:
        return self.fn(prog)

    def __repr__(self) -> str:
        return f"Pass({self.name!r})"


def _coalesce_ops(ops: tuple) -> tuple:
    out: list = []
    for op in ops:
        if isinstance(op, StridedLoop):
            op = StridedLoop(op.count, op.src_stride, op.dst_stride,
                             _coalesce_ops(op.body))
        if (out and isinstance(op, CopyBlock)
                and isinstance(out[-1], CopyBlock)
                and out[-1].src_off + out[-1].nbytes == op.src_off
                and out[-1].dst_off + out[-1].nbytes == op.dst_off):
            prev = out[-1]
            out[-1] = CopyBlock(prev.src_off, prev.dst_off,
                                prev.nbytes + op.nbytes)
        else:
            out.append(op)
    return tuple(out)


def _canonicalize_ops(ops: tuple) -> tuple:
    out: list = []
    i = 0
    n = len(ops)
    while i < n:
        op = ops[i]
        if isinstance(op, StridedLoop):
            out.append(StridedLoop(op.count, op.src_stride, op.dst_stride,
                                   _canonicalize_ops(op.body)))
            i += 1
            continue
        if not isinstance(op, CopyBlock):
            out.append(op)
            i += 1
            continue
        best = None  # (period, reps, src_delta, dst_delta)
        for p in range(1, MAX_PERIOD + 1):
            if i + 2 * p > n:
                break
            window = ops[i:i + p]
            if not all(isinstance(w, CopyBlock) for w in window):
                break
            if not all(isinstance(w, CopyBlock) for w in ops[i + p:i + 2 * p]):
                continue
            sd = ops[i + p].src_off - op.src_off
            dd = ops[i + p].dst_off - op.dst_off
            reps = 1
            while i + (reps + 1) * p <= n and all(
                    isinstance(ops[i + reps * p + k], CopyBlock)
                    and ops[i + reps * p + k].src_off
                    == window[k].src_off + reps * sd
                    and ops[i + reps * p + k].dst_off
                    == window[k].dst_off + reps * dd
                    and ops[i + reps * p + k].nbytes == window[k].nbytes
                    for k in range(p)):
                reps += 1
            if reps >= MIN_REPS and (best is None
                                     or reps * p > best[1] * best[0]):
                best = (p, reps, sd, dd)
        if best is not None:
            p, reps, sd, dd = best
            out.append(StridedLoop(reps, sd, dd, tuple(ops[i:i + p])))
            i += reps * p
        else:
            out.append(op)
            i += 1
    return tuple(out)


def _collapse_ops(ops: tuple) -> tuple:
    out: list = []
    for op in ops:
        if not isinstance(op, StridedLoop):
            out.append(op)
            continue
        body = _collapse_ops(op.body)
        if op.count == 1:
            # Degenerate loop: body offsets are already absolute.
            out.extend(body)
            continue
        if len(body) == 1 and isinstance(body[0], StridedLoop):
            inner = body[0]
            if (op.src_stride == inner.count * inner.src_stride
                    and op.dst_stride == inner.count * inner.dst_stride):
                out.append(StridedLoop(op.count * inner.count,
                                       inner.src_stride, inner.dst_stride,
                                       inner.body))
                continue
        out.append(StridedLoop(op.count, op.src_stride, op.dst_stride, body))
    return tuple(out)


def _promote_ops(ops: tuple) -> tuple:
    out: list = []
    for op in ops:
        if isinstance(op, StridedLoop):
            body = _promote_ops(op.body)
            if (len(body) == 1 and isinstance(body[0], CopyBlock)
                    and op.src_stride == body[0].nbytes
                    and op.dst_stride == body[0].nbytes):
                b = body[0]
                out.append(CopyBlock(b.src_off, b.dst_off,
                                     op.count * b.nbytes))
                continue
            out.append(StridedLoop(op.count, op.src_stride, op.dst_stride,
                                   body))
        else:
            out.append(op)
    return _coalesce_ops(tuple(out))


coalesce_blocks = Pass(
    "coalesce-blocks", lambda p: p.with_ops(_coalesce_ops(p.ops)))
canonicalize_strides = Pass(
    "canonicalize-strides", lambda p: p.with_ops(_canonicalize_ops(p.ops)))
collapse_loops = Pass(
    "collapse-loops", lambda p: p.with_ops(_collapse_ops(p.ops)))
promote_contiguity = Pass(
    "promote-contiguity", lambda p: p.with_ops(_promote_ops(p.ops)))


def form_gather_pass(many_rows: bool = True, force: bool = False) -> Pass:
    """The gather-formation pass: collapse a still call-heavy program into
    one :class:`Gather`.

    ``many_rows`` marks a plan that may execute vectorized across element
    rows; the fancy *scatter* on the unpack side is only order-safe there
    when rows do not alias (``row_span <= extent``), so gather formation is
    suppressed for aliasing layouts unless ``force`` is set (the executor
    then falls back to per-element scatters).
    """

    def fn(prog: Program) -> Program:
        if not prog.ops or prog.size == 0:
            return prog
        if any(isinstance(op, Gather) for op in prog.ops):
            return prog
        if not force:
            if leaf_calls(prog.ops) < GATHER_MIN_CALLS:
                return prog
            if prog.size > GATHER_MAX_BYTES:
                return prog
            if many_rows and prog.row_span > prog.extent:
                return prog
        return prog.with_ops((Gather(byte_map(prog), 0),))

    return Pass("form-gather", fn)


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------

_default_executor = os.environ.get("REPRO_PLAN_EXECUTOR", "auto")


def set_default_executor(name: str) -> None:
    """Force the executor backend every new plan compiles for.

    ``auto`` (the default) lets the pipeline choose; ``slices`` keeps the
    strided-copy backend; ``gather`` forces byte-gather.  Overrides the
    ``REPRO_PLAN_EXECUTOR`` environment variable; cached plans are not
    recompiled — call :func:`repro.core.typecache.clear_plan_cache` to
    re-resolve them.
    """
    global _default_executor
    if name not in EXECUTORS:
        raise ValueError(f"unknown executor {name!r}; choose from {EXECUTORS}")
    _default_executor = name


def get_default_executor() -> str:
    """The process-wide default executor backend name."""
    return _default_executor


def default_pipeline(many_rows: bool = True,
                     executor: str = "auto") -> tuple[Pass, ...]:
    """The standard pass pipeline for one plan compilation."""
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; "
                         f"choose from {EXECUTORS}")
    passes = [coalesce_blocks, canonicalize_strides, collapse_loops,
              promote_contiguity]
    if executor == "gather":
        passes.append(form_gather_pass(many_rows, force=True))
    elif executor == "auto":
        passes.append(form_gather_pass(many_rows))
    return tuple(passes)


def run_pipeline(prog: Program,
                 pipeline: Iterable[Pass] | None = None
                 ) -> tuple[Program, tuple[str, ...]]:
    """Apply ``pipeline`` and return ``(final program, applied pass names)``.

    A pass is recorded as applied only when it changed the op list, so the
    trace shows which rewrites actually fired for a given layout.
    """
    if pipeline is None:
        pipeline = default_pipeline()
    applied = []
    for p in pipeline:
        new = p(prog)
        if new.ops != prog.ops:
            applied.append(p.name)
        prog = new
    return prog, tuple(applied)


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------

def _collect_items(ops: tuple, dims: tuple = ()) -> Iterator[tuple]:
    """Flatten ops to executor items: ``("copy", src_off, dst_off, nbytes,
    dims)`` with ``dims`` the enclosing ``(count, src_stride, dst_stride)``
    loop dimensions, or ``("gather", index, dst_off)``."""
    for op in ops:
        if isinstance(op, StridedLoop):
            yield from _collect_items(
                op.body,
                dims + ((op.count, op.src_stride, op.dst_stride),))
        elif isinstance(op, Gather):
            if dims:
                raise NotImplementedError(
                    "Gather inside a StridedLoop is not executable")
            yield ("gather", op.src_index, op.dst_off)
        else:
            yield ("copy", op.src_off, op.dst_off, op.nbytes, dims)


class IRExecutor:
    """Executes a final-form program with vectorized numpy calls.

    ``pack_rows``/``unpack_rows`` run ``nrows`` whole elements at once
    (element ``r`` based at ``r * extent`` in memory, ``r * size`` on the
    wire); ``pack_one``/``unpack_one`` run a single element whose buffers
    the caller has already re-based (the short-final-element tail).
    """

    __slots__ = ("size", "extent", "row_span", "_items", "_kind")

    def __init__(self, prog: Program):
        self.size = prog.size
        self.extent = prog.extent
        self.row_span = prog.row_span
        self._items = tuple(_collect_items(prog.ops))
        if any(it[0] == "gather" for it in self._items):
            self._kind = "gather"
        else:
            self._kind = "slices"

    @property
    def kind(self) -> str:
        """Backend label: ``slices`` or ``gather``."""
        return self._kind

    # -- vectorized whole-row execution -----------------------------------

    def _views(self, op, buf: np.ndarray, nrows: int, row_stride: int,
               src_side: bool, writeable: bool) -> np.ndarray:
        _, so, do, nb, dims = op
        off = so if src_side else do
        shape = (nrows, *(d[0] for d in dims), nb)
        strides = (row_stride,
                   *((d[1] if src_side else d[2]) for d in dims), 1)
        # The base points at iteration 0 of every loop dim; a negative
        # source stride then walks to lower addresses, which stay inside
        # the caller's buffer because every absolute offset is >= 0.
        return _as_strided(buf[off:], shape=shape, strides=strides,
                           writeable=writeable)

    def pack_rows(self, src: np.ndarray, out: np.ndarray,
                  nrows: int) -> None:
        """Pack ``nrows`` full elements of ``src`` into ``out``."""
        size = self.size
        for it in self._items:
            if it[0] == "copy":
                dv = self._views(it, out, nrows, size, False, True)
                sv = self._views(it, src, nrows, self.extent, True, False)
                dv[...] = sv
            else:
                _, idx, do = it
                rows = _as_strided(src, shape=(nrows, self.row_span),
                                   strides=(self.extent, 1),
                                   writeable=False)
                out2d = out[: nrows * size].reshape(nrows, size)
                np.take(rows, idx, axis=1,
                        out=out2d[:, do:do + idx.shape[0]])

    def unpack_rows(self, dst: np.ndarray, packed: np.ndarray,
                    nrows: int) -> None:
        """Scatter ``nrows`` elements of the packed stream into ``dst``."""
        size = self.size
        for it in self._items:
            if it[0] == "copy":
                sv = self._views(it, packed, nrows, size, False, False)
                dv = self._views(it, dst, nrows, self.extent, True, True)
                dv[...] = sv
            else:
                _, idx, do = it
                src2d = packed[: nrows * size].reshape(nrows, size)
                if self.row_span <= self.extent:
                    rows = _as_strided(dst, shape=(nrows, self.row_span),
                                       strides=(self.extent, 1))
                    rows[:, idx] = src2d[:, do:do + idx.shape[0]]
                else:
                    # Aliasing rows: scatter element by element so later
                    # elements overwrite earlier ones in reference order.
                    for r in range(nrows):
                        dst[r * self.extent + idx] = \
                            src2d[r, do:do + idx.shape[0]]

    # -- single-element execution (the short final element) ----------------

    def pack_one(self, src: np.ndarray, out: np.ndarray) -> None:
        """Pack one element; ``src``/``out`` are already element-based."""
        for it in self._items:
            if it[0] == "copy":
                _, so, do, nb, dims = it
                if not dims:
                    out[do:do + nb] = src[so:so + nb]
                    continue
                shape = (*(d[0] for d in dims), nb)
                sv = _as_strided(src[so:], shape=shape,
                                 strides=(*(d[1] for d in dims), 1),
                                 writeable=False)
                dv = _as_strided(out[do:], shape=shape,
                                 strides=(*(d[2] for d in dims), 1))
                dv[...] = sv
            else:
                _, idx, do = it
                np.take(src, idx, out=out[do:do + idx.shape[0]])

    def unpack_one(self, dst: np.ndarray, packed: np.ndarray) -> None:
        """Scatter one element; ``dst``/``packed`` are element-based."""
        for it in self._items:
            if it[0] == "copy":
                _, so, do, nb, dims = it
                if not dims:
                    dst[so:so + nb] = packed[do:do + nb]
                    continue
                shape = (*(d[0] for d in dims), nb)
                sv = _as_strided(packed[do:], shape=shape,
                                 strides=(*(d[2] for d in dims), 1),
                                 writeable=False)
                dv = _as_strided(dst[so:], shape=shape,
                                 strides=(*(d[1] for d in dims), 1))
                dv[...] = sv
            else:
                _, idx, do = it
                dst[idx] = packed[do:do + idx.shape[0]]
