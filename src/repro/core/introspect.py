"""Datatype introspection and marshalling.

Two MPI facilities the paper's ecosystem leans on:

* **Envelope/contents** (``MPI_Type_get_envelope`` /
  ``MPI_Type_get_contents``): recover how a derived type was constructed.
  Every constructor in :mod:`repro.core.derived` records its arguments, so
  :func:`get_envelope` and :func:`get_contents` reproduce the MPI queries.
  (Displacement-style parameters are always reported in *bytes*, also for
  the element-stride constructors.)

* **Marshalling** (Kimpe, Goodell, Ross — EuroMPI'10, the paper's ref [25]):
  serialize a datatype *description* to bytes so another process can
  reconstruct an equivalent type, plus the equivalence test that makes the
  roundtrip checkable.  :func:`marshal` / :func:`unmarshal` walk the
  constructor tree; :func:`equivalent` compares *typemaps* (the strong,
  layout-level notion of equivalence — two differently-constructed types
  with the same typemap are equivalent).

Custom (callback-driven) datatypes are code, not data, and cannot be
marshalled — attempting it raises, mirroring the fundamental asymmetry the
paper discusses between declarative and programmatic datatypes.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import TypeError_
from .datatype import PREDEFINED, Datatype, DerivedDatatype, PredefinedDatatype
from . import derived as _d

#: Constructor kinds that take a single base type.
_SINGLE_BASE = {"contiguous", "vector", "hvector", "indexed", "hindexed",
                "resized", "subarray", "dup"}

#: Format tag so future layout changes stay detectable.
_FORMAT = "repro-datatype-v1"


def get_envelope(dtype: Datatype) -> tuple[str, int]:
    """(combiner kind, number of input datatypes) — MPI_Type_get_envelope."""
    if isinstance(dtype, PredefinedDatatype):
        return "named", 0
    if isinstance(dtype, DerivedDatatype):
        return dtype.kind, len(dtype.children)
    raise TypeError_(f"{dtype.name}: custom datatypes have no envelope "
                     f"(they are defined by callbacks, not constructors)")


def get_contents(dtype: Datatype) -> tuple[dict[str, Any], tuple[Datatype, ...]]:
    """(constructor parameters, input datatypes) — MPI_Type_get_contents."""
    if isinstance(dtype, PredefinedDatatype):
        return {}, ()
    if isinstance(dtype, DerivedDatatype):
        return dict(dtype.params), tuple(dtype.children)
    raise TypeError_(f"{dtype.name}: custom datatypes have no contents")


def _describe(dtype: Datatype) -> dict[str, Any]:
    if isinstance(dtype, PredefinedDatatype):
        return {"kind": "named", "name": dtype.name}
    if isinstance(dtype, DerivedDatatype):
        return {"kind": dtype.kind,
                "params": dict(dtype.params),
                "children": [_describe(c) for c in dtype.children]}
    raise TypeError_(
        f"{dtype.name}: custom datatypes cannot be marshalled — their "
        f"behaviour lives in application callbacks")


def marshal(dtype: Datatype) -> bytes:
    """Serialize a (pre)derived datatype description to bytes."""
    return json.dumps({"format": _FORMAT, "type": _describe(dtype)},
                      sort_keys=True).encode()


def _rebuild(desc: dict[str, Any]) -> Datatype:
    kind = desc["kind"]
    if kind == "named":
        try:
            return PREDEFINED[desc["name"]]
        except KeyError:
            raise TypeError_(f"unknown predefined type {desc['name']!r}") from None
    children = [_rebuild(c) for c in desc.get("children", [])]
    p = desc.get("params", {})
    if kind == "contiguous":
        return _d.contiguous(p["count"], children[0])
    if kind in ("vector", "hvector"):
        return _d.hvector(p["count"], p["blocklength"], p["stride_bytes"],
                          children[0])
    if kind in ("indexed", "hindexed"):
        return _d.hindexed(p["blocklengths"], p["displacements"], children[0])
    if kind == "struct":
        return _d.create_struct(p["blocklengths"], p["displacements"], children)
    if kind == "resized":
        return _d.resized(children[0], p["lb"], p["extent"])
    if kind == "subarray":
        return _d.subarray(p["sizes"], p["subsizes"], p["starts"], children[0],
                           order=p.get("order", "C"))
    if kind == "dup":
        return _d.dup(children[0])
    raise TypeError_(f"cannot rebuild datatype kind {kind!r}")


def unmarshal(data: bytes) -> Datatype:
    """Reconstruct a datatype from :func:`marshal` output.

    The result is *equivalent* to the original (identical typemap); derived
    types are returned uncommitted.
    """
    try:
        doc = json.loads(bytes(data))
    except (ValueError, TypeError) as exc:
        raise TypeError_(f"malformed datatype description: {exc}") from None
    if doc.get("format") != _FORMAT:
        raise TypeError_(f"unsupported datatype format {doc.get('format')!r}")
    return _rebuild(doc["type"])


def equivalent(a: Datatype, b: Datatype) -> bool:
    """Layout-level datatype equivalence: identical typemaps.

    Stronger than MPI's signature equivalence (which ignores gaps): two
    types are equivalent here iff they pack/unpack identically for every
    buffer, i.e. same blocks in the same order with the same bounds.
    """
    if a.is_custom or b.is_custom:
        raise TypeError_("custom datatypes have no typemap to compare")
    return a.typemap == b.typemap
