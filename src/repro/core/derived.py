"""Derived-datatype constructors (the classic MPI typemap API).

These implement the constructors of MPI-4.1 chapter 5 over the typemap
algebra: contiguous, vector/hvector, indexed/hindexed/indexed_block, struct,
resized, and subarray.  They form the baseline the paper compares the custom
serialization API against (the ``rsmpi-derived-datatype`` / Open MPI lines in
Figs. 3-7 and the ``ompi-datatype`` bars in Fig. 10).

Displacements follow MPI semantics: element-strides for vector/indexed
(multiples of the base extent), byte-strides for the ``h`` variants and
struct.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import TypeError_
from .datatype import Datatype, DerivedDatatype
from .typemap import Typemap


def _base_typemap(base: Datatype) -> Typemap:
    if getattr(base, "is_custom", False):
        raise TypeError_("custom datatypes cannot be nested inside derived datatypes")
    return base.typemap


def _fmt_seq(seq: Sequence[int], limit: int = 4) -> str:
    """Compact list rendering for provenance names: [0,4,8] or '12 entries'."""
    seq = list(seq)
    if len(seq) > limit:
        return f"{len(seq)} entries"
    return "[" + ",".join(str(v) for v in seq) + "]"


def contiguous(count: int, base: Datatype) -> DerivedDatatype:
    """MPI_Type_contiguous: ``count`` consecutive elements of ``base``."""
    if count < 0:
        raise TypeError_(f"contiguous count must be >= 0, got {count}")
    tm = _base_typemap(base).repeat(count)
    return DerivedDatatype(tm, "contiguous",
                           name=f"contiguous({count},{base.shortname})",
                           children=(base,), params={"count": count})


def vector(count: int, blocklength: int, stride: int, base: Datatype) -> DerivedDatatype:
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements, block
    starts ``stride`` *elements* apart."""
    return hvector(count, blocklength, stride * base.extent, base,
                   _name=f"vector({count},{blocklength},{stride},{base.shortname})")


def hvector(count: int, blocklength: int, stride_bytes: int, base: Datatype,
            _name: str = "") -> DerivedDatatype:
    """MPI_Type_create_hvector: like vector with the stride in bytes."""
    if count < 0 or blocklength < 0:
        raise TypeError_("vector count/blocklength must be >= 0")
    block = _base_typemap(base).repeat(blocklength)
    tm = block.repeat(count, stride_bytes=stride_bytes)
    name = _name or f"hvector({count},{blocklength},{stride_bytes}B,{base.shortname})"
    return DerivedDatatype(tm, "hvector" if not _name else "vector",
                           name=name, children=(base,),
                           params={"count": count, "blocklength": blocklength,
                                   "stride_bytes": stride_bytes})


def indexed(blocklengths: Sequence[int], displacements: Sequence[int],
            base: Datatype) -> DerivedDatatype:
    """MPI_Type_indexed: displacements in multiples of the base extent."""
    ext = base.extent
    return hindexed([b for b in blocklengths],
                    [d * ext for d in displacements], base,
                    _kind="indexed")


def hindexed(blocklengths: Sequence[int], displacements: Sequence[int],
             base: Datatype, _kind: str = "hindexed") -> DerivedDatatype:
    """MPI_Type_create_hindexed: displacements in bytes."""
    if len(blocklengths) != len(displacements):
        raise TypeError_("blocklengths and displacements must have equal length")
    base_tm = _base_typemap(base)
    parts = []
    for blen, disp in zip(blocklengths, displacements):
        if blen < 0:
            raise TypeError_(f"negative blocklength {blen}")
        if blen == 0:
            continue
        parts.append(base_tm.repeat(blen).displace(disp))
    if not parts:
        tm = Typemap((), lb=0, extent=0)
    else:
        tm = Typemap.concat(parts)
    name = (f"{_kind}({_fmt_seq(blocklengths)},{_fmt_seq(displacements)},"
            f"{base.shortname})")
    return DerivedDatatype(tm, _kind, name=name,
                           children=(base,),
                           params={"blocklengths": list(blocklengths),
                                   "displacements": list(displacements)})


def indexed_block(blocklength: int, displacements: Sequence[int],
                  base: Datatype) -> DerivedDatatype:
    """MPI_Type_create_indexed_block: equal-size blocks."""
    return indexed([blocklength] * len(displacements), displacements, base)


def create_struct(blocklengths: Sequence[int], displacements: Sequence[int],
                  types: Sequence[Datatype]) -> DerivedDatatype:
    """MPI_Type_create_struct: heterogeneous fields at byte displacements.

    This is how the paper's ``struct-simple`` (with its 4-byte C-layout gap
    between ``c`` and ``d``) is expressed as a derived datatype; the gap is
    what pushes the Open MPI engine onto its slow path in Fig. 5.
    """
    if not (len(blocklengths) == len(displacements) == len(types)):
        raise TypeError_("struct argument arrays must have equal length")
    parts = []
    for blen, disp, t in zip(blocklengths, displacements, types):
        if blen < 0:
            raise TypeError_(f"negative blocklength {blen}")
        if blen == 0:
            continue
        parts.append(_base_typemap(t).repeat(blen).displace(disp))
    if not parts:
        tm = Typemap((), lb=0, extent=0)
    else:
        tm = Typemap.concat(parts)
    if len(types) > 4:
        name = f"struct({len(types)} fields)"
    else:
        fields = ",".join(
            (t.shortname if blen == 1 else f"{t.shortname}x{blen}") + f"@{disp}"
            for blen, disp, t in zip(blocklengths, displacements, types))
        name = f"struct({fields})"
    return DerivedDatatype(tm, "struct", name=name,
                           children=tuple(types),
                           params={"blocklengths": list(blocklengths),
                                   "displacements": list(displacements)})


def resized(base: Datatype, lb: int, extent: int) -> DerivedDatatype:
    """MPI_Type_create_resized: override lower bound and extent.

    Used to pad a struct to its C ``sizeof`` (trailing padding) so arrays of
    structs stride correctly.
    """
    tm = _base_typemap(base).resized(lb, extent)
    return DerivedDatatype(tm, "resized",
                           name=f"resized({base.shortname},lb={lb},extent={extent})",
                           children=(base,), params={"lb": lb, "extent": extent})


def subarray(sizes: Sequence[int], subsizes: Sequence[int],
             starts: Sequence[int], base: Datatype,
             order: str = "C") -> DerivedDatatype:
    """MPI_Type_create_subarray: an n-dimensional slab of an n-d array.

    This is the natural datatype for the NAS/WRF halo-exchange patterns in
    DDTBench.
    """
    if not (len(sizes) == len(subsizes) == len(starts)):
        raise TypeError_("subarray argument arrays must have equal length")
    ndims = len(sizes)
    if ndims == 0:
        raise TypeError_("subarray needs at least one dimension")
    for d in range(ndims):
        if subsizes[d] < 0 or starts[d] < 0 or starts[d] + subsizes[d] > sizes[d]:
            raise TypeError_(
                f"subarray dim {d}: start={starts[d]} subsize={subsizes[d]} "
                f"outside size={sizes[d]}")
    if order not in ("C", "F"):
        raise TypeError_(f"order must be 'C' or 'F', got {order!r}")

    dims = list(range(ndims))
    if order == "C":
        dims.reverse()  # innermost (fastest-varying) first

    elem = base.extent
    # Build from the innermost dimension outward.
    tm = _base_typemap(base)
    stride = elem
    # Strides of each dimension in bytes.
    strides = [0] * ndims
    for d in dims:
        strides[d] = stride
        stride *= sizes[d]
    total_extent = stride  # full array span

    inner = _base_typemap(base)
    for d in dims:
        inner = inner.repeat(subsizes[d], stride_bytes=strides[d])
    offset = sum(starts[d] * strides[d] for d in range(ndims))
    tm = inner.displace(offset).resized(0, total_extent)
    name = (f"subarray({_fmt_seq(sizes)}/{_fmt_seq(subsizes)}"
            f"@{_fmt_seq(starts)},{base.shortname})")
    return DerivedDatatype(tm, "subarray", name=name,
                           children=(base,),
                           params={"sizes": list(sizes),
                                   "subsizes": list(subsizes),
                                   "starts": list(starts), "order": order})


def dup(base: Datatype) -> DerivedDatatype:
    """MPI_Type_dup for derived types."""
    tm = _base_typemap(base)
    return DerivedDatatype(tm, "dup", name=f"dup({base.shortname})",
                           children=(base,))
