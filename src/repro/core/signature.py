"""Type-signature compatibility — MPI's send/recv matching rule.

A signature (from :meth:`repro.core.Datatype.signature`) is a run-length
sequence of ``(scalar_code, count)`` pairs.  MPI requires the receiver's
signature to start with the sender's (a receive may be *longer* than the
message, never shorter, and the scalar sequence must agree element by
element).  ``MPI_BYTE`` is the traditional escape hatch: a stream declared
as raw bytes on either side matches any scalar sequence of a compatible
byte length, which keeps pack/unpack and serialization codes legal.

The runtime sanitizer attaches the sender's signature to the wire envelope
and evaluates :func:`signature_compatible` at match time.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

#: One signature: (("f8", 4), ("i4", 1), ...) — or None when unknown.
Signature = Tuple[Tuple[str, int], ...]


def scalar_width(code: str) -> int:
    """Byte width of a scalar code ("f8" -> 8); 1 when unparsable."""
    digits = "".join(ch for ch in code if ch.isdigit())
    return int(digits) if digits else 1


def signature_bytes(sig: Sequence[tuple]) -> int:
    """Total bytes a signature covers."""
    return sum(scalar_width(code) * n for code, n in sig)


def is_untyped(sig: Sequence[tuple]) -> bool:
    """True when every run is raw bytes (MPI_BYTE / handwritten typemaps)."""
    return all(code == "u1" for code, _ in sig)


def format_signature(sig: Optional[Sequence[tuple]]) -> str:
    """Compact rendering for diagnostics: ``f8 x4 + i4 x1``."""
    if sig is None:
        return "<dynamic>"
    if not sig:
        return "<empty>"
    return " + ".join(f"{code} x{n}" for code, n in sig)


def signature_compatible(send: Optional[Signature],
                         recv: Optional[Signature]) -> tuple[bool, str]:
    """Can a message with signature ``send`` land in a receive of ``recv``?

    Returns ``(ok, reason)``; ``reason`` is empty when compatible.  Either
    side being ``None`` (custom datatype, unknown) is compatible.  An
    untyped (all-bytes) side matches anything with enough room; typed
    sides must agree scalar by scalar, with the receive allowed to be
    longer (MPI's partial-receive rule).
    """
    if send is None or recv is None:
        return True, ""
    if is_untyped(send) or is_untyped(recv):
        sb, rb = signature_bytes(send), signature_bytes(recv)
        if sb > rb:
            return False, (f"sender moves {sb} bytes but the receive "
                           f"buffer covers only {rb}")
        return True, ""
    i = j = 0
    left_s = left_r = 0
    pos = 0  # scalar index, for the diagnostic
    while True:
        if left_s == 0:
            if i == len(send):
                return True, ""  # send exhausted; recv may be longer
            left_s = send[i][1]
        if left_r == 0:
            if j == len(recv):
                return False, (f"sender signature [{format_signature(send)}] "
                               f"is longer than receiver signature "
                               f"[{format_signature(recv)}]")
            left_r = recv[j][1]
        if send[i][0] != recv[j][0]:
            return False, (f"scalar {pos}: sender has {send[i][0]}, "
                           f"receiver expects {recv[j][0]} "
                           f"(sender [{format_signature(send)}] vs receiver "
                           f"[{format_signature(recv)}])")
        step = min(left_s, left_r)
        left_s -= step
        left_r -= step
        pos += step
        if left_s == 0:
            i += 1
        if left_r == 0:
            j += 1
