"""Generator-based partial packing (the paper's C++ coroutine experiment).

Section V.C of the paper shows that resuming a pack function in the middle of
a nested loop is intractable by hand, and prototypes ``std::generator``
coroutines (Listing 9) — but had to abandon them for the evaluation because
Clang would not vectorize loops inside coroutines.  Python generators are the
exact semantic analogue and have no such defect here, so this module makes
the coroutine strategy a first-class option (and the
``bench_abl_coroutine_pack`` ablation measures it).

Protocol
--------
A *pack generator factory* is ``factory(context, buf, count)`` returning a
generator.  The engine primes it with ``next(g)`` and then, for every
fragment, resumes it with ``g.send(dst)`` where ``dst`` is a writable uint8
numpy view; the generator fills a prefix of ``dst`` and yields the number of
bytes written.  Exhaustion (``StopIteration``) must coincide with the packed
stream being complete.  Unpack generators mirror this with read-only ``src``
fragments and yield the number of bytes consumed.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from ..errors import CallbackError

PackGeneratorFactory = Callable[[Any, Any, int], Generator[int, Any, None]]


class _CoroState:
    """Per-operation state holding the live generator and stream position."""

    __slots__ = ("gen", "offset", "inner")

    def __init__(self, inner: Any = None):
        self.gen: Optional[Generator] = None
        self.offset = 0
        #: State produced by a wrapped user state_fn, if any.
        self.inner = inner


def coroutine_pack_callbacks(pack_factory: PackGeneratorFactory,
                             unpack_factory: PackGeneratorFactory | None = None,
                             state_fn=None, state_free_fn=None):
    """Build (state_fn, state_free_fn, pack_fn, unpack_fn) from generators.

    The returned callbacks plug straight into
    :func:`repro.core.custom.type_create_custom`.  Because a suspended
    generator encodes the stream position implicitly, these callbacks demand
    in-order fragments — pass ``inorder=True`` when creating the type (this
    is precisely the coupling the paper's ``inorder`` flag exists for).
    """

    def _state(context, buf, count):
        inner = state_fn(context, buf, count) if state_fn is not None else None
        return _CoroState(inner)

    def _free(state: _CoroState):
        if state.gen is not None:
            state.gen.close()
            state.gen = None
        if state_free_fn is not None:
            state_free_fn(state.inner)

    def _drive(state: _CoroState, factory, which: str, context, buf, count,
               offset, frag) -> int:
        if offset != state.offset:
            raise CallbackError(
                f"coroutine {which} requires in-order fragments: expected "
                f"offset {state.offset}, got {offset} (create the type with "
                f"inorder=True)")
        if state.gen is None:
            state.gen = factory(context, buf, count)
            try:
                next(state.gen)  # prime up to the first yield point
            except StopIteration:
                raise CallbackError(f"{which} generator finished before packing anything")
        try:
            used = state.gen.send(frag)
        except StopIteration:
            raise CallbackError(f"{which} generator exhausted with data remaining")
        if not isinstance(used, int) or used < 0 or used > len(frag):
            raise CallbackError(f"{which} generator yielded invalid used={used!r}")
        state.offset += used
        return used

    def _pack(state: _CoroState, buf, count, offset, dst) -> int:
        return _drive(state, pack_factory, "pack", state.inner, buf, count,
                      offset, dst)

    _unpack = None
    if unpack_factory is not None:
        def _unpack(state: _CoroState, buf, count, offset, src) -> None:
            used = _drive(state, unpack_factory, "unpack", state.inner, buf,
                          count, offset, src)
            if used != len(src):
                raise CallbackError(
                    f"unpack generator consumed {used} of a {len(src)}-byte fragment; "
                    "fragments must be fully consumed")

    return _state, _free, _pack, _unpack


def full_buffer_generator(pack_whole: Callable[[Any, Any, int], bytes]):
    """Adapt a whole-buffer packer into a fragment generator.

    ``pack_whole(context, buf, count)`` produces the complete packed stream
    once; the generator then doles it out fragment by fragment.  This is the
    "full packing" fallback the paper resorted to for DDTBench when Clang's
    coroutines failed — provided here so benches can compare both.
    """

    def factory(context, buf, count):
        data = np.frombuffer(memoryview(pack_whole(context, buf, count)),
                             dtype=np.uint8)
        pos = 0
        dst = yield  # primed; first fragment buffer arrives via send()
        while pos < len(data):
            step = min(len(dst), len(data) - pos)
            dst[:step] = data[pos:pos + step]
            pos += step
            if pos >= len(data):
                yield step
                return
            dst = yield step

    return factory
