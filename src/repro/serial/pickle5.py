"""Pickle protocol-5 helpers (PEP 574 out-of-band buffers).

This uses CPython's real pickle machinery — the same one mpi4py drives — so
the header/buffer split the paper describes is produced by the genuine
serializer, not a mock.  For 1-D numpy arrays the in-band header is ~120-200
bytes of metadata (shape, dtype, byte order), matching the paper's
measurement of "around 120 bytes".
"""

from __future__ import annotations

import pickle
from typing import Any, Sequence

import numpy as np

#: Buffers smaller than this stay in-band even under the out-of-band
#: strategies (chasing tiny buffers with separate messages never pays).
DEFAULT_OOB_THRESHOLD = 1024


def dumps_inband(obj: Any) -> bytes:
    """Serialize fully in-band (the *basic pickle* strategy)."""
    return pickle.dumps(obj, protocol=5)


def loads_inband(data) -> Any:
    """Inverse of :func:`dumps_inband`."""
    return pickle.loads(bytes(data))


def dumps_oob(obj: Any, threshold: int = DEFAULT_OOB_THRESHOLD
              ) -> tuple[bytes, list[memoryview]]:
    """Serialize with out-of-band buffers (PEP 574).

    Returns ``(header, buffers)`` where ``header`` is the in-band pickle
    stream and ``buffers`` are zero-copy views of the object's large
    contiguous payloads (no bytes are copied for them).
    """
    buffers: list[memoryview] = []

    def cb(pb: pickle.PickleBuffer):
        view = pb.raw()
        if view.nbytes < threshold:
            return True  # keep small buffers in-band
        buffers.append(view)
        return False

    header = pickle.dumps(obj, protocol=5, buffer_callback=cb)
    return header, buffers


def loads_oob(header, buffers: Sequence) -> Any:
    """Deserialize a header + out-of-band buffer sequence."""
    return pickle.loads(bytes(header), buffers=list(buffers))


def buffer_bytes(buffers: Sequence[memoryview]) -> int:
    """Total bytes across out-of-band buffers."""
    return sum(b.nbytes for b in buffers)


def as_u8(view) -> np.ndarray:
    """uint8 numpy view of a memoryview/PickleBuffer (zero-copy)."""
    mv = view if isinstance(view, memoryview) else memoryview(view)
    return np.frombuffer(mv.cast("B"), dtype=np.uint8)
