"""The paper's three Python communication strategies (Section V.B).

* :class:`BasicPickle` (*pickle-basic*) — the object is serialized into one
  in-band byte stream and moved with a single message pair; the receiver
  must ``MPI_Mprobe`` to size its allocation (how mpi4py works today).
* :class:`OobPickle` (*pickle-oob*) — pickle-5 out-of-band: the small header
  goes in one message, then an explicit lengths message, then one message
  per zero-copy buffer.  This is mpi4py's multi-message workaround, with the
  tag-space/thread-safety caveats the paper discusses.
* :class:`OobCdtPickle` (*pickle-oob-cdt*) — the paper's contribution: the
  header and lengths travel as the custom datatype's packed stream and every
  buffer as a memory region, in a **single** MPI message pair, with the
  engine handling the pieces internally.

All strategies move real pickle bytes end-to-end.  Serialization and
allocation costs are charged to the rank's virtual clock using the shared
cost model, so the bench harness reproduces Figs. 8-9 from the same code
path the tests verify.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core import BYTE, CustomDatatype, Region, type_create_custom
from ..errors import CallbackError
from ..mpi.comm import Communicator
from ..mpi.requests import Request
from .pickle5 import (DEFAULT_OOB_THRESHOLD, as_u8, dumps_inband,
                      dumps_oob, loads_inband, loads_oob)

_LEN = np.dtype("<u8")


def _charge_pickle(comm: Communicator, nbytes: int) -> None:
    comm.clock.advance(comm.worker.model.pickle_time(nbytes))


def _alloc(comm: Communicator, nbytes: int) -> np.ndarray:
    return comm.memory.allocate(nbytes, comm.clock, comm.worker.model)


class Strategy:
    """Interface: blocking object send/recv over a communicator."""

    name = "abstract"

    def send(self, comm: Communicator, obj: Any, dest: int, tag: int = 0) -> None:
        raise NotImplementedError

    def recv(self, comm: Communicator, source: int, tag: int = 0) -> Any:
        raise NotImplementedError


class BasicPickle(Strategy):
    """Single in-band stream, single message pair, mprobe on receive."""

    name = "pickle-basic"

    def send(self, comm, obj, dest, tag=0):
        data = dumps_inband(obj)
        _charge_pickle(comm, len(data))
        # The serialized stream is itself a fresh allocation the size of the
        # whole object — the memory-doubling the paper warns about.
        comm.memory.allocate(len(data), comm.clock, comm.worker.model)
        try:
            comm.send(np.frombuffer(data, dtype=np.uint8), dest, tag,
                      datatype=BYTE, count=len(data))
        finally:
            comm.memory.release(len(data))

    def recv(self, comm, source, tag=0):
        handle, status = comm.mprobe(source, tag)
        buf = _alloc(comm, status.nbytes)
        handle.mrecv(buf, datatype=BYTE, count=status.nbytes)
        _charge_pickle(comm, status.nbytes)
        obj = loads_inband(buf)
        comm.memory.release(buf)
        return obj


class OobPickle(Strategy):
    """Out-of-band pickle over multiple MPI messages (mpi4py style)."""

    name = "pickle-oob"

    def __init__(self, threshold: int = DEFAULT_OOB_THRESHOLD):
        self.threshold = threshold

    def send(self, comm, obj, dest, tag=0):
        header, buffers = dumps_oob(obj, threshold=self.threshold)
        _charge_pickle(comm, len(header))
        lens = np.array([b.nbytes for b in buffers], dtype=_LEN)
        reqs: list[Request] = [
            comm.isend(np.frombuffer(header, dtype=np.uint8), dest, tag,
                       datatype=BYTE, count=len(header)),
            comm.isend(lens.view(np.uint8), dest, tag, datatype=BYTE,
                       count=lens.nbytes),
        ]
        # One message per buffer, all on the same tag — correct only thanks
        # to per-(source, tag) FIFO matching; this is the multi-message
        # pattern whose thread-safety cost the paper criticizes.
        for b in buffers:
            reqs.append(comm.isend(as_u8(b), dest, tag, datatype=BYTE,
                                   count=b.nbytes))
        Request.waitall(reqs)

    def recv(self, comm, source, tag=0):
        handle, status = comm.mprobe(source, tag)
        header = _alloc(comm, status.nbytes)
        handle.mrecv(header, datatype=BYTE, count=status.nbytes)

        handle, status = comm.mprobe(source, tag)
        lens_buf = _alloc(comm, status.nbytes)
        handle.mrecv(lens_buf, datatype=BYTE, count=status.nbytes)
        lens = lens_buf.view(_LEN)

        buffers = []
        for n in lens:
            b = _alloc(comm, int(n))
            comm.recv(b, source, tag, datatype=BYTE, count=int(n))
            buffers.append(b)
        _charge_pickle(comm, header.nbytes)
        obj = loads_oob(header, buffers)
        comm.memory.release(header)
        comm.memory.release(lens_buf)
        return obj


class _OutParcel:
    """Send-side container: framed in-band stream + region views."""

    __slots__ = ("stream", "buffers")

    def __init__(self, header: bytes, buffers: list):
        lens = np.empty(1 + len(buffers), dtype=_LEN)
        lens[0] = len(buffers)
        lens[1:] = [b.nbytes for b in buffers]
        self.stream = np.concatenate(
            [lens.view(np.uint8),
             np.frombuffer(header, dtype=np.uint8)])
        self.buffers = buffers


class _InParcel:
    """Receive-side container filled by the custom-type callbacks."""

    __slots__ = ("comm", "stream", "filled", "buffers", "nbufs")

    def __init__(self, comm: Communicator):
        self.comm = comm
        self.stream = np.empty(0, dtype=np.uint8)
        self.filled = 0
        self.buffers: list[np.ndarray] | None = None
        self.nbufs: int | None = None

    def absorb(self, offset: int, src: np.ndarray) -> None:
        end = offset + src.shape[0]
        if end > self.stream.shape[0]:
            grown = np.zeros(end, dtype=np.uint8)
            grown[: self.stream.shape[0]] = self.stream
            self.stream = grown
        self.stream[offset:end] = src
        self.filled += src.shape[0]

    def parse(self) -> None:
        """Allocate receive buffers once the full stream has arrived."""
        if self.buffers is not None:
            return
        if self.stream.shape[0] < 8:
            raise CallbackError("pickle-oob-cdt stream too short for framing")
        nbufs = int(self.stream[:8].view(_LEN)[0])
        lens = self.stream[8:8 + 8 * nbufs].view(_LEN)
        self.nbufs = nbufs
        self.buffers = [_alloc(self.comm, int(n)) for n in lens]

    @property
    def header(self) -> np.ndarray:
        nbufs = int(self.stream[:8].view(_LEN)[0])
        return self.stream[8 + 8 * nbufs:self.filled]


def pickle_cdt_datatype() -> CustomDatatype:
    """The custom datatype carrying a pickled object in one MPI message.

    Send buffers are :class:`_OutParcel`, receive buffers :class:`_InParcel`;
    the framing is ``[u64 nbufs][nbufs x u64 lens][pickle header]`` in-band,
    then one region per out-of-band buffer.
    """

    def query_fn(state, buf, count):
        if isinstance(buf, _OutParcel):
            return int(buf.stream.shape[0])
        return None  # receive side: size unknown until data arrives

    def pack_fn(state, buf, count, offset, dst):
        stream = buf.stream
        step = min(dst.shape[0], stream.shape[0] - offset)
        dst[:step] = stream[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        buf.absorb(offset, src)

    def region_count_fn(state, buf, count):
        if isinstance(buf, _OutParcel):
            return len(buf.buffers)
        buf.parse()
        return len(buf.buffers)

    def region_fn(state, buf, count, region_count):
        if isinstance(buf, _OutParcel):
            return [Region(as_u8(b)) for b in buf.buffers]
        return [Region(b) for b in buf.buffers]

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn,
                              region_count_fn=region_count_fn,
                              region_fn=region_fn,
                              name="custom:pickle5")


class OobCdtPickle(Strategy):
    """Out-of-band pickle through the custom datatype engine (the paper)."""

    name = "pickle-oob-cdt"

    def __init__(self, threshold: int = DEFAULT_OOB_THRESHOLD):
        self.threshold = threshold
        self._dtype = pickle_cdt_datatype()

    def send(self, comm, obj, dest, tag=0):
        header, buffers = dumps_oob(obj, threshold=self.threshold)
        _charge_pickle(comm, len(header))
        parcel = _OutParcel(header, buffers)
        comm.send(parcel, dest, tag, datatype=self._dtype)

    def recv(self, comm, source, tag=0):
        inbox = _InParcel(comm)
        comm.recv(inbox, source, tag, datatype=self._dtype)
        _charge_pickle(comm, int(inbox.header.nbytes))
        obj = loads_oob(inbox.header, inbox.buffers or [])
        for b in inbox.buffers or []:
            comm.memory.release(b)
        return obj


#: Registry used by benches and the high-level helpers.
STRATEGIES: dict[str, type[Strategy]] = {
    BasicPickle.name: BasicPickle,
    OobPickle.name: OobPickle,
    OobCdtPickle.name: OobCdtPickle,
}


def get_strategy(name: str) -> Strategy:
    """Instantiate a strategy by name (see :data:`STRATEGIES`)."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        raise KeyError(f"unknown strategy {name!r}; "
                       f"choose from {sorted(STRATEGIES)}") from None


def sendobj(comm: Communicator, obj: Any, dest: int, tag: int = 0,
            strategy: str | Strategy = "pickle-oob-cdt") -> None:
    """mpi4py-style lowercase send of an arbitrary Python object."""
    s = get_strategy(strategy) if isinstance(strategy, str) else strategy
    s.send(comm, obj, dest, tag)


def recvobj(comm: Communicator, source: int, tag: int = 0,
            strategy: str | Strategy = "pickle-oob-cdt") -> Any:
    """mpi4py-style lowercase receive of an arbitrary Python object."""
    s = get_strategy(strategy) if isinstance(strategy, str) else strategy
    return s.recv(comm, source, tag)


def bcast_object(comm: Communicator, obj: Any = None, root: int = 0,
                 strategy: str | Strategy = "pickle-oob-cdt") -> Any:
    """Binomial-tree broadcast of a Python object (collective extension)."""
    s = get_strategy(strategy) if isinstance(strategy, str) else strategy
    n = comm.size
    if n == 1:
        return obj
    tag = 0x00FF0001  # inside the user-tag range, unlikely to collide
    vrank = (comm.rank - root) % n
    if vrank != 0:
        high = 1 << (vrank.bit_length() - 1)
        parent = vrank - high
        obj = s.recv(comm, (parent + root) % n, tag=tag)
    level = 1
    while level < n:
        if vrank < level:
            child = vrank + level
            if child < n:
                s.send(comm, obj, (child + root) % n, tag=tag)
        level <<= 1
    return obj
