"""Object shapes used by the paper's Python evaluation (Figs. 8-9)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Fig. 9 uses "multiple 128-KiB NumPy arrays ... adding up to a given total
#: size".
COMPLEX_CHUNK_BYTES = 128 * 1024


def make_single_array(nbytes: int, seed: int = 0) -> np.ndarray:
    """Case 1: a single 1-D float64 array of ``nbytes`` (Fig. 8)."""
    n = max(nbytes // 8, 1)
    rng = np.random.default_rng(seed)
    return rng.random(n)


@dataclass
class ComplexObject:
    """Case 2: a user-defined object holding many fixed-size arrays (Fig. 9).

    Besides the arrays it carries a little genuinely in-band state (name,
    iteration counter, per-chunk checksums) so the pickle header is a real
    object graph, not a bare list.
    """

    name: str
    iteration: int
    chunks: list[np.ndarray] = field(default_factory=list)
    checksums: list[float] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(c.nbytes for c in self.chunks)

    def validate(self) -> bool:
        """Recompute and compare the per-chunk checksums."""
        if len(self.checksums) != len(self.chunks):
            return False
        return all(abs(float(c.sum()) - s) < 1e-6 * max(abs(s), 1.0)
                   for c, s in zip(self.chunks, self.checksums))

    def __eq__(self, other) -> bool:
        if not isinstance(other, ComplexObject):
            return NotImplemented
        return (self.name == other.name and self.iteration == other.iteration
                and len(self.chunks) == len(other.chunks)
                and all(np.array_equal(a, b)
                        for a, b in zip(self.chunks, other.chunks)))


def make_complex_object(total_bytes: int,
                        chunk_bytes: int = COMPLEX_CHUNK_BYTES,
                        seed: int = 0) -> ComplexObject:
    """Build a ComplexObject of roughly ``total_bytes`` of array payload."""
    nchunks = max(1, total_bytes // chunk_bytes)
    n = chunk_bytes // 8
    rng = np.random.default_rng(seed)
    chunks = [rng.random(n) for _ in range(nchunks)]
    return ComplexObject(name=f"complex-{total_bytes}", iteration=7,
                         chunks=chunks,
                         checksums=[float(c.sum()) for c in chunks])
