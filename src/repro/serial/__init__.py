"""Pickle-5 serialization strategies over MPI (the paper's Python layer)."""

from .objects import (COMPLEX_CHUNK_BYTES, ComplexObject, make_complex_object,
                      make_single_array)
from .pickle5 import (DEFAULT_OOB_THRESHOLD, as_u8, buffer_bytes,
                      dumps_inband, dumps_oob, loads_inband, loads_oob)
from .strategies import (STRATEGIES, BasicPickle, OobCdtPickle, OobPickle,
                         Strategy, bcast_object, get_strategy,
                         pickle_cdt_datatype, recvobj, sendobj)

__all__ = [
    "dumps_inband", "loads_inband", "dumps_oob", "loads_oob",
    "buffer_bytes", "as_u8", "DEFAULT_OOB_THRESHOLD",
    "Strategy", "BasicPickle", "OobPickle", "OobCdtPickle",
    "STRATEGIES", "get_strategy", "sendobj", "recvobj", "bcast_object",
    "pickle_cdt_datatype",
    "ComplexObject", "make_complex_object", "make_single_array",
    "COMPLEX_CHUNK_BYTES",
]
