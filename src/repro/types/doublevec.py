"""The ``double-vector`` type: ``Vec<Vec<i32>>`` / ``vector<vector<int>>``.

The paper's canonical *dynamic* type — a container of heap-allocated
contiguous buffers that derived datatypes cannot express without per-call
address manipulation.  The custom datatype sends the sub-vector lengths
in-band and each sub-vector as a memory region; the receive side allocates
sub-vectors after the lengths arrive, exactly the two-stage flow of
Section III.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core import INT32, CustomDatatype, Region, type_create_custom

_LEN_DTYPE = np.dtype("<i8")


class DoubleVec:
    """A vector of int32 vectors."""

    def __init__(self, vectors: Sequence[np.ndarray] | None = None):
        self.vectors: list[np.ndarray] = [
            np.ascontiguousarray(v, dtype=np.int32) for v in (vectors or [])]

    @classmethod
    def uniform(cls, total_bytes: int, subvec_bytes: int) -> "DoubleVec":
        """The paper's benchmark shape: uniform sub-vector lengths.

        For message sizes smaller than the sub-vector size a single
        sub-vector of the message size is used (Section V.A).
        """
        if total_bytes <= subvec_bytes:
            sizes = [total_bytes]
        else:
            nfull, rem = divmod(total_bytes, subvec_bytes)
            sizes = [subvec_bytes] * nfull + ([rem] if rem else [])
        vecs = []
        for i, nbytes in enumerate(sizes):
            n = nbytes // 4
            vecs.append((np.arange(n, dtype=np.int32) + 17 * i))
        return cls(vecs)

    @property
    def total_bytes(self) -> int:
        return sum(v.nbytes for v in self.vectors)

    @property
    def header_bytes(self) -> int:
        """In-band bytes: one count plus one length per sub-vector."""
        return _LEN_DTYPE.itemsize * (1 + len(self.vectors))

    def __eq__(self, other) -> bool:
        if not isinstance(other, DoubleVec):
            return NotImplemented
        return (len(self.vectors) == len(other.vectors)
                and all(np.array_equal(a, b)
                        for a, b in zip(self.vectors, other.vectors)))

    def __repr__(self) -> str:
        return f"DoubleVec({len(self.vectors)} vectors, {self.total_bytes} B)"

    # -- manual packing (the "packed" method) ------------------------------

    def manual_pack(self) -> np.ndarray:
        """Pack the whole container (header + all data) into one buffer."""
        header = np.empty(1 + len(self.vectors), dtype=_LEN_DTYPE)
        header[0] = len(self.vectors)
        header[1:] = [v.shape[0] for v in self.vectors]
        parts = [header.view(np.uint8)] + [v.view(np.uint8) for v in self.vectors]
        return np.concatenate(parts) if parts else np.empty(0, np.uint8)

    @classmethod
    def manual_unpack(cls, packed: np.ndarray) -> "DoubleVec":
        it = _LEN_DTYPE.itemsize
        nvec = int(packed[:it].view(_LEN_DTYPE)[0])
        lens = packed[it:it * (1 + nvec)].view(_LEN_DTYPE).astype(np.int64)
        out = cls()
        pos = it * (1 + nvec)
        for n in lens:
            nbytes = int(n) * 4
            out.vectors.append(packed[pos:pos + nbytes].copy().view(np.int32))
            pos += nbytes
        return out


def double_vec_custom_datatype() -> CustomDatatype:
    """Custom datatype: lengths in-band, sub-vectors as regions.

    The same type object works on both sides; a receive-side buffer is an
    empty :class:`DoubleVec` whose vectors are allocated once the in-band
    lengths have been unpacked (before the region query, per the engine's
    ordering guarantee).
    """

    class _State:
        __slots__ = ("header", "filled")

        def __init__(self):
            self.header: np.ndarray | None = None
            self.filled = 0

    def state_fn(context, buf, count):
        return _State()

    def _dv(buf, count) -> DoubleVec:
        if count != 1 or not isinstance(buf, DoubleVec):
            raise TypeError("double-vec transfers use count=1 and a DoubleVec buffer")
        return buf

    def _header(state: _State, dv: DoubleVec) -> np.ndarray:
        if state.header is None:
            hdr = np.empty(1 + len(dv.vectors), dtype=_LEN_DTYPE)
            hdr[0] = len(dv.vectors)
            hdr[1:] = [v.shape[0] for v in dv.vectors]
            state.header = hdr.view(np.uint8)
        return state.header

    def query_fn(state, buf, count):
        return int(_header(state, _dv(buf, count)).shape[0])

    def pack_fn(state, buf, count, offset, dst):
        hdr = _header(state, _dv(buf, count))
        step = min(dst.shape[0], hdr.shape[0] - offset)
        dst[:step] = hdr[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        dv = _dv(buf, count)
        if state.header is None:
            state.header = np.zeros(0, dtype=np.uint8)
        end = offset + src.shape[0]
        if end > state.header.shape[0]:
            # Grow the accumulation buffer; the count word (first 8 bytes)
            # may itself be split across fragments.
            grown = np.zeros(end, dtype=np.uint8)
            grown[: state.header.shape[0]] = state.header
            state.header = grown
        state.header[offset:end] = src
        state.filled += src.shape[0]
        if state.filled >= 8:
            nvec = int(state.header[:8].view(_LEN_DTYPE)[0])
            total = (1 + nvec) * _LEN_DTYPE.itemsize
            if state.filled >= total:
                lens = state.header[8:total].view(_LEN_DTYPE)
                dv.vectors = [np.empty(int(n), dtype=np.int32) for n in lens]

    def region_count_fn(state, buf, count):
        return len(_dv(buf, count).vectors)

    def region_fn(state, buf, count, region_count):
        return [Region(v, datatype=INT32) for v in _dv(buf, count).vectors]

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn,
                              region_count_fn=region_count_fn,
                              region_fn=region_fn, state_fn=state_fn,
                              inorder=True, name="custom:double-vec")
