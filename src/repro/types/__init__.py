"""The paper's Rust benchmark types with identical byte layouts."""

from .doublevec import DoubleVec, double_vec_custom_datatype
from .structs import (STRUCT_SIMPLE, STRUCT_SIMPLE_NO_GAP,
                      STRUCT_SIMPLE_NO_GAP_PACKED, STRUCT_SIMPLE_PACKED,
                      STRUCT_VEC, STRUCT_VEC_DATA_LEN, STRUCT_VEC_PACKED,
                      make_struct_simple, make_struct_simple_no_gap,
                      make_struct_vec, manual_pack_struct_simple,
                      manual_pack_struct_simple_no_gap,
                      manual_pack_struct_vec, manual_unpack_struct_simple,
                      manual_unpack_struct_simple_no_gap,
                      manual_unpack_struct_vec, struct_simple_custom_datatype,
                      struct_simple_no_gap_custom_datatype,
                      struct_simple_datatype, struct_simple_no_gap_datatype,
                      struct_vec_custom_datatype, struct_vec_datatype)

__all__ = [
    "STRUCT_SIMPLE", "STRUCT_SIMPLE_NO_GAP", "STRUCT_VEC",
    "STRUCT_SIMPLE_PACKED", "STRUCT_SIMPLE_NO_GAP_PACKED",
    "STRUCT_VEC_PACKED", "STRUCT_VEC_DATA_LEN",
    "make_struct_simple", "make_struct_simple_no_gap", "make_struct_vec",
    "struct_simple_datatype", "struct_simple_no_gap_datatype",
    "struct_vec_datatype",
    "manual_pack_struct_simple", "manual_unpack_struct_simple",
    "manual_pack_struct_simple_no_gap", "manual_unpack_struct_simple_no_gap",
    "struct_simple_no_gap_custom_datatype",
    "manual_pack_struct_vec", "manual_unpack_struct_vec",
    "struct_simple_custom_datatype", "struct_vec_custom_datatype",
    "DoubleVec", "double_vec_custom_datatype",
]
