"""The paper's Rust struct benchmark types (Listings 6-8) in Python.

Byte layouts are identical to ``#[repr(C)]`` on x86-64:

* :data:`STRUCT_SIMPLE` — ``a,b,c: i32, d: f64`` with a 4-byte alignment gap
  between ``c`` and ``d`` (packed 20 B, extent 24 B),
* :data:`STRUCT_SIMPLE_NO_GAP` — ``a,b: i32, c: f64`` (16 B, gap-free),
* :data:`STRUCT_VEC` — struct-simple plus ``data: [i32; 2048]``
  (packed 8212 B, extent 8216 B).

Arrays of structs are numpy structured arrays over these dtypes, so the
derived-datatype baseline (rsmpi / Open MPI engine) can walk the raw memory
exactly like the paper's benchmarks do, while the custom/manual methods view
the same bytes.

Each type bundles the three transfer strategies of the Rust evaluation:

* ``derived_datatype()`` — the rsmpi/Open MPI baseline,
* ``manual_pack`` / ``manual_unpack`` — the "packed" method (vectorized user
  code, sent as MPI_BYTE),
* ``custom_datatype()`` — the paper's API: scalar fields packed, the
  ``data`` array exposed as a memory region.
"""

from __future__ import annotations

import numpy as np

from ..core import (BYTE, FLOAT64, INT32, CustomDatatype, DerivedDatatype,
                    Region, create_struct, resized, type_create_custom)

STRUCT_VEC_DATA_LEN = 2048

STRUCT_SIMPLE = np.dtype({
    "names": ["a", "b", "c", "d"],
    "formats": ["<i4", "<i4", "<i4", "<f8"],
    "offsets": [0, 4, 8, 16],
    "itemsize": 24,
})

STRUCT_SIMPLE_NO_GAP = np.dtype({
    "names": ["a", "b", "c"],
    "formats": ["<i4", "<i4", "<f8"],
    "offsets": [0, 4, 8],
    "itemsize": 16,
})

STRUCT_VEC = np.dtype({
    "names": ["a", "b", "c", "d", "data"],
    "formats": ["<i4", "<i4", "<i4", "<f8", (f"<i4", (STRUCT_VEC_DATA_LEN,))],
    "offsets": [0, 4, 8, 16, 24],
    "itemsize": 24 + 4 * STRUCT_VEC_DATA_LEN,
})

#: Packed sizes (no gaps).
STRUCT_SIMPLE_PACKED = 20
STRUCT_SIMPLE_NO_GAP_PACKED = 16
STRUCT_VEC_PACKED = 20 + 4 * STRUCT_VEC_DATA_LEN


def make_struct_simple(count: int, rng: np.random.Generator | None = None
                       ) -> np.ndarray:
    """Array of ``count`` struct-simple elements with deterministic data."""
    arr = np.zeros(count, dtype=STRUCT_SIMPLE)
    idx = np.arange(count)
    arr["a"] = idx
    arr["b"] = idx * 2 + 1
    arr["c"] = idx * 3 + 2
    arr["d"] = idx * 0.5 + 0.25
    if rng is not None:
        arr["d"] += rng.random(count)
    return arr


def make_struct_simple_no_gap(count: int) -> np.ndarray:
    """Array of ``count`` gap-free structs with deterministic contents."""
    arr = np.zeros(count, dtype=STRUCT_SIMPLE_NO_GAP)
    idx = np.arange(count)
    arr["a"] = idx
    arr["b"] = ~idx
    arr["c"] = np.sqrt(idx + 1.0)
    return arr


def make_struct_vec(count: int) -> np.ndarray:
    """Array of ``count`` struct-vec elements (deterministic scalars + data)."""
    arr = np.zeros(count, dtype=STRUCT_VEC)
    idx = np.arange(count)
    arr["a"] = idx
    arr["b"] = idx + 7
    arr["c"] = idx * idx
    arr["d"] = 1.0 / (idx + 1.0)
    arr["data"] = (np.arange(STRUCT_VEC_DATA_LEN)[None, :]
                   + idx[:, None]).astype(np.int32)
    return arr


# ---------------------------------------------------------------------------
# Derived datatypes (the rsmpi / Open MPI baseline)
# ---------------------------------------------------------------------------

def struct_simple_datatype() -> DerivedDatatype:
    """struct { 3 x i32 @0, f64 @16 } resized to the C extent (24 B)."""
    t = create_struct([3, 1], [0, 16], [INT32, FLOAT64])
    return resized(t, 0, STRUCT_SIMPLE.itemsize).commit()


def struct_simple_no_gap_datatype() -> DerivedDatatype:
    """struct { 2 x i32 @0, f64 @8 }: contiguous, no resize needed beyond 16 B."""
    t = create_struct([2, 1], [0, 8], [INT32, FLOAT64])
    return resized(t, 0, STRUCT_SIMPLE_NO_GAP.itemsize).commit()


def struct_vec_datatype() -> DerivedDatatype:
    """struct-simple plus the 2048-int32 array field at offset 24."""
    t = create_struct([3, 1, STRUCT_VEC_DATA_LEN], [0, 16, 24],
                      [INT32, FLOAT64, INT32])
    return resized(t, 0, STRUCT_VEC.itemsize).commit()


# ---------------------------------------------------------------------------
# Manual packing (the "packed" method)
# ---------------------------------------------------------------------------

def manual_pack_struct_simple(arr: np.ndarray) -> np.ndarray:
    """Vectorized user-code packing into a fresh 20 B/element buffer."""
    count = arr.shape[0]
    out = np.empty(count * STRUCT_SIMPLE_PACKED, dtype=np.uint8)
    o2 = out.reshape(count, STRUCT_SIMPLE_PACKED)
    o2[:, 0:4] = arr["a"][:, None].view(np.uint8).reshape(count, 4)
    o2[:, 4:8] = arr["b"][:, None].view(np.uint8).reshape(count, 4)
    o2[:, 8:12] = arr["c"][:, None].view(np.uint8).reshape(count, 4)
    o2[:, 12:20] = arr["d"][:, None].view(np.uint8).reshape(count, 8)
    return out


def manual_unpack_struct_simple(packed: np.ndarray, arr: np.ndarray) -> None:
    """Inverse of :func:`manual_pack_struct_simple` (writes ``arr`` in place)."""
    count = arr.shape[0]
    p2 = packed.reshape(count, STRUCT_SIMPLE_PACKED)
    arr["a"] = p2[:, 0:4].copy().view(np.int32).reshape(count)
    arr["b"] = p2[:, 4:8].copy().view(np.int32).reshape(count)
    arr["c"] = p2[:, 8:12].copy().view(np.int32).reshape(count)
    arr["d"] = p2[:, 12:20].copy().view(np.float64).reshape(count)


def manual_pack_struct_simple_no_gap(arr: np.ndarray) -> np.ndarray:
    """No-gap struct packs with a single contiguous copy."""
    return arr.view(np.uint8).reshape(-1).copy()


def manual_unpack_struct_simple_no_gap(packed: np.ndarray, arr: np.ndarray) -> None:
    """Inverse of :func:`manual_pack_struct_simple_no_gap`."""
    arr.view(np.uint8).reshape(-1)[:] = packed


def manual_pack_struct_vec(arr: np.ndarray) -> np.ndarray:
    """Vectorized user-code packing of struct-vec (scalars + data array)."""
    count = arr.shape[0]
    out = np.empty(count * STRUCT_VEC_PACKED, dtype=np.uint8)
    o2 = out.reshape(count, STRUCT_VEC_PACKED)
    o2[:, 0:4] = arr["a"][:, None].view(np.uint8).reshape(count, 4)
    o2[:, 4:8] = arr["b"][:, None].view(np.uint8).reshape(count, 4)
    o2[:, 8:12] = arr["c"][:, None].view(np.uint8).reshape(count, 4)
    o2[:, 12:20] = arr["d"][:, None].view(np.uint8).reshape(count, 8)
    o2[:, 20:] = arr["data"].view(np.uint8).reshape(count, 4 * STRUCT_VEC_DATA_LEN)
    return out


def manual_unpack_struct_vec(packed: np.ndarray, arr: np.ndarray) -> None:
    """Inverse of :func:`manual_pack_struct_vec`."""
    count = arr.shape[0]
    p2 = packed.reshape(count, STRUCT_VEC_PACKED)
    arr["a"] = p2[:, 0:4].copy().view(np.int32).reshape(count)
    arr["b"] = p2[:, 4:8].copy().view(np.int32).reshape(count)
    arr["c"] = p2[:, 8:12].copy().view(np.int32).reshape(count)
    arr["d"] = p2[:, 12:20].copy().view(np.float64).reshape(count)
    arr["data"] = p2[:, 20:].copy().view(np.int32).reshape(
        count, STRUCT_VEC_DATA_LEN)


# ---------------------------------------------------------------------------
# Custom datatypes (the paper's API)
# ---------------------------------------------------------------------------

def struct_simple_custom_datatype() -> CustomDatatype:
    """Pack-only custom type: gathers a,b,c,d into the in-band stream."""

    class _State:
        __slots__ = ("packed",)

        def __init__(self):
            self.packed: np.ndarray | None = None

    def state_fn(context, buf, count):
        return _State()

    def _packed(state: _State, buf, count) -> np.ndarray:
        if state.packed is None:
            state.packed = manual_pack_struct_simple(buf[:count])
        return state.packed

    def query_fn(state, buf, count):
        return count * STRUCT_SIMPLE_PACKED

    def pack_fn(state, buf, count, offset, dst):
        packed = _packed(state, buf, count)
        step = min(dst.shape[0], packed.shape[0] - offset)
        dst[:step] = packed[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        if state.packed is None:
            state.packed = np.empty(count * STRUCT_SIMPLE_PACKED, dtype=np.uint8)
        state.packed[offset:offset + src.shape[0]] = src
        if offset + src.shape[0] >= count * STRUCT_SIMPLE_PACKED:
            manual_unpack_struct_simple(state.packed, buf[:count])

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn, state_fn=state_fn,
                              name="custom:struct-simple")


def struct_simple_no_gap_custom_datatype() -> CustomDatatype:
    """Custom type for the gap-free struct: pack is a straight memcpy."""

    def query_fn(state, buf, count):
        return count * STRUCT_SIMPLE_NO_GAP_PACKED

    def pack_fn(state, buf, count, offset, dst):
        flat = buf.view(np.uint8).reshape(-1)
        step = min(dst.shape[0], count * STRUCT_SIMPLE_NO_GAP_PACKED - offset)
        dst[:step] = flat[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        flat = buf.view(np.uint8).reshape(-1)
        flat[offset:offset + src.shape[0]] = src

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn,
                              name="custom:struct-simple-no-gap")


def struct_vec_custom_datatype() -> CustomDatatype:
    """Scalars packed in-band, each element's ``data`` array as a region."""

    class _State:
        __slots__ = ("packed",)

        def __init__(self):
            self.packed: np.ndarray | None = None

    def state_fn(context, buf, count):
        return _State()

    def query_fn(state, buf, count):
        return count * STRUCT_SIMPLE_PACKED  # only a,b,c,d go in-band

    def pack_fn(state, buf, count, offset, dst):
        if state.packed is None:
            state.packed = manual_pack_struct_simple(_scalar_view(buf[:count]))
        packed = state.packed
        step = min(dst.shape[0], packed.shape[0] - offset)
        dst[:step] = packed[offset:offset + step]
        return int(step)

    def unpack_fn(state, buf, count, offset, src):
        if state.packed is None:
            state.packed = np.empty(count * STRUCT_SIMPLE_PACKED, dtype=np.uint8)
        state.packed[offset:offset + src.shape[0]] = src
        if offset + src.shape[0] >= count * STRUCT_SIMPLE_PACKED:
            p2 = state.packed.reshape(count, STRUCT_SIMPLE_PACKED)
            sub = buf[:count]
            sub["a"] = p2[:, 0:4].copy().view(np.int32).reshape(count)
            sub["b"] = p2[:, 4:8].copy().view(np.int32).reshape(count)
            sub["c"] = p2[:, 8:12].copy().view(np.int32).reshape(count)
            sub["d"] = p2[:, 12:20].copy().view(np.float64).reshape(count)

    def region_count_fn(state, buf, count):
        return count

    def region_fn(state, buf, count, region_count):
        return [Region(buf[i]["data"], datatype=INT32) for i in range(count)]

    return type_create_custom(query_fn=query_fn, pack_fn=pack_fn,
                              unpack_fn=unpack_fn,
                              region_count_fn=region_count_fn,
                              region_fn=region_fn, state_fn=state_fn,
                              name="custom:struct-vec")


def _scalar_view(arr: np.ndarray) -> np.ndarray:
    """View the scalar fields of a struct-vec array as struct-simple rows."""
    out = np.zeros(arr.shape[0], dtype=STRUCT_SIMPLE)
    for f in ("a", "b", "c", "d"):
        out[f] = arr[f]
    return out
