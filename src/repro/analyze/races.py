"""Static concurrency & transport-portability analyzer (RPD8xx).

Every rank in this prototype is a thread inside one process: large parts of
:mod:`repro.ucp` are only correct because the GIL serializes bytecode and
because payloads cross the simulated wire as in-process object references.
Before the transport layer can be swapped for ``multiprocessing``/shared
memory, three questions must be answerable from the source alone:

1. **Which shared state is synchronized?**  The analyzer infers a
   per-attribute *lockset* — the set of locks held at each access site — by
   walking the method bodies of every class that owns a synchronization
   primitive (``Lock``/``RLock``/``Condition``/``Event``).  An attribute of
   such a class written outside every lock is RPD800; a compound
   read-modify-write (``self.x += 1``), a check-then-act (``if k not in
   self.d: self.d[k] = …``) or a module-level ``next(itertools.count)``
   outside any lock is RPD801 — code that is only atomic because of the GIL.
2. **Can the locks deadlock?**  Acquisitions observed while another lock is
   held become edges of a lock-order graph (calls into lock-acquiring
   methods are propagated to a fixpoint); a cycle is RPD802.  A blocking
   call — ``Event.wait``, a foreign ``Condition.wait``, virtual-time
   sleeps — or a user-supplied callback executed while holding a lock is
   RPD803.
3. **What survives a process boundary?**  The wire audit taints values
   derived from caller parameters and flags payloads placed on the wire
   envelope without passing a copy barrier (``copy_chunks``, ``np.array``,
   a pool-acquired staging chunk): RPD810, by-reference aliasing across the
   rank boundary.  Envelope fields whose type cannot be serialized —
   threading primitives, exceptions, callables — are RPD811.  Together
   these findings are the contract for what a shared-memory backend must
   *copy* versus *map*.

The analyzer is deliberately contract-aware, mirroring the fabric's
documented ownership rules:

* classes with **no** synchronization primitive (``VirtualClock``,
  ``_Channel``, per-rank ``Worker`` state) are single-owner by design and
  are not audited for locksets;
* a plain write followed by ``Event.set()`` in the same method is the
  release-publish idiom (readers ``wait()`` first) and is exempt;
* ``Condition.wait`` on the *held* condition is the correct usage and is
  exempt from RPD803;
* lazy idempotent publishes (``if self._x is None: self._x = <pure>``)
  are exempt from the check-then-act rule.

The seeded corpus under :mod:`repro.analyze.races_corpus` keeps every rule
honest: each fixture names the code that must fire (``# expects:``) and
:func:`run_corpus` reports any escape, mirroring ``proto --mutants``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field as dc_field
from typing import Optional

from .diagnostics import Diagnostic
from .suppress import apply_suppressions

__all__ = ["analyze_paths", "run_corpus", "corpus_dir",
           "shipped_audit_paths", "RaceReport"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})
_EVENT_FACTORIES = frozenset({"Event", "Semaphore", "BoundedSemaphore",
                              "Barrier"})
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "discard", "remove", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "move_to_end", "sort", "reverse", "rotate"})
#: Calls whose *result* no longer aliases the argument buffers.
_COPY_BARRIERS = frozenset({"copy_chunks", "copy", "deepcopy", "array",
                            "bytes", "bytearray", "tobytes", "acquire",
                            "allocate", "pack", "frombuffer_copy"})
_NONSERIALIZABLE_ANNOTATIONS = ("Event", "Lock", "RLock", "Condition",
                                "Semaphore", "BaseException", "Exception",
                                "Callable", "Thread")
_INIT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})
_EXPECT_RE = re.compile(r"#\s*expects:\s*([A-Z0-9, ]+)")

LockId = tuple  # ("class", ClassName, attr) | ("module", mod, name) | ...


def _lock_label(lock: LockId) -> str:
    return f"{lock[1]}.{lock[2]}" if lock[0] in ("class", "module") \
        else str(lock[1])


# ---------------------------------------------------------------------------
# models
# ---------------------------------------------------------------------------

@dataclass
class _ClassModel:
    name: str
    file: str
    node: ast.ClassDef
    lock_canon: dict = dc_field(default_factory=dict)   # attr -> canonical
    events: set = dc_field(default_factory=set)
    methods: dict = dc_field(default_factory=dict)
    attr_types: dict = dc_field(default_factory=dict)   # self.x -> ClassName

    @property
    def shared(self) -> bool:
        """A class that owns synchronization is, by its own admission,
        touched by more than one thread; lock-free classes are single-owner
        by the fabric's ownership contracts."""
        return bool(self.lock_canon or self.events)

    @property
    def is_wire(self) -> bool:
        return self.name.startswith("Wire")


@dataclass
class _ModuleModel:
    path: str
    name: str
    tree: ast.Module
    locks: set = dc_field(default_factory=set)
    counters: set = dc_field(default_factory=set)      # itertools.count
    mutables: set = dc_field(default_factory=set)      # dict/list/set/...
    classes: dict = dc_field(default_factory=dict)
    functions: dict = dc_field(default_factory=dict)
    uses_threading: bool = False


@dataclass
class _Access:
    """One ``self.<attr>`` access inside a method body."""
    file: str
    cls: str
    attr: str
    method: str
    kind: str                 # read | write | rmw | mut
    locks: frozenset
    line: int
    col: int
    published: bool           # method releases via Event.set()


@dataclass
class _FnFacts:
    """Everything one function-body walk learned (emission happens later)."""
    key: tuple                                  # summary key
    file: str
    acquires: set = dc_field(default_factory=set)
    calls: list = dc_field(default_factory=list)      # (callee_key, held, node)
    blocking: list = dc_field(default_factory=list)   # (node, desc, exempt)
    edges: list = dc_field(default_factory=list)      # (A, B, node)


@dataclass
class RaceReport:
    """Machine-readable audit companion to the findings list."""
    files: int = 0
    classes_audited: list = dc_field(default_factory=list)
    single_owner: list = dc_field(default_factory=list)
    lock_order_edges: list = dc_field(default_factory=list)
    assumptions: list = dc_field(default_factory=list)
    wire_fields: list = dc_field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "files": self.files,
            "classes_audited": sorted(self.classes_audited),
            "single_owner": sorted(self.single_owner),
            "lock_order_edges": sorted(self.lock_order_edges),
            "assumptions": sorted(self.assumptions),
            "wire_fields": sorted(self.wire_fields),
        }


# ---------------------------------------------------------------------------
# helpers on AST expressions
# ---------------------------------------------------------------------------

def _call_name(func: ast.AST) -> Optional[str]:
    """Terminal name of a call target: ``threading.Lock`` -> ``Lock``."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_threading_call(node: ast.AST, names: frozenset,
                       mod: _ModuleModel) -> bool:
    """Is ``node`` a call creating one of ``names`` from :mod:`threading`?"""
    if not isinstance(node, ast.Call):
        return False
    f = node.func
    if isinstance(f, ast.Attribute) and f.attr in names and \
            isinstance(f.value, ast.Name) and f.value.id == "threading":
        return True
    if isinstance(f, ast.Name) and f.id in names and mod.uses_threading:
        return True
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _names_in(node: ast.AST) -> set:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _self_attrs_in(node: ast.AST) -> set:
    out = set()
    for n in ast.walk(node):
        a = _self_attr(n)
        if a is not None:
            out.add(a)
    return out


# ---------------------------------------------------------------------------
# pass A: build models
# ---------------------------------------------------------------------------

def _scan_lockish_assign(stmt: ast.stmt, cm: _ClassModel,
                         mod: _ModuleModel) -> None:
    """Record lock/event attributes created by ``self.x = threading.…``."""
    targets = []
    value = None
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    if value is None:
        return
    for tgt in targets:
        attr = _self_attr(tgt)
        if attr is None:
            continue
        if _is_threading_call(value, _LOCK_FACTORIES, mod):
            cm.lock_canon[attr] = attr
        elif _is_threading_call(value, frozenset({"Condition"}), mod):
            inner = value.args[0] if value.args else None
            alias = _self_attr(inner) if inner is not None else None
            cm.lock_canon[attr] = cm.lock_canon.get(alias, alias) \
                if alias else attr
        elif _is_threading_call(value, _EVENT_FACTORIES, mod):
            cm.events.add(attr)
        elif isinstance(value, ast.Call):
            name = _call_name(value.func)
            if name and name[0].isupper():
                cm.attr_types[attr] = name


def _build_module(path: str, tree: ast.Module) -> _ModuleModel:
    mod = _ModuleModel(path=path,
                       name=os.path.basename(path)[:-3], tree=tree)
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            text = ast.dump(stmt)
            if "threading" in text:
                mod.uses_threading = True
        elif (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and
              isinstance(stmt.targets[0], ast.Name)) or \
                (isinstance(stmt, ast.AnnAssign) and
                 isinstance(stmt.target, ast.Name) and
                 stmt.value is not None):
            name = stmt.targets[0].id if isinstance(stmt, ast.Assign) \
                else stmt.target.id
            v = stmt.value
            if _is_threading_call(v, _LOCK_FACTORIES | {"Condition"}, mod):
                mod.locks.add(name)
            elif isinstance(v, ast.Call) and _call_name(v.func) == "count":
                mod.counters.add(name)
            elif isinstance(v, (ast.Dict, ast.List, ast.Set)) or (
                    isinstance(v, ast.Call) and _call_name(v.func) in
                    ("dict", "list", "set", "OrderedDict", "defaultdict",
                     "deque")):
                mod.mutables.add(name)
        elif isinstance(stmt, ast.FunctionDef):
            mod.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            cm = _ClassModel(name=stmt.name, file=path, node=stmt)
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    cm.methods[sub.name] = sub
            for meth in cm.methods.values():
                for sub in ast.walk(meth):
                    if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                        _scan_lockish_assign(sub, cm, mod)
            # dataclass fields: ``x: T = field(default_factory=threading.X)``
            for sub in stmt.body:
                if isinstance(sub, ast.AnnAssign) and \
                        isinstance(sub.target, ast.Name):
                    if _ann_mentions_event_factory(sub, mod):
                        cm.events.add(sub.target.id)
            mod.classes[stmt.name] = cm
    return mod


def _ann_mentions_event_factory(sub: ast.AnnAssign,
                                mod: _ModuleModel) -> bool:
    if sub.value is None or not isinstance(sub.value, ast.Call):
        return False
    if _call_name(sub.value.func) != "field":
        return False
    for kw in sub.value.keywords:
        if kw.arg == "default_factory" and isinstance(kw.value,
                                                     ast.Attribute):
            if kw.value.attr in _EVENT_FACTORIES | _LOCK_FACTORIES:
                return True
    return False


# ---------------------------------------------------------------------------
# the walker (passes B and C share it)
# ---------------------------------------------------------------------------

class _Analyzer:
    def __init__(self):
        self.modules: dict[str, _ModuleModel] = {}
        self.classes: dict[str, _ClassModel] = {}    # global, by name
        self.accesses: list[_Access] = []
        self.fn_facts: dict[tuple, _FnFacts] = {}
        self.direct: list[Diagnostic] = []           # walk-time findings
        self.report = RaceReport()
        self._dedup: set = set()

    # -- utilities --------------------------------------------------------

    def _emit(self, code: str, message: str, *, hint: str, file: str,
              node: ast.AST, subject: str = "") -> None:
        key = (code, file, getattr(node, "lineno", 0), subject, message)
        if key in self._dedup:
            return
        self._dedup.add(key)
        self.direct.append(Diagnostic(
            code, message, hint=hint, file=file,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), subject=subject))

    def _resolve_lock(self, expr: ast.AST, mod: _ModuleModel,
                      cls: Optional[_ClassModel],
                      local_locks: dict) -> Optional[LockId]:
        attr = _self_attr(expr)
        if attr is not None and cls is not None:
            canon = cls.lock_canon.get(attr)
            if canon is not None:
                return ("class", cls.name, canon)
            return None
        if isinstance(expr, ast.Name):
            if expr.id in mod.locks:
                return ("module", mod.name, expr.id)
            if expr.id in local_locks:
                return ("local", local_locks[expr.id], expr.id)
        if isinstance(expr, ast.Attribute):
            # ``obj.some_lock`` on a known attribute type
            base = _self_attr(expr.value)
            if base is not None and cls is not None:
                tname = cls.attr_types.get(base)
                target = self.classes.get(tname) if tname else None
                if target is not None:
                    canon = target.lock_canon.get(expr.attr)
                    if canon is not None:
                        return ("class", target.name, canon)
        return None

    # -- function walk ----------------------------------------------------

    def walk_function(self, fn: ast.FunctionDef, mod: _ModuleModel,
                      cls: Optional[_ClassModel], key: tuple) -> None:
        facts = _FnFacts(key=key, file=mod.path)
        self.fn_facts[key] = facts
        params = {a.arg for a in (fn.args.posonlyargs + fn.args.args +
                                  fn.args.kwonlyargs)} - {"self", "cls"}
        published = cls is not None and any(
            isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
            and n.func.attr == "set"
            and _self_attr(n.func.value) in cls.events
            for n in ast.walk(fn))
        ctx = {"mod": mod, "cls": cls, "fn": fn, "facts": facts,
               "params": params, "published": published,
               "local_locks": {}, "registry": set(), "held": []}
        self._walk_body(fn.body, ctx)
        if cls is not None and not cls.is_wire or cls is None:
            self._wire_taint_pass(fn, mod, cls)

    def _walk_body(self, body, ctx) -> None:
        for stmt in body:
            self._walk_stmt(stmt, ctx)

    def _walk_stmt(self, stmt: ast.stmt, ctx) -> None:
        mod, cls, facts = ctx["mod"], ctx["cls"], ctx["facts"]
        held = ctx["held"]
        if isinstance(stmt, ast.With):
            acquired = []
            for item in stmt.items:
                lock = self._resolve_lock(item.context_expr, mod, cls,
                                          ctx["local_locks"])
                self._scan_expr(item.context_expr, ctx)
                if lock is not None:
                    for h in held:
                        if h != lock:
                            facts.edges.append((h, lock, stmt))
                    facts.acquires.add(lock)
                    held.append(lock)
                    acquired.append(lock)
            self._walk_body(stmt.body, ctx)
            for lock in acquired:
                held.remove(lock)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: runs later, with no lock held.
            sub_key = ctx["facts"].key + ("<nested>", stmt.name)
            saved = dict(ctx)
            self.walk_function(stmt, mod, None, sub_key)
            ctx.update(saved)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            # Track function-local locks: ``l = threading.Lock()``.
            if _is_threading_call(stmt.value, _LOCK_FACTORIES, mod):
                ctx["local_locks"][stmt.targets[0].id] = \
                    ":".join(str(k) for k in facts.key)
            # Track callables fetched from a module-level registry:
            # ``factory = _factories[key]`` — calling one under a lock runs
            # arbitrary user code inside the critical section (RPD803).
            val = stmt.value
            if isinstance(val, ast.Subscript) and \
                    isinstance(val.value, ast.Name) and \
                    val.value.id in mod.mutables:
                ctx.setdefault("registry", set()).add(stmt.targets[0].id)
            elif isinstance(val, ast.Call) and \
                    isinstance(val.func, ast.Attribute) and \
                    val.func.attr == "get" and \
                    isinstance(val.func.value, ast.Name) and \
                    val.func.value.id in mod.mutables:
                ctx.setdefault("registry", set()).add(stmt.targets[0].id)
        if isinstance(stmt, (ast.If, ast.While)):
            self._check_then_act(stmt, ctx)
            self._scan_expr(stmt.test, ctx)
            self._walk_body(stmt.body, ctx)
            self._walk_body(stmt.orelse, ctx)
            return
        if isinstance(stmt, ast.For):
            self._scan_expr(stmt.iter, ctx)
            self._walk_body(stmt.body, ctx)
            self._walk_body(stmt.orelse, ctx)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, ctx)
            for h in stmt.handlers:
                self._walk_body(h.body, ctx)
            self._walk_body(stmt.orelse, ctx)
            self._walk_body(stmt.finalbody, ctx)
            return
        # Leaf statements: scan every contained expression once.
        self._scan_stmt_leaf(stmt, ctx)

    # -- leaf-statement scanning ------------------------------------------

    def _scan_stmt_leaf(self, stmt: ast.stmt, ctx) -> None:
        if isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                self._record_store(tgt, "write", stmt, ctx)
            self._scan_expr(stmt.value, ctx)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_store(stmt.target, "write", stmt, ctx)
                self._scan_expr(stmt.value, ctx)
        elif isinstance(stmt, ast.AugAssign):
            self._record_store(stmt.target, "rmw", stmt, ctx)
            self._scan_expr(stmt.value, ctx)
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                self._record_store(tgt, "write", stmt, ctx)
        elif isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value, ctx)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_expr(stmt.value, ctx)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                self._scan_expr(sub, ctx)

    def _record_store(self, tgt: ast.AST, kind: str, stmt: ast.stmt,
                      ctx) -> None:
        mod, cls = ctx["mod"], ctx["cls"]
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for el in tgt.elts:
                self._record_store(el, kind, stmt, ctx)
            return
        # self.X = … / self.X[i] = … / self.X += …
        base = tgt
        via_subscript = False
        if isinstance(tgt, ast.Subscript):
            base, via_subscript = tgt.value, True
            self._scan_expr(tgt.slice, ctx)
        attr = _self_attr(base)
        if attr is not None and cls is not None:
            self._note_access(attr, "mut" if via_subscript else kind,
                              stmt, ctx)
            if kind == "rmw":
                self._maybe_rpd801_attr(attr, stmt, ctx)
            return
        if isinstance(base, ast.Name):
            name = base.id
            if name in mod.mutables or name in mod.counters:
                self._module_mutation(name, kind if not via_subscript
                                      else "mut", stmt, ctx)

    def _note_access(self, attr: str, kind: str, node: ast.AST,
                     ctx) -> None:
        cls, fn = ctx["cls"], ctx["fn"]
        if cls is None or attr in cls.lock_canon or attr in cls.events:
            return
        self.accesses.append(_Access(
            file=ctx["mod"].path, cls=cls.name, attr=attr,
            method=fn.name, kind=kind, locks=frozenset(ctx["held"]),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            published=ctx["published"]))

    def _maybe_rpd801_attr(self, attr: str, stmt: ast.stmt, ctx) -> None:
        cls, fn = ctx["cls"], ctx["fn"]
        if cls is None or not cls.shared or fn.name in _INIT_METHODS:
            return
        if ctx["held"]:
            return
        self._emit(
            "RPD801",
            f"compound update of shared attribute '{attr}' relies on GIL "
            f"atomicity: '{cls.name}.{attr}' is read-modify-written "
            "outside any lock",
            hint="guard the update with the owning lock (a += on shared "
                 "state is a lost-update race off the GIL)",
            file=ctx["mod"].path, node=stmt,
            subject=f"{cls.name}.{attr}")

    def _module_mutation(self, name: str, kind: str, stmt: ast.stmt,
                         ctx) -> None:
        mod = ctx["mod"]
        if not mod.uses_threading:
            return
        if any(h[0] == "module" and h[1] == mod.name for h in ctx["held"]):
            return
        if ctx["held"]:
            return  # guarded by some lock; identity-imprecise but guarded
        if name in mod.counters or kind == "rmw":
            self._emit(
                "RPD801",
                f"module-level shared state '{name}' is advanced outside "
                "any lock; only the GIL makes this atomic",
                hint="allocate from a lock-guarded allocator (see "
                     "repro.ucp.wire._MsgIdAllocator)",
                file=mod.path, node=stmt, subject=f"{mod.name}.{name}")
        else:
            self._emit(
                "RPD800",
                f"module-level mutable '{name}' is mutated outside the "
                "module's locks",
                hint="take the module lock around the mutation",
                file=mod.path, node=stmt, subject=f"{mod.name}.{name}")

    def _check_then_act(self, stmt, ctx) -> None:
        """``if <reads X>: …mutate X…`` outside any lock (RPD801)."""
        mod, cls = ctx["mod"], ctx["cls"]
        if ctx["held"]:
            return
        read_attrs = _self_attrs_in(stmt.test) if cls is not None else set()
        read_globals = {n for n in _names_in(stmt.test)
                        if n in mod.mutables or n in mod.counters}
        if not read_attrs and not read_globals:
            return
        mutated_attrs, mutated_globals = self._mutations_in(stmt.body, ctx)
        hit_attrs = read_attrs & mutated_attrs
        hit_globals = read_globals & mutated_globals \
            if mod.uses_threading else set()
        if cls is not None and (not cls.shared or
                                ctx["fn"].name in _INIT_METHODS):
            hit_attrs = set()
        for attr in sorted(hit_attrs):
            if self._is_lazy_init(stmt, attr):
                self.report.assumptions.append(
                    f"{cls.name}.{attr}: lazy idempotent publish "
                    f"({os.path.basename(mod.path)}:{stmt.lineno})")
                continue
            self._emit(
                "RPD801",
                f"check-then-act on shared attribute "
                f"'{cls.name}.{attr}' outside any lock: the state can "
                "change between the test and the update",
                hint="hold the owning lock across the test and the update",
                file=mod.path, node=stmt, subject=f"{cls.name}.{attr}")
        for name in sorted(hit_globals):
            self._emit(
                "RPD801",
                f"check-then-act on module-level shared state '{name}' "
                "outside any lock",
                hint="hold the module lock across the test and the update",
                file=mod.path, node=stmt, subject=f"{mod.name}.{name}")

    def _mutations_in(self, body, ctx):
        attrs, globals_ = set(), set()
        for stmt in body:
            for node in ast.walk(stmt):
                tgt = None
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    tgts = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for tgt in tgts:
                        base = tgt.value if isinstance(tgt, ast.Subscript) \
                            else tgt
                        a = _self_attr(base)
                        if a is not None:
                            attrs.add(a)
                        elif isinstance(base, ast.Name):
                            globals_.add(base.id)
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _MUTATING_METHODS:
                    a = _self_attr(node.func.value)
                    if a is not None:
                        attrs.add(a)
                    elif isinstance(node.func.value, ast.Name):
                        globals_.add(node.func.value.id)
        return attrs, globals_

    @staticmethod
    def _is_lazy_init(stmt, attr: str) -> bool:
        """``if self._x is None: self._x = <expr>`` — idempotent publish."""
        test = stmt.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1 and
                isinstance(test.ops[0], ast.Is) and
                isinstance(test.comparators[0], ast.Constant) and
                test.comparators[0].value is None and
                _self_attr(test.left) == attr):
            return False
        writes = [n for s in stmt.body for n in ast.walk(s)
                  if isinstance(n, (ast.Assign, ast.AugAssign))
                  and any(_self_attr(t) == attr for t in
                          (n.targets if isinstance(n, ast.Assign)
                           else [n.target]))]
        return len(writes) == 1 and isinstance(writes[0], ast.Assign)

    # -- expression scanning ----------------------------------------------

    def _scan_expr(self, expr: ast.AST, ctx) -> None:
        if expr is None:
            return
        mod, cls, facts = ctx["mod"], ctx["cls"], ctx["facts"]
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                # A lambda body runs later, with nothing held.
                sub = dict(ctx)
                sub["held"] = []
                for inner in ast.walk(node.body):
                    if isinstance(inner, ast.Call):
                        self._scan_call(inner, sub)
                continue
            if isinstance(node, ast.Call):
                self._scan_call(node, ctx)
            a = _self_attr(node)
            if a is not None and isinstance(node.ctx, ast.Load):
                self._note_access(a, "read", node, ctx)

    def _scan_call(self, call: ast.Call, ctx) -> None:
        mod, cls, facts = ctx["mod"], ctx["cls"], ctx["facts"]
        held = list(ctx["held"])
        fname = _call_name(call.func)
        # next(counter) on a module-level itertools.count
        if isinstance(call.func, ast.Name) and call.func.id == "next" and \
                call.args and isinstance(call.args[0], ast.Name) and \
                call.args[0].id in mod.counters:
            self._module_mutation(call.args[0].id, "rmw", call, ctx)
        # mutating container method on self.X or module global
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in _MUTATING_METHODS:
            a = _self_attr(call.func.value)
            if a is not None:
                tname = cls.attr_types.get(a) if cls is not None else None
                target = self.classes.get(tname) if tname else None
                if target is not None and target.shared:
                    # Delegation to an internally-synchronized component
                    # (e.g. MemoryTracker.pool is a lock-owning BufferPool):
                    # the callee guards its own state, so the caller needs
                    # no lock of its own.
                    note = (f"{cls.name}.{a}: mutating calls delegate to "
                            f"internally-synchronized {tname}")
                    if note not in self.report.assumptions:
                        self.report.assumptions.append(note)
                else:
                    self._note_access(a, "mut", call, ctx)
            elif isinstance(call.func.value, ast.Name) and \
                    call.func.value.id in mod.mutables:
                self._module_mutation(call.func.value.id, "mut", call, ctx)
        # blocking primitives
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in ("wait", "wait_for", "sleep"):
            base_lock = self._resolve_lock(call.func.value, mod, cls,
                                           ctx["local_locks"])
            is_time_sleep = call.func.attr == "sleep"
            exempt = (not is_time_sleep and base_lock is not None
                      and base_lock in held)
            desc = f"'{ast.unparse(call.func)}'" if hasattr(ast, "unparse") \
                else f"'.{call.func.attr}'"
            facts.blocking.append((call, f"blocking call {desc}", exempt))
            if held and not exempt:
                self._emit(
                    "RPD803",
                    f"blocking call {desc} while holding "
                    f"{_lock_label(held[-1])}: other threads needing the "
                    "lock stall (or deadlock) until the wait returns",
                    hint="move the wait outside the critical section, or "
                         "wait on the owning condition itself",
                    file=mod.path, node=call,
                    subject=_lock_label(held[-1]))
        # user-supplied callback invoked under a lock: a parameter, or a
        # callable fetched out of a module-level registry (the typecache's
        # ``factory = _factories[key]`` shape).
        if isinstance(call.func, ast.Name) and \
                (call.func.id in ctx["params"] or
                 call.func.id in ctx.get("registry", ())) and held:
            self._emit(
                "RPD803",
                f"user-supplied callable '{call.func.id}' invoked while "
                f"holding {_lock_label(held[-1])}: arbitrary code may "
                "block or re-enter and self-deadlock",
                hint="run the callback outside the lock and publish the "
                     "result with a double-checked insert",
                file=mod.path, node=call, subject=_lock_label(held[-1]))
        # record resolvable calls for the lock-order/blocking fixpoint
        callee = self._resolve_callee(call, ctx)
        if callee is not None:
            facts.calls.append((callee, frozenset(held), call))

    def _resolve_callee(self, call: ast.Call, ctx) -> Optional[tuple]:
        mod, cls = ctx["mod"], ctx["cls"]
        f = call.func
        if isinstance(f, ast.Attribute):
            base_attr = _self_attr(f.value)
            if isinstance(f.value, ast.Name) and f.value.id == "self" and \
                    cls is not None and f.attr in cls.methods:
                return ("method", cls.name, f.attr)
            if base_attr is not None and cls is not None:
                tname = cls.attr_types.get(base_attr)
                target = self.classes.get(tname) if tname else None
                if target is not None and f.attr in target.methods:
                    return ("method", target.name, f.attr)
        elif isinstance(f, ast.Name) and f.id in mod.functions:
            return ("func", mod.name, f.id)
        return None

    # -- wire audit (RPD810/811) ------------------------------------------

    def _wire_taint_pass(self, fn: ast.FunctionDef, mod: _ModuleModel,
                         cls: Optional[_ClassModel]) -> None:
        src_names = {n for n in _names_in(fn)}
        wire_names = {name for name, c in self.classes.items() if c.is_wire}
        if not (src_names & wire_names) and not any(
                isinstance(n, ast.Attribute) and n.attr == "chunks" and
                isinstance(n.ctx, ast.Store)
                for n in ast.walk(fn)):
            return
        taint: dict[str, tuple] = {}
        for a in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
            if a.arg in ("self", "cls"):
                continue
            taint[a.arg] = (f"parameter '{a.arg}'", 0, 0)

        def expr_taint(expr) -> Optional[tuple]:
            """Provenance if ``expr`` may alias tainted memory."""
            if isinstance(expr, ast.Call):
                name = _call_name(expr.func)
                if name in _COPY_BARRIERS:
                    for kw in expr.keywords:
                        if kw.arg == "copy" and \
                                isinstance(kw.value, ast.Constant) and \
                                kw.value.value is False:
                            break
                    else:
                        return None
                if name in ("list", "tuple") and expr.args and \
                        isinstance(expr.args[0], ast.Name):
                    return taint.get(expr.args[0].id)
                if isinstance(expr.func, ast.Attribute):
                    base = expr.func.value
                    if isinstance(base, ast.Name) and base.id in taint:
                        return taint[base.id]
                return None
            if isinstance(expr, ast.Name):
                return taint.get(expr.id)
            if isinstance(expr, ast.Attribute):
                inner = expr.value
                while isinstance(inner, ast.Attribute):
                    inner = inner.value
                if isinstance(inner, ast.Name):
                    return taint.get(inner.id)
                return None
            if isinstance(expr, (ast.Subscript, ast.Starred)):
                return expr_taint(expr.value)
            if isinstance(expr, (ast.List, ast.Tuple)):
                for el in expr.elts:
                    t = expr_taint(el)
                    if t is not None:
                        return t
                return None
            if isinstance(expr, ast.IfExp):
                return expr_taint(expr.body) or expr_taint(expr.orelse)
            return None

        # Source order, not ast.walk (BFS) order: taint must flow through
        # assignments before the wire-construction sites that consume them.
        nodes = sorted(
            (n for n in ast.walk(fn)
             if isinstance(n, (ast.Assign, ast.Call))),
            key=lambda n: (n.lineno, n.col_offset))
        for node in nodes:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                t = expr_taint(node.value)
                if isinstance(tgt, ast.Name):
                    if t is not None:
                        desc = t[0]
                        taint[tgt.id] = (desc, node.lineno, node.col_offset)
                    else:
                        taint.pop(tgt.id, None)
                elif isinstance(tgt, ast.Attribute) and \
                        tgt.attr == "chunks" and t is not None:
                    self._emit_rpd810(t, node, mod)
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name not in wire_names:
                    continue
                payload_args = list(node.args[1:2]) + [
                    kw.value for kw in node.keywords
                    if kw.arg in ("chunks", "payload", "buffers")]
                for arg in payload_args:
                    t = expr_taint(arg)
                    if t is not None:
                        self._emit_rpd810(t, node, mod)

    def _emit_rpd810(self, provenance: tuple, node: ast.AST,
                     mod: _ModuleModel) -> None:
        desc, line, col = provenance
        line = line or getattr(node, "lineno", 0)
        col = col if line else getattr(node, "col_offset", 0)
        key = ("RPD810", mod.path, line, desc)
        if key in self._dedup:
            return
        self._dedup.add(key)
        self.direct.append(Diagnostic(
            "RPD810",
            f"wire payload aliases {desc} by reference: in-process ranks "
            "share this memory, a process-boundary transport must copy or "
            "map it",
            hint="stage through copy_chunks()/a pool buffer, or document "
                 "the mapping contract for the shared-memory backend",
            file=mod.path, line=line, col=col, subject=desc))

    def _wire_field_audit(self, mod: _ModuleModel) -> None:
        for cls in mod.classes.values():
            if not cls.is_wire:
                continue
            body = list(cls.node.body)
            init = cls.methods.get("__init__")
            if init is not None:
                body += list(ast.walk(init))
            for sub in body:
                self._wire_field_stmt(sub, cls, mod)

    def _wire_field_stmt(self, sub, cls: _ClassModel,
                         mod: _ModuleModel) -> None:
        attr, kind, node = None, None, None
        if isinstance(sub, ast.AnnAssign):
            tgt = sub.target
            attr = tgt.id if isinstance(tgt, ast.Name) else _self_attr(tgt)
            ann = ast.unparse(sub.annotation) if hasattr(ast, "unparse") \
                else ast.dump(sub.annotation)
            for bad in _NONSERIALIZABLE_ANNOTATIONS:
                if re.search(rf"\b{bad}\b", ann):
                    kind, node = f"annotated '{ann}'", sub
                    break
            if kind is None and sub.value is not None and \
                    _ann_mentions_event_factory(sub, mod):
                kind, node = "a threading primitive (default_factory)", sub
        elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            attr = _self_attr(sub.targets[0])
            if attr is None:
                return
            if _is_threading_call(sub.value,
                                  _EVENT_FACTORIES | _LOCK_FACTORIES |
                                  {"Condition"}, mod):
                kind, node = "a threading primitive", sub
            elif isinstance(sub.value, ast.Lambda):
                kind, node = "a callable", sub
        if attr and kind and node is not None:
            self._emit(
                "RPD811",
                f"non-serializable field on the wire envelope: "
                f"'{cls.name}.{attr}' is {kind} and cannot cross a "
                "process boundary",
                hint="keep control-plane state (events, exceptions, "
                     "callables) off the envelope, or define its "
                     "serialized replacement for process transports",
                file=mod.path, node=node, subject=f"{cls.name}.{attr}")
            self.report.wire_fields.append(f"{cls.name}.{attr}: {kind}")

    # -- aggregation and fixpoint -----------------------------------------

    def summarize(self) -> dict:
        """Fixpoint over (acquires, blocks) per function summary key."""
        summaries = {k: {"acquires": set(f.acquires),
                         "blocks": bool(f.blocking)}
                     for k, f in self.fn_facts.items()}
        changed = True
        while changed:
            changed = False
            for k, facts in self.fn_facts.items():
                s = summaries[k]
                for callee, _held, _node in facts.calls:
                    cs = summaries.get(callee)
                    if cs is None:
                        continue
                    before = (len(s["acquires"]), s["blocks"])
                    s["acquires"] |= cs["acquires"]
                    s["blocks"] = s["blocks"] or cs["blocks"]
                    if (len(s["acquires"]), s["blocks"]) != before:
                        changed = True
        return summaries

    def emit_aggregate(self) -> None:
        summaries = self.summarize()
        # call-propagated lock-order edges + blocking-under-lock
        edge_sites: dict[tuple, tuple] = {}
        for facts in self.fn_facts.values():
            for a, b, node in facts.edges:
                edge_sites.setdefault(
                    (a, b), (facts.file, node.lineno, node.col_offset))
            for callee, held, node in facts.calls:
                cs = summaries.get(callee)
                if cs is None or not held:
                    continue
                for a in held:
                    for b in cs["acquires"]:
                        if a != b:
                            edge_sites.setdefault(
                                (a, b),
                                (facts.file, node.lineno, node.col_offset))
                if cs["blocks"]:
                    own = self.fn_facts.get(callee)
                    all_exempt = own is not None and own.blocking and \
                        all(e for (_n, _d, e) in own.blocking)
                    if not all_exempt:
                        held_l = sorted(_lock_label(h) for h in held)
                        self._emit(
                            "RPD803",
                            f"call to '{callee[2]}' (which can block on a "
                            f"wait/sleep) while holding {held_l[0]}",
                            hint="complete the blocking operation outside "
                                 "the critical section",
                            file=facts.file, node=node, subject=held_l[0])
        for (a, b), (f, ln, col) in sorted(edge_sites.items(),
                                           key=lambda kv: kv[1]):
            self.report.lock_order_edges.append(
                f"{_lock_label(a)} -> {_lock_label(b)} "
                f"({os.path.basename(f)}:{ln})")
        self._emit_inversions(edge_sites)
        self._emit_rpd800()

    def _emit_inversions(self, edge_sites: dict) -> None:
        seen_pairs = set()
        for (a, b), site in sorted(edge_sites.items(),
                                   key=lambda kv: kv[1]):
            if (b, a) not in edge_sites:
                continue
            pair = tuple(sorted((a, b)))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            f, ln, col = site
            rf, rln, _rcol = edge_sites[(b, a)]
            self.direct.append(Diagnostic(
                "RPD802",
                f"lock-order inversion: {_lock_label(a)} -> "
                f"{_lock_label(b)} here, but {_lock_label(b)} -> "
                f"{_lock_label(a)} at {os.path.basename(rf)}:{rln}; two "
                "threads taking the locks in opposite orders deadlock",
                hint="impose a global acquisition order (or collapse the "
                     "critical sections into one lock)",
                file=f, line=ln, col=col,
                subject=f"{_lock_label(a)} vs {_lock_label(b)}"))

    def _emit_rpd800(self) -> None:
        table: dict[tuple, list] = {}
        for a in self.accesses:
            table.setdefault((a.cls, a.attr), []).append(a)
        for (cls_name, attr), accs in sorted(table.items()):
            cls = self.classes.get(cls_name)
            if cls is None or not cls.shared:
                continue
            methods = {a.method for a in accs} - _INIT_METHODS
            ever_locked = any(a.locks for a in accs)
            unlocked = [
                a for a in accs
                if a.kind in ("write", "mut") and not a.locks
                and a.method not in _INIT_METHODS and not a.published]
            if not unlocked or (len(methods) < 2 and not ever_locked):
                continue
            for a in unlocked:
                guard = "guarded elsewhere by a lock" if ever_locked \
                    else f"shared across {len(methods)} methods"
                self._emit(
                    "RPD800",
                    f"unsynchronized write to shared attribute "
                    f"'{cls_name}.{attr}' ({guard}): concurrent access "
                    "is only safe by accident of the GIL",
                    hint="hold the owning lock for every write, or move "
                         "the attribute into single-owner state",
                    file=a.file,
                    node=type("N", (), {"lineno": a.line,
                                        "col_offset": a.col})(),
                    subject=f"{cls_name}.{attr}")
        # publish the ownership ledger
        for name, cls in sorted(self.classes.items()):
            if cls.shared:
                self.report.classes_audited.append(name)
            elif cls.methods:
                self.report.single_owner.append(name)
        for a in self.accesses:
            if a.published and a.kind in ("write", "mut") and not a.locks \
                    and a.method not in _INIT_METHODS:
                note = (f"{a.cls}.{a.attr}: published via Event.set() "
                        f"({os.path.basename(a.file)}:{a.line})")
                if note not in self.report.assumptions:
                    self.report.assumptions.append(note)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def _expand(paths) -> list[str]:
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d != "__pycache__" and not d.startswith(".")
                    and d != "races_corpus")
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        out.append(os.path.join(dirpath, fn))
        elif os.path.isfile(path):
            out.append(path)
        else:
            raise FileNotFoundError(path)
    dedup: list[str] = []
    for p in out:
        if p not in dedup:
            dedup.append(p)
    return dedup


def analyze_paths(paths) -> tuple[list[Diagnostic], int, RaceReport]:
    """Jointly analyze every ``.py`` file under ``paths``.

    Returns ``(findings, nfiles, report)``.  ``# noqa: RPD8xx`` directives
    on the flagged line suppress, with RPD590 notices for directives that
    suppressed nothing — same contract as the linter and flow verifier.
    """
    files = _expand(paths)
    an = _Analyzer()
    sources: dict[str, str] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            an.direct.append(Diagnostic(
                "RPD300", f"parse failed: {type(exc).__name__}: {exc}",
                file=path))
            continue
        sources[path] = source
        mod = _build_module(path, tree)
        an.modules[mod.name] = mod
        an.classes.update(mod.classes)
    for mod in an.modules.values():
        an._wire_field_audit(mod)
        for name, fn in mod.functions.items():
            an.walk_function(fn, mod, None, ("func", mod.name, name))
        for cls in mod.classes.values():
            for mname, meth in cls.methods.items():
                an.walk_function(meth, mod, cls,
                                 ("method", cls.name, mname))
            # class-body field defaults (e.g. default_factory lambdas)
            for stmt in cls.node.body:
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    key = ("classbody", cls.name, stmt.lineno)
                    facts = _FnFacts(key=key, file=mod.path)
                    an.fn_facts[key] = facts
                    ctx = {"mod": mod, "cls": None, "fn": None,
                           "facts": facts, "params": set(),
                           "published": False, "local_locks": {},
                           "held": []}
                    if stmt.value is not None:
                        an._scan_expr(stmt.value, ctx)
    an.emit_aggregate()
    findings: list[Diagnostic] = []
    for path in sorted(sources):
        per_file = [d for d in an.direct if d.file == path]
        kept, notices = apply_suppressions(per_file, path,
                                           source=sources[path])
        findings.extend(kept)
        findings.extend(notices)
    findings.extend(d for d in an.direct if d.file not in sources)
    an.report.files = len(files)
    return findings, len(files), an.report


def shipped_audit_paths() -> list[str]:
    """The default audit set: the fabric, the MPI layer, the type caches,
    and the job service (whose scheduler slots hammer all of the above
    concurrently)."""
    pkg = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [os.path.join(pkg, "ucp"),
            os.path.join(pkg, "mpi"),
            os.path.join(pkg, "core", "typecache.py"),
            os.path.join(pkg, "serve")]


def corpus_dir() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "races_corpus")


def corpus_expectations(path: str) -> list[str]:
    """The ``# expects: RPD8xx`` designations of one corpus fixture."""
    codes: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            m = _EXPECT_RE.search(line)
            if m:
                codes.extend(c.strip() for c in m.group(1).split(",")
                             if c.strip())
    return codes


def run_corpus():
    """Run the seeded bug corpus; every fixture must fire its designation.

    Returns ``(findings, missed, nfiles)`` — mirroring
    ``protomodel.run_mutant_corpus``: findings are EXPECTED, a non-empty
    ``missed`` means a seeded race escaped its designated code.
    """
    cdir = corpus_dir()
    fixtures = sorted(
        os.path.join(cdir, fn) for fn in os.listdir(cdir)
        if fn.endswith(".py") and fn != "__init__.py")
    findings: list[Diagnostic] = []
    missed: list[str] = []
    for path in fixtures:
        expected = corpus_expectations(path)
        per_file, _n, _rep = analyze_paths([path])
        findings.extend(per_file)
        fired = {d.code for d in per_file}
        for code in expected:
            if code not in fired:
                missed.append(f"{os.path.basename(path)}: {code}")
    return findings, missed, len(fixtures)
