"""Rank-symbolic SPMD communication-flow verifier (the ``RPD5xx`` checks).

Abstractly interprets a ``main(comm)`` program once per rank — for every
job size in a small concrete set (default 2/3/4, or the size the file pins
via ``NPROCS``/``NRANKS``/``PROCS`` or ``run(main, nprocs=K)``), plus two
larger *witness* sizes standing in for a symbolic "N" when the program is
size-generic — and records every communication operation each rank would
issue.  The resulting per-rank traces are handed to
:mod:`repro.analyze.commgraph`, which replays them under MPI matching
rules and reports static deadlocks (``RPD500``), unmatched traffic
(``RPD501``/``RPD502``), type-signature mismatches and truncation
(``RPD510``/``RPD511``) and collective divergence (``RPD520``).

The abstract domain is *concrete-where-possible*: values the program
computes from literals, ``comm.rank``/``comm.size`` and pure library calls
(numpy, ``repro.core`` datatype constructors, Cartesian topology math) are
evaluated natively, so tags, peers, counts and real ``Datatype`` objects
flow through unchanged and their signatures can be checked with the exact
:func:`repro.core.signature.signature_compatible` rules the runtime
sanitizer applies.  Anything else collapses to a single ``UNKNOWN``
element.  When an ``UNKNOWN`` reaches a *communication-relevant* position
— a branch guarding MPI calls, a tag, a peer rank, a communicator passed
to opaque code — the analysis refuses to guess: the whole file is reported
as ``RPD530`` (analysis incomplete) and the caller falls back to the
per-file lint heuristics.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..core.custom import CustomDatatype
from ..core.datatype import BYTE, Datatype, from_numpy_dtype
from ..core.signature import signature_bytes
from .commgraph import ANY, CollOp, P2POp, TraceReplay, WaitOp
from .diagnostics import Diagnostic

#: Default job sizes every unpinned program is evaluated at.
DEFAULT_NPROCS = (2, 3, 4)

#: Witness instantiations of the symbolic size "N": one even, one odd size
#: beyond the explicit set.  A size-generic program that is correct at the
#: defaults *and* at the witnesses is correct for the rank patterns the
#: abstract domain can express (boundary ranks, parity, ring wrap).
SYMBOLIC_WITNESS_NPROCS = (6, 7)

#: Module attributes that pin the job size (shared with repro.sanitize).
NPROCS_ATTRS = ("NPROCS", "NRANKS", "PROCS")

#: Interpreted-statement budget per rank; beyond this the program is
#: outside the bounded-loop subset.
STEP_BUDGET = 300_000

_CALL_DEPTH_LIMIT = 64

#: Call names whose presence makes an unanalyzable region communication-
#: relevant (an unknown branch that skips one of these cannot be havocked
#: away — matching would silently go wrong).
_COMM_CALL_NAMES = frozenset({
    "send", "isend", "ssend", "issend", "bsend", "recv", "irecv", "sendrecv",
    "barrier", "bcast", "gather", "scatter", "gatherv", "scatterv",
    "allgather", "allreduce", "reduce", "alltoall", "wait", "waitall",
    "waitany", "waitsome", "neighbor_sendrecv", "dup", "split", "probe",
    "iprobe", "mprobe", "improbe", "send_init", "recv_init", "start",
})

#: Module roots the interpreter may really import; everything else is
#: opaque (attributes evaluate to UNKNOWN).
_IMPORTABLE_ROOTS = ("numpy", "math", "repro")


class _UnknownType:
    """The single abstract 'anything' value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<unknown>"

    def __bool__(self):  # never silently truthy: callers must use _truth()
        raise TypeError("truth value of UNKNOWN")


UNKNOWN = _UnknownType()

_MISSING = object()


class Incomplete(Exception):
    """A value escaped the abstract domain somewhere that matters."""

    def __init__(self, reason: str, line: int = 0, col: int = 0):
        super().__init__(reason)
        self.reason = reason
        self.line = line
        self.col = col


class _ReturnSig(Exception):
    def __init__(self, value):
        self.value = value


class _BreakSig(Exception):
    pass


class _ContinueSig(Exception):
    pass


class _AbortRank(Exception):
    """A reachable ``raise``: the rank terminates here."""


def _is_unknown(v) -> bool:
    return v is UNKNOWN


def _truth(v) -> Optional[bool]:
    """Concrete truth value, or None when undecidable."""
    if v is UNKNOWN:
        return None
    try:
        return bool(v)
    except Exception:
        return None


def _as_int(v) -> Optional[int]:
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, (int, np.integer)):
        return int(v)
    return None


def _contains_comm_call(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Call):
            f = n.func
            name = f.attr if isinstance(f, ast.Attribute) else (
                f.id if isinstance(f, ast.Name) else "")
            if name in _COMM_CALL_NAMES or name.startswith("MPI_"):
                return True
    return False


def _assigned_names(node: ast.AST):
    """Names (re)bound anywhere under ``node``."""
    for n in ast.walk(node):
        if isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store,
                                                          ast.Del)):
            yield n.id


# --------------------------------------------------------------------------
# Abstract values
# --------------------------------------------------------------------------

class ModuleVal:
    """A (possibly overridden) view of a real module."""

    def __init__(self, mod, overrides: Optional[dict] = None):
        self.mod = mod
        self.name = getattr(mod, "__name__", "?")
        self.overrides = overrides if overrides is not None \
            else _MODULE_OVERRIDES.get(self.name, {})

    def get(self, attr: str):
        if attr in self.overrides:
            return self.overrides[attr]
        try:
            v = getattr(self.mod, attr)
        except AttributeError:
            # Submodules are only attributes of a package once imported.
            if self.name.split(".")[0] in _IMPORTABLE_ROOTS:
                try:
                    import importlib
                    v = importlib.import_module(f"{self.name}.{attr}")
                except Exception:
                    return UNKNOWN
            else:
                return UNKNOWN
        import types
        if isinstance(v, types.ModuleType):
            return ModuleVal(v)
        return v


class OpaqueModule:
    """An un-importable / un-modelled module: every attribute is UNKNOWN."""

    def __init__(self, name: str):
        self.name = name

    def get(self, attr: str):
        return UNKNOWN


class ModelFn:
    """A model-provided callable that accepts abstract values."""

    def __init__(self, fn, name: str = "?"):
        self.fn = fn
        self.name = name

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)


class CustomDtypeMarker:
    """Stand-in for a custom datatype built over user callbacks.

    Flow never executes the callbacks, so the signature is unknown — the
    same leniency the sanitizer applies to custom types on the wire.
    """

    def __init__(self, name: str = "custom"):
        self.name = name

    def signature(self, count: int = 1):
        return None


@dataclass
class FuncVal:
    node: Any                      # ast.FunctionDef | ast.Lambda
    env: "Env"
    name: str = "<lambda>"
    defaults: tuple = ()
    kw_defaults: dict = field(default_factory=dict)
    is_classmethod: bool = False
    is_staticmethod: bool = False
    is_property: bool = False
    is_generator: bool = False


@dataclass
class BoundVal:
    fn: FuncVal
    recv: Any                      # ObjVal (methods) or ClassVal (classmethods)


class ClassVal:
    def __init__(self, name: str, members: dict):
        self.name = name
        self.members = members


class ObjVal:
    """An instance of a user class: a mutable attribute namespace."""

    def __init__(self, cls: Optional[ClassVal]):
        self.cls = cls
        self.attrs: dict = {}
        self.havocked = False


class RequestVal:
    """Handle for a recorded nonblocking operation."""

    def __init__(self, interp: "_Interp", op: P2POp):
        self._interp = interp
        self.op = op

    def wait(self, timeout=None):
        line, col = self._interp.cur_loc
        self._interp.trace.append(WaitOp((self.op.req,), line, col))
        return UNKNOWN

    def test(self):
        # Completion becomes untrackable; be lenient from here on.
        self.op.escaped = True
        return UNKNOWN


class CommVal:
    """The abstract communicator: mirrors the Communicator surface while
    recording every operation into the rank's trace.  Duck-type compatible
    with :class:`repro.mpi.topology.CartComm`'s expectations (``rank``,
    ``size``, ``irecv``/``isend``/``dup``), so the real topology code runs
    natively over it."""

    def __init__(self, interp: "_Interp", size: int, rank: int,
                 comm_id: int = 0, group: Optional[tuple] = None):
        self._interp = interp
        self._size = size
        self._rank = rank          # communicator-local rank
        self.comm_id = comm_id
        self._group = group        # world rank per local rank; None = world
        self._dup_count = 0
        self._split_count = 0

    # -- introspection (plain ints: everything downstream stays concrete) --

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._group) if self._group is not None else self._size

    @property
    def nprocs(self) -> int:
        return self.size

    @property
    def clock(self):
        return UNKNOWN

    @property
    def memory(self):
        return UNKNOWN

    def members(self) -> tuple:
        if self._group is not None:
            return tuple(self._group)
        return tuple(range(self._size))

    # -- communicator management ----------------------------------------

    def dup(self) -> "CommVal":
        child_id = (self.comm_id * 31 + self._dup_count + 1) % (1 << 16)
        self._dup_count += 1
        return CommVal(self._interp, self._size, self._rank,
                       comm_id=child_id, group=self._group)

    def split(self, color, key=0):
        line, col = self._interp.cur_loc
        raise Incomplete("comm.split() is outside the statically analyzable "
                         "subset (child groups depend on all ranks)",
                         line, col)

    # -- point to point ---------------------------------------------------

    def _world_peer(self, peer: int) -> int:
        if peer == ANY:
            return ANY
        if 0 <= peer < self.size:
            return self._group[peer] if self._group is not None else peer
        return -1000 - abs(int(peer))   # invalid rank: matches nothing

    def _p2p(self, kind: str, buf, peer, tag, datatype, count,
             blocking: bool, sync: bool = False):
        line, col = self._interp.cur_loc
        ipeer = _as_int(peer)
        if ipeer is None:
            raise Incomplete(f"{kind} {'destination' if kind == 'send' else 'source'} "
                             f"rank escaped the abstract domain", line, col)
        itag = _as_int(tag)
        if itag is None:
            raise Incomplete(f"{kind} tag escaped the abstract domain",
                             line, col)
        if kind == "recv" and isinstance(buf, ObjVal):
            buf.havocked = True     # contents arrive from the wire
        sig, nbytes = self._interp.static_sig(buf, count, datatype, line, col)
        req = self._interp.next_req() if not blocking else None
        op = P2POp(kind=kind, peer=self._world_peer(ipeer), tag=itag,
                   comm=(self.comm_id,), blocking=blocking, sync=sync,
                   signature=sig, nbytes=nbytes, req=req, line=line, col=col)
        self._interp.trace.append(op)
        if not blocking:
            return RequestVal(self._interp, op)
        return UNKNOWN if kind == "recv" else None

    def isend(self, buf, dest, tag=0, datatype=None, count=None):
        return self._p2p("send", buf, dest, tag, datatype, count, False)

    def send(self, buf, dest, tag=0, datatype=None, count=None):
        return self._p2p("send", buf, dest, tag, datatype, count, True)

    def issend(self, buf, dest, tag=0, datatype=None, count=None):
        return self._p2p("send", buf, dest, tag, datatype, count, False,
                         sync=True)

    def ssend(self, buf, dest, tag=0, datatype=None, count=None):
        return self._p2p("send", buf, dest, tag, datatype, count, True,
                         sync=True)

    def irecv(self, buf, source=ANY, tag=ANY, datatype=None, count=None):
        return self._p2p("recv", buf, source, tag, datatype, count, False)

    def recv(self, buf, source=ANY, tag=ANY, datatype=None, count=None):
        return self._p2p("recv", buf, source, tag, datatype, count, True)

    def sendrecv(self, sendbuf, dest, recvbuf, source, sendtag=0,
                 recvtag=ANY, senddatatype=None, sendcount=None,
                 recvdatatype=None, recvcount=None):
        rreq = self.irecv(recvbuf, source, recvtag, recvdatatype, recvcount)
        sreq = self.isend(sendbuf, dest, sendtag, senddatatype, sendcount)
        rreq.wait()
        sreq.wait()
        return UNKNOWN

    # -- probing / persistent: outside the static subset ------------------

    def _unsupported(self, what: str):
        line, col = self._interp.cur_loc
        raise Incomplete(f"{what} is outside the statically analyzable "
                         f"subset", line, col)

    def probe(self, *a, **k):
        self._unsupported("probe()")

    def iprobe(self, *a, **k):
        self._unsupported("iprobe()")

    def mprobe(self, *a, **k):
        self._unsupported("mprobe()")

    def improbe(self, *a, **k):
        self._unsupported("improbe()")

    def send_init(self, *a, **k):
        self._unsupported("persistent requests")

    def recv_init(self, *a, **k):
        self._unsupported("persistent requests")

    # -- collectives -------------------------------------------------------

    def _coll(self, name: str, detail: str = "", recvbuf=None):
        line, col = self._interp.cur_loc
        if isinstance(recvbuf, ObjVal):
            recvbuf.havocked = True
        self._interp.trace.append(CollOp(
            name=name, comm=(self.comm_id,), members=self.members(),
            detail=detail, line=line, col=col))
        return UNKNOWN

    def _root_detail(self, root) -> str:
        iroot = _as_int(root)
        if iroot is None:
            line, col = self._interp.cur_loc
            raise Incomplete("collective root escaped the abstract domain",
                             line, col)
        return f"root={iroot}"

    def barrier(self):
        self._coll("barrier")

    def bcast(self, buf, root=0, datatype=None, count=None):
        return self._coll("bcast", self._root_detail(root), recvbuf=buf)

    def gather(self, sendbuf, recvbuf, root=0, datatype=None, count=None):
        return self._coll("gather", self._root_detail(root), recvbuf=recvbuf)

    def scatter(self, sendbuf, recvbuf, root=0, datatype=None, count=None):
        return self._coll("scatter", self._root_detail(root),
                          recvbuf=recvbuf)

    def gatherv(self, sendbuf, recvbuf, recvcounts, root=0, datatype=None,
                count=None):
        return self._coll("gatherv", self._root_detail(root),
                          recvbuf=recvbuf)

    def scatterv(self, sendbuf, sendcounts, recvbuf, root=0, datatype=None,
                 count=None):
        return self._coll("scatterv", self._root_detail(root),
                          recvbuf=recvbuf)

    def allgather(self, sendbuf, recvbuf, datatype=None, count=None):
        return self._coll("allgather", recvbuf=recvbuf)

    def reduce(self, sendbuf, recvbuf, op="sum", root=0):
        opname = op if isinstance(op, str) else "?"
        return self._coll("reduce", f"op={opname},{self._root_detail(root)}",
                          recvbuf=recvbuf)

    def allreduce(self, sendbuf, recvbuf, op="sum"):
        opname = op if isinstance(op, str) else "?"
        return self._coll("allreduce", f"op={opname}", recvbuf=recvbuf)

    def alltoall(self, sendbuf, recvbuf, datatype=None, count=None):
        return self._coll("alltoall", recvbuf=recvbuf)


# --------------------------------------------------------------------------
# Module models
# --------------------------------------------------------------------------

def _model_default_rng(*args, **kwargs):
    # Seeded generators are deterministic and therefore concrete; an
    # unseeded one would differ per execution, so it stays abstract.
    ints = [_as_int(a) for a in args]
    if not args or any(i is None for i in ints) or kwargs:
        return UNKNOWN
    return np.random.default_rng(*ints)


def _model_custom_type(*args, **kwargs):
    return CustomDtypeMarker(str(kwargs.get("name", "custom")))


def _capi_ok(v=None):
    from ..errors import MPI_SUCCESS
    return MPI_SUCCESS if v is None else (MPI_SUCCESS, v)


def _capi_send(comm, buf, count, datatype, dest, tag):
    comm._p2p("send", buf, dest, tag, datatype, count, True)
    return _capi_ok()


def _capi_recv(comm, buf, count, datatype, source, tag):
    comm._p2p("recv", buf, source, tag, datatype, count, True)
    return _capi_ok(UNKNOWN)


def _capi_isend(comm, buf, count, datatype, dest, tag):
    return _capi_ok(comm._p2p("send", buf, dest, tag, datatype, count, False))


def _capi_irecv(comm, buf, count, datatype, source, tag):
    return _capi_ok(comm._p2p("recv", buf, source, tag, datatype, count,
                              False))


def _capi_wait(request):
    if isinstance(request, RequestVal):
        request.wait()
    return _capi_ok(UNKNOWN)


def _capi_test(request):
    if isinstance(request, RequestVal):
        request.test()
    return _capi_ok(UNKNOWN)


def _capi_barrier(comm):
    comm.barrier()
    return _capi_ok()


#: Per-module attribute overrides applied by :class:`ModuleVal`.
_MODULE_OVERRIDES: dict = {
    "numpy.random": {"default_rng": ModelFn(_model_default_rng,
                                            "default_rng")},
    "repro.core": {"type_create_custom": ModelFn(_model_custom_type,
                                                 "type_create_custom")},
    "repro.core.custom": {"type_create_custom": ModelFn(
        _model_custom_type, "type_create_custom")},
    "repro.mpi": {"run": ModelFn(lambda *a, **k: UNKNOWN, "run")},
    "repro.mpi.runtime": {"run": ModelFn(lambda *a, **k: UNKNOWN, "run")},
    "repro.capi": {
        "MPI_Type_create_custom": ModelFn(
            lambda *a, **k: _capi_ok(CustomDtypeMarker()),
            "MPI_Type_create_custom"),
        "MPI_Send": ModelFn(_capi_send, "MPI_Send"),
        "MPI_Recv": ModelFn(_capi_recv, "MPI_Recv"),
        "MPI_Isend": ModelFn(_capi_isend, "MPI_Isend"),
        "MPI_Irecv": ModelFn(_capi_irecv, "MPI_Irecv"),
        "MPI_Wait": ModelFn(_capi_wait, "MPI_Wait"),
        "MPI_Test": ModelFn(_capi_test, "MPI_Test"),
        "MPI_Probe": ModelFn(lambda *a, **k: (_ for _ in ()).throw(
            Incomplete("MPI_Probe is outside the static subset")),
            "MPI_Probe"),
        "MPI_Barrier": ModelFn(_capi_barrier, "MPI_Barrier"),
        "MPI_Comm_rank": ModelFn(lambda comm: _capi_ok(comm.rank),
                                 "MPI_Comm_rank"),
        "MPI_Comm_size": ModelFn(lambda comm: _capi_ok(comm.size),
                                 "MPI_Comm_size"),
    },
}


def _comm_whitelisted(callee) -> bool:
    """Real callables trusted to drive a CommVal through its public
    surface (they only touch rank/size/irecv/isend/dup)."""
    from ..mpi import topology
    if callee is topology.cart_create or callee is topology.CartComm:
        return True
    self_obj = getattr(callee, "__self__", None)
    return isinstance(self_obj, (topology.CartComm, CommVal, RequestVal))


def _container_method(callee) -> bool:
    """Bound methods of plain containers store/retrieve without looking at
    the values, so abstract arguments are fine."""
    return isinstance(getattr(callee, "__self__", None),
                      (list, dict, set, bytearray))


def _scan_abstract(values):
    """(has_comm, has_request, has_other_abstract) over nested args."""
    has_comm = has_req = has_other = False
    todo = list(values)
    seen = 0
    while todo and seen < 10_000:
        v = todo.pop()
        seen += 1
        if isinstance(v, CommVal):
            has_comm = True
        elif isinstance(v, RequestVal):
            has_req = True
        elif v is UNKNOWN or isinstance(
                v, (FuncVal, BoundVal, ClassVal, ObjVal, ModuleVal,
                    OpaqueModule, CustomDtypeMarker, ModelFn)):
            has_other = True
        elif isinstance(v, (list, tuple, set)):
            todo.extend(v)
        elif isinstance(v, dict):
            todo.extend(v.values())
    return has_comm, has_req, has_other


def _mark_escaped(values):
    todo = list(values)
    seen = 0
    while todo and seen < 10_000:
        v = todo.pop()
        seen += 1
        if isinstance(v, RequestVal):
            v.op.escaped = True
        elif isinstance(v, (list, tuple, set)):
            todo.extend(v)
        elif isinstance(v, dict):
            todo.extend(v.values())


# --------------------------------------------------------------------------
# Environments
# --------------------------------------------------------------------------

class Env:
    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Env"] = None):
        self.vars: dict = {}
        self.parent = parent

    def lookup(self, name: str):
        env = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        return _MISSING

    def assign(self, name: str, value):
        self.vars[name] = value


_SAFE_BUILTINS = {
    "range": range, "len": len, "int": int, "float": float, "bool": bool,
    "str": str, "abs": abs, "min": min, "max": max, "sum": sum,
    "enumerate": enumerate, "zip": zip, "sorted": sorted,
    "reversed": reversed, "list": list, "tuple": tuple, "dict": dict,
    "set": set, "frozenset": frozenset, "bytes": bytes,
    "bytearray": bytearray, "memoryview": memoryview, "divmod": divmod,
    "round": round, "repr": repr, "format": format, "ord": ord, "chr": chr,
    "any": any, "all": all, "isinstance": isinstance, "pow": pow,
    "AssertionError": AssertionError, "ValueError": ValueError,
    "RuntimeError": RuntimeError, "Exception": Exception,
    "KeyError": KeyError, "IndexError": IndexError, "TypeError": TypeError,
    "NotImplementedError": NotImplementedError, "StopIteration": StopIteration,
}


# --------------------------------------------------------------------------
# The interpreter
# --------------------------------------------------------------------------

class _Interp:
    """One rank's abstract execution of one file at one job size."""

    def __init__(self, tree: ast.Module, path: str, nprocs: int, rank: int):
        self.tree = tree
        self.path = path
        self.nprocs = nprocs
        self.rank = rank
        self.trace: list = []
        self.module_env = Env()
        self.module_env.vars["__name__"] = "<flow>"
        self.module_env.vars["__file__"] = path
        self.cur_loc = (0, 0)
        self.steps = 0
        self.depth = 0
        self._req_counter = 0
        #: real Datatype objects seen in ops: (id -> (dtype, line, col))
        self.datatypes_seen: dict = {}

    def next_req(self) -> int:
        self._req_counter += 1
        return self._req_counter

    # -- entry ------------------------------------------------------------

    def run(self) -> list:
        for stmt in self.tree.body:
            self.exec_stmt(stmt, self.module_env)
        main = self.module_env.lookup("main")
        if not isinstance(main, FuncVal):
            raise Incomplete("main(comm) was rebound to a non-function")
        comm = CommVal(self, self.nprocs, self.rank)
        try:
            self.call_function(main, [comm], {})
        except _AbortRank:
            pass
        return self.trace

    # -- datatype/signature resolution ------------------------------------

    def static_sig(self, buf, count, datatype, line, col):
        """(signature, nbytes) of one transfer, or (None, None) when the
        static subset cannot pin it down (custom datatypes, unknown
        counts): unknown stays lenient, exactly like the wire envelope."""
        try:
            return self._static_sig(buf, count, datatype, line, col)
        except Incomplete:
            raise
        except Exception:
            return None, None

    def _static_sig(self, buf, count, datatype, line, col):
        if datatype is UNKNOWN or isinstance(datatype, (CustomDtypeMarker,
                                                        CustomDatatype)):
            return None, None
        n = _as_int(count) if count is not None else None
        if count is not None and n is None and count is not UNKNOWN:
            return None, None
        if datatype is None:
            if isinstance(buf, np.ndarray):
                datatype = from_numpy_dtype(buf.dtype)
                if n is None:
                    n = buf.size
            elif isinstance(buf, (bytes, bytearray, memoryview)):
                datatype = BYTE
                if n is None:
                    n = len(buf)
            else:
                return None, None
        if not isinstance(datatype, Datatype):
            return None, None
        self.datatypes_seen.setdefault(id(datatype), (datatype, line, col))
        if n is None:
            if isinstance(buf, np.ndarray) and datatype.extent:
                n = buf.nbytes // datatype.extent
            else:
                return None, None
        sig = datatype.signature(n)
        if sig is None:
            return None, None
        return sig, signature_bytes(sig)

    # -- statements --------------------------------------------------------

    def exec_body(self, body, env):
        for stmt in body:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt, env):
        self.steps += 1
        if self.steps > STEP_BUDGET:
            raise Incomplete("statement budget exhausted (unbounded or very "
                             "long-running loop)", stmt.lineno,
                             stmt.col_offset)
        self.cur_loc = (stmt.lineno, stmt.col_offset)
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is not None:
            method(stmt, env)
            return
        # Unsupported statement kinds (match, async, global/nonlocal...):
        # fine to skip unless they could hide communication.
        if _contains_comm_call(stmt):
            raise Incomplete(f"unsupported construct "
                             f"{type(stmt).__name__} contains MPI calls",
                             stmt.lineno, stmt.col_offset)
        self._havoc(stmt, env)

    def _stmt_Expr(self, stmt, env):
        self.eval_expr(stmt.value, env)

    def _stmt_Assign(self, stmt, env):
        value = self.eval_expr(stmt.value, env)
        for target in stmt.targets:
            self.assign_target(target, value, env)

    def _stmt_AnnAssign(self, stmt, env):
        if stmt.value is not None:
            self.assign_target(stmt.target, self.eval_expr(stmt.value, env),
                               env)

    def _stmt_AugAssign(self, stmt, env):
        target = stmt.target
        load = ast.copy_location(
            ast.fix_missing_locations(_as_load(target)), target)
        current = self.eval_expr(load, env)
        value = self.eval_expr(stmt.value, env)
        result = self._binop(type(stmt.op).__name__, current, value)
        self.assign_target(target, result, env)

    def _stmt_If(self, stmt, env):
        truth = _truth(self.eval_expr(stmt.test, env))
        if truth is None:
            if _contains_comm_call(stmt):
                raise Incomplete(
                    "branch condition escaped the abstract domain and the "
                    "branch contains MPI calls", stmt.lineno,
                    stmt.col_offset)
            self._havoc(stmt, env)
            return
        self.exec_body(stmt.body if truth else stmt.orelse, env)

    def _stmt_While(self, stmt, env):
        first = True
        while True:
            truth = _truth(self.eval_expr(stmt.test, env))
            if truth is None:
                if _contains_comm_call(stmt):
                    raise Incomplete(
                        "while condition escaped the abstract domain and "
                        "the loop contains MPI calls", stmt.lineno,
                        stmt.col_offset)
                if first:
                    self._havoc(stmt, env)
                return
            if not truth:
                break
            first = False
            try:
                self.exec_body(stmt.body, env)
            except _BreakSig:
                return
            except _ContinueSig:
                continue
        self.exec_body(stmt.orelse, env)

    def _stmt_For(self, stmt, env):
        iterable = self.eval_expr(stmt.iter, env)
        items = self._concrete_iter(iterable)
        if items is None:
            if _contains_comm_call(stmt):
                raise Incomplete(
                    "loop iterable escaped the abstract domain and the "
                    "loop contains MPI calls", stmt.lineno, stmt.col_offset)
            self._havoc(stmt, env)
            return
        for item in items:
            self.assign_target(stmt.target, item, env)
            try:
                self.exec_body(stmt.body, env)
            except _BreakSig:
                return
            except _ContinueSig:
                continue
        self.exec_body(stmt.orelse, env)

    def _concrete_iter(self, value) -> Optional[list]:
        if value is UNKNOWN or isinstance(
                value, (ObjVal, FuncVal, BoundVal, ClassVal, ModuleVal,
                        OpaqueModule, CommVal, RequestVal)):
            return None
        try:
            it = iter(value)
        except Exception:
            return None
        out = []
        for item in it:
            out.append(item)
            if len(out) > 1_000_000:
                raise Incomplete("iterable too long for static unrolling")
        return out

    def _stmt_FunctionDef(self, stmt, env):
        env.assign(stmt.name, self._make_func(stmt, env))

    _stmt_AsyncFunctionDef = _stmt_FunctionDef

    def _make_func(self, node, env) -> Any:
        is_cm = is_sm = is_prop = False
        for dec in getattr(node, "decorator_list", ()):
            name = dec.id if isinstance(dec, ast.Name) else (
                dec.attr if isinstance(dec, ast.Attribute) else None)
            if name == "classmethod":
                is_cm = True
            elif name == "staticmethod":
                is_sm = True
            elif name == "property":
                is_prop = True
            else:
                return UNKNOWN   # arbitrary decorators transform the function
        defaults = tuple(self.eval_expr(d, env)
                         for d in node.args.defaults)
        kw_defaults = {}
        for arg, d in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if d is not None:
                kw_defaults[arg.arg] = self.eval_expr(d, env)
        is_gen = any(isinstance(n, (ast.Yield, ast.YieldFrom))
                     for n in ast.walk(node))
        return FuncVal(node=node, env=env,
                       name=getattr(node, "name", "<lambda>"),
                       defaults=defaults, kw_defaults=kw_defaults,
                       is_classmethod=is_cm, is_staticmethod=is_sm,
                       is_property=is_prop, is_generator=is_gen)

    def _stmt_ClassDef(self, stmt, env):
        if stmt.decorator_list:
            env.assign(stmt.name, UNKNOWN)
            return
        class_env = Env(env)
        self.exec_body(stmt.body, class_env)
        env.assign(stmt.name, ClassVal(stmt.name, dict(class_env.vars)))

    def _stmt_Return(self, stmt, env):
        value = self.eval_expr(stmt.value, env) if stmt.value else None
        raise _ReturnSig(value)

    def _stmt_Break(self, stmt, env):
        raise _BreakSig()

    def _stmt_Continue(self, stmt, env):
        raise _ContinueSig()

    def _stmt_Pass(self, stmt, env):
        pass

    def _stmt_Assert(self, stmt, env):
        # Evaluate for side effects (the capi examples send inside assert),
        # assume it passes.
        self.eval_expr(stmt.test, env)

    def _stmt_Raise(self, stmt, env):
        raise _AbortRank()

    def _stmt_Delete(self, stmt, env):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.assign(target.id, UNKNOWN)

    def _stmt_Import(self, stmt, env):
        for alias in stmt.names:
            env.assign(alias.asname or alias.name.split(".")[0],
                       self._import_module(alias.name.split(".")[0]
                                           if alias.asname is None
                                           else alias.name))

    def _stmt_ImportFrom(self, stmt, env):
        if stmt.level:
            for alias in stmt.names:
                env.assign(alias.asname or alias.name, UNKNOWN)
            return
        mod = self._import_module(stmt.module or "")
        for alias in stmt.names:
            if alias.name == "*":
                continue
            if isinstance(mod, (ModuleVal, OpaqueModule)):
                env.assign(alias.asname or alias.name, mod.get(alias.name))
            else:
                env.assign(alias.asname or alias.name, UNKNOWN)

    def _import_module(self, name: str):
        root = name.split(".")[0]
        if root not in _IMPORTABLE_ROOTS:
            return OpaqueModule(name)
        try:
            import importlib
            return ModuleVal(importlib.import_module(name))
        except Exception:
            return OpaqueModule(name)

    def _stmt_Try(self, stmt, env):
        self.exec_body(stmt.body, env)
        for handler in stmt.handlers:
            if _contains_comm_call(handler):
                raise Incomplete("exception handler contains MPI calls",
                                 handler.lineno, handler.col_offset)
            self._havoc(handler, env)
        self.exec_body(stmt.orelse, env)
        self.exec_body(stmt.finalbody, env)

    _stmt_TryStar = _stmt_Try

    def _stmt_With(self, stmt, env):
        for item in stmt.items:
            ctx = self.eval_expr(item.context_expr, env)
            if item.optional_vars is not None:
                self.assign_target(item.optional_vars, ctx, env)
        self.exec_body(stmt.body, env)

    _stmt_AsyncWith = _stmt_With

    def _stmt_Global(self, stmt, env):
        pass     # module env is the root of every chain already

    _stmt_Nonlocal = _stmt_Global

    def _havoc(self, node, env):
        """Forget everything a skipped region could have assigned."""
        for name in _assigned_names(node):
            env.assign(name, UNKNOWN)
        for n in ast.walk(node):
            if isinstance(n, (ast.Attribute, ast.Subscript)) \
                    and isinstance(n.ctx, ast.Store):
                base = n.value
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if isinstance(base, ast.Name):
                    obj = env.lookup(base.id)
                    if isinstance(obj, ObjVal):
                        obj.havocked = True

    # -- assignment targets ------------------------------------------------

    def assign_target(self, target, value, env):
        if isinstance(target, ast.Name):
            env.assign(target.id, value)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            items = self._concrete_iter(value)
            plain = [e for e in target.elts
                     if not isinstance(e, ast.Starred)]
            if items is not None and len(items) == len(target.elts) \
                    and len(plain) == len(target.elts):
                for elt, item in zip(target.elts, items):
                    self.assign_target(elt, item, env)
            else:
                for elt in target.elts:
                    self.assign_target(elt, UNKNOWN, env)
        elif isinstance(target, ast.Attribute):
            base = self.eval_expr(target.value, env)
            if isinstance(base, ObjVal):
                base.attrs[target.attr] = value
            elif base is UNKNOWN or isinstance(base, (CommVal, RequestVal,
                                                      ModuleVal,
                                                      OpaqueModule)):
                pass
            else:
                try:
                    setattr(base, target.attr, value)
                except Exception:
                    pass
        elif isinstance(target, ast.Subscript):
            base = self.eval_expr(target.value, env)
            if base is UNKNOWN or isinstance(base, ObjVal):
                return
            index = self.eval_expr_slice(target.slice, env)
            if index is UNKNOWN or value is UNKNOWN \
                    or isinstance(value, (FuncVal, BoundVal, ClassVal,
                                          ModuleVal, OpaqueModule)):
                return
            try:
                base[index] = value
            except Exception:
                pass

    # -- expressions -------------------------------------------------------

    def eval_expr(self, node, env):
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is None:
            return UNKNOWN
        return method(node, env)

    def _expr_Constant(self, node, env):
        return node.value

    def _expr_Name(self, node, env):
        value = env.lookup(node.id)
        if value is not _MISSING:
            return value
        if node.id in _SAFE_BUILTINS:
            return _SAFE_BUILTINS[node.id]
        if node.id == "print":
            return ModelFn(lambda *a, **k: None, "print")
        return UNKNOWN

    def _expr_Attribute(self, node, env):
        base = self.eval_expr(node.value, env)
        return self.get_attr(base, node.attr)

    def get_attr(self, base, name: str):
        if base is UNKNOWN:
            return UNKNOWN
        if isinstance(base, (ModuleVal, OpaqueModule)):
            return base.get(name)
        if isinstance(base, ObjVal):
            if name in base.attrs:
                return base.attrs[name]
            if base.havocked:
                return UNKNOWN
            member = base.cls.members.get(name, _MISSING) if base.cls \
                else _MISSING
            if member is _MISSING:
                return UNKNOWN
            if isinstance(member, FuncVal):
                if member.is_staticmethod:
                    return member
                if member.is_classmethod:
                    return BoundVal(member, base.cls)
                if member.is_property:
                    return self.call_function(member, [base], {})
                return BoundVal(member, base)
            return member
        if isinstance(base, ClassVal):
            member = base.members.get(name, _MISSING)
            if member is _MISSING:
                return UNKNOWN
            if isinstance(member, FuncVal) and member.is_classmethod:
                return BoundVal(member, base)
            return member
        if isinstance(base, (FuncVal, BoundVal, ModelFn,
                             CustomDtypeMarker)):
            if isinstance(base, CustomDtypeMarker) and name == "signature":
                return ModelFn(base.signature, "signature")
            return UNKNOWN
        # Real objects (incl. CommVal / RequestVal, whose methods are the
        # model): plain getattr, wrapping any module results.
        try:
            value = getattr(base, name)
        except Exception:
            return UNKNOWN
        import types
        if isinstance(value, types.ModuleType):
            return ModuleVal(value)
        return value

    def _expr_BinOp(self, node, env):
        left = self.eval_expr(node.left, env)
        right = self.eval_expr(node.right, env)
        return self._binop(type(node.op).__name__, left, right)

    _BINOPS = {
        "Add": lambda a, b: a + b, "Sub": lambda a, b: a - b,
        "Mult": lambda a, b: a * b, "Div": lambda a, b: a / b,
        "FloorDiv": lambda a, b: a // b, "Mod": lambda a, b: a % b,
        "Pow": lambda a, b: a ** b, "LShift": lambda a, b: a << b,
        "RShift": lambda a, b: a >> b, "BitOr": lambda a, b: a | b,
        "BitXor": lambda a, b: a ^ b, "BitAnd": lambda a, b: a & b,
        "MatMult": lambda a, b: a @ b,
    }

    def _binop(self, opname, left, right):
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        if isinstance(left, (FuncVal, BoundVal, ClassVal, ObjVal, CommVal,
                             RequestVal, ModuleVal, OpaqueModule)):
            return UNKNOWN
        if isinstance(right, (FuncVal, BoundVal, ClassVal, ObjVal, CommVal,
                              RequestVal, ModuleVal, OpaqueModule)):
            return UNKNOWN
        fn = self._BINOPS.get(opname)
        if fn is None:
            return UNKNOWN
        try:
            return fn(left, right)
        except Exception:
            return UNKNOWN

    def _expr_UnaryOp(self, node, env):
        value = self.eval_expr(node.operand, env)
        if value is UNKNOWN:
            return UNKNOWN
        try:
            if isinstance(node.op, ast.USub):
                return -value
            if isinstance(node.op, ast.UAdd):
                return +value
            if isinstance(node.op, ast.Invert):
                return ~value
            if isinstance(node.op, ast.Not):
                truth = _truth(value)
                return UNKNOWN if truth is None else not truth
        except Exception:
            return UNKNOWN
        return UNKNOWN

    def _expr_BoolOp(self, node, env):
        is_and = isinstance(node.op, ast.And)
        result = UNKNOWN
        for sub in node.values:
            value = self.eval_expr(sub, env)
            truth = _truth(value)
            if truth is None:
                return UNKNOWN
            if is_and and not truth:
                return value
            if not is_and and truth:
                return value
            result = value
        return result

    def _expr_Compare(self, node, env):
        left = self.eval_expr(node.left, env)
        for op, comparator in zip(node.ops, node.comparators):
            right = self.eval_expr(comparator, env)
            result = self._compare(op, left, right)
            if result is UNKNOWN:
                return UNKNOWN
            if not result:
                return False
            left = right
        return True

    def _compare(self, op, left, right):
        if isinstance(op, ast.Is):
            return left is right
        if isinstance(op, ast.IsNot):
            return left is not right
        if left is UNKNOWN or right is UNKNOWN:
            return UNKNOWN
        abstract = (FuncVal, BoundVal, ClassVal, ObjVal, CommVal, RequestVal,
                    ModuleVal, OpaqueModule, CustomDtypeMarker)
        if isinstance(left, abstract) or isinstance(right, abstract):
            if isinstance(op, ast.Eq):
                return left is right if (isinstance(left, abstract)
                                         and isinstance(right, abstract)) \
                    else UNKNOWN
            return UNKNOWN
        try:
            if isinstance(op, ast.Eq):
                return bool(left == right)
            if isinstance(op, ast.NotEq):
                return bool(left != right)
            if isinstance(op, ast.Lt):
                return bool(left < right)
            if isinstance(op, ast.LtE):
                return bool(left <= right)
            if isinstance(op, ast.Gt):
                return bool(left > right)
            if isinstance(op, ast.GtE):
                return bool(left >= right)
            if isinstance(op, ast.In):
                return bool(left in right)
            if isinstance(op, ast.NotIn):
                return bool(left not in right)
        except Exception:
            return UNKNOWN
        return UNKNOWN

    def _expr_IfExp(self, node, env):
        truth = _truth(self.eval_expr(node.test, env))
        if truth is None:
            return UNKNOWN
        return self.eval_expr(node.body if truth else node.orelse, env)

    def _expr_Tuple(self, node, env):
        return tuple(self.eval_expr(e, env) for e in node.elts)

    def _expr_List(self, node, env):
        out = []
        for e in node.elts:
            if isinstance(e, ast.Starred):
                items = self._concrete_iter(self.eval_expr(e.value, env))
                if items is None:
                    return UNKNOWN
                out.extend(items)
            else:
                out.append(self.eval_expr(e, env))
        return out

    def _expr_Set(self, node, env):
        try:
            return {self.eval_expr(e, env) for e in node.elts}
        except Exception:
            return UNKNOWN

    def _expr_Dict(self, node, env):
        out = {}
        for k, v in zip(node.keys, node.values):
            if k is None:
                merged = self.eval_expr(v, env)
                if isinstance(merged, dict):
                    out.update(merged)
                else:
                    return UNKNOWN
                continue
            key = self.eval_expr(k, env)
            if key is UNKNOWN:
                return UNKNOWN
            try:
                out[key] = self.eval_expr(v, env)
            except Exception:
                return UNKNOWN
        return out

    def eval_expr_slice(self, node, env):
        if isinstance(node, ast.Slice):
            lower = self.eval_expr(node.lower, env) if node.lower else None
            upper = self.eval_expr(node.upper, env) if node.upper else None
            step = self.eval_expr(node.step, env) if node.step else None
            if UNKNOWN in (lower, upper, step):
                return UNKNOWN
            return slice(lower, upper, step)
        if isinstance(node, ast.Tuple):
            parts = tuple(self.eval_expr_slice(e, env) for e in node.elts)
            if any(p is UNKNOWN for p in parts):
                return UNKNOWN
            return parts
        return self.eval_expr(node, env)

    def _expr_Subscript(self, node, env):
        base = self.eval_expr(node.value, env)
        if base is UNKNOWN or isinstance(
                base, (ObjVal, FuncVal, BoundVal, ClassVal, CommVal,
                       RequestVal, ModuleVal, OpaqueModule)):
            return UNKNOWN
        index = self.eval_expr_slice(node.slice, env)
        if index is UNKNOWN:
            return UNKNOWN
        try:
            return base[index]
        except Exception:
            return UNKNOWN

    def _expr_Starred(self, node, env):
        return self.eval_expr(node.value, env)

    def _expr_JoinedStr(self, node, env):
        parts = []
        for part in node.values:
            if isinstance(part, ast.Constant):
                parts.append(str(part.value))
            else:
                value = self.eval_expr(part.value, env)
                if value is UNKNOWN or isinstance(
                        value, (ObjVal, CommVal, RequestVal, FuncVal,
                                BoundVal, ClassVal, ModuleVal,
                                OpaqueModule)):
                    return UNKNOWN
                try:
                    parts.append(format(value, part.format_spec.values[0].value
                                        if part.format_spec else ""))
                except Exception:
                    return UNKNOWN
        return "".join(parts)

    def _expr_FormattedValue(self, node, env):
        return self.eval_expr(node.value, env)

    def _expr_Lambda(self, node, env):
        defaults = tuple(self.eval_expr(d, env) for d in node.args.defaults)
        return FuncVal(node=node, env=env, name="<lambda>",
                       defaults=defaults)

    def _expr_ListComp(self, node, env):
        return self._comprehension(node, env, "list")

    def _expr_SetComp(self, node, env):
        return self._comprehension(node, env, "set")

    def _expr_GeneratorExp(self, node, env):
        return self._comprehension(node, env, "list")

    def _expr_DictComp(self, node, env):
        return self._comprehension(node, env, "dict")

    def _comprehension(self, node, env, kind):
        out = [] if kind != "dict" else {}

        def rec(gen_idx, scope):
            gen = node.generators[gen_idx]
            items = self._concrete_iter(self.eval_expr(gen.iter, scope))
            if items is None:
                if _contains_comm_call(node):
                    raise Incomplete("comprehension over an unknown "
                                     "iterable contains MPI calls",
                                     node.lineno, node.col_offset)
                raise _ComprehensionUnknown()
            for item in items:
                inner = Env(scope)
                self.assign_target(gen.target, item, inner)
                keep = True
                for cond in gen.ifs:
                    truth = _truth(self.eval_expr(cond, inner))
                    if truth is None:
                        raise _ComprehensionUnknown()
                    if not truth:
                        keep = False
                        break
                if not keep:
                    continue
                if gen_idx + 1 < len(node.generators):
                    rec(gen_idx + 1, inner)
                elif kind == "dict":
                    key = self.eval_expr(node.key, inner)
                    if key is UNKNOWN:
                        raise _ComprehensionUnknown()
                    out[key] = self.eval_expr(node.value, inner)
                else:
                    out.append(self.eval_expr(node.elt, inner))

        try:
            rec(0, Env(env))
        except _ComprehensionUnknown:
            return UNKNOWN
        if kind == "set":
            try:
                return set(out)
            except Exception:
                return UNKNOWN
        return out

    # -- calls -------------------------------------------------------------

    def _expr_Call(self, node, env):
        self.cur_loc = (node.lineno, node.col_offset)
        callee = self.eval_expr(node.func, env)
        args = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                items = self._concrete_iter(self.eval_expr(a.value, env))
                if items is None:
                    args.append(UNKNOWN)
                else:
                    args.extend(items)
            else:
                args.append(self.eval_expr(a, env))
        kwargs = {}
        for kw in node.keywords:
            if kw.arg is None:
                merged = self.eval_expr(kw.value, env)
                if isinstance(merged, dict) and all(
                        isinstance(k, str) for k in merged):
                    kwargs.update(merged)
                else:
                    return self._call_opaque(args + list(kwargs.values()),
                                             node)
            else:
                kwargs[kw.arg] = self.eval_expr(kw.value, env)
        return self.call_value(callee, args, kwargs, node)

    def call_value(self, callee, args, kwargs, node):
        if callee is UNKNOWN:
            return self._call_opaque(args + list(kwargs.values()), node)
        if isinstance(callee, FuncVal):
            return self.call_function(callee, args, kwargs)
        if isinstance(callee, BoundVal):
            return self.call_function(callee.fn, [callee.recv] + args,
                                      kwargs)
        if isinstance(callee, ClassVal):
            return self._instantiate(callee, args, kwargs)
        if isinstance(callee, ModelFn):
            return callee(*args, **kwargs)
        if isinstance(callee, (ObjVal, CustomDtypeMarker, ModuleVal,
                               OpaqueModule, CommVal, RequestVal)):
            return self._call_opaque(args + list(kwargs.values()), node)
        # A real callable.
        if callable(callee):
            return self._call_native(callee, args, kwargs, node)
        return UNKNOWN

    def _call_opaque(self, values, node):
        """Unknown callee: requests escape, communicators must not."""
        has_comm, has_req, _ = _scan_abstract(values)
        if has_comm:
            raise Incomplete("communicator passed to code outside the "
                             "abstract domain", node.lineno,
                             node.col_offset)
        if has_req:
            _mark_escaped(values)
        return UNKNOWN

    def _call_native(self, callee, args, kwargs, node):
        values = args + list(kwargs.values())
        if _comm_whitelisted(callee) or _container_method(callee):
            try:
                return self._wrap_native(callee(*args, **kwargs))
            except Incomplete:
                raise
            except _AbortRank:
                raise
            except Exception:
                return UNKNOWN
        has_comm, has_req, has_other = _scan_abstract(values)
        if has_comm:
            raise Incomplete(
                f"communicator passed to "
                f"{getattr(callee, '__name__', 'native code')}()",
                node.lineno, node.col_offset)
        if has_req:
            _mark_escaped(values)
            return UNKNOWN
        if has_other:
            return UNKNOWN
        try:
            return self._wrap_native(callee(*args, **kwargs))
        except Exception:
            return UNKNOWN

    def _wrap_native(self, value):
        import types
        if isinstance(value, types.ModuleType):
            return ModuleVal(value)
        return value

    def _instantiate(self, cls: ClassVal, args, kwargs):
        obj = ObjVal(cls)
        init = cls.members.get("__init__")
        if isinstance(init, FuncVal):
            self.call_function(init, [obj] + args, kwargs)
        elif args or kwargs:
            # Unmodelled construction (e.g. inherited __init__).
            obj.havocked = True
        return obj

    def call_function(self, fv: FuncVal, args, kwargs):
        if fv.is_generator:
            return UNKNOWN
        self.depth += 1
        if self.depth > _CALL_DEPTH_LIMIT:
            self.depth -= 1
            raise Incomplete("call depth limit exceeded (recursion?)")
        try:
            env = Env(fv.env)
            a = fv.node.args
            params = [p.arg for p in list(a.posonlyargs) + list(a.args)]
            npos = len(params)
            bound = dict(zip(params, args[:npos]))
            rest = list(args[npos:])
            if a.vararg is not None:
                bound[a.vararg.arg] = tuple(rest)
            # defaults right-align onto params
            defaults = fv.defaults
            for i, name in enumerate(params):
                if name in bound:
                    continue
                if name in kwargs:
                    bound[name] = kwargs.pop(name)
                    continue
                from_end = npos - i
                if from_end <= len(defaults):
                    bound[name] = defaults[len(defaults) - from_end]
                else:
                    bound[name] = UNKNOWN
            for p in a.kwonlyargs:
                if p.arg in kwargs:
                    bound[p.arg] = kwargs.pop(p.arg)
                elif p.arg in fv.kw_defaults:
                    bound[p.arg] = fv.kw_defaults[p.arg]
                else:
                    bound[p.arg] = UNKNOWN
            if a.kwarg is not None:
                bound[a.kwarg.arg] = dict(kwargs)
            env.vars.update(bound)
            if isinstance(fv.node, ast.Lambda):
                return self.eval_expr(fv.node.body, env)
            try:
                self.exec_body(fv.node.body, env)
            except _ReturnSig as sig:
                return sig.value
            return None
        finally:
            self.depth -= 1


class _ComprehensionUnknown(Exception):
    pass


def _as_load(target):
    """Copy of an assignment target usable as a Load expression."""
    import copy
    node = copy.deepcopy(target)
    for n in ast.walk(node):
        if hasattr(n, "ctx"):
            n.ctx = ast.Load()
    return node


# --------------------------------------------------------------------------
# Per-file driver
# --------------------------------------------------------------------------

@dataclass
class FlowReport:
    """Outcome of flow analysis on one file."""

    path: str
    has_main: bool = False
    #: True when every evaluated job size was fully interpreted (so the
    #: matching verdict is authoritative and RPD301 heuristics can yield).
    complete: bool = False
    nprocs_used: tuple = ()
    findings: list = field(default_factory=list)


def find_main(tree: ast.Module) -> Optional[ast.FunctionDef]:
    """The ``main(comm)`` entry point: a top-level function with exactly
    one required positional parameter."""
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "main":
            a = stmt.args
            if len(a.posonlyargs) + len(a.args) == 1 and not a.defaults \
                    and a.vararg is None and not a.kwonlyargs:
                return stmt
    return None


def pinned_nprocs(tree: ast.Module) -> Optional[int]:
    """Job size the file pins: an ``NPROCS``/``NRANKS``/``PROCS`` module
    attribute, or a literal ``run(main, nprocs=K)`` call."""
    consts: dict = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Constant) \
                and isinstance(stmt.value.value, int):
            consts[stmt.targets[0].id] = stmt.value.value
    for attr in NPROCS_ATTRS:
        if attr in consts:
            return consts[attr]
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "run":
            for kw in node.keywords:
                if kw.arg == "nprocs":
                    if isinstance(kw.value, ast.Constant) \
                            and isinstance(kw.value.value, int):
                        return kw.value.value
                    if isinstance(kw.value, ast.Name):
                        return consts.get(kw.value.id)
    return None


def _run_config(tree, path, nprocs):
    """Interpret all ranks at one job size.  Returns (traces, None) or
    (None, Incomplete)."""
    traces = {}
    for rank in range(nprocs):
        interp = _Interp(tree, path, nprocs, rank)
        try:
            traces[rank] = interp.run()
        except Incomplete as inc:
            return None, inc, None
        except RecursionError:
            return None, Incomplete("interpreter recursion limit"), None
        except (_ReturnSig, _BreakSig, _ContinueSig):
            return None, Incomplete("control flow escaped main()"), None
    return traces, None, interp.datatypes_seen


def analyze_flow_source(source: str, path: str = "<string>",
                        nprocs: Optional[list] = None) -> FlowReport:
    """Run the communication-flow verifier over one program source."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        # lint_file owns the RPD300 report for unparseable files.
        return FlowReport(path=path)
    if find_main(tree) is None:
        return FlowReport(path=path)

    pinned = pinned_nprocs(tree)
    if nprocs:
        configs = [n for n in nprocs if n >= 2]
        witnesses = []
    elif pinned is not None:
        configs = [pinned] if pinned >= 2 else []
        witnesses = []
    else:
        configs = list(DEFAULT_NPROCS)
        witnesses = list(SYMBOLIC_WITNESS_NPROCS)

    findings: list = []
    seen_keys: set = set()
    incomplete: Optional[tuple] = None    # (nprocs, Incomplete)
    analyzed: tuple = ()
    dtypes: dict = {}

    def run_sizes(sizes) -> bool:
        nonlocal incomplete, analyzed
        ok = True
        for n in sizes:
            traces, inc, seen = _run_config(tree, path, n)
            if inc is not None:
                ok = False
                if incomplete is None:
                    incomplete = (n, inc)
                continue
            analyzed = analyzed + (n,)
            dtypes.update(seen or {})
            for diag in TraceReplay(traces, path=path,
                                    context=f"nprocs={n}").run():
                key = (diag.code, diag.line, diag.col)
                if key not in seen_keys:
                    seen_keys.add(key)
                    findings.append(diag)
        return ok

    base_ok = run_sizes(configs)
    if base_ok and witnesses:
        # The symbolic-"N" pass: only meaningful once the explicit sizes
        # interpret cleanly.
        base_ok = run_sizes(witnesses)

    if incomplete is not None:
        n, inc = incomplete
        findings.append(Diagnostic(
            "RPD530",
            f"flow analysis incomplete at nprocs={n}: {inc.reason}; "
            f"matching falls back to the per-file heuristics",
            hint="keep ranks, tags and counts derived from comm.rank/"
                 "comm.size and literals for full static verification",
            file=path, line=inc.line, col=inc.col))

    # Statically constructed datatypes also get the RPD1xx validity pass
    # (the typecheck.py reuse hook).
    from .typecheck import analyze_datatype
    for dtype, line, col in dtypes.values():
        try:
            for diag in analyze_datatype(dtype, path=path):
                key = (diag.code, line, col, diag.subject)
                if key not in seen_keys:
                    seen_keys.add(key)
                    findings.append(Diagnostic(
                        diag.code, diag.message, hint=diag.hint, file=path,
                        line=line, col=col, subject=diag.subject))
        except Exception:
            pass

    return FlowReport(path=path, has_main=True,
                      complete=incomplete is None and bool(analyzed),
                      nprocs_used=analyzed, findings=findings)


def analyze_flow_file(path: str, nprocs: Optional[list] = None) -> FlowReport:
    """Run the communication-flow verifier over one file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
    except (OSError, UnicodeDecodeError):
        return FlowReport(path=path)
    return analyze_flow_source(source, path=os.fspath(path), nprocs=nprocs)
